// Package bitset implements a dense, fixed-universe bitset used to
// represent user-group membership throughout VEXUS.
//
// Group similarity (Jaccard) is the inner loop of both offline index
// construction and the online greedy optimizer, so the representation is
// optimized for word-parallel intersection/union cardinality: computing
// |A ∩ B| over a 100k-user universe touches ~1.6k words instead of
// iterating hash sets.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset over the universe [0, Len()). The zero value is
// an empty set with a zero-sized universe; use New to size the universe.
//
// All binary operations require both operands to share the same universe
// size and panic otherwise: mixing universes is always a programming
// error in VEXUS (groups are defined over one dataset's user space).
type Set struct {
	words []uint64
	n     int // universe size in bits
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set over [0, n) with the given members set.
// Indices outside the universe cause a panic.
func FromIndices(n int, indices []int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the universe size (not the number of members; see Count).
func (s *Set) Len() int { return s.n }

// Words exposes the backing little-endian word array (bit i of word w
// is member w·64+i). The returned slice aliases the set's storage and
// must not be modified — it exists so serializers (internal/store) can
// write members without a per-bit walk.
func (s *Set) Words() []uint64 { return s.words }

// FromWords reconstructs a set over [0, n) from a word array as
// produced by Words, taking ownership of the slice. The word count
// must match the universe exactly; bits beyond the universe in the
// final word are cleared, so a round trip through Words/FromWords is
// bit-identical.
func FromWords(n int, words []uint64) (*Set, error) {
	if n < 0 {
		return nil, fmt.Errorf("bitset: negative universe size %d", n)
	}
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		return nil, fmt.Errorf("bitset: %d words for universe %d, want %d", len(words), n, want)
	}
	s := &Set{words: words, n: n}
	s.trim()
	return s, nil
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of members (popcount).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no members.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all members, keeping the universe size.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Copy overwrites s with the contents of other (same universe required).
func (s *Set) Copy(other *Set) {
	s.sameUniverse(other)
	copy(s.words, other.words)
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Equal reports whether s and other have identical members and universe.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i, w := range s.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the members in ascending order. It allocates; prefer
// Range or the *Count methods in hot paths.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Range calls fn for each member in ascending order until fn returns
// false.
func (s *Set) Range(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Next returns the smallest member >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits) << (uint(i) % wordBits)
	for {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// String renders the set as "{1, 5, 9}" with at most 16 members shown.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	shown := 0
	total := s.Count()
	s.Range(func(i int) bool {
		if shown > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		shown++
		return shown < 16
	})
	if total > 16 {
		fmt.Fprintf(&b, ", … %d more", total-16)
	}
	b.WriteByte('}')
	return b.String()
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of universe [0,%d)", i, s.n))
	}
}

func (s *Set) sameUniverse(other *Set) {
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, other.n))
	}
}

// trim clears bits beyond the universe in the final word so that Count
// and word-level comparisons stay exact after Fill / complement ops.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}
