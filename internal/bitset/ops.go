package bitset

import "math/bits"

// InPlaceUnion sets s = s ∪ other.
func (s *Set) InPlaceUnion(other *Set) {
	s.sameUniverse(other)
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// InPlaceIntersect sets s = s ∩ other.
func (s *Set) InPlaceIntersect(other *Set) {
	s.sameUniverse(other)
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// InPlaceDifference sets s = s \ other.
func (s *Set) InPlaceDifference(other *Set) {
	s.sameUniverse(other)
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// InPlaceComplement sets s = universe \ s.
func (s *Set) InPlaceComplement() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// Union returns a new set s ∪ other.
func (s *Set) Union(other *Set) *Set {
	c := s.Clone()
	c.InPlaceUnion(other)
	return c
}

// Intersect returns a new set s ∩ other.
func (s *Set) Intersect(other *Set) *Set {
	c := s.Clone()
	c.InPlaceIntersect(other)
	return c
}

// Difference returns a new set s \ other.
func (s *Set) Difference(other *Set) *Set {
	c := s.Clone()
	c.InPlaceDifference(other)
	return c
}

// IntersectCount returns |s ∩ other| without allocating.
func (s *Set) IntersectCount(other *Set) int {
	s.sameUniverse(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & other.words[i])
	}
	return c
}

// UnionCount returns |s ∪ other| without allocating.
func (s *Set) UnionCount(other *Set) int {
	s.sameUniverse(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | other.words[i])
	}
	return c
}

// DifferenceCount returns |s \ other| without allocating.
func (s *Set) DifferenceCount(other *Set) int {
	s.sameUniverse(other)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ other.words[i])
	}
	return c
}

// Intersects reports whether s ∩ other is non-empty, short-circuiting on
// the first overlapping word. This is the edge test of the group graph.
func (s *Set) Intersects(other *Set) bool {
	s.sameUniverse(other)
	for i, w := range s.words {
		if w&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of s is a member of other.
func (s *Set) SubsetOf(other *Set) bool {
	s.sameUniverse(other)
	for i, w := range s.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// IntersectDifferenceCount returns |s ∩ a \ b| without allocating —
// the greedy optimizer's coverage-gain kernel (new focal members a
// candidate s would cover beyond the already-covered set b).
func (s *Set) IntersectDifferenceCount(a, b *Set) int {
	s.sameUniverse(a)
	s.sameUniverse(b)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & a.words[i] &^ b.words[i])
	}
	return c
}

// Jaccard returns |s ∩ other| / |s ∪ other|. Two empty sets have
// similarity 1 by convention (they are identical).
func (s *Set) Jaccard(other *Set) float64 {
	s.sameUniverse(other)
	inter, union := 0, 0
	for i, w := range s.words {
		ow := other.words[i]
		inter += bits.OnesCount64(w & ow)
		union += bits.OnesCount64(w | ow)
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardDistance returns 1 - Jaccard(s, other), the distance used by
// the paper's inverted similarity index (§II-A).
func (s *Set) JaccardDistance(other *Set) float64 {
	return 1 - s.Jaccard(other)
}

// Overlap returns |s ∩ other| / min(|s|, |other|) (overlap coefficient),
// used when comparing groups of very different sizes. Returns 1 when
// either set is empty.
func (s *Set) Overlap(other *Set) float64 {
	inter := s.IntersectCount(other)
	a, b := s.Count(), other.Count()
	m := a
	if b < m {
		m = b
	}
	if m == 0 {
		return 1
	}
	return float64(inter) / float64(m)
}
