package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if got := s.Count(); got != 0 {
		t.Fatalf("Count() = %d, want 0", got)
	}
	if !s.IsEmpty() {
		t.Fatal("IsEmpty() = false, want true")
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
}

func TestNewZeroUniverse(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || !s.IsEmpty() {
		t.Fatal("zero universe should be empty")
	}
	if s.Contains(0) {
		t.Fatal("Contains(0) on zero universe")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	// Removing an absent element is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() after double remove = %d, want 7", got)
	}
}

func TestAddOutOfRangePanics(t *testing.T) {
	s := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(10) did not panic")
		}
	}()
	s.Add(10)
}

func TestContainsOutOfRangeFalse(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1000) {
		t.Fatal("Contains out of range should be false, not panic")
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(20, []int{3, 7, 7, 11})
	if got := s.Count(); got != 3 {
		t.Fatalf("Count() = %d, want 3 (duplicates collapse)", got)
	}
	for _, i := range []int{3, 7, 11} {
		if !s.Contains(i) {
			t.Fatalf("missing %d", i)
		}
	}
}

func TestFillAndComplement(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: Fill Count() = %d, want %d", n, got, n)
		}
		s.InPlaceComplement()
		if got := s.Count(); got != 0 {
			t.Fatalf("n=%d: complement of full = %d members, want 0", n, got)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromIndices(50, []int{1, 2, 3})
	c := s.Clone()
	c.Add(10)
	if s.Contains(10) {
		t.Fatal("mutating clone affected original")
	}
	if !s.Equal(FromIndices(50, []int{1, 2, 3})) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(64, []int{1, 5})
	b := FromIndices(64, []int{1, 5})
	c := FromIndices(64, []int{1, 6})
	d := FromIndices(65, []int{1, 5})
	if !a.Equal(b) {
		t.Fatal("a != b")
	}
	if a.Equal(c) {
		t.Fatal("a == c")
	}
	if a.Equal(d) {
		t.Fatal("different universes compared equal")
	}
}

func TestIndicesAndRange(t *testing.T) {
	want := []int{0, 9, 63, 64, 99}
	s := FromIndices(100, want)
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early-exit Range.
	n := 0
	s.Range(func(int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range visited %d, want 2", n)
	}
}

func TestNext(t *testing.T) {
	s := FromIndices(200, []int{5, 64, 130})
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {130, 130},
		{131, -1}, {-3, 5}, {500, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(128, []int{1, 2, 3, 70})
	b := FromIndices(128, []int{3, 4, 70, 100})

	if got := a.Union(b).Indices(); len(got) != 6 {
		t.Fatalf("union size = %d, want 6", len(got))
	}
	inter := a.Intersect(b)
	if !inter.Equal(FromIndices(128, []int{3, 70})) {
		t.Fatalf("intersect = %v", inter)
	}
	diff := a.Difference(b)
	if !diff.Equal(FromIndices(128, []int{1, 2})) {
		t.Fatalf("difference = %v", diff)
	}
	if got := a.IntersectCount(b); got != 2 {
		t.Fatalf("IntersectCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Fatalf("UnionCount = %d, want 6", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Fatalf("DifferenceCount = %d, want 2", got)
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects = false")
	}
	if a.Intersects(FromIndices(128, []int{9})) {
		t.Fatal("Intersects with disjoint = true")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromIndices(64, []int{1, 2})
	b := FromIndices(64, []int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	empty := New(64)
	if !empty.SubsetOf(a) {
		t.Fatal("∅ ⊆ a expected")
	}
}

func TestJaccard(t *testing.T) {
	a := FromIndices(64, []int{1, 2, 3})
	b := FromIndices(64, []int{2, 3, 4})
	if got, want := a.Jaccard(b), 2.0/4.0; got != want {
		t.Fatalf("Jaccard = %v, want %v", got, want)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Fatalf("self Jaccard = %v, want 1", got)
	}
	e1, e2 := New(64), New(64)
	if got := e1.Jaccard(e2); got != 1 {
		t.Fatalf("empty-empty Jaccard = %v, want 1 by convention", got)
	}
	if got := a.JaccardDistance(b); got != 0.5 {
		t.Fatalf("JaccardDistance = %v, want 0.5", got)
	}
}

func TestOverlap(t *testing.T) {
	a := FromIndices(64, []int{1, 2})
	b := FromIndices(64, []int{1, 2, 3, 4, 5})
	if got := a.Overlap(b); got != 1.0 {
		t.Fatalf("Overlap = %v, want 1 (a ⊆ b)", got)
	}
	if got := New(64).Overlap(b); got != 1.0 {
		t.Fatalf("Overlap with empty = %v, want 1 by convention", got)
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	a, b := New(10), New(20)
	defer func() {
		if recover() == nil {
			t.Fatal("universe mismatch did not panic")
		}
	}()
	a.InPlaceUnion(b)
}

func TestString(t *testing.T) {
	s := FromIndices(64, []int{1, 2})
	if got := s.String(); got != "{1, 2}" {
		t.Fatalf("String() = %q", got)
	}
	big := New(64)
	big.Fill()
	if got := big.String(); len(got) == 0 || got[0] != '{' {
		t.Fatalf("String() = %q", got)
	}
}

// --- property-based tests -------------------------------------------------

const propUniverse = 256

func randomSet(r *rand.Rand) *Set {
	s := New(propUniverse)
	n := r.Intn(propUniverse)
	for i := 0; i < n; i++ {
		s.Add(r.Intn(propUniverse))
	}
	return s
}

func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		// ¬(A ∪ B) == ¬A ∩ ¬B
		lhs := a.Union(b)
		lhs.InPlaceComplement()
		na, nb := a.Clone(), b.Clone()
		na.InPlaceComplement()
		nb.InPlaceComplement()
		rhs := na.Intersect(nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		return a.UnionCount(b) == a.Count()+b.Count()-a.IntersectCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropJaccardBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		j := a.Jaccard(b)
		if j < 0 || j > 1 {
			return false
		}
		// Symmetry.
		if j != b.Jaccard(a) {
			return false
		}
		// Identity of indiscernibles direction: equal sets ⇒ J = 1.
		if a.Equal(b) && j != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDifferenceDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		d := a.Difference(b)
		return !d.Intersects(b) || d.IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r)
		return FromIndices(propUniverse, a.Indices()).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSubsetIntersection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r), randomSet(r)
		inter := a.Intersect(b)
		return inter.SubsetOf(a) && inter.SubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJaccardBitset(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 100_000
	a, c := New(n), New(n)
	for i := 0; i < n/10; i++ {
		a.Add(r.Intn(n))
		c.Add(r.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Jaccard(c)
	}
}

// BenchmarkJaccardMap is the ablation baseline for design decision 1 in
// DESIGN.md: Jaccard over Go map-based sets, for comparison with the
// word-parallel bitset implementation above.
func BenchmarkJaccardMap(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 100_000
	a := make(map[int]struct{}, n/10)
	c := make(map[int]struct{}, n/10)
	for i := 0; i < n/10; i++ {
		a[r.Intn(n)] = struct{}{}
		c[r.Intn(n)] = struct{}{}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inter := 0
		for k := range a {
			if _, ok := c[k]; ok {
				inter++
			}
		}
		union := len(a) + len(c) - inter
		_ = float64(inter) / float64(union)
	}
}

func TestIntersectDifferenceCount(t *testing.T) {
	s := FromIndices(128, []int{1, 2, 3, 70})
	a := FromIndices(128, []int{2, 3, 70, 100})
	b := FromIndices(128, []int{3})
	// s ∩ a = {2,3,70}; minus b = {2,70}.
	if got := s.IntersectDifferenceCount(a, b); got != 2 {
		t.Fatalf("IntersectDifferenceCount = %d, want 2", got)
	}
	empty := New(128)
	if got := s.IntersectDifferenceCount(empty, b); got != 0 {
		t.Fatalf("with empty a = %d", got)
	}
	if got := s.IntersectDifferenceCount(a, empty); got != 3 {
		t.Fatalf("with empty b = %d", got)
	}
}

func TestPropIntersectDifferenceCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, a, b := randomSet(r), randomSet(r), randomSet(r)
		want := s.Intersect(a).Difference(b).Count()
		return s.IntersectDifferenceCount(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
