package simulate

import (
	"sync"
	"testing"
	"time"

	"vexus/internal/action"
	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/greedy"
	"vexus/internal/rng"
)

var (
	engOnce sync.Once
	engVal  *core.Engine
	engErr  error
)

// buildEngine builds one shared read-only engine; sessions are cheap
// and per-test, the engine is immutable.
func buildEngine(t testing.TB) *core.Engine {
	t.Helper()
	engOnce.Do(func() {
		var d *dataset.Dataset
		d, engErr = datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 11})
		if engErr != nil {
			return
		}
		cfg := core.DefaultPipelineConfig()
		cfg.MinSupportFrac = 0.03
		engVal, engErr = core.Build(d, cfg)
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engVal
}

func fastCfg() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 5 * time.Millisecond
	return cfg
}

func TestPolicyChoose(t *testing.T) {
	r := rng.New(1)
	shown := []int{10, 20, 30}
	score := func(gid int) float64 { return float64(gid) }
	if got := GreedyPolicy().choose(r, shown, score); got != 30 {
		t.Fatalf("greedy chose %d", got)
	}
	if got := GreedyPolicy().choose(r, nil, score); got != -1 {
		t.Fatal("empty shown should return -1")
	}
	// Random policy hits all options over many draws.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[RandomPolicy().choose(r, shown, score)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random policy coverage: %v", seen)
	}
}

func TestRunMTSucceedsOnEasyTask(t *testing.T) {
	eng := buildEngine(t)
	// Target: members of the largest group — trivially reachable.
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	target := eng.Space.Group(ids[0]).Members.Clone()

	sess := eng.NewSession(fastCfg())
	res := RunMT(sess, MTTask{
		Target:        target,
		Quota:         target.Count() / 2,
		MaxIterations: 15,
	}, GreedyPolicy(), rng.New(5))
	if !res.Success {
		t.Fatalf("easy MT task failed: %+v", res)
	}
	if res.Iterations < 1 || res.Iterations > 15 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if len(res.CollectedTrace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.CollectedTrace), res.Iterations)
	}
	// Collection is monotone.
	for i := 1; i < len(res.CollectedTrace); i++ {
		if res.CollectedTrace[i] < res.CollectedTrace[i-1] {
			t.Fatal("collection not monotone")
		}
	}
	// Memo matches the collected count.
	if got := len(sess.Memo().Users()); got != res.Collected {
		t.Fatalf("memo has %d users, result says %d", got, res.Collected)
	}
}

func TestRunMTRespectsBudget(t *testing.T) {
	eng := buildEngine(t)
	// Impossible quota: more users than the target holds.
	target := bitset.New(eng.Data.NumUsers())
	target.Add(0)
	res := RunMT(eng.NewSession(fastCfg()), MTTask{
		Target:        target,
		Quota:         50,
		MaxIterations: 4,
	}, GreedyPolicy(), rng.New(7))
	if res.Success {
		t.Fatal("impossible task succeeded")
	}
	if res.Iterations > 4 {
		t.Fatalf("budget exceeded: %d", res.Iterations)
	}
}

func TestGreedyBeatsRandomMT(t *testing.T) {
	eng := buildEngine(t)
	target := CommitteeTarget(eng, "SIGMOD", 2, 40)
	if target.Count() < 10 {
		t.Skip("target too small on this seed")
	}
	task := MTTask{Target: target, Quota: target.Count() / 3, MaxIterations: 12}
	g := RunMTBatch(eng, fastCfg(), task, GreedyPolicy(), 8, 100)
	r := RunMTBatch(eng, fastCfg(), task, RandomPolicy(), 8, 100)
	if g.MeanCollected <= r.MeanCollected {
		t.Fatalf("greedy (%v collected) should beat random (%v)",
			g.MeanCollected, r.MeanCollected)
	}
}

func TestRunSTReachesTarget(t *testing.T) {
	eng := buildEngine(t)
	// Target: a mid-sized group (not shown initially, so the explorer
	// has to navigate).
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	target := ids[len(ids)/3]
	res := RunST(eng.NewSession(fastCfg()), STTask{
		TargetGroup:   target,
		MinSimilarity: 0.8,
		MaxIterations: 20,
	}, GreedyPolicy(), rng.New(9))
	if res.BestSimilarity <= 0 {
		t.Fatalf("no progress toward target: %+v", res)
	}
	if res.Iterations < 1 || res.Iterations > 20 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestBrowseIndividualsBaseline(t *testing.T) {
	target := bitset.New(1000)
	for u := 0; u < 50; u++ { // 5% of the universe
		target.Add(u)
	}
	// Needing 20 hits at 7 samples/iter over 15 iterations (105
	// samples, ~5 expected hits) must usually fail…
	hard := RunBrowseBatch(1000, target, 20, 7, 15, 50, 3)
	if hard.SuccessRate > 0.2 {
		t.Fatalf("baseline too strong: %v", hard.SuccessRate)
	}
	// …while an easy quota usually succeeds.
	easy := RunBrowseBatch(1000, target, 1, 7, 15, 50, 3)
	if easy.SuccessRate < 0.8 {
		t.Fatalf("baseline too weak on easy task: %v", easy.SuccessRate)
	}
}

func TestCommitteeTarget(t *testing.T) {
	eng := buildEngine(t)
	target := CommitteeTarget(eng, "SIGMOD", 1, 30)
	if target.Count() == 0 || target.Count() > 30 {
		t.Fatalf("target size = %d", target.Count())
	}
	// Every member actually published in SIGMOD.
	item := eng.Data.ItemIndex("SIGMOD")
	target.Range(func(u int) bool {
		found := false
		for _, ai := range eng.Data.UserActions(u) {
			if eng.Data.Actions[ai].Item == item {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("user %d never published in SIGMOD", u)
		}
		return true
	})
	// Unknown venue: empty target, no panic.
	if got := CommitteeTarget(eng, "NOPE", 1, 10); got.Count() != 0 {
		t.Fatal("unknown venue produced a target")
	}
}

func TestBatchesAreDeterministic(t *testing.T) {
	eng := buildEngine(t)
	target := CommitteeTarget(eng, "VLDB", 1, 30)
	task := MTTask{Target: target, Quota: 5, MaxIterations: 8}
	cfg := fastCfg()
	cfg.TimeLimit = 0 // deterministic greedy only
	a := RunMTBatch(eng, cfg, task, GreedyPolicy(), 5, 77)
	b := RunMTBatch(eng, cfg, task, GreedyPolicy(), 5, 77)
	if a != b {
		t.Fatalf("batch not deterministic: %+v vs %+v", a, b)
	}
}

func TestMTInspectionCap(t *testing.T) {
	eng := buildEngine(t)
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	target := eng.Space.Group(ids[0]).Members.Clone()
	res := RunMT(eng.NewSession(fastCfg()), MTTask{
		Target:            target,
		Quota:             target.Count(),
		MaxIterations:     3,
		MaxInspectPerStep: 5,
	}, GreedyPolicy(), rng.New(21))
	// At most 5 bookmarks per step.
	prev := 0
	for _, c := range res.CollectedTrace {
		if c-prev > 5 {
			t.Fatalf("collected %d in one step, cap is 5", c-prev)
		}
		prev = c
	}
	if res.Collected > 15 {
		t.Fatalf("collected %d in 3 steps with cap 5", res.Collected)
	}
}

// TestCampaignEmitsReplayableActionLog: a simulated run's trail,
// replayed through the same action dispatcher on a fresh session, must
// reproduce the exact end state — simulated and served traffic are one
// code path.
func TestCampaignEmitsReplayableActionLog(t *testing.T) {
	eng := buildEngine(t)
	cfg := fastCfg()
	cfg.TimeLimit = 0 // deterministic selection for the replay

	target := CommitteeTarget(eng, "SIGMOD", 2, 30)
	if target.Count() == 0 {
		t.Fatal("no committee target in fixture")
	}
	task := MTTask{Target: target, Quota: 8, MaxIterations: 6}
	sess := eng.NewSession(cfg)
	out := RunMT(sess, task, GreedyPolicy(), rng.New(5))
	if len(out.Actions) == 0 {
		t.Fatal("campaign emitted no action log")
	}
	if out.Actions[0].Op != action.Start {
		t.Fatalf("log starts with %q, want start", out.Actions[0].Op)
	}

	replayed := action.New(eng, cfg)
	if _, err := action.ApplyAll(replayed, out.Actions); err != nil {
		t.Fatalf("replaying campaign log: %v", err)
	}
	if got, want := replayed.Sess.Focal(), sess.Focal(); got != want {
		t.Fatalf("replay focal %d, want %d", got, want)
	}
	if got, want := replayed.Sess.Shown(), sess.Shown(); len(got) != len(want) {
		t.Fatalf("replay shown %v, want %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("replay shown %v, want %v", got, want)
			}
		}
	}
	gotMemo, wantMemo := replayed.Sess.Memo().Users(), sess.Memo().Users()
	if len(gotMemo) != len(wantMemo) {
		t.Fatalf("replay memo %d users, want %d", len(gotMemo), len(wantMemo))
	}
	for i := range gotMemo {
		if gotMemo[i] != wantMemo[i] {
			t.Fatalf("replay memo %v, want %v", gotMemo, wantMemo)
		}
	}
	if got, want := len(replayed.Sess.History()), len(sess.History()); got != want {
		t.Fatalf("replay history %d, want %d", got, want)
	}
}

// TestSTCampaignLogsBookmark: the single-target run logs its final
// bookmark through the action layer.
func TestSTCampaignLogsBookmark(t *testing.T) {
	eng := buildEngine(t)
	cfg := fastCfg()
	cfg.TimeLimit = 0
	task := STTask{TargetGroup: 0, MinSimilarity: 0, MaxIterations: 4}
	out := RunST(eng.NewSession(cfg), task, GreedyPolicy(), rng.New(3))
	if !out.Success {
		t.Fatal("trivial single-target task failed")
	}
	if len(out.Actions) == 0 {
		t.Fatal("run emitted no actions")
	}
	last := out.Actions[len(out.Actions)-1]
	if last.Op != action.BookmarkGroup {
		t.Fatalf("last action %q, want bookmarkGroup", last.Op)
	}
}
