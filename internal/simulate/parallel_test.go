package simulate

import (
	"testing"

	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/dataset"
)

// TestRunMTBatchParallelEquivalence: the parallel MT campaign must
// reproduce the sequential aggregate exactly (float equality) for
// every worker count.
func TestRunMTBatchParallelEquivalence(t *testing.T) {
	eng := buildEngine(t)
	target := CommitteeTarget(eng, "SIGMOD", 1, 40)
	if target.Count() < 6 {
		t.Skip("target too small on this seed")
	}
	task := MTTask{Target: target, Quota: target.Count() / 2, MaxIterations: 10, MaxInspectPerStep: 6}
	cfg := fastCfg()
	cfg.TimeLimit = 0
	want := RunMTBatch(eng, cfg, task, NoisyPolicy(0.1), 12, 77)
	for _, workers := range []int{1, 2, 8} {
		got := RunMTBatchParallel(eng, cfg, task, NoisyPolicy(0.1), 12, 77, workers)
		if got != want {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, got, want)
		}
	}
}

// TestRunSTBatchParallelEquivalence: same for the ST campaign. The
// float MeanBestSim is summed in run order, so even rounding matches.
func TestRunSTBatchParallelEquivalence(t *testing.T) {
	eng := buildEngine(t)
	ids := make([]int, eng.Space.Len())
	for i := range ids {
		ids[i] = i
	}
	eng.Space.SortBySize(ids)
	task := STTask{TargetGroup: ids[len(ids)/3], MinSimilarity: 0.7, MaxIterations: 12}
	cfg := fastCfg()
	cfg.TimeLimit = 0
	want := RunSTBatch(eng, cfg, task, NoisyPolicy(0.05), 12, 123)
	for _, workers := range []int{1, 2, 8} {
		got := RunSTBatchParallel(eng, cfg, task, NoisyPolicy(0.05), 12, 123, workers)
		if got != want {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, got, want)
		}
	}
}

// TestRunBrowseBatchParallelEquivalence: the engine-free baseline
// shards the same way.
func TestRunBrowseBatchParallelEquivalence(t *testing.T) {
	target := bitset.New(800)
	for u := 0; u < 60; u++ {
		target.Add(u * 13 % 800)
	}
	want := RunBrowseBatch(800, target, 8, 7, 15, 40, 9)
	for _, workers := range []int{1, 2, 8} {
		got := RunBrowseBatchParallel(800, target, 8, 7, 15, 40, 9, workers)
		if got != want {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, got, want)
		}
	}
}

// TestCommitteeTargetPinned pins the selected target set on a
// hand-built fixture: selection is by publication count descending,
// user id ascending on ties, cut at `size`.
func TestCommitteeTargetPinned(t *testing.T) {
	s := dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Categorical, Values: []string{"f", "m"}},
	)
	b := dataset.NewBuilder(s)
	pubs := []int{3, 1, 2, 2, 0, 1} // u0..u5 publications at VENUE
	for u, n := range pubs {
		id := string(rune('a' + u))
		b.AddUser(id, map[string]string{"gender": "f"})
		for i := 0; i < n; i++ {
			b.AddAction(id, "VENUE", 1, 0)
		}
		b.AddAction(id, "other", 1, 0) // noise item, never counted
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := &core.Engine{Data: d}

	// minPubs=1, size=4: order is (u0,3) (u2,2) (u3,2) (u1,1) — u5
	// ties u1 at 1 pub but loses the id tiebreak cut.
	got := CommitteeTarget(eng, "VENUE", 1, 4)
	want := bitset.FromIndices(d.NumUsers(), []int{0, 1, 2, 3})
	if !got.Equal(want) {
		t.Fatalf("target = %v, want users {0,1,2,3}", got)
	}
	// minPubs=2 keeps only u0, u2, u3 regardless of size.
	got = CommitteeTarget(eng, "VENUE", 2, 10)
	want = bitset.FromIndices(d.NumUsers(), []int{0, 2, 3})
	if !got.Equal(want) {
		t.Fatalf("minPubs=2 target = %v, want users {0,2,3}", got)
	}
}
