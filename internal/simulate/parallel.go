package simulate

import (
	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/greedy"
	"vexus/internal/parallel"
	"vexus/internal/rng"
)

// The parallel batch runners shard a campaign's runs over
// internal/parallel. Every run was already independent in the
// sequential batches — run i derives its own RNG through
// rng.Derive(seed, family|i) (the same stream constants batch.go uses)
// and its own fresh session off the shared immutable engine — so each
// run writes its raw outcome into its own slot and the aggregate is
// reduced from the slots in run order afterwards. Integer sums are
// order-independent and the float sums are accumulated in the same
// run order as the sequential loop, so the aggregates are exactly
// (bit-for-bit) equal to RunMTBatch / RunSTBatch / RunBrowseBatch for
// every worker count. Note that exact equality across *repeated*
// invocations additionally requires a deterministic optimizer
// (greedy.Config.TimeLimit = 0), same as sequentially.

// RunMTBatchParallel is RunMTBatch sharded over `workers` goroutines
// (<= 0 means runtime.NumCPU()).
func RunMTBatchParallel(eng *core.Engine, cfg greedy.Config, task MTTask, policy Policy, runs int, seed uint64, workers int) MTBatchResult {
	res := MTBatchResult{Runs: runs}
	if runs <= 0 {
		return res
	}
	slots := make([]MTResult, runs)
	parallel.ForEach(runs, workers, func(_, i int) {
		r := rng.Derive(seed, mtStream|uint64(i))
		sess := eng.NewSession(cfg)
		out := RunMT(sess, task, policy, r)
		out.CollectedTrace = nil // aggregate only; don't retain per-run traces
		slots[i] = out
	})
	sumIter, sumColl, successes := 0, 0, 0
	for i := range slots {
		sumColl += slots[i].Collected
		if slots[i].Success {
			successes++
			sumIter += slots[i].Iterations
		}
	}
	res.SuccessRate = float64(successes) / float64(runs)
	res.MeanCollected = float64(sumColl) / float64(runs)
	if successes > 0 {
		res.MeanIterations = float64(sumIter) / float64(successes)
	}
	return res
}

// RunSTBatchParallel is RunSTBatch sharded over `workers` goroutines.
func RunSTBatchParallel(eng *core.Engine, cfg greedy.Config, task STTask, policy Policy, runs int, seed uint64, workers int) STBatchResult {
	res := STBatchResult{Runs: runs}
	if runs <= 0 {
		return res
	}
	slots := make([]STResult, runs)
	parallel.ForEach(runs, workers, func(_, i int) {
		r := rng.Derive(seed, stStream|uint64(i))
		sess := eng.NewSession(cfg)
		slots[i] = RunST(sess, task, policy, r)
	})
	return reduceST(res, slots)
}

// RunBrowseBatchParallel is RunBrowseBatch sharded over `workers`
// goroutines. The target bitset is only read concurrently.
func RunBrowseBatchParallel(numUsers int, target *bitset.Set, quota, perIteration, maxIterations, runs int, seed uint64, workers int) STBatchResult {
	res := STBatchResult{Runs: runs}
	if runs <= 0 {
		return res
	}
	slots := make([]STResult, runs)
	parallel.ForEach(runs, workers, func(_, i int) {
		r := rng.Derive(seed, browseStream|uint64(i))
		slots[i] = BrowseIndividuals(numUsers, target, quota, perIteration, maxIterations, r)
	})
	return reduceST(res, slots)
}

// reduceST folds per-run ST outcomes in run order — the identical
// accumulation order (and thus identical float rounding) to the
// sequential batch loops.
func reduceST(res STBatchResult, slots []STResult) STBatchResult {
	sumIter, successes := 0, 0
	sumSim := 0.0
	for i := range slots {
		sumSim += slots[i].BestSimilarity
		if slots[i].Success {
			successes++
			sumIter += slots[i].Iterations
		}
	}
	res.SuccessRate = float64(successes) / float64(res.Runs)
	res.MeanBestSim = sumSim / float64(res.Runs)
	if successes > 0 {
		res.MeanIterations = float64(sumIter) / float64(successes)
	}
	return res
}
