package simulate

import (
	"bytes"
	"testing"

	"vexus/internal/action"
	"vexus/internal/rng"
)

// TestRunCollaborative pins the collaborative-session contract the SSE
// diff stream carries: several analysts with divergent targets share
// one session, each reconstructing the session purely from the fanned-
// out diff stream, and every reconstruction is byte-identical to the
// authoritative state.
func TestRunCollaborative(t *testing.T) {
	eng := buildEngine(t)
	ng := eng.Space.Len()
	task := CollabTask{
		Analysts: 3,
		Turns:    6,
		Targets:  []int{1 % ng, ng / 2, ng - 1},
	}
	// TimeLimit 0 makes the greedy selector fully deterministic — the
	// same condition replay-based migration relies on — so the shared
	// trail replayed on a fresh session below must land byte-identically.
	det := fastCfg()
	det.TimeLimit = 0
	sess := eng.NewSession(det)
	res := RunCollaborative(sess, task, NoisyPolicy(0.2), rng.New(42))

	if res.Applied == 0 || res.Mutations != uint64(res.Applied) {
		t.Fatalf("applied %d actions but counter is %d", res.Applied, res.Mutations)
	}
	if len(res.Actions) != res.Applied {
		t.Fatalf("trail has %d actions, applied %d", len(res.Actions), res.Applied)
	}
	if !res.Converged {
		for i, v := range res.Views {
			if !bytes.Equal(v, res.Authoritative) {
				t.Errorf("analyst %d diverged:\n view %s\n auth %s", i, v, res.Authoritative)
			}
		}
		t.Fatal("collaborative views did not converge")
	}

	// The shared trail is a replayable action log like every other
	// simulate result: replaying it on a fresh session reproduces the
	// same authoritative projection.
	replay := action.Wrap(eng.NewSession(det))
	views := newCollabView()
	replay.OnDiff = func(r action.Result) { views.apply(r.Diff) }
	for _, a := range res.Actions {
		if err := action.ApplyQuiet(replay, a); err != nil {
			t.Fatalf("replaying shared trail: %v", err)
		}
	}
	if got := renderAuthoritative(replay); !bytes.Equal(got, res.Authoritative) {
		t.Fatalf("replayed trail diverged:\n got %s\nwant %s", got, res.Authoritative)
	}
	if got := views.render(); !bytes.Equal(got, res.Authoritative) {
		t.Fatalf("replayed diff stream diverged:\n got %s\nwant %s", got, res.Authoritative)
	}
}

// TestRunCollaborativeDegenerate: misconfigured tasks return an empty
// result instead of panicking.
func TestRunCollaborativeDegenerate(t *testing.T) {
	eng := buildEngine(t)
	sess := eng.NewSession(fastCfg())
	if res := RunCollaborative(sess, CollabTask{Analysts: 2, Targets: []int{0}}, GreedyPolicy(), rng.New(1)); res.Applied != 0 {
		t.Fatalf("mismatched targets ran %d actions", res.Applied)
	}
}
