// Package simulate drives VEXUS sessions with goal-directed synthetic
// explorers, standing in for the human studies behind the paper's
// Scenario claims (§III): expert-set formation finishing in under 10
// iterations on average (multi-target tasks, E4), 80% satisfaction on
// group-based discussion-group search versus individual browsing
// (single-target tasks, E5), the k ≤ 7 perception bound (E6) and the
// feedback-learning ablation (E8). Explorers interact exclusively
// through internal/action.Apply — the same dispatcher behind the HTTP
// API, the CLI replay and session persistence — so the loop being
// measured is exactly the deployed one, and every run emits its trail
// as an action log (MTResult.Actions / STResult.Actions) that replays
// verbatim through any other frontend.
package simulate

import (
	"vexus/internal/action"
	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/rng"
)

// Policy picks which displayed group to click next. score is the
// explorer's (task-specific) estimate of a group's usefulness; higher
// is better.
type Policy struct {
	// Name identifies the policy in reports.
	Name string
	// Noise is the probability of clicking a uniformly random shown
	// group instead of the argmax — human imprecision.
	Noise float64
}

// GreedyPolicy clicks the best-looking group every time.
func GreedyPolicy() Policy { return Policy{Name: "greedy"} }

// NoisyPolicy clicks randomly with probability noise.
func NoisyPolicy(noise float64) Policy { return Policy{Name: "noisy", Noise: noise} }

// RandomPolicy ignores scores entirely (the random-walk strawman the
// paper's interactivity principles argue against).
func RandomPolicy() Policy { return Policy{Name: "random", Noise: 1} }

// choose applies the policy to scored candidates; ties break to the
// earliest (display order).
func (p Policy) choose(r *rng.RNG, shown []int, score func(gid int) float64) int {
	if len(shown) == 0 {
		return -1
	}
	if p.Noise > 0 && r.Bool(p.Noise) {
		return shown[r.Intn(len(shown))]
	}
	best, bestScore := shown[0], score(shown[0])
	for _, gid := range shown[1:] {
		if s := score(gid); s > bestScore {
			best, bestScore = gid, s
		}
	}
	return best
}

// MTTask is a multi-target task (Scenario 1): collect Quota users from
// Target into MEMO within MaxIterations exploration steps.
type MTTask struct {
	Target        *bitset.Set
	Quota         int
	MaxIterations int
	// MaxInspectPerStep caps how many members the explorer can
	// recognize and bookmark per visited group (0 = unlimited). Human
	// chairs read a bounded member table, not hundreds of profiles;
	// this is what makes committee formation take several iterations
	// rather than one lucky click.
	MaxInspectPerStep int
}

// MTResult reports one run.
type MTResult struct {
	Success    bool
	Iterations int
	Collected  int
	// CollectedTrace[i] is the collection size after step i.
	CollectedTrace []int
	// Actions is the run's trail in the shared action vocabulary —
	// replayable through the server, the CLI or Session.Load.
	Actions []action.Action
}

// RunMT simulates an expert-set formation session: at each step the
// explorer clicks the shown group containing the most not-yet-collected
// target users (subject to policy noise), then "recognizes" and
// bookmarks the target members of the clicked group — the paper's
// granular analysis step, where the chair inspects the group's member
// table and picks the wanted people.
func RunMT(sess *core.Session, task MTTask, policy Policy, r *rng.RNG) MTResult {
	res := MTResult{}
	eng := sess.Engine()
	space := eng.Space
	collected := bitset.New(task.Target.Len())

	as := action.Wrap(sess)
	_ = action.ApplyQuiet(as, action.Action{Op: action.Start})
	bookmark := func(gid int) {
		g := space.Group(gid)
		budget := task.MaxInspectPerStep
		g.Members.Range(func(u int) bool {
			if task.Target.Contains(u) && !collected.Contains(u) {
				collected.Add(u)
				_ = action.ApplyQuiet(as, action.Action{
					Op: action.BookmarkUser, User: eng.Data.Users[u].ID,
				})
				if budget > 0 {
					budget--
					if budget == 0 {
						return false
					}
				}
			}
			return true
		})
	}

	for it := 1; it <= task.MaxIterations; it++ {
		shown := sess.Shown()
		if len(shown) == 0 {
			break
		}
		pick := policy.choose(r, shown, func(gid int) float64 {
			g := space.Group(gid)
			return float64(g.Members.IntersectCount(task.Target)) -
				float64(g.Members.IntersectCount(collected))
		})
		if pick < 0 {
			break
		}
		if err := action.ApplyQuiet(as, action.Action{Op: action.Explore, Group: pick}); err != nil {
			break
		}
		bookmark(pick)
		res.Iterations = it
		res.CollectedTrace = append(res.CollectedTrace, collected.Count())
		if collected.Count() >= task.Quota {
			res.Success = true
			break
		}
	}
	res.Collected = collected.Count()
	res.Actions = as.Log
	return res
}

// STTask is a single-target task (Scenario 2): reach a satisfying
// group within MaxIterations steps. TargetGroup is the explorer's
// compass — the community she would ideally join — used both to score
// shown groups and, when Satisfied is nil, to test success (reaching a
// group at least MinSimilarity-similar to it). A non-nil Satisfied
// overrides the success test: the paper's book-club seeker is happy
// with *any* group she agrees with, not only the one closest overall.
type STTask struct {
	TargetGroup   int
	MinSimilarity float64
	MaxIterations int
	Satisfied     func(gid int) bool
}

// STResult reports one run.
type STResult struct {
	Success    bool
	Iterations int
	// BestSimilarity is the closest the explorer got to the target.
	BestSimilarity float64
	// Actions is the run's trail in the shared action vocabulary
	// (empty for the individual-browsing baseline, which never touches
	// a session).
	Actions []action.Action
}

// RunST simulates the book-club seeker: the explorer cannot name the
// target group but recognizes affinity when seeing a group's members
// and statistics, modeled as clicking the shown group most similar to
// the target (with policy noise). Success is reaching a group within
// MinSimilarity of the target.
func RunST(sess *core.Session, task STTask, policy Policy, r *rng.RNG) STResult {
	res := STResult{}
	space := sess.Engine().Space
	target := space.Group(task.TargetGroup)

	satisfied := task.Satisfied
	if satisfied == nil {
		satisfied = func(gid int) bool {
			return gid == task.TargetGroup ||
				space.Group(gid).Jaccard(target) >= task.MinSimilarity
		}
	}

	as := action.Wrap(sess)
	_ = action.ApplyQuiet(as, action.Action{Op: action.Start})
	for it := 1; it <= task.MaxIterations; it++ {
		shown := sess.Shown()
		if len(shown) == 0 {
			break
		}
		pick := policy.choose(r, shown, func(gid int) float64 {
			return space.Group(gid).Jaccard(target)
		})
		if pick < 0 {
			break
		}
		if sim := space.Group(pick).Jaccard(target); sim > res.BestSimilarity {
			res.BestSimilarity = sim
		}
		res.Iterations = it
		if satisfied(pick) {
			res.Success = true
			_ = action.ApplyQuiet(as, action.Action{Op: action.BookmarkGroup, Group: pick})
			break
		}
		if err := action.ApplyQuiet(as, action.Action{Op: action.Explore, Group: pick}); err != nil {
			break
		}
	}
	res.Actions = as.Log
	return res
}

// BrowseIndividuals is the E5 baseline: no groups, the seeker samples
// perIteration users per iteration and succeeds upon accumulating
// quota members of the target group — the "individuals" condition of
// the user study in [5], which the paper reports far lower
// satisfaction for.
func BrowseIndividuals(numUsers int, target *bitset.Set, quota, perIteration, maxIterations int, r *rng.RNG) STResult {
	res := STResult{}
	found := 0
	for it := 1; it <= maxIterations; it++ {
		res.Iterations = it
		for i := 0; i < perIteration; i++ {
			u := r.Intn(numUsers)
			if target.Contains(u) {
				found++
			}
		}
		if found >= quota {
			res.Success = true
			break
		}
	}
	if target.Count() > 0 {
		res.BestSimilarity = float64(found) / float64(target.Count())
	}
	return res
}
