package simulate

import (
	"sort"

	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/greedy"
	"vexus/internal/rng"
)

// Per-run generators derive through rng.Derive(seed, family|run): one
// stream family per batch kind, spaced apart in the high bits so run
// indices never overlap across kinds. The sequential batches here and
// the parallel ones in parallel.go MUST use identical derivations —
// the workers-1/2/8 equivalence suites pin parallel == sequential.
const (
	mtStream     uint64 = 1 << 40
	stStream     uint64 = 2 << 40
	browseStream uint64 = 3 << 40
)

// MTBatchResult aggregates many MT runs (one committee-formation
// campaign in E4).
type MTBatchResult struct {
	Runs           int
	SuccessRate    float64
	MeanIterations float64 // over successful runs
	MeanCollected  float64
}

// RunMTBatch runs the same task over `runs` seeds with fresh sessions.
func RunMTBatch(eng *core.Engine, cfg greedy.Config, task MTTask, policy Policy, runs int, seed uint64) MTBatchResult {
	res := MTBatchResult{Runs: runs}
	sumIter, sumColl, successes := 0, 0, 0
	for i := 0; i < runs; i++ {
		r := rng.Derive(seed, mtStream|uint64(i))
		sess := eng.NewSession(cfg)
		out := RunMT(sess, task, policy, r)
		sumColl += out.Collected
		if out.Success {
			successes++
			sumIter += out.Iterations
		}
	}
	if runs > 0 {
		res.SuccessRate = float64(successes) / float64(runs)
		res.MeanCollected = float64(sumColl) / float64(runs)
	}
	if successes > 0 {
		res.MeanIterations = float64(sumIter) / float64(successes)
	}
	return res
}

// STBatchResult aggregates many ST runs; SuccessRate is the
// satisfaction proxy of E5.
type STBatchResult struct {
	Runs           int
	SuccessRate    float64
	MeanIterations float64 // over successful runs
	MeanBestSim    float64
}

// RunSTBatch runs the same single-target task over `runs` seeds.
func RunSTBatch(eng *core.Engine, cfg greedy.Config, task STTask, policy Policy, runs int, seed uint64) STBatchResult {
	res := STBatchResult{Runs: runs}
	sumIter, successes := 0, 0
	sumSim := 0.0
	for i := 0; i < runs; i++ {
		r := rng.Derive(seed, stStream|uint64(i))
		sess := eng.NewSession(cfg)
		out := RunST(sess, task, policy, r)
		sumSim += out.BestSimilarity
		if out.Success {
			successes++
			sumIter += out.Iterations
		}
	}
	if runs > 0 {
		res.SuccessRate = float64(successes) / float64(runs)
		res.MeanBestSim = sumSim / float64(runs)
	}
	if successes > 0 {
		res.MeanIterations = float64(sumIter) / float64(successes)
	}
	return res
}

// RunBrowseBatch aggregates the individual-browsing baseline.
func RunBrowseBatch(numUsers int, target *bitset.Set, quota, perIteration, maxIterations, runs int, seed uint64) STBatchResult {
	res := STBatchResult{Runs: runs}
	sumIter, successes := 0, 0
	sumSim := 0.0
	for i := 0; i < runs; i++ {
		r := rng.Derive(seed, browseStream|uint64(i))
		out := BrowseIndividuals(numUsers, target, quota, perIteration, maxIterations, r)
		sumSim += out.BestSimilarity
		if out.Success {
			successes++
			sumIter += out.Iterations
		}
	}
	if runs > 0 {
		res.SuccessRate = float64(successes) / float64(runs)
		res.MeanBestSim = sumSim / float64(runs)
	}
	if successes > 0 {
		res.MeanIterations = float64(sumIter) / float64(successes)
	}
	return res
}

// CommitteeTarget builds an E4-style target set from a conference
// venue: authors who published at least minPubs times in the venue —
// "the kind of researcher the chair wants", geographically and
// demographically mixed by construction.
func CommitteeTarget(eng *core.Engine, venueItem string, minPubs, size int) *bitset.Set {
	d := eng.Data
	target := bitset.New(d.NumUsers())
	item := d.ItemIndex(venueItem)
	if item < 0 {
		return target
	}
	type uc struct{ u, c int }
	counts := make([]int, d.NumUsers())
	for _, a := range d.Actions {
		if a.Item == item {
			counts[a.User]++
		}
	}
	var all []uc
	for u, c := range counts {
		if c >= minPubs {
			all = append(all, uc{u, c})
		}
	}
	// Most-published first, deterministic ties (count desc, user asc —
	// a total order, since user ids are unique).
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].u < all[j].u
	})
	if size > len(all) {
		size = len(all)
	}
	for _, e := range all[:size] {
		target.Add(e.u)
	}
	return target
}
