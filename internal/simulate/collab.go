package simulate

import (
	"bytes"
	"encoding/json"
	"sort"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/rng"
)

// Collaborative exploration: N analysts share ONE session, the shape
// the server's SSE diff stream exists for. Each analyst here is a
// model of one attached client — they act through the shared
// dispatcher and maintain their local picture of the session purely by
// applying the Diff stream the dispatcher fans out, exactly as a
// browser applies `event: diff` frames. The run's verdict is the
// stream's core promise: after any interleaving of divergent analysts,
// every diff-tracked view renders byte-identically to the
// authoritative session state.

// CollabTask configures a collaborative run.
type CollabTask struct {
	// Analysts is how many explorers share the session (≥ 1).
	Analysts int
	// Turns is how many actions each analyst takes, round-robin.
	Turns int
	// Targets[i] is analyst i's compass group — deliberately different
	// targets pull the shared session in different directions, which is
	// what makes convergence non-trivial. len(Targets) == Analysts.
	Targets []int
}

// CollabResult reports one collaborative run.
type CollabResult struct {
	// Applied is how many actions were successfully applied in total
	// (including the opening Start).
	Applied int
	// Mutations is the session's final mutation counter; equals Applied,
	// and every view must have observed exactly this many diffs.
	Mutations uint64
	// Converged reports whether every analyst's diff-tracked view
	// rendered byte-identically to the authoritative state.
	Converged bool
	// Authoritative is the canonical rendering of the final session
	// state; Views[i] is analyst i's rendering from diffs alone.
	Authoritative []byte
	Views         [][]byte
	// Actions is the shared trail — one log, N authors — replayable
	// through any frontend like every other simulate trail.
	Actions []action.Action
}

// collabView is the state a diff-consuming client can maintain: the
// observable session surface, reconstructed from Diff deltas alone,
// never from the session itself.
type collabView struct {
	mutations uint64
	history   int
	focal     int
	shown     map[int]bool
	context   map[string]bool
	memoG     map[int]bool
	memoU     map[string]bool
	focus     *action.FocusState
	observed  int // diffs applied — must equal the mutation counter
}

func newCollabView() *collabView {
	return &collabView{
		focal:   -1,
		shown:   make(map[int]bool),
		context: make(map[string]bool),
		memoG:   make(map[int]bool),
		memoU:   make(map[string]bool),
	}
}

func (v *collabView) apply(d action.Diff) {
	for _, g := range d.ShownRemoved {
		delete(v.shown, g)
	}
	for _, g := range d.ShownAdded {
		v.shown[g] = true
	}
	for _, l := range d.ContextRemoved {
		delete(v.context, l)
	}
	for _, l := range d.ContextAdded {
		v.context[l] = true
	}
	for _, g := range d.MemoGroupsRemoved {
		delete(v.memoG, g)
	}
	for _, g := range d.MemoGroupsAdded {
		v.memoG[g] = true
	}
	for _, u := range d.MemoUsersRemoved {
		delete(v.memoU, u)
	}
	for _, u := range d.MemoUsersAdded {
		v.memoU[u] = true
	}
	v.focal = d.Focal
	v.history = d.HistorySteps
	v.focus = d.Focus
	v.mutations = d.Mutations
	v.observed++
}

// collabSnapshot is the canonical order-free rendering both sides are
// projected onto: sets sorted, so "byte-identical" means "same
// observable state", not "same iteration order".
type collabSnapshot struct {
	Mutations  uint64             `json:"mutations"`
	History    int                `json:"history"`
	Focal      int                `json:"focal"`
	Shown      []int              `json:"shown"`
	Context    []string           `json:"context"`
	MemoGroups []int              `json:"memoGroups"`
	MemoUsers  []string           `json:"memoUsers"`
	Focus      *action.FocusState `json:"focus,omitempty"`
}

func (v *collabView) render() []byte {
	snap := collabSnapshot{
		Mutations:  v.mutations,
		History:    v.history,
		Focal:      v.focal,
		Shown:      sortedInts(v.shown),
		Context:    sortedStrings(v.context),
		MemoGroups: sortedInts(v.memoG),
		MemoUsers:  sortedStrings(v.memoU),
		Focus:      v.focus,
	}
	out, _ := json.Marshal(snap)
	return out
}

// renderAuthoritative projects the live session onto the same canonical
// shape the views render — read from the session, not from diffs.
func renderAuthoritative(as *action.Session) []byte {
	sess := as.Sess
	ctx := sess.Context(action.ContextTop)
	labels := make([]string, len(ctx))
	for i, e := range ctx {
		labels[i] = e.Label
	}
	sort.Strings(labels)
	m := sess.Memo()
	shown := append([]int(nil), sess.Shown()...)
	sort.Ints(shown)
	memoG := append([]int(nil), m.Groups()...)
	sort.Ints(memoG)
	data := sess.Engine().Data
	memoU := make([]string, 0, len(m.Users()))
	for _, u := range m.Users() {
		memoU = append(memoU, data.Users[u].ID)
	}
	sort.Strings(memoU)
	snap := collabSnapshot{
		Mutations:  as.Mutations,
		History:    len(sess.History()),
		Focal:      sess.Focal(),
		Shown:      shown,
		Context:    labels,
		MemoGroups: memoG,
		MemoUsers:  memoU,
	}
	if as.Focus != nil {
		snap.Focus = &action.FocusState{Group: as.Focus.GroupID, Selected: as.Focus.SelectedCount()}
	}
	out, _ := json.Marshal(snap)
	return out
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func sortedStrings(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// RunCollaborative simulates task.Analysts explorers taking turns on
// one shared session. Turns are serialized — exactly how the server
// serializes concurrent clients under the session mutex — and every
// applied action's Diff fans out to every analyst's view through the
// same OnDiff hook the SSE hub subscribes. Each analyst steers toward
// their own target group (exploring the shown group most similar to
// it, bookmarking it when satisfied), so the shared trail interleaves
// genuinely conflicting intents.
func RunCollaborative(sess *core.Session, task CollabTask, policy Policy, r *rng.RNG) CollabResult {
	res := CollabResult{}
	if task.Analysts <= 0 || len(task.Targets) != task.Analysts {
		return res
	}
	space := sess.Engine().Space

	views := make([]*collabView, task.Analysts)
	for i := range views {
		views[i] = newCollabView()
	}

	as := action.Wrap(sess)
	as.OnDiff = func(r action.Result) {
		for _, v := range views {
			v.apply(r.Diff)
		}
	}
	apply := func(a action.Action) bool {
		if err := action.ApplyQuiet(as, a); err != nil {
			return false
		}
		res.Applied++
		return true
	}
	apply(action.Action{Op: action.Start})

	for turn := 0; turn < task.Turns; turn++ {
		for i := 0; i < task.Analysts; i++ {
			v := views[i]
			target := space.Group(task.Targets[i])
			shown := sortedInts(v.shown) // from the VIEW, not the session
			pick := policy.choose(r, shown, func(gid int) float64 {
				return space.Group(gid).Jaccard(target)
			})
			if pick < 0 {
				continue
			}
			// Satisfied analysts bookmark (a memo delta every view must
			// observe); unsatisfied ones keep exploring toward their goal.
			if pick == task.Targets[i] || space.Group(pick).Jaccard(target) >= 0.8 {
				if !v.memoG[pick] {
					apply(action.Action{Op: action.BookmarkGroup, Group: pick})
					continue
				}
			}
			apply(action.Action{Op: action.Explore, Group: pick})
		}
	}

	res.Mutations = as.Mutations
	res.Actions = as.Log
	res.Authoritative = renderAuthoritative(as)
	res.Views = make([][]byte, task.Analysts)
	res.Converged = true
	for i, v := range views {
		res.Views[i] = v.render()
		if !bytes.Equal(res.Views[i], res.Authoritative) || v.observed != int(as.Mutations) {
			res.Converged = false
		}
	}
	return res
}
