package loadsim

import (
	"vexus/internal/telemetry"
)

// Summary is the deterministic result of one Run: identical Configs
// (Workers excluded) marshal to byte-identical JSON at any worker
// count. Every field is accumulated in fixed sequential order; no
// wall-clock quantity appears.
type Summary struct {
	// Echoed configuration (Workers deliberately absent).
	Users  int    `json:"users"`
	Live   int    `json:"live"`
	Shards int    `json:"shards"`
	Ticks  int    `json:"ticks"`
	Seed   uint64 `json:"seed"`
	Chaos  string `json:"chaos"`

	// Workload volume.
	VirtualActions uint64            `json:"virtual_actions"`
	ActionsByOp    map[string]uint64 `json:"actions_by_op"`
	VirtualCreates int               `json:"virtual_creates"`
	LiveCreates    int               `json:"live_creates"`
	CreateRetries  int               `json:"create_retries"`

	// Modeled latency (merged across shards) and queue behavior.
	LatencyP50Ms   float64 `json:"latency_p50_ms"`
	LatencyP99Ms   float64 `json:"latency_p99_ms"`
	LatencyP999Ms  float64 `json:"latency_p999_ms"`
	QueueMeanDepth float64 `json:"queue_mean_depth"`
	QueueMaxDepth  float64 `json:"queue_max_depth"`

	// Availability and loss under chaos.
	Unavailable     int            `json:"unavailable"`
	UnavailableLive int            `json:"unavailable_live"`
	SessionsLost    int            `json:"sessions_lost"`
	LostByCause     map[string]int `json:"lost_by_cause"`
	BadBatches      int            `json:"bad_batches"`
	OtherErrors     int            `json:"other_errors"`

	// Fail-closed invariants: all zero on a correct cluster.
	MisroutedSessions int  `json:"misrouted_sessions"`
	EtagBreaks        int  `json:"etag_breaks"`
	EpochViolations   int  `json:"epoch_violations"`
	ChaosErrors       int  `json:"chaos_errors"`
	AuditFailures     int  `json:"audit_failures"`
	FailOpenSessions  int  `json:"fail_open_sessions"`
	RestartPreserved  bool `json:"restart_epoch_preserved"`

	// Chaos accounting.
	ChaosApplied   []string `json:"chaos_applied"`
	Restarts       int      `json:"restarts"`
	RestartLost    int      `json:"restart_lost"`
	DrainMoved     int      `json:"drain_moved"`
	DrainMovedLive int      `json:"drain_moved_live"`
	VirtualRehomed int      `json:"virtual_rehomed"`
	ReplayedMut    uint64   `json:"replayed_mutations"`

	// Server-side counters (telemetry scrape, sorted-shard order).
	EngineEvictions uint64 `json:"engine_evictions"`
	SessionsEvicted uint64 `json:"sessions_evicted"`

	// SSE delivery.
	SSEStarted    int            `json:"sse_started"`
	SSEFailed     int            `json:"sse_failed"`
	SSEDelivered  uint64         `json:"sse_events_delivered"`
	SSECloseCount map[string]int `json:"sse_closed_by_reason"`

	AuditedOK  int    `json:"audited_ok"`
	EpochFinal uint64 `json:"epoch_final"`
}

// summary assembles the Summary after the final audit. All folds run
// in sorted-shard or stream-creation order so float accumulation is
// reproducible.
func (h *harness) summary() *Summary {
	s := &Summary{
		Users:  h.cfg.Users,
		Live:   h.cfg.Live,
		Shards: h.cfg.Shards,
		Ticks:  h.cfg.Ticks,
		Seed:   h.cfg.Seed,
		Chaos:  h.cfg.Chaos,

		VirtualActions: h.virtualActions,
		ActionsByOp:    h.actionsByOp,
		VirtualCreates: h.virtualCreates,
		LiveCreates:    h.liveCreates,
		CreateRetries:  h.createRetries,

		Unavailable:     h.unavailable,
		UnavailableLive: h.unavailableLive,
		SessionsLost:    h.lost,
		LostByCause:     h.lostByCause,
		BadBatches:      h.badBatches,
		OtherErrors:     h.otherErrors,

		MisroutedSessions: h.misrouted,
		EtagBreaks:        h.etagBreaks,
		EpochViolations:   h.epochViolations,
		ChaosErrors:       h.chaosErrors,
		AuditFailures:     h.auditFailures,
		FailOpenSessions:  h.failOpenSessions,
		RestartPreserved:  h.restartEpochPreserved,

		ChaosApplied:   append([]string{}, h.chaosApplied...),
		Restarts:       h.restarts,
		RestartLost:    h.restartLost,
		DrainMoved:     h.drainMovedReal,
		DrainMovedLive: h.drainMovedLive,
		VirtualRehomed: h.virtualRehomed,
		ReplayedMut:    h.replayedMut,

		SSEStarted:    h.sseStarted,
		SSEFailed:     h.sseFailed,
		SSECloseCount: map[string]int{},

		AuditedOK:  h.auditedOK,
		EpochFinal: h.gw.Epoch(),
	}

	merged := telemetry.NewHistogramSnapshot(latencyBoundsMS)
	var depthSum float64
	var depthSamples int
	for _, name := range h.names {
		n := h.nodes[name]
		if m, err := telemetry.Merge(merged, n.lat); err == nil {
			merged = m
		}
		depthSum += n.depthSum
		depthSamples += n.depthSamples
		if n.maxDepth > s.QueueMaxDepth {
			s.QueueMaxDepth = n.maxDepth
		}
		s.EngineEvictions += h.shardCounter(n, "vexus_engine_evictions_total")
		s.SessionsEvicted += h.shardCounter(n, "vexus_sessions_evicted_total")
	}
	s.LatencyP50Ms = merged.Quantile(0.5)
	s.LatencyP99Ms = merged.Quantile(0.99)
	s.LatencyP999Ms = merged.Quantile(0.999)
	if depthSamples > 0 {
		s.QueueMeanDepth = depthSum / float64(depthSamples)
	}

	for _, st := range h.streams {
		_, events, reason, closed := st.snapshotState()
		s.SSEDelivered += events
		switch {
		case !closed:
			reason = "open"
		case reason == "":
			reason = "client closed" // harness cancel, no terminal frame
		}
		s.SSECloseCount[reason]++
	}
	return s
}
