package loadsim

import (
	"encoding/json"
	"testing"
)

// TestParseSchedule covers the schedule grammar and its error cases.
func TestParseSchedule(t *testing.T) {
	ops, err := ParseSchedule("15:kill:s1, 40:restart ,90:evict,45:partition:s2")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := []ChaosOp{
		{Tick: 15, Op: "kill", Target: "s1"},
		{Tick: 40, Op: "restart"},
		{Tick: 45, Op: "partition", Target: "s2"},
		{Tick: 90, Op: "evict"},
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op[%d] = %+v, want %+v", i, ops[i], want[i])
		}
	}
	for _, bad := range []string{"x:kill:s1", "5:explode:s1", "5:kill", "5:kill:s1:extra"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): expected error", bad)
		}
	}
}

// TestDefaultSchedule sanity-checks the generated schedule parses and
// stays inside the run.
func TestDefaultSchedule(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		ops, err := ParseSchedule(DefaultSchedule(shards, 100))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for _, op := range ops {
			if op.Tick < 1 || op.Tick >= 100 {
				t.Errorf("shards=%d: op %+v outside run", shards, op)
			}
		}
	}
}

func smallConfig(workers int) Config {
	return Config{
		Users:    400,
		Live:     24,
		Shards:   3,
		Ticks:    40,
		Workers:  workers,
		Seed:     7,
		Chaos:    "default",
		DatasetN: 160,
		SpareN:   80,
	}
}

// TestSummaryDeterministicAcrossWorkers is the determinism contract:
// the Summary marshals byte-identically at workers 1, 2 and 8, and the
// fail-closed invariants all hold through the full default chaos
// schedule (kill, restart, partition/heal, drain, evict).
func TestSummaryDeterministicAcrossWorkers(t *testing.T) {
	var base []byte
	for _, workers := range []int{1, 2, 8} {
		s, err := Run(smallConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("workers=%d: marshal: %v", workers, err)
		}
		if base == nil {
			base = enc
			assertFailClosed(t, s)
			if len(s.ChaosApplied) < 5 {
				t.Errorf("chaos schedule underapplied: %v", s.ChaosApplied)
			}
			if s.Restarts != 1 {
				t.Errorf("restarts = %d, want 1", s.Restarts)
			}
			if s.EngineEvictions == 0 {
				t.Errorf("expected engine evictions under the evict op")
			}
			if s.LostByCause[causeEviction] == 0 {
				t.Errorf("expected sessions lost to eviction")
			}
			if s.DrainMoved == 0 {
				t.Errorf("expected sessions moved by drain")
			}
			if s.SSEStarted == 0 || s.SSEDelivered == 0 {
				t.Errorf("expected SSE activity: started=%d delivered=%d", s.SSEStarted, s.SSEDelivered)
			}
			if s.LatencyP50Ms <= 0 || s.LatencyP99Ms < s.LatencyP50Ms {
				t.Errorf("latency quantiles unordered: p50=%v p99=%v", s.LatencyP50Ms, s.LatencyP99Ms)
			}
			continue
		}
		if string(enc) != string(base) {
			t.Errorf("workers=%d: summary differs from workers=1:\n%s\nvs\n%s", workers, enc, base)
		}
	}
}

func assertFailClosed(t *testing.T, s *Summary) {
	t.Helper()
	if s.MisroutedSessions != 0 {
		t.Errorf("misrouted sessions: %d", s.MisroutedSessions)
	}
	if s.EtagBreaks != 0 {
		t.Errorf("ETag continuity breaks: %d", s.EtagBreaks)
	}
	if s.EpochViolations != 0 {
		t.Errorf("epoch contract violations: %d", s.EpochViolations)
	}
	if s.ChaosErrors != 0 {
		t.Errorf("chaos errors: %d (%v)", s.ChaosErrors, s.ChaosApplied)
	}
	if s.AuditFailures != 0 {
		t.Errorf("final audit failures: %d", s.AuditFailures)
	}
	if s.FailOpenSessions != 0 {
		t.Errorf("fail-open ghost sessions: %d", s.FailOpenSessions)
	}
	if !s.RestartPreserved {
		t.Errorf("gateway restart did not preserve the epoch")
	}
	if s.BadBatches != 0 {
		t.Errorf("rejected action batches: %d", s.BadBatches)
	}
	if s.OtherErrors != 0 {
		t.Errorf("unexpected HTTP statuses: %d", s.OtherErrors)
	}
}

// TestChaosKillFailClosed is the CI smoke shape: a 2-shard cluster, a
// thousand analysts, one shard killed mid-trail. Survivors keep exact
// ETag continuity; sessions on the dead shard fail closed.
func TestChaosKillFailClosed(t *testing.T) {
	s, err := Run(Config{
		Users:    1000,
		Live:     32,
		Shards:   2,
		Ticks:    30,
		Seed:     11,
		Chaos:    "5:kill:s1",
		DatasetN: 160,
		SpareN:   80,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFailClosed(t, s)
	if s.SessionsLost == 0 {
		t.Errorf("killing a shard mid-trail should lose its sessions")
	}
	if s.LostByCause[causeFailure] == 0 {
		t.Errorf("losses should be attributed to failure, got %v", s.LostByCause)
	}
	if s.Unavailable == 0 && s.UnavailableLive == 0 {
		t.Errorf("expected an unavailability window before the detector fires")
	}
	if s.AuditedOK == 0 {
		t.Errorf("expected surviving sessions to audit clean")
	}
}

// TestFaultFreeRun: without chaos nothing is ever lost, unavailable,
// or closed server-side.
func TestFaultFreeRun(t *testing.T) {
	s, err := Run(Config{
		Users:    300,
		Live:     16,
		Shards:   2,
		Ticks:    25,
		Seed:     3,
		DatasetN: 160,
		SpareN:   80,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFailClosed(t, s)
	if s.SessionsLost != 0 {
		t.Errorf("fault-free run lost %d sessions (%v)", s.SessionsLost, s.LostByCause)
	}
	if s.Unavailable != 0 || s.UnavailableLive != 0 {
		t.Errorf("fault-free run saw unavailability: %d/%d", s.Unavailable, s.UnavailableLive)
	}
	if s.EngineEvictions != 0 {
		t.Errorf("fault-free run evicted engines: %d", s.EngineEvictions)
	}
	if s.LiveCreates != 16 {
		t.Errorf("live creates = %d, want 16", s.LiveCreates)
	}
}
