package loadsim

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ChaosOp is one scheduled fault: at virtual tick Tick, apply Op to
// Target (gateway-wide ops leave Target empty).
type ChaosOp struct {
	Tick   int
	Op     string
	Target string
}

// The fault vocabulary. kill closes a shard hard (server down, SSE
// severed, wire 503s); partition makes it unreachable but leaves it
// running until heal reconnects it; drain migrates its sessions off
// through the gateway; restart bounces the gateway against the durable
// route table; evict forces engine eviction on a shard by creating
// sessions on the spare dataset until the catalog LRU drops "main".
var chaosOps = map[string]bool{
	"kill":      true,
	"partition": true,
	"heal":      true,
	"drain":     true,
	"restart":   true,
	"evict":     true,
}

var targetlessOps = map[string]bool{
	"restart": true,
	"evict":   true,
}

// ParseSchedule parses "tick:op[:target]" comma-separated entries,
// e.g. "15:kill:s1,40:restart,90:evict". Entries are returned sorted
// by tick (stable for same-tick entries).
func ParseSchedule(s string) ([]ChaosOp, error) {
	var ops []ChaosOp
	for _, ent := range strings.Split(s, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.Split(ent, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("loadsim: bad chaos entry %q (want tick:op[:target])", ent)
		}
		tick, err := strconv.Atoi(parts[0])
		if err != nil || tick < 0 {
			return nil, fmt.Errorf("loadsim: bad chaos tick in %q", ent)
		}
		op := parts[1]
		if !chaosOps[op] {
			return nil, fmt.Errorf("loadsim: unknown chaos op %q in %q", op, ent)
		}
		var target string
		if len(parts) == 3 {
			target = parts[2]
		}
		if target == "" && !targetlessOps[op] {
			return nil, fmt.Errorf("loadsim: chaos op %q needs a target in %q", op, ent)
		}
		ops = append(ops, ChaosOp{Tick: tick, Op: op, Target: target})
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Tick < ops[j].Tick })
	return ops, nil
}

// DefaultSchedule lays one representative fault of each kind across the
// run, scaled to the cluster size: kill a shard early, bounce the
// gateway while the cluster is degraded, partition-and-heal another
// shard, drain a third, then force an engine eviction near the end.
// The restart lands before the partition so "zero sessions lost across
// restart" stays assertable.
func DefaultSchedule(shards, ticks int) string {
	at := func(f float64) int {
		t := int(f * float64(ticks))
		if t < 1 {
			t = 1
		}
		if t >= ticks {
			t = ticks - 1
		}
		return t
	}
	var ents []string
	if shards >= 2 {
		ents = append(ents, fmt.Sprintf("%d:kill:s1", at(0.15)))
	}
	ents = append(ents, fmt.Sprintf("%d:restart", at(0.35)))
	if shards >= 3 {
		ents = append(ents,
			fmt.Sprintf("%d:partition:s2", at(0.45)),
			fmt.Sprintf("%d:heal:s2", at(0.65)),
			fmt.Sprintf("%d:drain:s%d", at(0.80), shards-1),
		)
	}
	ents = append(ents, fmt.Sprintf("%d:evict", at(0.90)))
	return strings.Join(ents, ",")
}

// validateSchedule checks every targeted op names a shard that exists.
func (h *harness) validateSchedule() error {
	for _, op := range h.schedule {
		if op.Target == "" {
			continue
		}
		idx, err := strconv.Atoi(strings.TrimPrefix(op.Target, "s"))
		if err != nil || !strings.HasPrefix(op.Target, "s") || idx < 0 || idx >= h.cfg.Shards {
			return fmt.Errorf("loadsim: chaos target %q outside cluster s0..s%d", op.Target, h.cfg.Shards-1)
		}
	}
	return nil
}

func (h *harness) scheduleHas(op string) bool {
	for _, o := range h.schedule {
		if o.Op == op {
			return true
		}
	}
	return false
}

// applyChaos fires every scheduled op due at tick t. Streams are
// quiesced first so teardown frames never race in-flight diffs.
func (h *harness) applyChaos(t int) {
	for _, op := range h.schedule {
		if op.Tick != t {
			continue
		}
		h.quiesceStreams()
		if err := h.applyOp(op); err != nil {
			h.chaosErrors++
			h.chaosApplied = append(h.chaosApplied, fmt.Sprintf("tick %d: %s %s FAILED: %v", t, op.Op, op.Target, err))
			continue
		}
		h.chaosApplied = append(h.chaosApplied, strings.TrimSpace(fmt.Sprintf("tick %d: %s %s", t, op.Op, op.Target)))
	}
}

func (h *harness) applyOp(op ChaosOp) error {
	switch op.Op {
	case "kill":
		return h.killShard(op.Target)
	case "partition":
		return h.partitionShard(op.Target, true)
	case "heal":
		return h.partitionShard(op.Target, false)
	case "drain":
		return h.drainShard(op.Target)
	case "restart":
		return h.restartGateway()
	case "evict":
		return h.forceEvict()
	}
	return fmt.Errorf("loadsim: unknown chaos op %q", op.Op)
}

// killShard takes a shard down hard: the wire starts refusing (503)
// and the server closes, which tears every SSE stream on it down with
// reason "server closing". Sessions are NOT proactively lost here —
// analysts discover the loss through 503s and, once the failure
// detector marks the member down and drops its routes, 404s; that lag
// is part of what the run measures.
func (h *harness) killShard(name string) error {
	n := h.nodes[name]
	if n == nil || n.killed {
		return fmt.Errorf("loadsim: kill: no live shard %q", name)
	}
	n.killed = true
	n.chaos.setDead(true)
	n.srv.Close()
	return nil
}

// partitionShard cuts (or heals) the wire to a running shard. Analysts
// homed there pause while partitioned — the client-side backoff — and
// resume on heal with their sessions intact, which the ETag continuity
// checks then verify.
func (h *harness) partitionShard(name string, cut bool) error {
	n := h.nodes[name]
	if n == nil || n.killed || n.drained {
		return fmt.Errorf("loadsim: partition: no live shard %q", name)
	}
	if n.partitioned == cut {
		return fmt.Errorf("loadsim: partition: shard %q already in state", name)
	}
	n.partitioned = cut
	n.chaos.setDead(cut)
	for i := range h.users {
		u := &h.users[i]
		if u.alive && u.owner == name {
			u.paused = cut
		}
	}
	return nil
}

// drainShard migrates every session off a shard through the gateway
// and removes it from the ring. Live analysts keep their sid and state
// (migration replays the trail); virtual analysts re-home by
// rendezvous hash, paying the modeled replay cost.
func (h *harness) drainShard(name string) error {
	n := h.nodes[name]
	if n == nil || n.killed || n.partitioned || n.drained {
		return fmt.Errorf("loadsim: drain: shard %q not drainable", name)
	}
	for i := range h.users {
		u := &h.users[i]
		if u.alive && u.owner == name {
			h.replayedMut += u.mut
		}
	}
	moved, err := h.gw.Drain(name)
	if err != nil {
		return err
	}
	h.drainMovedReal += moved
	n.drained = true
	h.syncRing()
	for i := range h.users {
		u := &h.users[i]
		if !u.alive || u.owner != name {
			continue
		}
		if len(h.ringLst) == 0 {
			h.loseUser(u, causeFailure)
			continue
		}
		u.owner = ownerOf(h.ringLst, u.sid)
		if u.live {
			h.drainMovedLive++
			// Migration closes the old stream ("migrated"); reattach on
			// the new owner so delivery continues from the current state.
			if u.sse != nil {
				u.sse.stop()
				h.subscribe(u)
			}
		} else {
			h.virtualRehomed++
		}
	}
	return nil
}

// forceEvict makes the catalog's resident-engine cap (1 when an evict
// op is scheduled) evict the "main" engine on every routable shard by
// landing a spare-dataset session on each. Sessions on the evicted
// engine die server-side ("dataset evicted" on their streams); the
// harness loses those analysts immediately and the final audit proves
// the sids stay dead.
func (h *harness) forceEvict() error {
	h.syncRing()
	covered := make(map[string]bool)
	evicted := make(map[string]bool)
	attempts := 0
	for k := 0; len(covered) < len(h.ringLst) && attempts < 64*len(h.ringLst)+64; k++ {
		attempts++
		sid := fmt.Sprintf("spare.g%d.%d", h.evictRounds, k)
		owner := ownerOf(h.ringLst, sid)
		if covered[owner] || !h.shardAlive(owner) {
			covered[owner] = covered[owner] || !h.shardAlive(owner)
			continue
		}
		h.mintNext = sid
		res := h.gwc.do(http.MethodPost, "/api/v1/sessions?dataset=spare", nil, "")
		drainBody(res)
		if res.StatusCode == http.StatusCreated {
			covered[owner] = true
			evicted[owner] = true
		}
	}
	h.evictRounds++
	for i := range h.users {
		u := &h.users[i]
		if u.alive && evicted[u.owner] {
			h.loseUser(u, causeEviction)
		}
	}
	if len(evicted) == 0 {
		return fmt.Errorf("loadsim: evict: no shard evicted (%d attempts)", attempts)
	}
	return nil
}
