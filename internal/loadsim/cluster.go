package loadsim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"vexus/internal/cluster"
	"vexus/internal/membership"
	"vexus/internal/serve"
	"vexus/internal/telemetry"
)

// shardNode is one shard worker plus its harness-side model state: the
// chaos switch in front of its handler, the modeled arrival queue, and
// the latency histogram its virtual actions observe into.
type shardNode struct {
	name  string
	srv   *serve.Server
	chaos *chaosHandler
	telem *telemetry.Registry

	killed      bool
	partitioned bool
	drained     bool

	lat          telemetry.HistogramSnapshot
	queue        float64
	arrivals     int
	depthSum     float64
	depthSamples int
	maxDepth     float64
}

// chaosHandler is the fault switch in front of a shard handler.
// cluster.LocalShard's transport invokes handlers synchronously and
// can never produce a transport error, so unreachability is modeled
// the only way it can surface in-process: a 503 from the wire. Kill
// additionally closes the serve.Server underneath (severing SSE
// streams), which the switch here cannot do.
type chaosHandler struct {
	mu   sync.RWMutex
	h    http.Handler
	dead bool
}

func newChaosHandler(h http.Handler) *chaosHandler {
	return &chaosHandler{h: h}
}

func (c *chaosHandler) setDead(dead bool) {
	c.mu.Lock()
	c.dead = dead
	c.mu.Unlock()
}

func (c *chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	dead, h := c.dead, c.h
	c.mu.RUnlock()
	if dead {
		http.Error(w, "shard unreachable (chaos)", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// gwClient drives the gateway handler in-process. The handler slot is
// swappable (the restart chaos op installs the rebuilt gateway);
// streams opened against the old handler keep their goroutines.
type gwClient struct {
	mu sync.RWMutex
	h  http.Handler
}

func (c *gwClient) swap(h http.Handler) {
	c.mu.Lock()
	c.h = h
	c.mu.Unlock()
}

func (c *gwClient) handler() http.Handler {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.h
}

// do issues one buffered request (recorder-backed, like
// cluster.LocalShard's regular client).
func (c *gwClient) do(method, path string, body []byte, ctype string) *http.Response {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, "http://gateway"+path, rd)
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	rec := httptest.NewRecorder()
	c.handler().ServeHTTP(rec, req)
	res := rec.Result()
	res.Request = req
	return res
}

// stream opens a live request (the SSE diff stream): the handler runs
// on its own goroutine against a pipe and the response is readable the
// moment headers are committed — the in-process mirror of
// cluster.LocalShard's streaming client, for the gateway handler.
func (c *gwClient) stream(ctx context.Context, path string) *http.Response {
	req := httptest.NewRequest(http.MethodGet, "http://gateway"+path, nil).WithContext(ctx)
	pr, pw := io.Pipe()
	sw := &pipeRecorder{header: make(http.Header), pw: pw, ready: make(chan struct{})}
	h := c.handler()
	go func() {
		h.ServeHTTP(sw, req)
		sw.commit(http.StatusOK)
		pw.Close()
	}()
	<-sw.ready
	return &http.Response{
		StatusCode:    sw.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        sw.snapshot,
		Body:          pr,
		ContentLength: -1,
		Request:       req,
	}
}

// pipeRecorder is the streaming ResponseWriter behind gwClient.stream
// (same shape as the cluster package's stream recorder: headers are
// snapshotted inside the commit Once so reader and handler goroutines
// never share a mutable map; Flush is a no-op because pipe writes
// already rendezvous with the reader).
type pipeRecorder struct {
	header   http.Header
	pw       *io.PipeWriter
	once     sync.Once
	status   int
	snapshot http.Header
	ready    chan struct{}
}

func (s *pipeRecorder) Header() http.Header  { return s.header }
func (s *pipeRecorder) WriteHeader(code int) { s.commit(code) }
func (s *pipeRecorder) Flush()               {}

func (s *pipeRecorder) commit(code int) {
	s.once.Do(func() {
		s.status = code
		s.snapshot = s.header.Clone()
		close(s.ready)
	})
}

func (s *pipeRecorder) Write(p []byte) (int, error) {
	s.commit(http.StatusOK)
	return s.pw.Write(p)
}

// heartbeats announces every reachable shard to the gateway — the
// gossip round that keeps the failure detector fed. Killed and
// partitioned shards stay silent, which is exactly how the detector
// learns about them.
func (h *harness) heartbeats() {
	for _, name := range h.names {
		n := h.nodes[name]
		if n.killed || n.partitioned || n.drained {
			continue
		}
		body, err := json.Marshal(membership.Member{Name: name})
		if err != nil {
			continue
		}
		res := h.gwc.do(http.MethodPost, "/internal/cluster/heartbeat", body, "application/json")
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}
}

// sseStream is one live diff-stream subscription as the harness tracks
// it: the reader goroutine parses SSE frames off the pipe and records
// the last delivered event id, the delivered-event count and the
// terminal close reason.
type sseStream struct {
	mu     sync.Mutex
	lastID uint64
	events uint64
	reason string
	closed bool

	cancel context.CancelFunc
	done   chan struct{}
}

func (st *sseStream) snapshotState() (uint64, uint64, string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lastID, st.events, st.reason, st.closed
}

// stop cancels the stream context and waits (bounded) for the reader.
func (st *sseStream) stop() {
	if st.cancel != nil {
		st.cancel()
	}
	select {
	case <-st.done:
	case <-time.After(5 * time.Second):
	}
}

// subscribe attaches a real SSE subscription for a live user. The
// stream transport returns only after the shard has registered the
// subscriber and committed headers, so from the next action on, every
// diff is queued for this stream — which, with drop-proof queue
// sizing, makes delivered-event counts deterministic.
func (h *harness) subscribe(u *user) {
	ctx, cancel := context.WithCancel(context.Background())
	res := h.gwc.stream(ctx, "/api/v1/sessions/"+u.sid+"/events")
	if res.StatusCode != http.StatusOK {
		cancel()
		res.Body.Close()
		h.sseFailed++
		return
	}
	st := &sseStream{cancel: cancel, done: make(chan struct{})}
	u.sse = st
	h.streams = append(h.streams, st)
	h.sseStarted++
	go st.read(res.Body)
}

// read parses SSE frames until the stream ends. Only diff/resync
// frames move the cursor; the terminal closed frame records why the
// stream ended. Comment keepalives are skipped.
func (st *sseStream) read(body io.ReadCloser) {
	defer func() {
		body.Close()
		st.mu.Lock()
		st.closed = true
		st.mu.Unlock()
		close(st.done)
	}()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var id uint64
	var event string
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "diff", "resync":
				st.mu.Lock()
				st.lastID = id
				st.events++
				st.mu.Unlock()
			case "closed":
				var payload struct {
					Reason string `json:"reason"`
				}
				_ = json.Unmarshal([]byte(data), &payload)
				st.mu.Lock()
				st.reason = payload.Reason
				st.mu.Unlock()
				return
			}
			event, data = "", ""
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.ParseUint(line[len("id: "):], 10, 64); err == nil {
				id = n
			}
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		}
	}
}

// quiesceStreams waits (bounded wall time; never part of the Summary)
// until every open subscription has delivered through its user's
// current mutation counter. Chaos ops call it first, so a teardown's
// terminal frame never races queued diffs — the select between "queue"
// and "closed" in the serve handler is only nondeterministic when both
// are ready.
func (h *harness) quiesceStreams() {
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < h.cfg.Live; i++ {
		u := &h.users[i]
		if u.sse == nil || !u.alive {
			continue
		}
		for {
			lastID, _, _, closed := u.sse.snapshotState()
			if closed || lastID >= u.mut || time.Now().After(deadline) {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
}

// shardCounter scrapes one plain counter from a shard's private
// telemetry registry (works even for killed shards — the registry
// handler bypasses the chaos switch).
func (h *harness) shardCounter(n *shardNode, metric string) uint64 {
	rec := httptest.NewRecorder()
	n.telem.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "http://metrics/metrics", nil))
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, metric) {
			continue
		}
		rest := strings.TrimSpace(line[len(metric):])
		if rest == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if v, err := strconv.ParseFloat(rest, 64); err == nil {
			return uint64(v)
		}
	}
	return 0
}

// restartGateway tears the gateway down and rebuilds it against the
// durable route table — the "gateway restart" chaos op. The epoch must
// survive (SeedStatic skips already-rostered members), and every
// session whose residency matches its rendezvous home must keep
// resolving; sessions that only a lost route entry could find are
// gone, counted, and fail closed.
func (h *harness) restartGateway() error {
	prevEpoch := h.gw.Epoch()
	h.gw.Close()
	gw, err := h.newGateway()
	if err != nil {
		return err
	}
	h.gw = gw
	h.gwc.swap(gw.Routes())
	h.restarts++
	if gw.Epoch() != prevEpoch {
		h.restartEpochPreserved = false
	}
	h.syncRing()

	for i := range h.users {
		u := &h.users[i]
		if !u.alive || u.paused {
			continue
		}
		if u.live {
			res := h.gwc.do(http.MethodGet, "/api/v1/sessions/"+u.sid+"/state", nil, "")
			sidHdr, m := parseETag(res.Header.Get("ETag"))
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			switch {
			case res.StatusCode == http.StatusOK && sidHdr == u.sid:
				if m != u.mut {
					h.etagBreaks++
				}
			case res.StatusCode == http.StatusNotFound:
				h.restartLost++
				h.loseUser(u, causeFailure)
			default:
				h.otherErrors++
			}
			continue
		}
		if owner := ownerOf(h.ringLst, u.sid); owner != u.owner {
			// The rebuilt gateway would re-home this sid by hash; the
			// session lives elsewhere, so its next request reads 404.
			h.restartLost++
			h.loseUser(u, causeFailure)
		}
	}
	return nil
}

func ownerOf(ring []string, sid string) string {
	return cluster.Owner(ring, sid)
}

// drainBody discards and closes a buffered response body.
func drainBody(res *http.Response) {
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
}
