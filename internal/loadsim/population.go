package loadsim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"vexus/internal/action"
	"vexus/internal/cluster"
	"vexus/internal/rng"
)

// user is one simulated analyst: their derived rng stream, Zipf-rank
// arrival rate, and session state. Live users (the first Config.Live
// indices) carry real sessions; the rest are modeled.
type user struct {
	idx  int
	r    *rng.RNG
	rate float64
	live bool

	alive         bool
	pendingCreate bool
	paused        bool // owner partitioned: the analyst backs off until heal
	sid           string
	owner         string
	gen           int
	mut           uint64

	// Live-only view state, parsed from ?full=1 responses.
	shown   []int
	histLen int
	sse     *sseStream
}

// turn is one user's slot for the current tick, written exclusively by
// that user's phase-A worker and consumed by sequential phase B.
type turn struct {
	due bool
	op  int

	// Live HTTP exchange result.
	did         bool
	status      int
	batchLen    int
	respSession string
	etagSID     string
	etagMut     uint64
	shown       []int
	histLen     int
}

// The behavior mix: explore dominates, with backtracking and
// focus+brush dips (the brush rides in the same batch as its focus,
// since a brush is only valid against an open focus view).
const (
	opExplore = iota
	opBacktrack
	opFocusBrush
)

var (
	opWeights = []float64{0.55, 0.15, 0.30}
	opNames   = []string{"explore", "backtrack", "focusBrush"}
	opCosts   = []int{1, 1, 2} // mutations per batch, for modeled replay cost
)

// liveState is the slice of the serve stateDTO the driver reads.
type liveState struct {
	Session string `json:"session"`
	Shown   []struct {
		ID int `json:"id"`
	} `json:"shown"`
	History []struct {
		Step int `json:"step"`
	} `json:"history"`
}

// liveAction builds and POSTs one action batch for a due live user,
// recording the exchange in the turn slot. Runs on a phase-A worker:
// it mutates only u.r (operand draws) and the slot.
func (h *harness) liveAction(u *user, tn *turn) {
	op := tn.op
	if op != opBacktrack && len(u.shown) == 0 {
		op = opBacktrack
	}
	var acts []action.Action
	switch op {
	case opExplore:
		acts = []action.Action{{Op: action.Explore, Group: u.shown[u.r.Intn(len(u.shown))]}}
	case opBacktrack:
		step := 0
		if u.histLen > 1 {
			step = u.r.Intn(u.histLen)
		}
		acts = []action.Action{{Op: action.Backtrack, Step: step}}
	case opFocusBrush:
		g := u.shown[u.r.Intn(len(u.shown))]
		acts = []action.Action{
			{Op: action.Focus, Group: g},
			{Op: action.Brush, Attr: "gender"},
		}
	}
	tn.op = op
	tn.batchLen = len(acts)
	body, err := json.Marshal(acts)
	if err != nil {
		return
	}
	res := h.gwc.do(http.MethodPost, "/api/v1/sessions/"+u.sid+"/actions?full=1", body, "application/json")
	tn.did = true
	tn.status = res.StatusCode
	if res.StatusCode == http.StatusOK {
		var st liveState
		if err := json.NewDecoder(res.Body).Decode(&st); err == nil {
			tn.respSession = st.Session
			tn.shown = shownIDs(st)
			tn.histLen = len(st.History)
		}
		tn.etagSID, tn.etagMut = parseETag(res.Header.Get("ETag"))
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
}

func shownIDs(st liveState) []int {
	ids := make([]int, len(st.Shown))
	for i, g := range st.Shown {
		ids[i] = g.ID
	}
	return ids
}

// parseETag splits the `"<sid>.<mutations>"` validator.
func parseETag(etag string) (string, uint64) {
	etag = strings.Trim(strings.TrimPrefix(etag, "W/"), `"`)
	dot := strings.LastIndexByte(etag, '.')
	if dot < 0 {
		return etag, 0
	}
	m, err := strconv.ParseUint(etag[dot+1:], 10, 64)
	if err != nil {
		return etag, 0
	}
	return etag[:dot], m
}

// applyLiveResult folds a live exchange into the user's state and the
// fail-closed counters. Sequential (phase B).
func (h *harness) applyLiveResult(u *user, tn *turn) {
	switch {
	case tn.status == http.StatusOK:
		if tn.respSession != u.sid || tn.etagSID != u.sid {
			h.misrouted++
			return
		}
		if tn.etagMut != u.mut+uint64(tn.batchLen) {
			h.etagBreaks++
		}
		u.mut = tn.etagMut
		u.shown = tn.shown
		u.histLen = tn.histLen
	case tn.status == http.StatusNotFound:
		// The shard no longer holds the session. If its owner is up and
		// routable, the session itself was torn down (dataset eviction);
		// otherwise the route re-homed off a dead member.
		cause := causeFailure
		if h.ring[u.owner] && h.shardAlive(u.owner) {
			cause = causeEviction
		}
		h.loseUser(u, cause)
	case tn.status == http.StatusServiceUnavailable || tn.status == http.StatusBadGateway:
		h.unavailableLive++ // fail closed: retry against the same sid later
	case tn.status == http.StatusBadRequest:
		h.badBatches++
	default:
		h.otherErrors++
	}
}

// createUser opens a session for an analyst without one. Live users go
// through the real gateway create (harness-minted sid, so rendezvous
// placement is reproducible); virtual users mirror exactly what that
// create would do — including failing when the rendezvous owner is
// unreachable. Sequential (phase B and chaos ops only), which is what
// makes the single mintNext slot safe.
func (h *harness) createUser(u *user) {
	u.gen++
	if !u.live {
		sid := fmt.Sprintf("v%07d.g%d", u.idx, u.gen)
		owner := cluster.Owner(h.ringLst, sid)
		if !h.shardAlive(owner) {
			h.createRetries++
			return
		}
		u.sid, u.owner = sid, owner
		u.alive, u.pendingCreate = true, false
		u.mut = 1 // the initial display is mutation #1
		h.virtualCreates++
		return
	}
	sid := fmt.Sprintf("u%06d.g%d", u.idx, u.gen)
	h.mintNext = sid
	res := h.gwc.do(http.MethodPost, "/api/v1/sessions", nil, "")
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		io.Copy(io.Discard, res.Body)
		h.createRetries++
		return
	}
	var st liveState
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil || st.Session != sid {
		h.misrouted++
		return
	}
	_, m := parseETag(res.Header.Get("ETag"))
	u.sid = sid
	u.owner = cluster.Owner(h.ringLst, sid)
	u.alive, u.pendingCreate = true, false
	u.mut = m
	u.shown = shownIDs(st)
	u.histLen = len(st.History)
	h.liveCreates++
	if h.cfg.SSEEvery > 0 && u.idx%h.cfg.SSEEvery == 0 {
		h.subscribe(u)
	}
}

// finalAudit closes the run with the fail-closed sweep: every live
// analyst's surviving session must be exactly where the harness thinks
// it is (200 under the exact ETag), and every sid ever lost must stay
// dead — a 200 there would be a fail-open ghost.
func (h *harness) finalAudit() {
	h.quiesceStreams()
	for i := 0; i < h.cfg.Live; i++ {
		u := &h.users[i]
		if !u.alive || u.paused || u.sid == "" {
			continue
		}
		res := h.gwc.do(http.MethodGet, "/api/v1/sessions/"+u.sid+"/state", nil, "")
		sidHdr, m := parseETag(res.Header.Get("ETag"))
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if !h.shardAlive(u.owner) {
			// The analyst's owner died and they never acted again, so the
			// harness never observed the loss. The session is gone; the
			// fail-closed expectation is anything but a 200.
			if res.StatusCode == http.StatusOK {
				h.failOpenSessions++
			} else {
				h.auditedOK++
				h.loseUser(u, causeFailure)
			}
			continue
		}
		if res.StatusCode == http.StatusOK && sidHdr == u.sid && m == u.mut {
			h.auditedOK++
		} else {
			h.auditFailures++
		}
	}
	for _, sid := range h.deadSids {
		res := h.gwc.do(http.MethodGet, "/api/v1/sessions/"+sid+"/state", nil, "")
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode == http.StatusOK {
			h.failOpenSessions++
		} else {
			h.auditedOK++
		}
	}
	for _, st := range h.streams {
		st.stop()
	}
}
