// Package loadsim is the cluster-scale workload and fault-injection
// harness: a deterministic synthetic population of analysts driving a
// multi-shard in-process cluster (gateway + cluster.LocalShard
// workers) through the v1 action API and the SSE diff stream, under a
// tick-based latency/queue model and a scripted chaos schedule.
//
// The population is two-layered. Every simulated analyst lives in the
// virtual layer: a per-user rng.Derive stream decides, tick by tick,
// whether the analyst acts and which operation they pick
// (explore/backtrack/focus+brush), and each act becomes an arrival in
// the owning shard's queue model, which prices it with a latency the
// per-shard histograms record. The first Config.Live analysts are
// additionally *live*: they create real sessions through the gateway,
// POST real action batches (?full=1), and a deterministic subset holds
// real SSE subscriptions — so routing, migration, ETag continuity and
// stream teardown are exercised against the real stack while the
// population provides cluster-scale load shape.
//
// Determinism contract: with the same Config (Workers excluded), the
// Summary is bit-identical at any worker count. Everything the Summary
// reports is derived from per-user rng streams drawn in slot-written
// parallel.ForEach phases and accumulated in a fixed sequential order;
// wall-clock time never enters it. The cluster runs on an injected
// virtual clock (one tick = one virtual second), the gateway sweeps
// membership only when told (GatewayConfig.ManualSweep), session ids
// are minted by the harness, and SSE queues are sized so no subscriber
// is ever dropped to a resync by backpressure.
package loadsim

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"vexus/internal/cluster"
	"vexus/internal/greedy"
	"vexus/internal/parallel"
	"vexus/internal/rng"
	"vexus/internal/serve"
	"vexus/internal/telemetry"
)

// loadsimUserStream is the rng.Derive stream family base for per-user
// streams — disjoint from the internal/simulate families (1..3 << 40).
const loadsimUserStream uint64 = 9 << 40

// Config parameterizes one load/chaos run. The zero value is not
// runnable; Run applies the documented defaults to zero fields.
type Config struct {
	// Users is the population size (default 10_000). User index 0 is
	// the hottest analyst (Zipf-style rank-frequency arrival rates).
	Users int
	// Live is how many of the first Users indices drive real sessions
	// through the gateway (default 64, capped at Users).
	Live int
	// Shards is the cluster size (default 3); shards are named
	// "s0".."s<n-1>".
	Shards int
	// Ticks is the virtual duration (default 120; one tick = 1s).
	Ticks int
	// Workers is the parallel.ForEach worker count for the per-tick
	// population phase (0 = NumCPU). Not part of the Summary: results
	// are bit-identical at any worker count.
	Workers int
	// Seed is the master seed; per-user streams derive from it.
	Seed uint64
	// ZipfS is the rank-frequency exponent of arrival rates (default
	// 1.1); PeakRate/MinRate clamp the per-tick act probability
	// (defaults 0.9 / 0.01).
	ZipfS    float64
	PeakRate float64
	MinRate  float64
	// BaseLatencyMS is the queue model's zero-load latency (default 2).
	BaseLatencyMS float64
	// ServiceRate is each shard's modeled service capacity in
	// actions/tick (0 = auto: 1.4x the expected per-shard arrival
	// rate, i.e. ~70% utilization before chaos shrinks the cluster).
	ServiceRate float64
	// SuspectTicks / DownTicks tune failure detection in virtual
	// seconds (defaults 3 / 6).
	SuspectTicks int
	DownTicks    int
	// Chaos is the fault schedule: "tick:op[:target]" comma-separated
	// (see ParseSchedule), "default" for DefaultSchedule(Shards,
	// Ticks), "" for a fault-free run.
	Chaos string
	// DatasetN / SpareN size the main and spare synthetic datasets
	// (defaults 240 / 96). The spare exists so the evict chaos op can
	// force the catalog's resident-engine LRU to evict the main engine
	// under live sessions.
	DatasetN int
	SpareN   int
	// SSEEvery subscribes every k-th live user to the diff stream
	// (default 4; 0 disables subscriptions).
	SSEEvery int
	// Logger receives cluster/serve logs (nil = discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 10_000
	}
	if c.Live <= 0 {
		c.Live = 64
	}
	if c.Live > c.Users {
		c.Live = c.Users
	}
	if c.Shards <= 0 {
		c.Shards = 3
	}
	if c.Ticks <= 0 {
		c.Ticks = 120
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.PeakRate == 0 {
		c.PeakRate = 0.9
	}
	if c.MinRate == 0 {
		c.MinRate = 0.01
	}
	if c.BaseLatencyMS == 0 {
		c.BaseLatencyMS = 2
	}
	if c.SuspectTicks <= 0 {
		c.SuspectTicks = 3
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 6
	}
	if c.DatasetN <= 0 {
		c.DatasetN = 240
	}
	if c.SpareN <= 0 {
		c.SpareN = 96
	}
	if c.SSEEvery < 0 {
		c.SSEEvery = 0
	} else if c.SSEEvery == 0 {
		c.SSEEvery = 4
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	return c
}

// vclock is the virtual time source the whole cluster runs on: a fixed
// base instant advanced one second per tick. Atomic because phase-A
// workers and SSE goroutines may read it while the tick loop advances.
type vclock struct {
	base time.Time
	tick atomic.Int64
}

func newVclock() *vclock {
	return &vclock{base: time.Unix(1_700_000_000, 0).UTC()}
}

func (c *vclock) now() time.Time {
	return c.base.Add(time.Duration(c.tick.Load()) * time.Second)
}

// latencyBoundsMS is the modeled-latency histogram layout (ms). Shared
// by every shard so telemetry.Merge can fold them.
var latencyBoundsMS = []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10_000}

// Run executes one load/chaos simulation and returns its Summary.
func Run(cfg Config) (*Summary, error) {
	cfg = cfg.withDefaults()
	var schedule []ChaosOp
	var err error
	switch cfg.Chaos {
	case "":
	case "default":
		schedule, err = ParseSchedule(DefaultSchedule(cfg.Shards, cfg.Ticks))
	default:
		schedule, err = ParseSchedule(cfg.Chaos)
	}
	if err != nil {
		return nil, err
	}
	h, err := newHarness(cfg, schedule)
	if err != nil {
		return nil, err
	}
	defer h.teardown()

	for t := 0; t < cfg.Ticks; t++ {
		h.clock.tick.Store(int64(t))
		h.applyChaos(t)
		h.heartbeats()
		h.gw.SweepMembership()
		h.syncRing()
		h.checkEpoch()
		h.phaseA()
		h.phaseB()
	}
	h.finalAudit()
	return h.summary(), nil
}

// harness holds the cluster under test plus every accumulator the
// Summary is assembled from. All mutation outside phase A happens on
// the tick loop goroutine, in fixed order.
type harness struct {
	cfg      Config
	clock    *vclock
	schedule []ChaosOp
	tmpDir   string

	nodes map[string]*shardNode
	names []string // every shard ever created, sorted
	gwc   *gwClient
	gw    *cluster.Gateway

	// mintNext is the sid handed to GatewayConfig.MintSID; creates are
	// driven sequentially from phase B and chaos ops only.
	mintNext string

	ring    map[string]bool // routable set, synced from gw.Shards()
	ringLst []string
	tick    int

	prevEpoch    uint64
	prevRoster   []string
	prevRoutable []string

	users    []user
	slots    []turn
	streams  []*sseStream
	deadSids []string

	svcRate float64 // modeled per-shard service rate, actions/tick

	// Accumulators (phase B + chaos + audit; sequential order only).
	virtualActions  uint64
	actionsByOp     map[string]uint64
	virtualCreates  int
	liveCreates     int
	createRetries   int
	unavailable     int
	unavailableLive int
	lost            int
	lostByCause     map[string]int
	badBatches      int
	otherErrors     int

	misrouted       int
	etagBreaks      int
	epochViolations int
	chaosErrors     int
	chaosApplied    []string
	evictRounds     int

	restarts              int
	restartEpochPreserved bool
	restartLost           int

	drainMovedReal   int
	drainMovedLive   int
	virtualRehomed   int
	replayedMut      uint64
	sseStarted       int
	sseFailed        int
	auditedOK        int
	auditFailures    int
	failOpenSessions int
}

const (
	causeFailure  = "failure"
	causeEviction = "eviction"
)

func newHarness(cfg Config, schedule []ChaosOp) (*harness, error) {
	h := &harness{
		cfg:                   cfg,
		clock:                 newVclock(),
		schedule:              schedule,
		nodes:                 make(map[string]*shardNode, cfg.Shards),
		gwc:                   &gwClient{},
		ring:                  make(map[string]bool),
		actionsByOp:           map[string]uint64{"explore": 0, "backtrack": 0, "focusBrush": 0},
		lostByCause:           map[string]int{causeFailure: 0, causeEviction: 0},
		restartEpochPreserved: true,
	}
	if err := h.validateSchedule(); err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp("", "loadsim-*")
	if err != nil {
		return nil, err
	}
	h.tmpDir = tmp

	for i := 0; i < cfg.Shards; i++ {
		name := fmt.Sprintf("s%d", i)
		node, err := h.newShard(name)
		if err != nil {
			h.teardown()
			return nil, err
		}
		h.nodes[name] = node
		h.names = append(h.names, name)
	}
	gw, err := h.newGateway()
	if err != nil {
		h.teardown()
		return nil, err
	}
	h.gw = gw
	h.gwc.swap(gw.Routes())
	h.syncRing()
	h.prevEpoch, h.prevRoster, h.prevRoutable = h.topologySnapshot()

	h.initPopulation()
	return h, nil
}

// initPopulation derives every analyst's rng stream and arrival rate,
// and sizes the queue model off the expected aggregate load.
func (h *harness) initPopulation() {
	cfg := h.cfg
	h.users = make([]user, cfg.Users)
	h.slots = make([]turn, cfg.Users)
	total := 0.0
	for i := range h.users {
		u := &h.users[i]
		u.idx = i
		u.r = rng.Derive(cfg.Seed, loadsimUserStream|uint64(i))
		rate := cfg.PeakRate / powf(float64(i+1), cfg.ZipfS)
		if rate < cfg.MinRate {
			rate = cfg.MinRate
		}
		u.rate = rate
		u.live = i < cfg.Live
		u.pendingCreate = true
		total += rate
	}
	h.svcRate = cfg.ServiceRate
	if h.svcRate <= 0 {
		h.svcRate = 1.4 * total / float64(cfg.Shards)
		if h.svcRate < 1 {
			h.svcRate = 1
		}
	}
}

// powf is x^y for the rank-frequency curve; one call site keeps the
// float determinism surface auditable (math.Pow is deterministic for
// these finite positive inputs).
func powf(x, y float64) float64 {
	return math.Pow(x, y)
}

// newShard builds one serve.Server shard wrapped in its chaos handler.
func (h *harness) newShard(name string) (*shardNode, error) {
	cfg := h.cfg
	scfg := serve.DefaultConfig()
	scfg.ShardAPI = true
	scfg.SessionTTL = 0 // no TTL sweeper goroutine: recency is virtual-clocked
	scfg.MaxSessions = 0
	scfg.StreamQueue = 4*cfg.Ticks + 64 // never drop a subscriber to resync
	scfg.StreamReplay = 64
	scfg.Logger = cfg.Logger
	scfg.Clock = h.clock.now
	reg := telemetry.NewRegistry()
	scfg.Telemetry = reg

	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 0 // determinism precondition (replay/migration fidelity)

	specs := map[string]serve.DatasetSpec{
		"main":  {Dataset: "dbauthors", N: cfg.DatasetN, Seed: 7},
		"spare": {Dataset: "dbauthors", N: cfg.SpareN, Seed: 11},
	}
	maxResident := 0
	if h.scheduleHas("evict") {
		maxResident = 1
	}
	cat, err := serve.NewCatalog("", specs, "main", gcfg, scfg, cfg.Workers, maxResident)
	if err != nil {
		return nil, err
	}
	srv := serve.NewCatalogServer(cat)
	return &shardNode{
		name:  name,
		srv:   srv,
		chaos: newChaosHandler(srv.Routes()),
		telem: reg,
		lat:   telemetry.NewHistogramSnapshot(latencyBoundsMS),
	}, nil
}

// newGateway assembles (or re-assembles, for the restart op) the
// gateway over every non-drained shard's chaos handler, against the
// durable route table in the harness temp dir.
func (h *harness) newGateway() (*cluster.Gateway, error) {
	var statics []*cluster.Shard
	for _, name := range h.names {
		n := h.nodes[name]
		if n.drained {
			continue
		}
		statics = append(statics, cluster.LocalShard(name, n.chaos))
	}
	return cluster.NewGatewayConfig(cluster.GatewayConfig{
		Logger:       h.cfg.Logger,
		RoutesPath:   filepath.Join(h.tmpDir, "routes.json"),
		SuspectAfter: time.Duration(h.cfg.SuspectTicks) * time.Second,
		DownAfter:    time.Duration(h.cfg.DownTicks) * time.Second,
		Clock:        h.clock.now,
		MintSID:      func() string { return h.mintNext },
		ManualSweep:  true,
		Dial: func(name, _ string) *cluster.Shard {
			if n := h.nodes[name]; n != nil && !n.drained {
				return cluster.LocalShard(name, n.chaos)
			}
			return nil
		},
	}, statics...)
}

// syncRing mirrors the gateway's routable shard set into the harness.
func (h *harness) syncRing() {
	h.ringLst = h.gw.Shards()
	for k := range h.ring {
		delete(h.ring, k)
	}
	for _, n := range h.ringLst {
		h.ring[n] = true
	}
}

func (h *harness) shardAlive(name string) bool {
	n := h.nodes[name]
	return n != nil && !n.killed && !n.partitioned && !n.drained
}

// topologySnapshot reads (epoch, roster names, routable names) from the
// membership directory, both lists sorted.
func (h *harness) topologySnapshot() (uint64, []string, []string) {
	ms := h.gw.Members()
	roster := make([]string, 0, len(ms))
	routable := make([]string, 0, len(ms))
	for _, m := range ms {
		roster = append(roster, m.Name)
		if m.State != "down" {
			routable = append(routable, m.Name)
		}
	}
	return h.gw.Epoch(), roster, routable
}

// checkEpoch enforces the membership contract: the epoch advances on
// every routing-set (or roster) change and ONLY then. Violations in
// either direction are counted; a correct cluster reports zero.
func (h *harness) checkEpoch() {
	epoch, roster, routable := h.topologySnapshot()
	rosterSame := equalStrings(roster, h.prevRoster)
	routableSame := equalStrings(routable, h.prevRoutable)
	if epoch != h.prevEpoch && rosterSame && routableSame {
		h.epochViolations++ // bump without any topology change
	}
	if epoch == h.prevEpoch && (!rosterSame || !routableSame) {
		h.epochViolations++ // topology change without a bump
	}
	h.prevEpoch, h.prevRoster, h.prevRoutable = epoch, roster, routable
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// teardown releases the cluster (idempotent; safe on a half-built
// harness).
func (h *harness) teardown() {
	for _, st := range h.streams {
		st.stop()
	}
	if h.gw != nil {
		h.gw.Close()
	}
	for _, n := range h.nodes {
		if n.srv != nil {
			n.srv.Close()
		}
	}
	if h.tmpDir != "" {
		os.RemoveAll(h.tmpDir)
	}
}

// phaseA draws every analyst's tick in parallel: one due draw per user
// per tick, operand draws and the real HTTP exchange for due live
// users. Workers write only their own slot (h.slots[i]) and their own
// user's rng; all shared state (gateway, shards) is internally locked
// and order-independent. No Summary accumulator moves here.
func (h *harness) phaseA() {
	parallel.ForEach(len(h.users), h.cfg.Workers, func(_, i int) {
		u := &h.users[i]
		tn := &h.slots[i]
		*tn = turn{}
		if u.r.Float64() >= u.rate {
			return
		}
		tn.due = true
		tn.op = u.r.WeightedChoice(opWeights)
		if !u.live || !u.alive || u.paused {
			return
		}
		h.liveAction(u, tn)
	})
}

// phaseB folds the tick's slots into harness state sequentially in
// user-index order: queue-model arrivals and latencies, live-result
// bookkeeping (ETag continuity, misroute and loss detection), then
// session (re)creation. Queue depths drain per shard afterwards.
func (h *harness) phaseB() {
	for i := range h.users {
		u := &h.users[i]
		tn := &h.slots[i]
		if tn.due && u.alive && !u.paused {
			owner := u.owner
			switch {
			case h.ring[owner] && h.shardAlive(owner):
				n := h.nodes[owner]
				pos := n.queue + float64(n.arrivals)
				n.lat.Observe(h.cfg.BaseLatencyMS + (pos+1)*1000.0/h.svcRate)
				n.arrivals++
				h.virtualActions++
				h.actionsByOp[opNames[tn.op]]++
				if !u.live {
					u.mut += uint64(opCosts[tn.op])
				}
			case h.ring[owner]:
				h.unavailable++ // routable but unreachable: the 502/503 window
			default:
				if !u.live {
					h.loseUser(u, causeFailure) // re-homed by hash, session gone
				}
			}
		}
		if tn.did {
			h.applyLiveResult(u, tn)
		}
		if u.pendingCreate && !u.paused && len(h.ringLst) > 0 {
			h.createUser(u)
		}
	}
	for _, name := range h.names {
		n := h.nodes[name]
		if !h.ring[name] || !h.shardAlive(name) {
			n.queue = 0
			n.arrivals = 0
			continue
		}
		n.queue += float64(n.arrivals) - h.svcRate
		if n.queue < 0 {
			n.queue = 0
		}
		n.arrivals = 0
		n.depthSum += n.queue
		n.depthSamples++
		if n.queue > n.maxDepth {
			n.maxDepth = n.queue
		}
	}
}

// loseUser marks a session lost fail-closed: the analyst will recreate
// from scratch next tick. Live sids are remembered so the final audit
// can prove they stay dead.
func (h *harness) loseUser(u *user, cause string) {
	if u.live && u.sid != "" {
		h.deadSids = append(h.deadSids, u.sid)
	}
	u.alive = false
	u.pendingCreate = true
	u.sid, u.owner = "", ""
	u.mut = 0
	u.shown = nil
	u.histLen = 0
	h.lost++
	h.lostByCause[cause]++
}
