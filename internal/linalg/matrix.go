// Package linalg provides the small dense-matrix kernel needed by the
// Focus view's Linear Discriminant Analysis (§II-B "Granular
// Analysis"): matrix products, Gauss–Jordan inversion with partial
// pivoting, and a cyclic Jacobi eigendecomposition for symmetric
// matrices. Dimensions are the number of mining terms (tens to low
// hundreds), so dense O(n³) algorithms are the right tool.
package linalg

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat returns a zero matrix of the given shape.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (all must share one length).
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// Identity returns the n×n identity.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose.
func (m *Mat) T() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × other.
func (m *Mat) Mul(other *Mat) *Mat {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: mul shape %dx%d × %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMat(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m × v for a column vector v.
func (m *Mat) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: mulvec shape %dx%d × %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for j := 0; j < m.Cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}

// Add returns m + other.
func (m *Mat) Add(other *Mat) *Mat {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Mat) Scale(s float64) *Mat {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddDiagonal returns m + λI (ridge regularization; used to keep LDA's
// within-class scatter invertible on degenerate data).
func (m *Mat) AddDiagonal(lambda float64) *Mat {
	if m.Rows != m.Cols {
		panic("linalg: AddDiagonal on non-square matrix")
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Data[i*m.Cols+i] += lambda
	}
	return out
}

// Inverse returns m⁻¹ by Gauss–Jordan elimination with partial
// pivoting, or an error when the matrix is (numerically) singular.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: inverse of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, maxAbs := -1, 0.0
		for r := col; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > maxAbs {
				pivot, maxAbs = r, abs
			}
		}
		if pivot < 0 || maxAbs < 1e-12 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		a.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func (m *Mat) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// IsSymmetric reports approximate symmetry within tol.
func (m *Mat) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
