package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix:
// A = V · diag(Values) · Vᵀ, eigenvalues descending, eigenvectors as
// the *columns* of Vectors.
type Eigen struct {
	Values  []float64
	Vectors *Mat
}

// SymEigen computes the eigendecomposition of a symmetric matrix with
// the cyclic Jacobi rotation method. It errors on non-square or
// asymmetric (beyond 1e-8) input. Convergence is quadratic; for the
// ≤ few-hundred-dimensional scatter matrices of the Focus view a
// handful of sweeps suffice.
func SymEigen(a *Mat) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: eigen of non-square %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-8) {
		return nil, fmt.Errorf("linalg: eigen of asymmetric matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}

	eig := &Eigen{Values: make([]float64, n), Vectors: NewMat(n, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return m.At(order[x], order[x]) > m.At(order[y], order[y])
	})
	for outCol, srcCol := range order {
		eig.Values[outCol] = m.At(srcCol, srcCol)
		for r := 0; r < n; r++ {
			eig.Vectors.Set(r, outCol, v.At(r, srcCol))
		}
	}
	return eig, nil
}

// rotate applies the Jacobi rotation J(p,q,θ) as m ← JᵀmJ, v ← vJ.
func rotate(m, v *Mat, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// Covariance returns the sample covariance matrix of the rows of x
// (observations × features), dividing by n−1; with one row it returns
// the zero matrix.
func Covariance(x *Mat) *Mat {
	n, d := x.Rows, x.Cols
	out := NewMat(d, d)
	if n < 2 {
		return out
	}
	means := ColumnMeans(x)
	for i := 0; i < n; i++ {
		for a := 0; a < d; a++ {
			da := x.At(i, a) - means[a]
			if da == 0 {
				continue
			}
			for b := a; b < d; b++ {
				out.Data[a*d+b] += da * (x.At(i, b) - means[b])
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := out.At(a, b) / float64(n-1)
			out.Set(a, b, v)
			out.Set(b, a, v)
		}
	}
	return out
}

// ColumnMeans returns the per-column means of x.
func ColumnMeans(x *Mat) []float64 {
	means := make([]float64, x.Cols)
	if x.Rows == 0 {
		return means
	}
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < x.Cols; j++ {
			means[j] += x.At(i, j)
		}
	}
	for j := range means {
		means[j] /= float64(x.Rows)
	}
	return means
}
