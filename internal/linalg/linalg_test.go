package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"vexus/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 || m.At(1, 2) != 0 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone aliases")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("T = %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch accepted")
		}
	}()
	NewMat(2, 3).Mul(NewMat(2, 3))
}

func TestAddScaleDiagonal(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	s := a.Add(a).Scale(0.5)
	for i := range s.Data {
		if s.Data[i] != a.Data[i] {
			t.Fatal("Add/Scale broken")
		}
	}
	r := a.AddDiagonal(10)
	if r.At(0, 0) != 11 || r.At(1, 1) != 14 || r.At(0, 1) != 2 {
		t.Fatalf("AddDiagonal = %v", r.Data)
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approx(inv.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("Inverse = %v", inv.Data)
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.Inverse(); err == nil {
		t.Fatal("singular matrix inverted")
	}
	if _, err := NewMat(2, 3).Inverse(); err == nil {
		t.Fatal("non-square inverted")
	}
}

func TestPropInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		n := 2 + r.Intn(5)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		// Diagonal dominance ⇒ invertible.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*3)
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !approx(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenKnown(t *testing.T) {
	// Eigenvalues of [[2,1],[1,2]] are 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eig.Values[0], 3, 1e-9) || !approx(eig.Values[1], 1, 1e-9) {
		t.Fatalf("values = %v", eig.Values)
	}
	// First eigenvector ∝ (1,1)/√2.
	v0 := math.Abs(eig.Vectors.At(0, 0))
	v1 := math.Abs(eig.Vectors.At(1, 0))
	if !approx(v0, 1/math.Sqrt2, 1e-9) || !approx(v1, 1/math.Sqrt2, 1e-9) {
		t.Fatalf("vector = %v %v", v0, v1)
	}
}

func TestSymEigenRejects(t *testing.T) {
	if _, err := SymEigen(NewMat(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	asym := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := SymEigen(asym); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestPropEigenReconstruction(t *testing.T) {
	// A == V diag(λ) Vᵀ and VᵀV == I for random symmetric A.
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 7)
		n := 2 + r.Intn(6)
		a := NewMat(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		eig, err := SymEigen(a)
		if err != nil {
			return false
		}
		// Descending eigenvalues.
		for k := 1; k < n; k++ {
			if eig.Values[k] > eig.Values[k-1]+1e-9 {
				return false
			}
		}
		// Reconstruction.
		d := NewMat(n, n)
		for k := 0; k < n; k++ {
			d.Set(k, k, eig.Values[k])
		}
		rec := eig.Vectors.Mul(d).Mul(eig.Vectors.T())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !approx(rec.At(i, j), a.At(i, j), 1e-7) {
					return false
				}
			}
		}
		// Orthonormality.
		id := eig.Vectors.T().Mul(eig.Vectors)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !approx(id.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCovariance(t *testing.T) {
	x := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	c := Covariance(x)
	// Var of {1,3,5} = 4; covariance with {2,4,6} = 4.
	if !approx(c.At(0, 0), 4, 1e-12) || !approx(c.At(0, 1), 4, 1e-12) {
		t.Fatalf("cov = %v", c.Data)
	}
	if got := Covariance(FromRows([][]float64{{1, 2}})); got.At(0, 0) != 0 {
		t.Fatal("single-row covariance should be zero")
	}
}

func TestColumnMeans(t *testing.T) {
	x := FromRows([][]float64{{1, 10}, {3, 20}})
	m := ColumnMeans(x)
	if m[0] != 2 || m[1] != 15 {
		t.Fatalf("means = %v", m)
	}
	if got := ColumnMeans(NewMat(0, 3)); len(got) != 3 {
		t.Fatal("empty means")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	if id.At(0, 0) != 1 || id.At(0, 1) != 0 {
		t.Fatal("identity wrong")
	}
}
