package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	ncpu := runtime.NumCPU()
	cases := []struct{ workers, n, want int }{
		{0, 1000, min(ncpu, 1000)},
		{-3, 1000, min(ncpu, 1000)},
		{4, 1000, 4},
		{4, 2, 2}, // never more workers than items
		{8, 0, 8}, // n==0 means "unknown size", no clamp
		{0, -1, ncpu},
	}
	for _, c := range cases {
		if got := Workers(c.workers, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestRangeCoversExactlyOnce: every index is visited exactly once, for
// worker counts spanning serial, oversubscribed, and n-clamped.
func TestRangeCoversExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int{0, 1, 7, 256, 1000} {
			visits := make([]atomic.Int32, max(n, 1))
			Range(n, workers, func(_, lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					visits[i].Add(1)
				}
			})
			for i := 0; i < n; i++ {
				if v := visits[i].Load(); v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestRangeWorkerIDsDistinct: the worker id passed to body is a stable
// identity in [0, resolved) usable for scratch indexing.
func TestRangeWorkerIDsDistinct(t *testing.T) {
	const n, workers = 10_000, 4
	resolved := Workers(workers, n)
	counts := make([]atomic.Int64, resolved)
	Range(n, workers, func(worker, lo, hi int) {
		if worker < 0 || worker >= resolved {
			t.Errorf("worker id %d out of [0,%d)", worker, resolved)
		}
		counts[worker].Add(int64(hi - lo))
	})
	total := int64(0)
	for i := range counts {
		total += counts[i].Load()
	}
	if total != n {
		t.Fatalf("work accounted = %d, want %d", total, n)
	}
}

// TestForEachSlotWritesDeterministic: the canonical usage — every item
// writes its own slot — yields the sequential result.
func TestForEachSlotWritesDeterministic(t *testing.T) {
	const n = 5000
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		got := make([]int, n)
		ForEach(n, workers, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPerWorkerScratchIsUncontended: per-worker scratch buffers indexed
// by the worker id never race (this test is meaningful under -race).
func TestPerWorkerScratchIsUncontended(t *testing.T) {
	const n, workers = 20_000, 8
	resolved := Workers(workers, n)
	scratch := make([][]int, resolved)
	for w := range scratch {
		scratch[w] = make([]int, 1)
	}
	var sum atomic.Int64
	Range(n, workers, func(worker, lo, hi int) {
		s := scratch[worker]
		s[0] = 0
		for i := lo; i < hi; i++ {
			s[0] += i
		}
		sum.Add(int64(s[0]))
	})
	if want := int64(n) * int64(n-1) / 2; sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestDoRunsAll(t *testing.T) {
	var a, b, c atomic.Int32
	Do(2, func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Do skipped a task: %d %d %d", a.Load(), b.Load(), c.Load())
	}
	Do(4) // zero tasks must not hang
}
