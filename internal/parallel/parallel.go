// Package parallel is the worker-pool primitive behind every
// parallelized hot path in vexus: bounded fan-out over index ranges
// with deterministic results.
//
// The design contract is "parallel by sharding, deterministic by
// slot-writes": callers split work over an integer index space [0, n),
// every unit of work writes only to its own output slot (out[i],
// lists[gid], …) and to per-worker scratch identified by the worker id
// the pool hands each goroutine. Because no two units share a slot, the
// result is bit-identical to a sequential run regardless of how the
// scheduler interleaves workers — there is no merge step to get wrong,
// and `go test -race` stays quiet by construction.
//
// Work is distributed dynamically: workers claim fixed-size blocks of
// the index space from an atomic cursor, so skewed per-item cost (some
// groups have 100× the members of others) cannot strand one worker
// with all the heavy items while the rest idle.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean
// runtime.NumCPU(); the result is always at least 1 and never more
// than n (when n > 0) — spawning more goroutines than work items buys
// nothing.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 1 {
		workers = 1
	}
	if n > 0 && workers > n {
		workers = n
	}
	return workers
}

// blockSize picks the granularity of dynamic scheduling: small enough
// that skewed per-item cost balances across workers (≥ 8 blocks per
// worker), large enough that the atomic cursor is not contended on
// every item.
func blockSize(n, workers int) int {
	b := n / (workers * 8)
	if b < 1 {
		b = 1
	}
	if b > 256 {
		b = 256
	}
	return b
}

// Range runs body(worker, lo, hi) over dynamically claimed blocks
// [lo, hi) ⊂ [0, n) on `workers` goroutines (resolved via Workers).
// worker ∈ [0, workers) is stable per goroutine, so body can index
// per-worker scratch buffers without synchronization. Range returns
// when every block has been processed.
//
// Blocks are claimed in ascending order but may be *processed* in any
// interleaving; determinism is the caller's job via slot-writes (see
// the package comment). With a single resolved worker, body runs on
// the calling goroutine — no spawn, no atomics in the hot loop beyond
// the cursor.
func Range(n, workers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		body(0, 0, n)
		return
	}
	block := blockSize(n, workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(block))) - block
				if lo >= n {
					return
				}
				hi := lo + block
				if hi > n {
					hi = n
				}
				body(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach runs body(worker, i) for every i ∈ [0, n) — Range with a
// per-item body, for callers that don't benefit from batching.
func ForEach(n, workers int, body func(worker, i int)) {
	Range(n, workers, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(worker, i)
		}
	})
}

// Do runs the given functions concurrently on up to `workers`
// goroutines and returns when all have finished — the fork-join shape
// for a fixed set of heterogeneous tasks.
func Do(workers int, fns ...func()) {
	ForEach(len(fns), workers, func(_, i int) { fns[i]() })
}
