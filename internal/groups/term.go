// Package groups defines the central object of VEXUS: the user group.
// A group is a set of users sharing common demographics and actions
// (§I "Aggregated Analytics"); its description is a conjunction of
// terms such as gender=female ∧ topic=web-search. Groups discovered
// offline form an undirected graph whose edges connect non-disjoint
// groups (§II); exploration is navigation in that graph.
package groups

import (
	"fmt"
	"sort"
	"strings"
)

// TermID identifies an interned (field, value) pair.
type TermID int32

// Term is one predicate of a group description: Field = Value. Fields
// cover both demographics ("gender") and action-derived dimensions
// ("venue", "likes-genre").
type Term struct {
	Field string
	Value string
}

// String renders "field=value".
func (t Term) String() string { return t.Field + "=" + t.Value }

// Vocab interns terms so that group descriptions, transactions and the
// feedback vector can all index the same compact id space.
type Vocab struct {
	terms []Term
	index map[Term]TermID
	// fields records the distinct field names in first-seen order.
	fields     []string
	fieldIndex map[string]int
	// byField[f] lists the term ids whose Field is fields[f].
	byField [][]TermID
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{index: make(map[Term]TermID), fieldIndex: make(map[string]int)}
}

// Intern returns the id for the term, creating it on first use.
func (v *Vocab) Intern(field, value string) TermID {
	t := Term{Field: field, Value: value}
	if id, ok := v.index[t]; ok {
		return id
	}
	id := TermID(len(v.terms))
	v.terms = append(v.terms, t)
	v.index[t] = id
	fi, ok := v.fieldIndex[field]
	if !ok {
		fi = len(v.fields)
		v.fieldIndex[field] = fi
		v.fields = append(v.fields, field)
		v.byField = append(v.byField, nil)
	}
	v.byField[fi] = append(v.byField[fi], id)
	return id
}

// Lookup returns the id for the term, or -1 when it is not interned.
func (v *Vocab) Lookup(field, value string) TermID {
	if id, ok := v.index[Term{Field: field, Value: value}]; ok {
		return id
	}
	return -1
}

// Term returns the term for an id. Panics on out-of-range ids.
func (v *Vocab) Term(id TermID) Term {
	return v.terms[id]
}

// Len returns the number of interned terms.
func (v *Vocab) Len() int { return len(v.terms) }

// Fields returns the distinct field names in first-seen order. The
// returned slice must not be modified.
func (v *Vocab) Fields() []string { return v.fields }

// TermsOfField returns the ids of all terms with the given field name.
func (v *Vocab) TermsOfField(field string) []TermID {
	if fi, ok := v.fieldIndex[field]; ok {
		return v.byField[fi]
	}
	return nil
}

// Description is a sorted conjunction of term ids (ascending, unique).
// The empty description denotes the group of all users.
type Description []TermID

// NewDescription sorts and deduplicates ids into a canonical form.
func NewDescription(ids ...TermID) Description {
	d := make(Description, len(ids))
	copy(d, ids)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	out := d[:0]
	for i, id := range d {
		if i == 0 || id != d[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Contains reports whether id is one of the description's terms.
func (d Description) Contains(id TermID) bool {
	i := sort.Search(len(d), func(i int) bool { return d[i] >= id })
	return i < len(d) && d[i] == id
}

// Subsumes reports whether d's terms are a subset of other's terms,
// i.e. d describes a superset group (fewer constraints ⊇ more users).
func (d Description) Subsumes(other Description) bool {
	i := 0
	for _, id := range d {
		for i < len(other) && other[i] < id {
			i++
		}
		if i >= len(other) || other[i] != id {
			return false
		}
	}
	return true
}

// Equal reports term-for-term equality.
func (d Description) Equal(other Description) bool {
	if len(d) != len(other) {
		return false
	}
	for i := range d {
		if d[i] != other[i] {
			return false
		}
	}
	return true
}

// With returns a new canonical description extended by id.
func (d Description) With(id TermID) Description {
	out := make(Description, 0, len(d)+1)
	inserted := false
	for _, t := range d {
		if t == id {
			inserted = true
		}
		if !inserted && t > id {
			out = append(out, id)
			inserted = true
		}
		out = append(out, t)
	}
	if !inserted {
		out = append(out, id)
	}
	return out
}

// Key returns a canonical string key for map indexing.
func (d Description) Key() string {
	var b strings.Builder
	for i, id := range d {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// Label renders the human-readable description, e.g.
// "gender=female ∧ topic=web search". The empty description renders as
// "⟨all users⟩".
func (d Description) Label(v *Vocab) string {
	if len(d) == 0 {
		return "⟨all users⟩"
	}
	parts := make([]string, len(d))
	for i, id := range d {
		parts[i] = v.Term(id).String()
	}
	return strings.Join(parts, " ∧ ")
}
