package groups

import (
	"fmt"
	"reflect"
	"testing"

	"vexus/internal/bitset"
	"vexus/internal/rng"
)

// randomGroups builds n groups over u users with distinct one-term
// descriptions (n can exceed 256 to trip the parallel inversion path).
func randomGroups(seed uint64, u, n int) (*Vocab, []*Group) {
	r := rng.New(seed)
	v := NewVocab()
	gs := make([]*Group, 0, n)
	for i := 0; i < n; i++ {
		id := v.Intern("t", fmt.Sprintf("v%d", i))
		members := bitset.New(u)
		size := 1 + r.Intn(u/2)
		for _, m := range r.SampleWithoutReplacement(u, size) {
			members.Add(m)
		}
		gs = append(gs, &Group{Desc: NewDescription(id), Members: members})
	}
	return v, gs
}

// TestNewSpaceParallelEquivalence: the sharded inversion must produce
// the exact user→groups lists of the sequential appends, for spaces
// above and below the parallel threshold.
func TestNewSpaceParallelEquivalence(t *testing.T) {
	for _, shape := range []struct{ u, n int }{{50, 40}, {120, 300}, {30, 700}} {
		vocab, gs := randomGroups(uint64(shape.n), shape.u, shape.n)
		seq, err := NewSpaceParallel(shape.u, vocab, cloneGroups(gs, shape.u), 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5, 16} {
			par, err := NewSpaceParallel(shape.u, vocab, cloneGroups(gs, shape.u), workers)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < shape.u; u++ {
				a, b := seq.GroupsOfUser(u), par.GroupsOfUser(u)
				if len(a) == 0 && len(b) == 0 {
					continue
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("u=%d n=%d workers=%d: user %d lists differ: %v vs %v",
						shape.u, shape.n, workers, u, b, a)
				}
			}
		}
	}
}

// cloneGroups re-creates groups so each NewSpace call gets fresh ID
// assignment without sharing mutable Group structs.
func cloneGroups(gs []*Group, u int) []*Group {
	out := make([]*Group, len(gs))
	for i, g := range gs {
		m := bitset.New(u)
		m.InPlaceUnion(g.Members)
		out[i] = &Group{Desc: g.Desc, Members: m}
	}
	return out
}

// TestComputeStatsParallelEquivalence: partial-merge stats must equal
// the 1-worker scan exactly (all accumulators are integral).
func TestComputeStatsParallelEquivalence(t *testing.T) {
	vocab, gs := randomGroups(99, 80, 500)
	s, err := NewSpace(80, vocab, gs)
	if err != nil {
		t.Fatal(err)
	}
	want := s.ComputeStatsParallel(1)
	for _, workers := range []int{2, 4, 9} {
		got := s.ComputeStatsParallel(workers)
		if got != want {
			t.Fatalf("workers=%d: stats %+v != %+v", workers, got, want)
		}
	}
}
