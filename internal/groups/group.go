package groups

import (
	"fmt"
	"sort"

	"vexus/internal/bitset"
	"vexus/internal/parallel"
)

// Group is a set of users sharing the terms of its description. ID is
// the group's position in its Space and is stable for the lifetime of
// the space.
type Group struct {
	ID      int
	Desc    Description
	Members *bitset.Set
}

// Size returns the number of members.
func (g *Group) Size() int { return g.Members.Count() }

// Jaccard returns the Jaccard similarity of the two groups' member
// sets, the similarity the paper's inverted index is sorted by (§II-A).
func (g *Group) Jaccard(other *Group) float64 {
	return g.Members.Jaccard(other.Members)
}

// Overlaps reports whether the two groups share at least one member —
// the edge predicate of the group graph G.
func (g *Group) Overlaps(other *Group) bool {
	return g.Members.Intersects(other.Members)
}

// Space is an immutable collection of discovered groups over one
// dataset's user universe, plus the user→groups inverted lists needed
// to walk the overlap graph without O(n²) scans.
type Space struct {
	NumUsers int
	Vocab    *Vocab
	groups   []*Group

	// userGroups[u] lists ids of groups containing user u, ascending.
	userGroups [][]int32
	byKey      map[string]int
}

// NewSpace builds a space from discovered groups with one worker per
// CPU. Group IDs are assigned by position. Duplicate descriptions are
// rejected; duplicate member sets are allowed (distinct closed
// descriptions can share members across term spaces).
func NewSpace(numUsers int, vocab *Vocab, gs []*Group) (*Space, error) {
	return NewSpaceParallel(numUsers, vocab, gs, 0)
}

// NewSpaceParallel is NewSpace with an explicit worker count (<= 0
// means runtime.NumCPU()). Validation, id assignment, and the
// duplicate-description check stay sequential (they are cheap and the
// first-duplicate error must be deterministic); the expensive pass —
// inverting every group's member set into the user→groups lists — is
// sharded: each worker inverts one contiguous gid range into a private
// partial table, and partials concatenate per user in shard order, so
// every userGroups list comes out ascending exactly as the sequential
// append produced it.
func NewSpaceParallel(numUsers int, vocab *Vocab, gs []*Group, workers int) (*Space, error) {
	s := &Space{
		NumUsers:   numUsers,
		Vocab:      vocab,
		groups:     gs,
		userGroups: make([][]int32, numUsers),
		byKey:      make(map[string]int, len(gs)),
	}
	for i, g := range gs {
		if g.Members.Len() != numUsers {
			return nil, fmt.Errorf("groups: group %d universe %d != %d", i, g.Members.Len(), numUsers)
		}
		g.ID = i
		key := g.Desc.Key()
		if _, dup := s.byKey[key]; dup {
			return nil, fmt.Errorf("groups: duplicate description %q", g.Desc.Label(vocab))
		}
		s.byKey[key] = i
	}
	s.invert(workers)
	return s, nil
}

// invert fills userGroups from the groups' member sets. The parallel
// path is count-then-fill: transient memory is workers×numUsers int32
// counters (4 bytes per cell, no slice headers, no append growth) and
// every per-user list is allocated exactly once at its final size.
// Small spaces take the sequential appends directly.
func (s *Space) invert(workers int) {
	n := len(s.groups)
	w := parallel.Workers(workers, n)
	if w <= 1 || n < 256 {
		for i, g := range s.groups {
			g.Members.Range(func(u int) bool {
				s.userGroups[u] = append(s.userGroups[u], int32(i))
				return true
			})
		}
		return
	}
	// Static contiguous shards: shard k owns gids [bounds[k], bounds[k+1]).
	bounds := make([]int, w+1)
	for k := 0; k <= w; k++ {
		bounds[k] = k * n / w
	}
	// Pass 1: each shard counts its per-user memberships into its own
	// counter row.
	counts := make([][]int32, w)
	parallel.ForEach(w, w, func(_, shard int) {
		cnt := make([]int32, s.NumUsers)
		for gid := bounds[shard]; gid < bounds[shard+1]; gid++ {
			s.groups[gid].Members.Range(func(u int) bool {
				cnt[u]++
				return true
			})
		}
		counts[shard] = cnt
	})
	// Per-user exclusive prefix sums turn counts[shard][u] into the
	// write offset of shard k's segment in user u's list, and give the
	// exact final length to allocate.
	parallel.Range(s.NumUsers, w, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			total := int32(0)
			for k := 0; k < w; k++ {
				c := counts[k][u]
				counts[k][u] = total
				total += c
			}
			if total > 0 {
				s.userGroups[u] = make([]int32, total)
			}
		}
	})
	// Pass 2: each shard re-walks its gids in ascending order, writing
	// into its own segment (counts[shard][u] is now that shard's write
	// cursor — each cell is touched by exactly one shard). Segments are
	// ordered by shard and shards are ascending gid ranges, so every
	// merged list is globally ascending — identical to the sequential
	// build.
	parallel.ForEach(w, w, func(_, shard int) {
		cur := counts[shard]
		for gid := bounds[shard]; gid < bounds[shard+1]; gid++ {
			s.groups[gid].Members.Range(func(u int) bool {
				s.userGroups[u][cur[u]] = int32(gid)
				cur[u]++
				return true
			})
		}
	})
}

// Len returns the number of groups.
func (s *Space) Len() int { return len(s.groups) }

// Group returns the group with the given id.
func (s *Space) Group(id int) *Group { return s.groups[id] }

// Groups returns all groups; the slice must not be modified.
func (s *Space) Groups() []*Group { return s.groups }

// ByDescription returns the group with exactly this description, or nil.
func (s *Space) ByDescription(d Description) *Group {
	if i, ok := s.byKey[d.Key()]; ok {
		return s.groups[i]
	}
	return nil
}

// GroupsOfUser returns ids of groups containing user u. The returned
// slice must not be modified.
func (s *Space) GroupsOfUser(u int) []int32 {
	if u < 0 || u >= len(s.userGroups) {
		return nil
	}
	return s.userGroups[u]
}

// Neighbors returns the ids of groups overlapping g (sharing ≥1
// member), excluding g itself, in ascending id order. This materializes
// one adjacency row of the graph G on demand via the user→groups lists:
// cost O(Σ_{u∈g} |groups(u)|), independent of the total group count.
func (s *Space) Neighbors(g *Group) []int {
	seen := make(map[int32]bool)
	g.Members.Range(func(u int) bool {
		for _, gid := range s.userGroups[u] {
			seen[gid] = true
		}
		return true
	})
	delete(seen, int32(g.ID))
	out := make([]int, 0, len(seen))
	for gid := range seen {
		out = append(out, int(gid))
	}
	sort.Ints(out)
	return out
}

// Coverage returns the fraction of the user universe covered by at
// least one of the given groups.
func (s *Space) Coverage(ids []int) float64 {
	if s.NumUsers == 0 {
		return 0
	}
	u := bitset.New(s.NumUsers)
	for _, id := range ids {
		u.InPlaceUnion(s.groups[id].Members)
	}
	return float64(u.Count()) / float64(s.NumUsers)
}

// CoverageOf returns the fraction of a base group's members covered by
// the union of the given groups — the coverage objective the greedy
// optimizer maximizes when expanding a focal group (§II-B).
func (s *Space) CoverageOf(base *Group, ids []int) float64 {
	total := base.Size()
	if total == 0 {
		return 1
	}
	u := bitset.New(s.NumUsers)
	for _, id := range ids {
		u.InPlaceUnion(s.groups[id].Members)
	}
	u.InPlaceIntersect(base.Members)
	return float64(u.Count()) / float64(total)
}

// Diversity returns 1 minus the mean pairwise Jaccard similarity of the
// given groups: 1 for fully disjoint sets, 0 for identical ones. It is
// the diversity objective of §II-B ("optimizing diversity provides
// various analysis directions and reduces redundancy").
func (s *Space) Diversity(ids []int) float64 {
	if len(ids) < 2 {
		return 1
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			sum += s.groups[ids[i]].Jaccard(s.groups[ids[j]])
			pairs++
		}
	}
	return 1 - sum/float64(pairs)
}

// SortBySize orders group ids by descending member count (ties by
// ascending id) — the default presentation order of GROUPVIZ.
func (s *Space) SortBySize(ids []int) {
	sort.Slice(ids, func(i, j int) bool {
		si, sj := s.groups[ids[i]].Size(), s.groups[ids[j]].Size()
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
}

// Stats summarizes a space for reports and logs.
type Stats struct {
	NumGroups   int
	NumUsers    int
	MinSize     int
	MaxSize     int
	MeanSize    float64
	MeanDescLen float64
	Coverage    float64 // fraction of users in ≥1 group
}

// ComputeStats scans the space once (one worker per CPU) and returns
// summary statistics.
func (s *Space) ComputeStats() Stats { return s.ComputeStatsParallel(0) }

// ComputeStatsParallel is ComputeStats with an explicit worker count
// (<= 0 means runtime.NumCPU()). Every accumulator is commutative —
// integer sums, min/max, bitset union — so per-worker partials merge
// to the same Stats no matter how groups shard across workers.
func (s *Space) ComputeStatsParallel(workers int) Stats {
	st := Stats{NumGroups: len(s.groups), NumUsers: s.NumUsers}
	if len(s.groups) == 0 {
		return st
	}
	type partial struct {
		minSize, maxSize int
		sumSize, sumDesc int
		covered          *bitset.Set
		seen             bool
	}
	w := parallel.Workers(workers, len(s.groups))
	parts := make([]partial, w)
	parallel.Range(len(s.groups), w, func(worker, lo, hi int) {
		p := &parts[worker]
		if p.covered == nil {
			p.covered = bitset.New(s.NumUsers)
		}
		for gid := lo; gid < hi; gid++ {
			g := s.groups[gid]
			sz := g.Size()
			p.sumSize += sz
			p.sumDesc += len(g.Desc)
			if !p.seen || sz < p.minSize {
				p.minSize = sz
			}
			if sz > p.maxSize {
				p.maxSize = sz
			}
			p.seen = true
			p.covered.InPlaceUnion(g.Members)
		}
	})
	covered := bitset.New(s.NumUsers)
	sumSize, sumDesc, seen := 0, 0, false
	for i := range parts {
		p := &parts[i]
		if !p.seen {
			continue
		}
		sumSize += p.sumSize
		sumDesc += p.sumDesc
		if !seen || p.minSize < st.MinSize {
			st.MinSize = p.minSize
		}
		if p.maxSize > st.MaxSize {
			st.MaxSize = p.maxSize
		}
		seen = true
		covered.InPlaceUnion(p.covered)
	}
	st.MeanSize = float64(sumSize) / float64(len(s.groups))
	st.MeanDescLen = float64(sumDesc) / float64(len(s.groups))
	if s.NumUsers > 0 {
		st.Coverage = float64(covered.Count()) / float64(s.NumUsers)
	}
	return st
}
