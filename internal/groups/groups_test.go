package groups

import (
	"math"
	"testing"
	"testing/quick"

	"vexus/internal/bitset"
)

func TestVocabIntern(t *testing.T) {
	v := NewVocab()
	a := v.Intern("gender", "female")
	b := v.Intern("gender", "male")
	c := v.Intern("gender", "female")
	if a != c {
		t.Fatalf("re-intern gave %d, want %d", c, a)
	}
	if a == b {
		t.Fatal("distinct terms share id")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Term(a); got.Field != "gender" || got.Value != "female" {
		t.Fatalf("Term = %+v", got)
	}
	if got := v.Lookup("gender", "male"); got != b {
		t.Fatalf("Lookup = %d, want %d", got, b)
	}
	if got := v.Lookup("gender", "robot"); got != -1 {
		t.Fatalf("Lookup missing = %d, want -1", got)
	}
}

func TestVocabFields(t *testing.T) {
	v := NewVocab()
	v.Intern("gender", "f")
	v.Intern("country", "fr")
	v.Intern("gender", "m")
	fields := v.Fields()
	if len(fields) != 2 || fields[0] != "gender" || fields[1] != "country" {
		t.Fatalf("Fields = %v", fields)
	}
	if got := v.TermsOfField("gender"); len(got) != 2 {
		t.Fatalf("TermsOfField(gender) = %v", got)
	}
	if got := v.TermsOfField("nosuch"); got != nil {
		t.Fatalf("TermsOfField(nosuch) = %v", got)
	}
}

func TestTermString(t *testing.T) {
	if got := (Term{"a", "b"}).String(); got != "a=b" {
		t.Fatalf("String = %q", got)
	}
}

func TestDescriptionCanonical(t *testing.T) {
	d := NewDescription(5, 2, 5, 1)
	if len(d) != 3 || d[0] != 1 || d[1] != 2 || d[2] != 5 {
		t.Fatalf("canonical = %v", d)
	}
	if !d.Contains(2) || d.Contains(3) {
		t.Fatal("Contains broken")
	}
}

func TestDescriptionSubsumes(t *testing.T) {
	small := NewDescription(1, 3)
	big := NewDescription(1, 2, 3)
	if !small.Subsumes(big) {
		t.Fatal("small should subsume big")
	}
	if big.Subsumes(small) {
		t.Fatal("big should not subsume small")
	}
	if !NewDescription().Subsumes(big) {
		t.Fatal("empty should subsume everything")
	}
	if !big.Subsumes(big) {
		t.Fatal("self subsumption")
	}
}

func TestDescriptionWith(t *testing.T) {
	d := NewDescription(1, 5)
	e := d.With(3)
	if !e.Equal(NewDescription(1, 3, 5)) {
		t.Fatalf("With(3) = %v", e)
	}
	// Idempotent on existing term.
	if got := d.With(5); !got.Equal(d) {
		t.Fatalf("With existing = %v", got)
	}
	// Original untouched.
	if !d.Equal(NewDescription(1, 5)) {
		t.Fatalf("original mutated: %v", d)
	}
	// Append at end.
	if got := d.With(9); !got.Equal(NewDescription(1, 5, 9)) {
		t.Fatalf("With(9) = %v", got)
	}
}

func TestDescriptionKeyAndLabel(t *testing.T) {
	v := NewVocab()
	f := v.Intern("gender", "female")
	w := v.Intern("topic", "web search")
	d := NewDescription(w, f)
	if d.Key() != "0,1" && d.Key() != "1,0" {
		// canonical sort ascending: f=0, w=1 → "0,1"
		t.Fatalf("Key = %q", d.Key())
	}
	label := d.Label(v)
	if label != "gender=female ∧ topic=web search" {
		t.Fatalf("Label = %q", label)
	}
	if NewDescription().Label(v) != "⟨all users⟩" {
		t.Fatal("empty label")
	}
}

func mk(n int, members ...int) *bitset.Set {
	return bitset.FromIndices(n, members)
}

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	v := NewVocab()
	a := v.Intern("g", "a")
	b := v.Intern("g", "b")
	c := v.Intern("c", "x")
	gs := []*Group{
		{Desc: NewDescription(a), Members: mk(10, 0, 1, 2, 3)},
		{Desc: NewDescription(b), Members: mk(10, 4, 5, 6)},
		{Desc: NewDescription(c), Members: mk(10, 2, 3, 4)},
		{Desc: NewDescription(a, c), Members: mk(10, 2, 3)},
	}
	s, err := NewSpace(10, v, gs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpaceBasics(t *testing.T) {
	s := newTestSpace(t)
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Group(2).ID != 2 {
		t.Fatal("id assignment")
	}
	if got := s.ByDescription(s.Group(3).Desc); got == nil || got.ID != 3 {
		t.Fatalf("ByDescription = %v", got)
	}
	if got := s.ByDescription(NewDescription(99)); got != nil {
		t.Fatalf("missing description = %v", got)
	}
}

func TestSpaceRejectsDuplicates(t *testing.T) {
	v := NewVocab()
	a := v.Intern("g", "a")
	gs := []*Group{
		{Desc: NewDescription(a), Members: mk(5, 0)},
		{Desc: NewDescription(a), Members: mk(5, 1)},
	}
	if _, err := NewSpace(5, v, gs); err == nil {
		t.Fatal("duplicate description accepted")
	}
}

func TestSpaceRejectsUniverseMismatch(t *testing.T) {
	v := NewVocab()
	a := v.Intern("g", "a")
	gs := []*Group{{Desc: NewDescription(a), Members: mk(5, 0)}}
	if _, err := NewSpace(10, v, gs); err == nil {
		t.Fatal("universe mismatch accepted")
	}
}

func TestGroupsOfUser(t *testing.T) {
	s := newTestSpace(t)
	got := s.GroupsOfUser(2)
	if len(got) != 3 { // groups 0, 2, 3 contain user 2
		t.Fatalf("GroupsOfUser(2) = %v", got)
	}
	if s.GroupsOfUser(-1) != nil || s.GroupsOfUser(100) != nil {
		t.Fatal("out-of-range should be nil")
	}
}

func TestNeighbors(t *testing.T) {
	s := newTestSpace(t)
	// group 0 {0,1,2,3} overlaps 2 {2,3,4} and 3 {2,3}, not 1 {4,5,6}.
	got := s.Neighbors(s.Group(0))
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	// group 1 overlaps only group 2 (via user 4).
	got = s.Neighbors(s.Group(1))
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("Neighbors(1) = %v", got)
	}
}

func TestOverlapsAndJaccard(t *testing.T) {
	s := newTestSpace(t)
	if !s.Group(0).Overlaps(s.Group(2)) {
		t.Fatal("0 and 2 overlap")
	}
	if s.Group(0).Overlaps(s.Group(1)) {
		t.Fatal("0 and 1 are disjoint")
	}
	// J({0,1,2,3},{2,3,4}) = 2/5
	if got := s.Group(0).Jaccard(s.Group(2)); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Jaccard = %v", got)
	}
}

func TestCoverage(t *testing.T) {
	s := newTestSpace(t)
	if got := s.Coverage([]int{0, 1}); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Coverage = %v", got)
	}
	if got := s.Coverage(nil); got != 0 {
		t.Fatalf("empty Coverage = %v", got)
	}
	// CoverageOf base group 0 ({0,1,2,3}) by group 3 ({2,3}) = 0.5
	if got := s.CoverageOf(s.Group(0), []int{3}); got != 0.5 {
		t.Fatalf("CoverageOf = %v", got)
	}
}

func TestDiversity(t *testing.T) {
	s := newTestSpace(t)
	if got := s.Diversity([]int{0, 1}); got != 1 { // disjoint
		t.Fatalf("disjoint diversity = %v", got)
	}
	if got := s.Diversity([]int{0}); got != 1 {
		t.Fatalf("singleton diversity = %v", got)
	}
	d := s.Diversity([]int{0, 2, 3})
	if d <= 0 || d >= 1 {
		t.Fatalf("mixed diversity = %v", d)
	}
}

func TestSortBySize(t *testing.T) {
	s := newTestSpace(t)
	ids := []int{3, 1, 0, 2}
	s.SortBySize(ids)
	if ids[0] != 0 || ids[len(ids)-1] != 3 {
		t.Fatalf("SortBySize = %v", ids)
	}
}

func TestComputeStats(t *testing.T) {
	s := newTestSpace(t)
	st := s.ComputeStats()
	if st.NumGroups != 4 || st.NumUsers != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinSize != 2 || st.MaxSize != 4 {
		t.Fatalf("min/max = %d/%d", st.MinSize, st.MaxSize)
	}
	if math.Abs(st.Coverage-0.7) > 1e-12 { // users 0..6
		t.Fatalf("coverage = %v", st.Coverage)
	}
	empty, err := NewSpace(5, NewVocab(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.ComputeStats(); got.NumGroups != 0 {
		t.Fatalf("empty stats = %+v", got)
	}
}

func TestPropSubsumptionMembers(t *testing.T) {
	// If description A subsumes description B, any group set built from
	// term-extension must satisfy members(B) ⊆ members(A). We verify the
	// combinatorial property of Subsumes + With here.
	f := func(raw []int16) bool {
		ids := make([]TermID, 0, len(raw))
		for _, r := range raw {
			if r >= 0 {
				ids = append(ids, TermID(r%50))
			}
		}
		d := NewDescription(ids...)
		ext := d.With(TermID(7))
		return d.Subsumes(ext) && (ext.Subsumes(d) == d.Contains(7))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
