package membership

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for failure-detection tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestDir(t *testing.T, path string, clk *fakeClock) *Directory {
	t.Helper()
	d, err := Open(Config{
		Path:         path,
		SuspectAfter: 10 * time.Second,
		DownAfter:    30 * time.Second,
		Clock:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEpochAdvancesOnlyOnRoutingChanges(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDir(t, "", clk)

	if d.Epoch() != 0 {
		t.Fatalf("fresh directory epoch = %d", d.Epoch())
	}
	// Seeding N static members is one routing change, not N.
	d.SeedStatic([]Member{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: "b:1"}})
	if d.Epoch() != 1 {
		t.Fatalf("epoch after seed = %d, want 1", d.Epoch())
	}
	// Re-seeding the same list changes nothing.
	d.SeedStatic([]Member{{Name: "a", Addr: "a:1"}, {Name: "b", Addr: "b:1"}})
	if d.Epoch() != 1 {
		t.Fatalf("epoch after idempotent re-seed = %d, want 1", d.Epoch())
	}

	// Heartbeats refresh metadata without moving the epoch.
	if _, _, err := d.Heartbeat(Member{Name: "a", Sessions: 7}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Heartbeat(Member{Name: "a", Sessions: 9}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after metadata heartbeats = %d, want 1", d.Epoch())
	}

	// Join bumps; duplicate join is rejected without bumping.
	if err := d.Join(Member{Name: "c", Addr: "c:1"}); err != nil {
		t.Fatal(err)
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch after join = %d, want 2", d.Epoch())
	}
	if err := d.Join(Member{Name: "c"}); err == nil {
		t.Fatal("duplicate join should fail")
	}
	if d.Epoch() != 2 {
		t.Fatalf("epoch after rejected join = %d, want 2", d.Epoch())
	}

	// Remove bumps; removing an unknown member does not.
	if !d.Remove("c") {
		t.Fatal("remove of known member reported unknown")
	}
	if d.Remove("c") {
		t.Fatal("second remove reported known")
	}
	if d.Epoch() != 3 {
		t.Fatalf("epoch after remove = %d, want 3", d.Epoch())
	}
}

func TestSweepTransitionsAndRecovery(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDir(t, "", clk)
	d.SeedStatic([]Member{{Name: "a", Addr: "a:1"}})
	if err := d.Join(Member{Name: "b", Addr: "b:1"}); err != nil {
		t.Fatal(err)
	}
	base := d.Epoch()

	// b heartbeats once, then goes silent. a is static and never
	// heartbeated: exempt forever.
	if _, _, err := d.Heartbeat(Member{Name: "b"}); err != nil {
		t.Fatal(err)
	}

	clk.Advance(15 * time.Second) // past suspect, short of down
	evs := d.Sweep()
	if len(evs) != 1 || evs[0].Name != "b" || evs[0].To != StateSuspect {
		t.Fatalf("sweep events = %+v, want b -> suspect", evs)
	}
	// Suspicion is a warning: still routable, epoch unchanged.
	if d.Epoch() != base {
		t.Fatalf("suspect transition moved the epoch: %d -> %d", base, d.Epoch())
	}
	if !d.RoutableSet()["b"] {
		t.Fatal("suspect member left the routing set")
	}

	clk.Advance(20 * time.Second) // now past down
	evs = d.Sweep()
	if len(evs) != 1 || evs[0].To != StateDown {
		t.Fatalf("sweep events = %+v, want b -> down", evs)
	}
	if d.Epoch() != base+1 {
		t.Fatalf("down transition epoch = %d, want %d", d.Epoch(), base+1)
	}
	if d.RoutableSet()["b"] {
		t.Fatal("down member still in the routing set")
	}
	if got := d.Down(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Down() = %v", got)
	}
	// Static a never transitioned.
	if d.StateCounts()[string(StateAlive)] != 1 {
		t.Fatalf("counts = %v, want one alive", d.StateCounts())
	}

	// Recovery heartbeat re-enters the routing set and bumps the epoch.
	_, recovered, err := d.Heartbeat(Member{Name: "b"})
	if err != nil || !recovered {
		t.Fatalf("recovery heartbeat: recovered=%v err=%v", recovered, err)
	}
	if d.Epoch() != base+2 {
		t.Fatalf("recovery epoch = %d, want %d", d.Epoch(), base+2)
	}
	if !d.RoutableSet()["b"] {
		t.Fatal("recovered member not routable")
	}

	// A static member that HAS heartbeated is subject to detection.
	if _, _, err := d.Heartbeat(Member{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(31 * time.Second)
	downed := map[string]bool{}
	for _, ev := range d.Sweep() {
		if ev.To == StateDown {
			downed[ev.Name] = true
		}
	}
	if !downed["a"] {
		t.Fatal("static member that heartbeated once was not failure-detected")
	}
}

func TestHeartbeatUnknownMemberRejected(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDir(t, "", clk)
	if _, _, err := d.Heartbeat(Member{Name: "ghost"}); err == nil {
		t.Fatal("heartbeat from unadmitted member should fail")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.json")
	clk := &fakeClock{now: time.Unix(1000, 0)}

	d := newTestDir(t, path, clk)
	d.SeedStatic([]Member{{Name: "a", Addr: "a:1"}})
	if err := d.Join(Member{Name: "b", Addr: "b:1"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Join(Member{Name: "c", Addr: "c:1"}); err != nil {
		t.Fatal(err)
	}
	// Drive b down and c suspect, then reload.
	if _, _, err := d.Heartbeat(Member{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(31 * time.Second)
	d.Sweep()
	epoch := d.Epoch()

	d2 := newTestDir(t, path, clk)
	if d2.Epoch() != epoch {
		t.Fatalf("reloaded epoch = %d, want %d", d2.Epoch(), epoch)
	}
	// Down survives the restart (fail closed); the roster is intact.
	if d2.RoutableSet()["b"] {
		t.Fatal("down member reloaded as routable")
	}
	mis := d2.Members()
	if len(mis) != 3 {
		t.Fatalf("reloaded roster: %+v", mis)
	}
	for _, mi := range mis {
		if mi.Name == "a" && !mi.Static {
			t.Fatal("static mark lost across reload")
		}
		if mi.Name == "b" && mi.State != StateDown {
			t.Fatalf("member b reloaded as %s, want down", mi.State)
		}
	}
	// The reloaded-as-alive members get a grace period: an immediate
	// sweep must not mark them down just because the table is old.
	if evs := d2.Sweep(); len(evs) != 0 {
		t.Fatalf("immediate post-reload sweep produced %+v", evs)
	}

	// Corrupt table: refuse to start rather than route from garbage.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Path: path}); err == nil {
		t.Fatal("corrupt route table should fail Open")
	}
}

func TestAuth(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusOK) })

	// Empty secret: gate is a pass-through.
	h := Require("", ok)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/internal/cluster/sessions", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("no-secret gate: %d", rec.Code)
	}

	h = Require("s3cret", ok)
	for _, tc := range []struct {
		name, got string
		want      int
	}{
		{"missing", "", http.StatusUnauthorized},
		{"wrong", "nope", http.StatusUnauthorized},
		{"right", "s3cret", http.StatusOK},
	} {
		req := httptest.NewRequest(http.MethodGet, "/internal/cluster/sessions", nil)
		if tc.got != "" {
			req.Header.Set(SecretHeader, tc.got)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("%s secret: status %d, want %d", tc.name, rec.Code, tc.want)
		}
	}
}
