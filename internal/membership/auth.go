package membership

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
)

// SecretHeader carries the shared cluster secret on every
// cluster-internal hop: gateway→shard (/internal/cluster/*) and
// shard→gateway (heartbeats).
const SecretHeader = "X-Vexus-Cluster-Secret"

// Authorized reports whether the request carries the shared secret.
// The comparison is constant-time over SHA-256 digests, so neither
// the match prefix length nor the secret length leaks through timing.
// An empty configured secret disables the check — the pre-auth
// deployment shape (and every in-process test cluster) keeps working;
// production deployments set -cluster-secret on every process.
func Authorized(r *http.Request, secret string) bool {
	if secret == "" {
		return true
	}
	got := sha256.Sum256([]byte(r.Header.Get(SecretHeader)))
	want := sha256.Sum256([]byte(secret))
	return subtle.ConstantTimeCompare(got[:], want[:]) == 1
}

// Require gates h behind the shared secret: requests without it get a
// 401 that never echoes anything request-derived. With an empty
// secret, h is returned unwrapped.
func Require(secret string, h http.Handler) http.Handler {
	if secret == "" {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !Authorized(r, secret) {
			http.Error(w, "missing or wrong cluster secret", http.StatusUnauthorized)
			return
		}
		h.ServeHTTP(w, r)
	})
}
