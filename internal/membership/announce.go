package membership

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"time"

	"vexus/internal/telemetry"
)

// Announcer is the shard side of the gossip loop: it POSTs this
// member's heartbeat to each configured gateway every Every, carrying
// fresh metadata from the Info callback, and reads back the ack — the
// topology epoch plus the full roster, which is how a shard (and its
// logs) see the cluster without talking to any peer directly.
type Announcer struct {
	// Self identifies this member; Name must match the name the
	// gateway admitted it under (for -shards deployments, the address).
	Self Member
	// Gateways are gateway base URLs ("http://host:port").
	Gateways []string
	// Secret is the shared cluster secret ("" = none configured).
	Secret string
	// Every paces the loop (0 = 2s).
	Every time.Duration
	// Info refreshes gossip metadata per beat (nil = static Self).
	Info func() (sessions int, engines map[string]uint64)
	// RTT observes each successful heartbeat's round-trip time —
	// registered on the shard's own registry, so the gateway's cluster
	// rollup aggregates it across members (nil = not recorded).
	RTT *telemetry.Histogram
	// Logger receives beat records at Debug and failures at Warn
	// (nil = slog.Default()).
	Logger *slog.Logger
	// Client issues the heartbeat requests (nil = 5s-timeout client).
	Client *http.Client
}

// Run drives the heartbeat loop until ctx is cancelled. The first
// beat fires immediately, so a freshly started shard is visible to
// the gateway within one round trip, not one interval.
func (a *Announcer) Run(ctx context.Context) {
	every := a.Every
	if every <= 0 {
		every = 2 * time.Second
	}
	log := a.Logger
	if log == nil {
		log = slog.Default()
	}
	client := a.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	t := time.NewTicker(every)
	defer t.Stop()
	var lastEpoch uint64
	for {
		m := a.Self
		if a.Info != nil {
			m.Sessions, m.Engines = a.Info()
		}
		body, err := json.Marshal(m)
		if err != nil {
			log.Warn("membership: encoding heartbeat", "err", err)
			return
		}
		for _, gw := range a.Gateways {
			ack, err := a.beat(ctx, client, gw, body)
			if err != nil {
				log.Warn("membership: heartbeat failed", "gateway", gw, "err", err)
				continue
			}
			if ack.Epoch != lastEpoch {
				log.Info("membership: topology epoch changed", "gateway", gw,
					"epoch", ack.Epoch, "members", len(ack.Members))
				lastEpoch = ack.Epoch
			}
			log.Debug("membership: heartbeat acked", "gateway", gw, "epoch", ack.Epoch)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// beat sends one heartbeat to one gateway and decodes the ack. A
// non-200 is an error: in particular a gateway that does not know
// this member answers 404 — the shard is running but not yet joined,
// which the operator resolves with POST /api/v1/cluster/join.
func (a *Announcer) beat(ctx context.Context, client *http.Client, gw string, body []byte) (Ack, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, gw+"/internal/cluster/heartbeat", bytes.NewReader(body))
	if err != nil {
		return Ack{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if a.Secret != "" {
		req.Header.Set(SecretHeader, a.Secret)
	}
	started := time.Now()
	res, err := client.Do(req)
	if err != nil {
		return Ack{}, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 256))
		return Ack{}, &HeartbeatError{Status: res.StatusCode, Body: string(msg)}
	}
	var ack Ack
	if err := json.NewDecoder(res.Body).Decode(&ack); err != nil {
		return Ack{}, err
	}
	if a.RTT != nil {
		a.RTT.Observe(time.Since(started).Seconds())
	}
	return ack, nil
}

// HeartbeatError is a non-200 heartbeat response.
type HeartbeatError struct {
	Status int
	Body   string
}

func (e *HeartbeatError) Error() string {
	return "heartbeat rejected: status " + http.StatusText(e.Status) + ": " + e.Body
}
