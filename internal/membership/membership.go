// Package membership is the cluster's self-management layer: shards
// announce themselves with periodic heartbeats carrying liveness and
// metadata (address, engine versions, session load), and each gateway
// folds those announcements into a Directory — a durable route table
// stamped with a monotonic topology epoch.
//
// The epoch advances exactly when the *routing set* changes: a member
// joins, leaves, is marked down by failure detection, or recovers.
// Metadata refreshes (a heartbeat updating load numbers) do not bump
// it. Because rendezvous hashing (internal/cluster/hash.go) is a pure
// function of the member-name set, two gateways holding the same epoch
// hold the same routing set and therefore place every session id
// identically — which is what makes the epoch a meaningful version for
// multi-gateway deployments: agree on the epoch, agree on every route.
//
// The Directory persists itself (atomic temp+rename, like the snapshot
// store) on every epoch bump and state transition, and Open reloads it
// on restart — so a restarted gateway resumes routing at the saved
// epoch without asking a single shard anything, replacing the old
// lazy-rebuild behavior.
//
// Failure detection is deliberately simple push-style gossip: a member
// unheard-of for SuspectAfter is suspected (still routable — suspicion
// is a warning, not a verdict), and for DownAfter is marked down and
// leaves the routing set. A down member that heartbeats again recovers.
// Members seeded from a static -shards list are exempt until their
// first heartbeat: a static deployment without announcers must keep
// working exactly as before.
package membership

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// State is a member's liveness as the directory sees it.
type State string

const (
	// StateAlive: heartbeating (or static and never required to).
	StateAlive State = "alive"
	// StateSuspect: unheard-of past SuspectAfter; still routable.
	StateSuspect State = "suspect"
	// StateDown: unheard-of past DownAfter; out of the routing set.
	StateDown State = "down"
)

// Member is what a shard announces about itself: its rendezvous-hash
// identity, dial address, and gossip metadata. The metadata rides the
// roster so every ack paints the whole cluster, but only Name and Addr
// affect routing.
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr,omitempty"`
	// Static marks members seeded from the -shards flag; they are
	// exempt from failure detection until their first heartbeat.
	Static bool `json:"static,omitempty"`
	// Sessions and Engines are gossip metadata: live session count and
	// per-dataset engine versions at the last heartbeat.
	Sessions int               `json:"sessions,omitempty"`
	Engines  map[string]uint64 `json:"engines,omitempty"`
}

// MemberInfo is one roster row: the member plus its current state.
type MemberInfo struct {
	Member
	State State `json:"state"`
}

// Ack is a heartbeat response: the gossip piggyback. The announcing
// shard learns the topology epoch and the full roster in the same
// round trip that refreshed its own liveness.
type Ack struct {
	Epoch   uint64       `json:"epoch"`
	Members []MemberInfo `json:"members"`
}

// Event is one failure-detection transition reported by Sweep.
type Event struct {
	Name string
	From State
	To   State
	// Epoch is the directory epoch after the transition.
	Epoch uint64
}

// ErrUnknownMember rejects a heartbeat from a member the directory has
// never admitted: joining is an explicit, warm operation (the gateway
// streams an engine snapshot first), never a side effect of gossip.
var ErrUnknownMember = errors.New("membership: unknown member (join the cluster first)")

// Config assembles a Directory.
type Config struct {
	// Path persists the route table ("" = in-memory only).
	Path string
	// SuspectAfter / DownAfter are the failure-detection horizons
	// (defaults 6s / 20s; DownAfter is clamped to at least
	// SuspectAfter).
	SuspectAfter time.Duration
	DownAfter    time.Duration
	// Logger receives state-transition records (nil = slog.Default()).
	Logger *slog.Logger
	// Clock is injectable for tests (nil = time.Now).
	Clock func() time.Time
}

// record is a member plus the directory's bookkeeping about it.
type record struct {
	m        Member
	state    State
	lastSeen time.Time // zero: static member that never heartbeated
}

// Directory is the gateway-side membership table. All methods are
// safe for concurrent use; the Directory never calls back into its
// caller, so holding caller locks across Directory calls is safe.
type Directory struct {
	path         string
	suspectAfter time.Duration
	downAfter    time.Duration
	log          *slog.Logger
	clock        func() time.Time

	mu      sync.Mutex
	epoch   uint64
	members map[string]*record
}

// tableDoc is the persisted JSON shape.
type tableDoc struct {
	Version int          `json:"version"`
	Epoch   uint64       `json:"epoch"`
	Members []MemberInfo `json:"members"`
}

const tableVersion = 1

// Open creates a Directory, reloading the persisted table when
// cfg.Path names an existing file. Reloaded members keep their state —
// in particular a member marked down stays down (and out of routing)
// until it heartbeats — except that suspicion does not survive a
// restart: a suspect reloads as alive with a fresh grace period, since
// the silence may have been the gateway's own downtime.
func Open(cfg Config) (*Directory, error) {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 6 * time.Second
	}
	if cfg.DownAfter < cfg.SuspectAfter {
		if cfg.DownAfter > 0 {
			cfg.DownAfter = cfg.SuspectAfter
		} else {
			cfg.DownAfter = 20 * time.Second
		}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	d := &Directory{
		path:         cfg.Path,
		suspectAfter: cfg.SuspectAfter,
		downAfter:    cfg.DownAfter,
		log:          cfg.Logger,
		clock:        cfg.Clock,
		members:      make(map[string]*record),
	}
	if cfg.Path == "" {
		return d, nil
	}
	raw, err := os.ReadFile(cfg.Path)
	if errors.Is(err, os.ErrNotExist) {
		return d, nil
	}
	if err != nil {
		return nil, fmt.Errorf("membership: reading route table: %w", err)
	}
	var doc tableDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("membership: parsing route table %s: %w", cfg.Path, err)
	}
	if doc.Version != tableVersion {
		return nil, fmt.Errorf("membership: route table %s has version %d, want %d", cfg.Path, doc.Version, tableVersion)
	}
	now := d.clock()
	for _, mi := range doc.Members {
		if mi.Name == "" {
			return nil, fmt.Errorf("membership: route table %s has a member without a name", cfg.Path)
		}
		st := mi.State
		if st != StateDown {
			st = StateAlive
		}
		last := now
		if mi.Static {
			last = time.Time{} // static grace: exempt until first heartbeat
		}
		d.members[mi.Name] = &record{m: mi.Member, state: st, lastSeen: last}
	}
	d.epoch = doc.Epoch
	return d, nil
}

// Epoch reports the current topology epoch. Zero means an empty,
// never-seeded directory.
func (d *Directory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

// Known reports whether name has been admitted (in any state).
func (d *Directory) Known(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.members[name]
	return ok
}

// Members snapshots the roster, sorted by name.
func (d *Directory) Members() []MemberInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rosterLocked()
}

func (d *Directory) rosterLocked() []MemberInfo {
	out := make([]MemberInfo, 0, len(d.members))
	for _, rec := range d.members {
		out = append(out, MemberInfo{Member: rec.m, State: rec.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RoutableSet reports the names currently in the routing set — every
// member not marked down. Suspects stay routable: suspicion is an
// early warning, and evicting on it would let one late heartbeat
// thrash the epoch (and migrate sessions) back and forth.
func (d *Directory) RoutableSet() map[string]bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]bool, len(d.members))
	for name, rec := range d.members {
		if rec.state != StateDown {
			out[name] = true
		}
	}
	return out
}

// StateCounts reports how many members sit in each state — the
// vexus_cluster_members{state} gauge.
func (d *Directory) StateCounts() map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := map[string]float64{string(StateAlive): 0, string(StateSuspect): 0, string(StateDown): 0}
	for _, rec := range d.members {
		out[string(rec.state)]++
	}
	return out
}

// SeedStatic admits the given members as static entries (exempt from
// failure detection until their first heartbeat). Already-known names
// keep their record — a restart re-seeding the same -shards list must
// not disturb the reloaded table — but gain the static mark. One epoch
// bump covers however many members the seed actually added, so a fresh
// N-shard gateway starts at epoch 1, not N.
func (d *Directory) SeedStatic(members []Member) {
	d.mu.Lock()
	defer d.mu.Unlock()
	added := false
	for _, m := range members {
		if rec, ok := d.members[m.Name]; ok {
			rec.m.Static = true
			if m.Addr != "" {
				rec.m.Addr = m.Addr
			}
			continue
		}
		m.Static = true
		d.members[m.Name] = &record{m: m, state: StateAlive}
		added = true
	}
	if added {
		d.bumpLocked("seed")
	}
}

// Join admits a new member (the warm-join path: the caller has already
// streamed it an engine snapshot). Duplicate names are an error — the
// name is the rendezvous identity.
func (d *Directory) Join(m Member) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.members[m.Name]; dup {
		return fmt.Errorf("membership: member %q already present", m.Name)
	}
	d.members[m.Name] = &record{m: m, state: StateAlive, lastSeen: d.clock()}
	d.bumpLocked("join " + m.Name)
	return nil
}

// Remove drops a member (drain completed, or operator acknowledgment
// of a dead shard). Reports whether the member was known.
func (d *Directory) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.members[name]; !ok {
		return false
	}
	delete(d.members, name)
	d.bumpLocked("remove " + name)
	return true
}

// Heartbeat processes one announcement: refresh liveness and metadata,
// and return the gossip ack. recovered reports a down→alive
// transition, which re-enters the member into the routing set (and
// bumps the epoch). Unknown members are rejected with
// ErrUnknownMember — admission is Join's job.
func (d *Directory) Heartbeat(m Member) (Ack, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rec, ok := d.members[m.Name]
	if !ok {
		return Ack{}, false, fmt.Errorf("%w: %q", ErrUnknownMember, m.Name)
	}
	rec.lastSeen = d.clock()
	if m.Addr != "" {
		rec.m.Addr = m.Addr
	}
	rec.m.Sessions = m.Sessions
	rec.m.Engines = m.Engines
	recovered := rec.state == StateDown
	if rec.state != StateAlive {
		from := rec.state
		rec.state = StateAlive
		if recovered {
			d.bumpLocked("recover " + m.Name)
		} else {
			d.persistLocked()
		}
		d.log.Info("membership: member "+string(from)+" -> alive", "member", m.Name, "epoch", d.epoch)
	}
	return Ack{Epoch: d.epoch, Members: d.rosterLocked()}, recovered, nil
}

// Sweep runs failure detection against the clock and returns the
// transitions it performed (alive→suspect, suspect→down), in member
// name order. Static members that have never heartbeated are exempt.
// A member marked down leaves the routing set and the epoch bumps —
// the caller is expected to fail its routes closed (internal/cluster
// drops them, so the sessions read as expired, never as misrouted).
func (d *Directory) Sweep() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock()
	var events []Event
	names := make([]string, 0, len(d.members))
	for name := range d.members {
		names = append(names, name)
	}
	sort.Strings(names)
	changed := false
	for _, name := range names {
		rec := d.members[name]
		if rec.lastSeen.IsZero() {
			continue // static, never heartbeated
		}
		silent := now.Sub(rec.lastSeen)
		switch {
		case silent >= d.downAfter && rec.state != StateDown:
			from := rec.state
			rec.state = StateDown
			d.epoch++
			changed = true
			events = append(events, Event{Name: name, From: from, To: StateDown, Epoch: d.epoch})
			d.log.Warn("membership: member down (heartbeats stopped)", "member", name, "silent", silent.Round(time.Millisecond), "epoch", d.epoch)
		case silent >= d.suspectAfter && rec.state == StateAlive:
			rec.state = StateSuspect
			changed = true
			events = append(events, Event{Name: name, From: StateAlive, To: StateSuspect, Epoch: d.epoch})
			d.log.Info("membership: member suspect", "member", name, "silent", silent.Round(time.Millisecond))
		}
	}
	if changed {
		d.persistLocked()
	}
	return events
}

// Down lists members currently marked down, sorted — what the
// gateway's readyz names until an operator drains or removes them.
func (d *Directory) Down() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for name, rec := range d.members {
		if rec.state == StateDown {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// bumpLocked advances the epoch for a routing-set change and persists.
func (d *Directory) bumpLocked(why string) {
	d.epoch++
	d.log.Debug("membership: epoch advanced", "epoch", d.epoch, "change", why)
	d.persistLocked()
}

// persistLocked writes the table atomically (temp + rename, the same
// discipline as store.SaveFile). Persistence failures are logged, not
// fatal: the in-memory table is still correct, and the next transition
// retries.
func (d *Directory) persistLocked() {
	if d.path == "" {
		return
	}
	doc := tableDoc{Version: tableVersion, Epoch: d.epoch, Members: d.rosterLocked()}
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		d.log.Warn("membership: encoding route table", "err", err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(d.path), ".routes-*.tmp")
	if err != nil {
		d.log.Warn("membership: persisting route table", "err", err)
		return
	}
	_, werr := tmp.Write(append(raw, '\n'))
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		d.log.Warn("membership: persisting route table", "path", d.path, "err", werr)
	}
}
