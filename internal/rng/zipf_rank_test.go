package rng

import (
	"math"
	"testing"
)

// TestZipfRankFrequency is the property the loadsim arrival model
// leans on: empirical rank frequencies of the sampler match the
// analytic 1/(rank+1)^s mass. Head ranks (where the mass concentrates
// and the law of large numbers bites hardest) must match within a few
// percent relative error; the whole distribution must match in total
// variation distance.
func TestZipfRankFrequency(t *testing.T) {
	const (
		n       = 500
		s       = 1.1
		samples = 400000
	)
	z := NewZipf(New(12345), s, n)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.Next()]++
	}

	// Head ranks: each carries enough mass that a 5% relative band is
	// thousands of standard deviations wide of a broken sampler but
	// comfortably loose for sampling noise at 4e5 draws.
	for rank := 0; rank < 20; rank++ {
		want := z.Prob(rank)
		got := float64(counts[rank]) / samples
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("rank %d: empirical %.5f vs analytic %.5f (rel err %.3f)", rank, got, want, rel)
		}
	}

	// Whole distribution: total variation distance. For a correct
	// sampler this is O(sqrt(n/samples)) ~ 0.02; a mis-normalized CDF
	// or off-by-one rank shift blows it past 0.1 immediately.
	tv := 0.0
	for rank := 0; rank < n; rank++ {
		tv += math.Abs(float64(counts[rank])/samples - z.Prob(rank))
	}
	tv /= 2
	if tv > 0.03 {
		t.Errorf("total variation distance %.4f exceeds 0.03", tv)
	}

	// Rank-frequency monotonicity in aggregate: the head must out-draw
	// the tail by roughly the analytic ratio.
	head := counts[0]
	tail := counts[n-1]
	if head <= tail {
		t.Errorf("rank 0 drawn %d times, rank %d drawn %d — Zipf head/tail inverted", head, n-1, tail)
	}
}
