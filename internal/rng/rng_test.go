package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children correlated: %d/100", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	n := 200_000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(19)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := New(23)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[r.WeightedChoice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("uniform fallback never chose index %d", i)
		}
	}
}

func TestWeightedChoiceNegativeTreatedZero(t *testing.T) {
	r := New(29)
	for i := 0; i < 1000; i++ {
		if got := r.WeightedChoice([]float64{-5, 1}); got == 0 {
			t.Fatal("negative weight index chosen")
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(31)
	s := r.SampleWithoutReplacement(100, 10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid sample %v", s)
		}
		seen[v] = true
	}
	// k >= n degenerates to a permutation.
	all := r.SampleWithoutReplacement(5, 9)
	if len(all) != 5 {
		t.Fatalf("k>=n: len = %d, want 5", len(all))
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	n := 200_000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf not monotone: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
	// Rank 0 should dominate: ~1/H(1000) ≈ 13% of mass at s=1.
	frac := float64(counts[0]) / float64(n)
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("rank-0 mass = %v, want ≈0.13", frac)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(New(41), 1.2, 50)
	sum := 0.0
	for i := 0; i < 50; i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(50) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 1, 0)
}
