package rng

import "testing"

func TestDeriveDeterminism(t *testing.T) {
	a, b := Derive(42, 7), Derive(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
}

// TestDeriveStreamCollision pins the property the old magic-prime
// derivation lacked: across a wide span of streams — including dense
// low indices, and separate high-bit family bases like the ones
// internal/simulate and internal/loadsim use — no two streams of one
// seed land on the same generator state.
func TestDeriveStreamCollision(t *testing.T) {
	const perFamily = 50000
	families := []uint64{0, 1 << 40, 2 << 40, 3 << 40, 9 << 40}
	seen := make(map[uint64]uint64, perFamily*len(families))
	for _, base := range families {
		for i := uint64(0); i < perFamily; i++ {
			stream := base | i
			v := Derive(42, stream).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %#x and %#x collided on first output %#x", prev, stream, v)
			}
			seen[v] = stream
		}
	}
}

// Distinct seeds must yield distinct streams too — Derive mixes both
// inputs, so (seed, stream) and (seed', stream) never alias in bulk.
func TestDeriveSeedSeparation(t *testing.T) {
	same := 0
	for s := uint64(0); s < 1000; s++ {
		a, b := Derive(s, 3), Derive(s+1, 3)
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds aliased %d/1000 times", same)
	}
}
