package rng

import "math"

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Item popularity in rating datasets such as BookCrossing
// is strongly Zipfian, which is what makes group mining non-trivial:
// a handful of items appear in most transactions while the tail is
// sparse. The sampler precomputes the CDF, so each draw is a binary
// search: O(log n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over n ranks with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(r *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: Zipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	return &Zipf{cdf: cdf, rng: r}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N()).
func (z *Zipf) Next() int {
	x := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
