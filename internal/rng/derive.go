package rng

// Derive returns an independent generator for one logical stream of a
// seeded computation: stream i of seed s always yields the same
// generator, and distinct streams of one seed are statistically
// independent. It replaces the ad-hoc `New(seed + i*prime)` pattern —
// additive prime offsets keep nearby seeds nearby in state space and
// silently collide when two call sites pick the same prime — with a
// splitmix64 finalizer over seed and stream, whose full-avalanche
// mixing decorrelates both neighboring seeds and neighboring streams.
//
// Callers that derive several stream families from one seed (per-task
// batches, per-user workloads) should space the families apart in the
// 64-bit stream domain, e.g. `familyBase | uint64(i)` with distinct
// high-bit bases, so indices never overlap across families.
func Derive(seed, stream uint64) *RNG {
	// stream+1 keeps stream 0 from degenerating to a plain xor of the
	// seed; the golden-ratio multiplier spreads consecutive streams
	// across the state space before the finalizer mixes.
	x := seed ^ (stream+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return New(x)
}
