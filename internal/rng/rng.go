// Package rng provides deterministic, splittable pseudo-randomness for
// every stochastic component of VEXUS (data generation, simulated
// explorers, layout jitter). All experiment rows in EXPERIMENTS.md are
// reproducible because every random draw flows from an explicit seed
// through this package.
//
// The generator is xorshift64* — tiny, fast, and good enough for
// simulation workloads (not cryptographic).
package rng

import "math"

// RNG is a deterministic pseudo-random generator. The zero value is not
// usable; construct with New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has a zero fixed point.
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	r := &RNG{state: seed}
	// Warm up so that small consecutive seeds decorrelate.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Split derives an independent child generator. Children with distinct
// labels from the same parent produce decorrelated streams, which lets
// each experiment component own its stream without global sequencing.
func (r *RNG) Split(label uint64) *RNG {
	return New(r.Uint64() ^ (label * 0xBF58476D1CE4E5B9))
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 1e-300 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly random index into a slice of length n.
func (r *RNG) Choice(n int) int { return r.Intn(n) }

// WeightedChoice returns index i with probability weights[i]/sum(weights).
// Negative weights are treated as zero. If all weights are zero it falls
// back to a uniform choice. It panics on an empty slice.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: WeightedChoice with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n)
// in random order. If k >= n it returns a permutation of [0, n).
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Partial Fisher–Yates over an index table; O(n) memory, O(k) swaps.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
