package cluster

import "hash/fnv"

// Placement is rendezvous (highest-random-weight) hashing: every
// shard/session pair gets a deterministic 64-bit score and the session
// belongs to the highest-scoring shard. Two properties make it the
// right shape for session routing:
//
//   - Statelessness: any process that knows the shard names computes
//     the same owner for a sid — a gateway needs no routing table to
//     agree with its peers (the table it does keep is an optimization
//     and a migration latch, not the source of truth in steady state).
//   - Minimal disruption: removing a shard reassigns only the sessions
//     that lived on it, and adding one steals only the sessions it now
//     wins — exactly the set replay-based migration has to move.
func score(shard, sid string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(shard))
	_, _ = h.Write([]byte{0}) // separator: ("ab","c") ≠ ("a","bc")
	_, _ = h.Write([]byte(sid))
	return h.Sum64()
}

// Owner returns the rendezvous winner for sid among the given shard
// names ("" when names is empty). Ties — vanishingly rare with 64-bit
// scores, but determinism must not hinge on rarity — break toward the
// lexicographically smallest name.
func Owner(names []string, sid string) string {
	best := ""
	var bestScore uint64
	for _, n := range names {
		s := score(n, sid)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}
