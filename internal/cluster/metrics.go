package cluster

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"vexus/internal/telemetry"
)

// gatewayMetrics bundles the gateway's instruments — one per Gateway,
// mirroring serve's per-Catalog serverMetrics, so an in-process
// cluster (gateway + LocalShards in one binary) keeps every layer's
// metrics separate. All instrument fields are nil no-ops under
// telemetry.Disabled, which keeps instrumented call sites
// unconditional.
type gatewayMetrics struct {
	reg *telemetry.Registry
	log *slog.Logger

	http *telemetry.HTTPMetrics

	// latchWait is how long session-scoped requests blocked on the
	// per-session route latch — nonzero only when a request raced a
	// migration of its own session, so the histogram is the direct
	// measure of migration-induced client stall.
	latchWait *telemetry.Histogram

	migrations       *telemetry.Counter
	migrationSeconds *telemetry.Histogram

	// warmBytes / warmSeconds meter the warm-join snapshot pump: total
	// engine bytes streamed donor→joiner, and per-dataset transfer time.
	warmBytes   *telemetry.Counter
	warmSeconds *telemetry.Histogram
}

// newGatewayMetrics registers the gateway families on reg (nil = a
// fresh private registry; telemetry.Disabled = all no-ops).
func newGatewayMetrics(reg *telemetry.Registry, logger *slog.Logger) *gatewayMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &gatewayMetrics{
		reg:  reg,
		log:  logger,
		http: telemetry.NewHTTPMetrics(reg, "gateway", logger),

		latchWait: reg.Histogram("vexus_gateway_latch_wait_seconds",
			"Time session-scoped requests waited on the migration route latch.", nil),

		migrations: reg.Counter("vexus_gateway_migrations_total",
			"Sessions migrated between shards (export, replay import, delete)."),
		migrationSeconds: reg.Histogram("vexus_gateway_migration_seconds",
			"End-to-end session migration time.", telemetry.SlowBuckets),

		warmBytes: reg.Counter("vexus_cluster_warmjoin_bytes_total",
			"Engine snapshot bytes streamed to warm-joining shards."),
		warmSeconds: reg.Histogram("vexus_cluster_warmjoin_seconds",
			"Per-dataset warm-join snapshot transfer time.", telemetry.SlowBuckets),
	}
}

// handleHealthz is GET /api/v1/healthz on the gateway: pure liveness.
// Shard reachability is a readiness concern — a gateway with a dead
// shard should keep serving the shards it can reach, not get restarted.
func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is GET /api/v1/readyz on the gateway: ready means no
// member is marked down and every routable shard answers its own
// healthz. Down members are named first — gossip already knows they
// are gone, so the probe should say so without spending a dial timeout
// rediscovering it. The healthz polls run concurrently (the serial
// version made readyz latency the *sum* of shard round trips, which at
// N shards turned a liveness probe into the slowest endpoint on the
// gateway); the failure report stays deterministic by picking the
// first failing shard in sorted order.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if down := g.dir.Down(); len(down) > 0 {
		http.Error(w, "shard "+strings.Join(down, ", ")+" down (heartbeats stopped; drain or POST /api/v1/cluster/remove?shard=<name> to acknowledge)",
			http.StatusServiceUnavailable)
		return
	}
	shards := g.shardList()
	failures := make([]string, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			res, err := sh.do(http.MethodGet, "/api/v1/healthz", nil, nil)
			if err != nil {
				failures[i] = "shard " + sh.name + " unreachable: " + err.Error()
				return
			}
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				failures[i] = "shard " + sh.name + " not healthy: status " + strconv.Itoa(res.StatusCode)
			}
		}(i, sh)
	}
	wg.Wait()
	for _, f := range failures {
		if f != "" {
			http.Error(w, f, http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready\n"))
}

// metricsRollup sums every reachable shard's flattened metric snapshot
// (GET /internal/cluster/metrics) into one series→value map — the
// cluster-wide totals GET /api/v1/cluster reports. Histogram bucket
// series are dropped: summed buckets are still valid counts, but the
// rollup is a dashboard summary, and _sum/_count carry the aggregate
// story without the le-cardinality noise. Unreachable shards (or
// shards without the shard API) contribute nothing, matching the
// degrade-don't-502 stance of the other ops aggregations.
func (g *Gateway) metricsRollup() map[string]float64 {
	var out map[string]float64
	for _, sh := range g.shardList() {
		var snap map[string]float64
		if err := sh.getJSON("/internal/cluster/metrics", nil, &snap); err != nil {
			continue
		}
		for series, v := range snap {
			if strings.Contains(series, "_bucket{") {
				continue
			}
			if out == nil {
				out = make(map[string]float64, len(snap))
			}
			out[series] += v
		}
	}
	return out
}
