package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"vexus/internal/core"
	"vexus/internal/serve"
)

// Ingest fan-out. Every shard builds the same engine from the same
// spec, so an ingested batch must reach every shard — in the same
// sequence position — for the cluster to keep serving one logical
// dataset. The gateway is the sequencer: it sends the batch to the
// shards in sorted name order, lets the first shard assign the seq
// (when the client did not), pins that seq on every other shard, and
// verifies all shards report the same resulting engine version. Batch
// digests are content addresses, so same batch + same seq ⇒ the same
// lineage entry ⇒ bit-identical engines everywhere (the store.Load /
// core.Build contract the equivalence tests pin).
//
// One gateway-wide mutex serializes ingests across datasets. Ingests
// are rare, slow (each one is a rebuild) administrative writes;
// serializing them keeps the seq ladder trivially gap-free without a
// distributed lock.

// maxClusterIngestBody mirrors the shard-side request bound.
const maxClusterIngestBody = 8 << 20

// handleIngest is POST /api/v1/datasets/{name}/ingest on the gateway.
// ?preview=1 is read-only and proxies to one shard; a commit fans out
// to all of them.
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	raw, _ := io.ReadAll(io.LimitReader(r.Body, maxClusterIngestBody))
	r.Body.Close()
	path := "/api/v1/datasets/" + url.PathEscape(name) + "/ingest"

	if r.URL.Query().Get("preview") == "1" {
		shards := g.shardList()
		if len(shards) == 0 {
			http.Error(w, "no shard available", http.StatusBadGateway)
			return
		}
		res, err := shards[0].do(http.MethodPost, path+"?preview=1",
			traceHeader(r.Context(), http.Header{"Content-Type": {"application/json"}}), bytes.NewReader(raw))
		if err != nil {
			http.Error(w, "shard unreachable: "+err.Error(), http.StatusBadGateway)
			return
		}
		defer res.Body.Close()
		copyResponse(w, res, 0)
		return
	}

	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var b core.IngestBatch
	if err := dec.Decode(&b); err != nil {
		http.Error(w, "bad ingest batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if b.Empty() {
		http.Error(w, "empty ingest batch", http.StatusBadRequest)
		return
	}

	g.ingestMu.Lock()
	defer g.ingestMu.Unlock()

	var agg serve.IngestResult
	for i, sh := range g.shardList() {
		payload, err := json.Marshal(b)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		res, err := sh.do(http.MethodPost, path,
			traceHeader(r.Context(), http.Header{"Content-Type": {"application/json"}}), bytes.NewReader(payload))
		if err != nil {
			http.Error(w, fmt.Sprintf("shard %s unreachable: %v (retry with seq %d — replays are idempotent)",
				sh.name, err, b.Seq), http.StatusBadGateway)
			return
		}
		body, _ := io.ReadAll(io.LimitReader(res.Body, 64<<10))
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			if i == 0 {
				// The sequencer shard rejected the batch outright
				// (unknown dataset, seq conflict, validation): nothing
				// was applied anywhere — relay its verdict verbatim.
				w.WriteHeader(res.StatusCode)
				_, _ = w.Write(body)
				return
			}
			http.Error(w, fmt.Sprintf("shard %s rejected seq %d after %d shard(s) applied it: status %d: %s (retry with that seq to converge)",
				sh.name, b.Seq, i, res.StatusCode, body), http.StatusBadGateway)
			return
		}
		var ir serve.IngestResult
		if err := json.Unmarshal(body, &ir); err != nil {
			http.Error(w, fmt.Sprintf("shard %s: bad ingest response: %v", sh.name, err), http.StatusBadGateway)
			return
		}
		if i == 0 {
			// The first shard is the sequencer: whatever seq it assigned
			// (or confirmed) is pinned on every remaining shard, so all
			// of them fold the identical batch at the identical position.
			b.Seq = ir.Seq
			agg = ir
			continue
		}
		if ir.Seq != agg.Seq || ir.EngineVersion != agg.EngineVersion {
			http.Error(w, fmt.Sprintf("cluster divergence: shard %s at seq %d version %d, expected seq %d version %d",
				sh.name, ir.Seq, ir.EngineVersion, agg.Seq, agg.EngineVersion), http.StatusBadGateway)
			return
		}
		// Sessions live on different shards; the touched-session count
		// is the cluster-wide sum. AlreadyApplied only holds when every
		// shard had already seen the seq.
		agg.Notified += ir.Notified
		agg.AlreadyApplied = agg.AlreadyApplied && ir.AlreadyApplied
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(agg)
}
