package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/dataset"
	"vexus/internal/serve"
)

// clusterBatch is the fan-out test batch against the dbauthors fixture.
func clusterBatch() core.IngestBatch {
	return core.IngestBatch{
		Users: []dataset.NewUser{
			{ID: "joiner1", Demo: map[string]string{
				"gender": "female", "seniority": "junior", "country": "fr", "topic": "databases",
			}, Numeric: map[string]float64{"pubrate": 3}},
			{ID: "joiner2", Demo: map[string]string{
				"gender": "male", "seniority": "senior", "country": "us", "topic": "data mining",
			}, Numeric: map[string]float64{"pubrate": 40}},
		},
		Actions: []dataset.NewAction{
			{User: "joiner1", Item: "SIGMOD", Value: 1, Time: 2018},
			{User: "joiner2", Item: "KDD", Value: 1, Time: 2018},
			{User: "author00001", Item: "VLDB", Value: 1, Time: 2018},
		},
	}
}

func postIngestAt(t testing.TB, base, name, query string, b core.IngestBatch) (serve.IngestResult, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+"/api/v1/datasets/"+name+"/ingest"+query, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out serve.IngestResult
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("ingest response: %v", err)
		}
	}
	return out, res
}

// TestGatewayIngestConvergence pins the clustered half of the live-
// dataset contract: one POST through the gateway lands the batch on
// every shard at the same seq, all shards converge on the same engine
// version, the result matches a single-node ingest of the same batch,
// and sessions opened before the ingest keep exploring their pinned
// version.
func TestGatewayIngestConvergence(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 2)

	// A pre-ingest session: it must survive the swap untouched.
	st, _ := createV1(t, ts.URL)

	b := clusterBatch()
	res, hres := postIngestAt(t, ts.URL, "default", "", b)
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("gateway ingest status %d", hres.StatusCode)
	}
	if res.Seq != 1 || res.EngineVersion != 2 {
		t.Fatalf("gateway ingest result %+v, want seq 1 → version 2", res)
	}

	// Every shard reports the same new version.
	for _, sh := range gw.shardList() {
		var body datasetsDTO
		if err := sh.getJSON("/api/datasets", nil, &body); err != nil {
			t.Fatalf("shard %s: %v", sh.name, err)
		}
		if len(body.Datasets) != 1 || body.Datasets[0].Version != 2 {
			t.Fatalf("shard %s listing %+v, want engine version 2", sh.name, body.Datasets)
		}
		if body.Datasets[0].Users != 302 {
			t.Fatalf("shard %s has %d users, want 302", sh.name, body.Datasets[0].Users)
		}
	}
	// The merged listing agrees.
	var merged datasetsDTO
	getJSON(t, ts.URL+"/api/datasets", &merged)
	if len(merged.Datasets) != 1 || merged.Datasets[0].Version != 2 {
		t.Fatalf("merged listing %+v, want one dataset at version 2", merged.Datasets)
	}

	// Same batch at the same seq on a standalone node: identical verdict.
	single := httptest.NewServer(shardServer(t, eng).Routes())
	defer single.Close()
	sb := clusterBatch()
	sb.Seq = 1
	sres, shres := postIngestAt(t, single.URL, "default", "", sb)
	if shres.StatusCode != http.StatusOK {
		t.Fatalf("single-node ingest status %d", shres.StatusCode)
	}
	if sres.EngineVersion != res.EngineVersion || sres.Groups != res.Groups ||
		sres.NewGroups != res.NewGroups || sres.ChangedGroups != res.ChangedGroups {
		t.Fatalf("cluster result %+v diverges from single-node %+v", res, sres)
	}

	// Idempotent retry: replaying the committed seq acks on every shard.
	rb := clusterBatch()
	rb.Seq = 1
	res, hres = postIngestAt(t, ts.URL, "default", "", rb)
	if hres.StatusCode != http.StatusOK || !res.AlreadyApplied || res.EngineVersion != 2 {
		t.Fatalf("replay: status %d result %+v, want alreadyApplied at version 2", hres.StatusCode, res)
	}

	// The sequencer's rejections relay verbatim.
	gap := clusterBatch()
	gap.Seq = 9
	if _, hres = postIngestAt(t, ts.URL, "default", "", gap); hres.StatusCode != http.StatusConflict {
		t.Fatalf("seq gap: status %d, want 409", hres.StatusCode)
	}
	if _, hres = postIngestAt(t, ts.URL, "default", "", core.IngestBatch{}); hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", hres.StatusCode)
	}
	if _, hres = postIngestAt(t, ts.URL, "nope", "", clusterBatch()); hres.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", hres.StatusCode)
	}

	// The pre-ingest session continues on its pinned engine, mutation
	// counter unbroken.
	if len(st.Shown) == 0 {
		t.Fatal("session shows no groups")
	}
	_, _, etag := applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st.Shown[0].ID})
	if got := mutations(t, etag, st.Session); got != 2 {
		t.Fatalf("post-ingest mutation counter %d, want 2", got)
	}

	// New sessions land on the new generation — on whichever shard.
	st2, _ := createV1(t, ts.URL)
	if len(st2.Shown) == 0 {
		t.Fatal("post-ingest session shows no groups")
	}

	// Preview proxies read-only to one shard. The batch needs users the
	// committed one did not introduce — it appends to the live engine.
	pb := core.IngestBatch{
		Users: []dataset.NewUser{{ID: "joiner3", Demo: map[string]string{"gender": "female"}}},
		Actions: []dataset.NewAction{
			{User: "joiner3", Item: "ICDE", Value: 1, Time: 2019},
		},
	}
	pres, err := http.Post(ts.URL+"/api/v1/datasets/default/ingest?preview=1", "application/json",
		bytes.NewReader(mustJSON(t, pb)))
	if err != nil {
		t.Fatal(err)
	}
	defer pres.Body.Close()
	if pres.StatusCode != http.StatusOK {
		t.Fatalf("gateway preview status %d", pres.StatusCode)
	}
	var prev struct {
		Candidates []struct {
			Label string `json:"label"`
		} `json:"candidates"`
	}
	if err := json.NewDecoder(pres.Body).Decode(&prev); err != nil {
		t.Fatal(err)
	}
	if len(prev.Candidates) == 0 {
		t.Fatal("gateway preview found no candidates")
	}
}

func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
