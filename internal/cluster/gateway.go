// Package cluster shards VEXUS session serving across processes. The
// paper's exploration loop makes every session a long-lived, mutable
// conversation — the natural unit of distribution — and PR 4 made
// sessions fully replayable action logs, which makes them *cheap to
// move*: export the log, replay it on another shard, and the mutation
// counter (hence the `"<sid>.<mutations>"` ETag stream clients
// revalidate against) lands exactly where it left off.
//
// The layering follows the reactor/switch split of peer-routed
// systems: a Gateway owns routing and topology but no session state,
// and shards own sessions but know nothing of each other. Session ids
// map to shards by rendezvous hashing (hash.go), the gateway proxies
// the public /api and /api/v1 surface sticky-by-sid, and topology
// changes (Join, Drain) move exactly the sessions the hash reassigns
// via export → replay → delete, blocking traffic only per migrating
// session, never globally.
//
// Determinism contract: a migrated session is byte-identical to one
// that never moved provided every shard serves a bit-identical engine
// (the core.Build / store.Load contract — same dataset spec, any
// worker count) and the optimizer config is deterministic
// (greedy.Config.TimeLimit = 0, as for save/load replay). The
// equivalence tests pin this at workers 1, 2 and 8.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"vexus/internal/membership"
	"vexus/internal/serve"
	"vexus/internal/telemetry"
)

// Gateway fronts a set of shards: it terminates the public HTTP
// surface, routes every session-scoped request to the owning shard,
// aggregates the ops endpoints across shards, and orchestrates
// replay-based migration when the shard set changes.
type Gateway struct {
	// topo serializes topology changes (Join/Drain) and the route
	// sweep: concurrent rebalances would compute owners against sets
	// mid-change.
	topo sync.Mutex

	// place fences session placement against drains: a create holds it
	// shared from the eligibility snapshot until the route is
	// recorded, and Drain holds it exclusively (briefly) when marking
	// a shard draining — so once the mark is visible, no in-flight
	// create can still land a session on the draining shard after its
	// migration sweep listed it.
	place sync.RWMutex

	// mu guards the maps below; it is never held across a proxied
	// request or a migration step.
	mu       sync.RWMutex
	shards   map[string]*Shard
	draining map[string]bool
	routes   map[string]*route // sid → residency (gateway-observed)

	// ingestMu serializes dataset ingests through this gateway: one
	// batch fans out to every shard (in sorted order, under one seq)
	// before the next starts, keeping the per-dataset seq ladder
	// gap-free without cross-shard coordination.
	ingestMu sync.Mutex

	stopOnce sync.Once
	stop     chan struct{}

	// dir is the membership directory: the durable, epoch-versioned
	// member roster failure detection and routing eligibility read from.
	// g.shards holds the *clients*; dir holds the *truth* about who is
	// in the cluster and routable. Lock order is g.mu → dir's internal
	// mutex (the Directory never calls back into the gateway).
	dir *membership.Directory
	// secret is the cluster shared secret; stamped onto secretless
	// shards at admission and required on /internal/cluster/* inbound.
	secret string
	// dial materializes a client for a member known only by roster
	// entry (persisted table reload, recovery heartbeat).
	dial func(name, addr string) *Shard
	// mintSID draws session ids for handleCreate (GatewayConfig.MintSID;
	// serve.NewSessionID by default).
	mintSID func() string

	// met is the gateway's telemetry bundle (never nil; all instruments
	// are no-ops under telemetry.Disabled).
	met *gatewayMetrics
}

// GatewayConfig carries the gateway's observability wiring. The zero
// value is fully usable: a fresh private registry and slog.Default().
type GatewayConfig struct {
	// Telemetry receives the gateway's metric families. nil means a
	// fresh private registry (metrics still collected, exposed on the
	// gateway's /metrics); telemetry.Disabled turns every instrument
	// into a no-op and leaves Routes() unwrapped.
	Telemetry *telemetry.Registry
	// Logger receives request/migration span records (Debug level).
	// nil means slog.Default().
	Logger *slog.Logger
	// Secret is the cluster shared secret: required (constant-time
	// compare) on every /internal/cluster/* request the gateway serves,
	// and attached to every hop it makes to a shard. "" disables the
	// check — single-trust-domain deployments and in-process tests.
	Secret string
	// RoutesPath persists the membership route table (epoch + roster)
	// atomically on every topology change; on restart the gateway
	// reloads it and resumes routing at the saved epoch without asking
	// any shard anything. "" keeps the table in memory only.
	RoutesPath string
	// SuspectAfter / DownAfter tune failure detection (zero = the
	// membership defaults, 6s / 20s).
	SuspectAfter time.Duration
	DownAfter    time.Duration
	// Dial materializes a Shard client for a member the gateway knows
	// only from the persisted roster (or a recovery heartbeat). nil
	// means RemoteShard(name, addr).WithSecret(Secret); returning nil
	// skips the member (it stays on the roster but cannot be routed to
	// until it is dialable). Tests use this to hand back in-process
	// shards.
	Dial func(name, addr string) *Shard
	// Clock overrides the time source failure detection reads (nil =
	// time.Now). Deterministic harnesses (internal/loadsim) drive it
	// with a virtual tick clock so suspect→down transitions happen at
	// scripted ticks instead of wall-clock moments.
	Clock func() time.Time
	// MintSID overrides session-id minting on create (nil =
	// serve.NewSessionID, 128 bits of crypto/rand). Deterministic
	// harnesses supply sequenced ids so rendezvous placement — a pure
	// function of the sid — is reproducible run to run.
	MintSID func() string
	// ManualSweep disables the background route/membership sweeper
	// goroutine; the owner drives detection explicitly through
	// SweepMembership/SweepRoutes. Combined with Clock this makes
	// failure detection a deterministic function of the call schedule.
	ManualSweep bool
}

// route pins one session's residency. Its lock is the migration
// latch: requests hold it shared while proxying, a migration holds it
// exclusively across export/import/delete — so a client never
// observes the moving session at all, just a slightly slower request
// that lands on the new owner.
type route struct {
	mu    sync.RWMutex
	shard string
}

// NewGateway assembles a gateway over the given shards (at least
// one; names must be unique) with default observability wiring.
func NewGateway(shards ...*Shard) (*Gateway, error) {
	return NewGatewayConfig(GatewayConfig{}, shards...)
}

// NewGatewayConfig is NewGateway with explicit telemetry, logging,
// membership and auth wiring. The shard set is the union of the static
// arguments and the persisted roster at cfg.RoutesPath: reloaded
// members are re-dialed from their saved addresses (constructing a
// client only — no request leaves the gateway), so a restarted gateway
// routes at the saved epoch immediately.
func NewGatewayConfig(cfg GatewayConfig, shards ...*Shard) (*Gateway, error) {
	dir, err := membership.Open(membership.Config{
		Path:         cfg.RoutesPath,
		SuspectAfter: cfg.SuspectAfter,
		DownAfter:    cfg.DownAfter,
		Logger:       cfg.Logger,
		Clock:        cfg.Clock,
	})
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		shards:   make(map[string]*Shard, len(shards)),
		draining: make(map[string]bool),
		routes:   make(map[string]*route),
		stop:     make(chan struct{}),
		dir:      dir,
		secret:   cfg.Secret,
		met:      newGatewayMetrics(cfg.Telemetry, cfg.Logger),
	}
	g.mintSID = cfg.MintSID
	if g.mintSID == nil {
		g.mintSID = serve.NewSessionID
	}
	g.dial = cfg.Dial
	if g.dial == nil {
		g.dial = func(name, addr string) *Shard {
			if addr == "" {
				return nil
			}
			return RemoteShard(name, addr).WithSecret(cfg.Secret)
		}
	}
	// Topology and routing-table occupancy are read at scrape time —
	// both already live under g.mu (or the directory), so mirroring
	// them into gauges on every change would be a second source of
	// truth.
	g.met.reg.GaugeFunc("vexus_gateway_shards", "Shards in the routing set.", func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return float64(len(g.shards))
	})
	g.met.reg.GaugeFunc("vexus_gateway_routes", "Sessions with a pinned route entry.", func() float64 {
		g.mu.RLock()
		defer g.mu.RUnlock()
		return float64(len(g.routes))
	})
	g.met.reg.GaugeFunc("vexus_cluster_epoch", "Topology epoch: advances on every routing-set change.", func() float64 {
		return float64(g.dir.Epoch())
	})
	g.met.reg.GaugeVecFunc("vexus_cluster_members", "Cluster members by liveness state.", "state", g.dir.StateCounts)

	static := make([]membership.Member, 0, len(shards))
	for _, s := range shards {
		if _, dup := g.shards[s.name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.name)
		}
		if s.secret == "" {
			s.secret = cfg.Secret
		}
		g.shards[s.name] = s
		static = append(static, membership.Member{Name: s.name, Addr: s.addr})
	}
	// Members known only from the persisted table are re-dialed from
	// their saved address; a member the dialer declines stays on the
	// roster (and in the epoch) but cannot be proxied to until it
	// heartbeats with a dialable address.
	for _, mi := range dir.Members() {
		if _, ok := g.shards[mi.Name]; ok {
			continue
		}
		sh := g.dial(mi.Name, mi.Addr)
		if sh == nil {
			g.met.log.Warn("cluster: persisted member has no dialable address", "member", mi.Name)
			continue
		}
		if sh.secret == "" {
			sh.secret = cfg.Secret
		}
		g.shards[sh.name] = sh
	}
	dir.SeedStatic(static)
	if len(g.shards) == 0 {
		return nil, errors.New("cluster: a gateway needs at least one shard (static, or reloaded from -routes)")
	}
	// Routes for sessions that expire shard-side (TTL, LRU) and are
	// never requested again would otherwise accumulate forever; the
	// sweeper reconciles the table against shard residency. The
	// membership sweeper runs failure detection on its own, faster
	// clock — a fraction of the suspect horizon, so a silent shard is
	// noticed within one horizon, not one horizon plus a sweep period.
	if cfg.ManualSweep {
		return g, nil
	}
	memberSweep := cfg.SuspectAfter
	if memberSweep <= 0 {
		memberSweep = 6 * time.Second
	}
	memberSweep /= 3
	if memberSweep < 200*time.Millisecond {
		memberSweep = 200 * time.Millisecond
	}
	go func() {
		routeT := time.NewTicker(routeSweepInterval)
		memberT := time.NewTicker(memberSweep)
		defer routeT.Stop()
		defer memberT.Stop()
		for {
			select {
			case <-routeT.C:
				g.sweepRoutes()
			case <-memberT.C:
				g.sweepMembership()
			case <-g.stop:
				return
			}
		}
	}()
	return g, nil
}

// Close stops the gateway's background route sweeper (idempotent).
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
}

// routeSweepInterval paces the background route reconciliation; one
// listing call per shard per sweep, so frequent is cheap.
const routeSweepInterval = 5 * time.Minute

// sweepRoutes drops route entries whose session no longer lives on
// any shard (TTL expiry, LRU eviction, out-of-band deletion),
// returning how many it dropped. It holds the topology lock, so no
// migration runs mid-sweep; a session created while the sweep is
// listing may be dropped spuriously, which is harmless — its next
// request falls back to the rendezvous owner, which is exactly where
// creation placed it.
func (g *Gateway) sweepRoutes() int {
	g.topo.Lock()
	defer g.topo.Unlock()
	live := make(map[string]bool)
	for _, sh := range g.shardList() {
		list, err := sh.sessions()
		if err != nil {
			// An unreachable shard hides its sessions; dropping their
			// routes would misroute once it recovers. Skip the sweep.
			return 0
		}
		for _, info := range list {
			live[info.Session] = true
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	dropped := 0
	for sid := range g.routes {
		if !live[sid] {
			delete(g.routes, sid)
			dropped++
		}
	}
	return dropped
}

// Routes returns the gateway's HTTP surface: the public API proxied
// sticky-by-sid, plus the cluster ops endpoints.
func (g *Gateway) Routes() http.Handler {
	mux := http.NewServeMux()
	// handle registers pattern behind the telemetry middleware, which
	// counts and times the request and mints (or adopts) the
	// X-Vexus-Trace id — set on the request header, so proxy hops that
	// forward r.Header carry it to the shard's own middleware for free.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, g.met.http.Wrap(pattern, h))
	}
	handle("GET /", serve.Index)

	// Session lifecycle: creation picks the shard by hashing a
	// gateway-minted sid; deletion follows the sid and drops the route.
	handle("POST /api/v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		g.handleCreate(w, r, http.StatusCreated)
	})
	handle("POST /api/session", func(w http.ResponseWriter, r *http.Request) {
		g.handleCreate(w, r, http.StatusOK)
	})
	handle("DELETE /api/v1/sessions/{sid}", g.bySID(pathSID))
	handle("DELETE /api/session", g.bySID(querySID))

	// Session-scoped traffic: proxied to the owner, verbatim. The SSE
	// diff stream has its own pass-through: it must not pin the
	// session's migration latch for the stream's lifetime.
	handle("GET /api/v1/sessions/{sid}/state", g.bySID(pathSID))
	handle("GET /api/v1/sessions/{sid}/events", g.handleEvents)
	handle("POST /api/v1/sessions/{sid}/actions", g.bySID(pathSID))
	handle("GET /api/v1/state", g.bySID(querySID))
	handle("GET /api/state", g.bySID(querySID))
	handle("GET /api/groupviz.svg", g.bySID(querySID))
	handle("GET /api/focus.svg", g.bySID(querySID))

	// Live datasets: ingestion fans out to every shard under one
	// gateway-assigned seq (ingest.go).
	handle("POST /api/v1/datasets/{name}/ingest", g.handleIngest)

	// Membership: shards announce themselves here. Auth-gated like
	// every /internal/cluster/* surface — membership is how routing
	// decisions are made, so it is exactly what the shared secret must
	// protect.
	mux.Handle("POST /internal/cluster/heartbeat",
		g.met.http.Wrap("POST /internal/cluster/heartbeat",
			membership.Require(g.secret, http.HandlerFunc(g.handleHeartbeat))))

	// Ops: cross-shard aggregation and topology.
	handle("GET /api/sessions", g.handleSessions)
	handle("GET /api/datasets", g.handleDatasets)
	handle("GET /api/v1/cluster", g.handleClusterStatus)
	handle("POST /api/v1/cluster/drain", g.handleDrain)
	handle("POST /api/v1/cluster/join", g.handleJoin)
	handle("POST /api/v1/cluster/remove", g.handleRemove)

	// Observability surface. /metrics serves the gateway's own registry
	// uninstrumented (scrapes must not inflate request counts); the
	// per-shard cluster rollup rides on GET /api/v1/cluster.
	handle("GET /api/v1/healthz", g.handleHealthz)
	handle("GET /api/v1/readyz", g.handleReadyz)
	mux.Handle("GET /metrics", g.met.reg.Handler())
	return mux
}

// pathSID / querySID extract the session id from the two addressing
// shapes the API supports.
func pathSID(r *http.Request) string  { return r.PathValue("sid") }
func querySID(r *http.Request) string { return r.FormValue("sid") }

// bySID wraps a handler that proxies the request to the shard owning
// the extracted session id.
func (g *Gateway) bySID(sid func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := sid(r)
		if id == "" {
			http.Error(w, "missing session id (create one with POST /api/v1/sessions)", http.StatusBadRequest)
			return
		}
		sh, release := g.acquire(id)
		defer release()
		if sh == nil {
			http.Error(w, "no shard available", http.StatusBadGateway)
			return
		}
		status := g.proxy(w, r, sh, r.URL.RequestURI())
		// A 404 means the shard no longer holds the session (TTL
		// expiry, LRU eviction, delete): drop any stale route eagerly.
		// 204 is the delete path's success. Routes of expired sessions
		// nobody asks about again are reclaimed by the sweeper.
		if status == http.StatusNotFound || status == http.StatusNoContent {
			g.dropRoute(id)
		}
	}
}

// acquire resolves a session id to its shard, holding the session's
// route shared until release — which blocks a concurrent migration of
// this session, and blocks *on* one already in flight, so the proxied
// request always observes a fully settled residency. Sids with no
// route entry (sessions from before a gateway restart, or garbage)
// are pinned to their rendezvous owner *before* proxying: every
// sid-routed request holds the latch, so a drain can never export a
// trail while an un-latched mutation is in flight behind it. Garbage
// entries this creates are dropped by the 404 hook in bySID or, for
// never-again-requested sids, by the route sweeper.
func (g *Gateway) acquire(sid string) (*Shard, func()) {
	g.mu.RLock()
	rt := g.routes[sid]
	if rt == nil {
		owner := Owner(g.namesLocked(true), sid)
		g.mu.RUnlock()
		if owner == "" {
			return nil, func() {}
		}
		rt = g.routeFor(sid, owner)
	} else {
		g.mu.RUnlock()
	}

	// The latch-wait histogram measures exactly the stall a migration
	// of this session imposes on its own requests; the nil check keeps
	// the disabled path free of clock reads.
	if h := g.met.latchWait; h != nil {
		waitStart := time.Now()
		rt.mu.RLock()
		h.Observe(time.Since(waitStart).Seconds())
	} else {
		rt.mu.RLock()
	}
	g.mu.RLock()
	sh := g.shards[rt.shard]
	g.mu.RUnlock()
	return sh, rt.mu.RUnlock
}

// traceHeader folds the request's trace id into header (which may be
// nil) for shard hops that assemble their own header set. proxy and
// the stream pass-through forward the client headers verbatim — the
// middleware already planted the trace there — so only the
// gateway-originated hops (create, ingest fan-out) need this.
func traceHeader(ctx context.Context, header http.Header) http.Header {
	id := telemetry.TraceID(ctx)
	if id == "" {
		return header
	}
	if header == nil {
		header = http.Header{}
	}
	header.Set(telemetry.TraceHeader, id)
	return header
}

// namesLocked lists the routable shard names — dialable members the
// directory has not marked down — all of them, or only those eligible
// for new placements (non-draining). This is the single point where
// membership state gates routing: a down member keeps its client in
// g.shards (so a recovery heartbeat re-enters it without re-dialing)
// but wins no rendezvous placement. Caller holds g.mu; the directory
// lock nests inside it.
func (g *Gateway) namesLocked(includeDraining bool) []string {
	routable := g.dir.RoutableSet()
	names := make([]string, 0, len(g.shards))
	for n := range g.shards {
		if !routable[n] {
			continue
		}
		if includeDraining || !g.draining[n] {
			names = append(names, n)
		}
	}
	return names
}

// proxy forwards the request to the shard under the given path+query
// and copies the response back verbatim, returning the status (0 when
// the shard was unreachable).
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request, sh *Shard, path string) int {
	res, err := sh.do(r.Method, path, r.Header, r.Body)
	if err != nil {
		http.Error(w, "shard unreachable: "+err.Error(), http.StatusBadGateway)
		return 0
	}
	defer res.Body.Close()
	return copyResponse(w, res, 0)
}

// copyResponse relays a shard response to the client; statusOverride
// (non-zero) replaces the status code — the legacy create endpoint
// answers 200 where the cluster-internal create answers 201. The body
// copy flushes after every write when the client connection supports
// it: for buffered JSON responses that costs one extra flush, and for
// streaming responses (the SSE diff stream) it is what makes events
// reach the client as they happen instead of sitting in the gateway's
// write buffer until the stream ends.
func copyResponse(w http.ResponseWriter, res *http.Response, statusOverride int) int {
	for k, vs := range res.Header {
		w.Header()[k] = vs
	}
	status := res.StatusCode
	if statusOverride != 0 && status == http.StatusCreated {
		status = statusOverride
	}
	w.WriteHeader(status)
	var dst io.Writer = w
	if f, ok := w.(http.Flusher); ok {
		dst = flushWriter{w: w, f: f}
	}
	_, _ = io.Copy(dst, res.Body)
	return status
}

// flushWriter flushes the client connection after every write, so each
// chunk a shard emits crosses the gateway immediately. io.Copy never
// sees a ReaderFrom through it, which is the point: the fast paths
// (sendfile, buffer reuse) are exactly the ones that hold data back.
type flushWriter struct {
	w io.Writer
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.f.Flush()
	}
	return n, err
}

// handleEvents proxies the SSE diff stream. It differs from bySID in
// two ways that both exist because a stream outlives any request
// budget: the session's route latch is released as soon as the shard
// has accepted the stream (holding it shared for the stream's lifetime
// would block migration of that session forever), and the upstream
// request is issued through the shard's streaming client (no response
// timeout, unbuffered transport). The ordering makes the handoff
// airtight: stream() returns only after the shard has registered the
// subscriber and flushed response headers, so a migration that starts
// after release necessarily finds the subscriber attached and tears it
// down with a terminal `event: closed` reason "migrated" — the client
// reconnects here and lands on the new owner with Last-Event-ID
// resume.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	if sid == "" {
		http.Error(w, "missing session id (create one with POST /api/v1/sessions)", http.StatusBadRequest)
		return
	}
	sh, release := g.acquire(sid)
	if sh == nil {
		release()
		http.Error(w, "no shard available", http.StatusBadGateway)
		return
	}
	res, err := sh.stream(r.Context(), r.URL.RequestURI(), r.Header)
	release()
	if err != nil {
		http.Error(w, "shard unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer res.Body.Close()
	if copyResponse(w, res, 0) == http.StatusNotFound {
		g.dropRoute(sid)
	}
}

// handleCreate places a new session: mint the sid, hash it to an
// eligible shard, create there under that id, and record the route.
// Rendezvous placement means the session lands exactly where every
// later hash lookup will point.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request, wantStatus int) {
	// The placement read-lock pins the topology from the eligibility
	// snapshot until the route is recorded: Drain marks a shard
	// draining under the write lock, so once that mark is visible no
	// create still in flight can land a session after the drain's
	// migration sweep has listed the shard.
	g.place.RLock()
	defer g.place.RUnlock()
	sid := g.mintSID()
	g.mu.RLock()
	eligible := g.namesLocked(false)
	sh := g.shards[Owner(eligible, sid)]
	g.mu.RUnlock()
	if sh == nil {
		http.Error(w, "no shard accepting sessions", http.StatusServiceUnavailable)
		return
	}
	q := url.Values{"sid": {sid}}
	if ds := r.FormValue("dataset"); ds != "" {
		q.Set("dataset", ds)
	}
	res, err := sh.do(http.MethodPost, "/internal/cluster/sessions?"+q.Encode(), traceHeader(r.Context(), nil), nil)
	if err != nil {
		http.Error(w, "shard unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusCreated {
		g.mu.Lock()
		g.routes[sid] = &route{shard: sh.name}
		g.mu.Unlock()
	}
	copyResponse(w, res, wantStatus)
}

// dropRoute forgets a session's residency (deletion, expiry).
func (g *Gateway) dropRoute(sid string) {
	g.mu.Lock()
	delete(g.routes, sid)
	g.mu.Unlock()
}

// routeFor returns the session's route, creating it pinned to the
// given shard when absent. Caller must not hold g.mu.
func (g *Gateway) routeFor(sid, shard string) *route {
	g.mu.Lock()
	defer g.mu.Unlock()
	rt := g.routes[sid]
	if rt == nil {
		rt = &route{shard: shard}
		g.routes[sid] = rt
	}
	return rt
}

// migrate moves one session from → to by replaying its action log:
// export the trail, import (replay) it on the new owner under the
// same sid, then delete the original. The route lock is held
// exclusively throughout, so concurrent requests for this session
// wait and then land on the new owner; other sessions are untouched.
// Failure order is safe at every step: until the delete succeeds the
// source still serves the session, and a half-imported copy deletes
// itself (shard-side) on replay divergence.
func (g *Gateway) migrate(sid string, from, to *Shard) error {
	rt := g.routeFor(sid, from.name)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.shard != from.name {
		return nil // somebody already moved it (stale listing)
	}

	// One trace id spans the whole migration: both shards' middleware
	// adopt it, so their export and import span logs — and the
	// source-side delete — all carry the same id, and one grep
	// reconstructs the hop sequence across process logs.
	trace := telemetry.NewTraceID()
	started := time.Now()

	var doc serve.SessionExport
	if err := from.getJSON("/internal/cluster/sessions/"+sid+"/export",
		http.Header{telemetry.TraceHeader: {trace}}, &doc); err != nil {
		return fmt.Errorf("export %s: %w", sid, err)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("export %s: %w", sid, err)
	}
	res, err := to.do(http.MethodPost, "/internal/cluster/sessions/"+sid+"/import",
		http.Header{"Content-Type": {"application/json"}, telemetry.TraceHeader: {trace}}, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("import %s: %w", sid, err)
	}
	msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
	res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		return fmt.Errorf("import %s on %s: status %d: %s", sid, to.name, res.StatusCode, msg)
	}

	rt.shard = to.name
	g.met.migrations.Inc()
	g.met.migrationSeconds.Observe(time.Since(started).Seconds())
	g.met.log.Debug("migration",
		"span", "migrate", "trace", trace,
		"sid", sid, "from", from.name, "to", to.name,
		"mutations", doc.Mutations, "ms", time.Since(started).Milliseconds())
	// The source copy is now shadow state; delete it. A failure here
	// leaks a session on the old shard (its TTL sweeper will collect
	// it) but cannot misroute: the route already points at the new
	// owner, and the hash will too once the topology change completes.
	// reason=migrated turns the teardown of any stream still attached
	// to the source into a reconnect signal instead of a final close:
	// the client comes back through the gateway, which now routes it to
	// the new owner, whose replayed ring serves the Last-Event-ID
	// resume.
	if res, err := from.do(http.MethodDelete, "/api/v1/sessions/"+sid+"?reason=migrated",
		http.Header{telemetry.TraceHeader: {trace}}, nil); err == nil {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}
	return nil
}

// Drain migrates every session off the named shard and removes it
// from the cluster, returning how many sessions moved. The shard
// stops receiving new sessions immediately; existing ones move one at
// a time, each under its own route lock. On a migration error the
// shard stays in the cluster (drain is resumable — call it again).
func (g *Gateway) Drain(name string) (int, error) {
	g.topo.Lock()
	defer g.topo.Unlock()

	g.mu.Lock()
	sh := g.shards[name]
	if sh == nil {
		g.mu.Unlock()
		return 0, fmt.Errorf("cluster: unknown shard %q", name)
	}
	survivors := 0
	for n := range g.shards {
		if n != name && !g.draining[n] {
			survivors++
		}
	}
	if survivors == 0 {
		g.mu.Unlock()
		return 0, fmt.Errorf("cluster: cannot drain %q: no shard would remain", name)
	}
	g.draining[name] = true
	targets := g.namesLocked(false)
	g.mu.Unlock()

	// Placement barrier: creates hold g.place shared from eligibility
	// check to completion, so cycling the write lock here guarantees
	// every create that could still target the shard (it snapshotted
	// eligibility before the draining mark) has finished — the listing
	// below is therefore complete, and nothing lands later.
	g.place.Lock()
	g.place.Unlock() //nolint:staticcheck // empty critical section is the barrier

	list, err := sh.sessions()
	if err != nil {
		g.unmarkDraining(name)
		return 0, err
	}
	moved := 0
	for _, info := range list {
		to := Owner(targets, info.Session)
		g.mu.RLock()
		toShard := g.shards[to]
		g.mu.RUnlock()
		if toShard == nil {
			g.unmarkDraining(name)
			return moved, fmt.Errorf("cluster: no target shard for %s", info.Session)
		}
		if err := g.migrate(info.Session, sh, toShard); err != nil {
			g.unmarkDraining(name)
			return moved, err
		}
		moved++
	}

	g.mu.Lock()
	delete(g.shards, name)
	delete(g.draining, name)
	g.mu.Unlock()
	g.dir.Remove(name)
	return moved, nil
}

func (g *Gateway) unmarkDraining(name string) {
	g.mu.Lock()
	delete(g.draining, name)
	g.mu.Unlock()
}

// Remove force-removes a shard from routing WITHOUT migrating its
// sessions — the escape hatch for a dead member. Drain must list and
// export the shard's sessions, so it can never succeed against an
// unreachable process; without Remove, a shard joined with a bad
// address (or one that died) would keep winning ~1/N of rendezvous
// placements forever, failing every one with 502. Sessions resident
// on the removed shard are abandoned (their routes are dropped, so
// later requests re-home by hash and see 404 — exactly a TTL expiry
// from the client's perspective); a reachable shard should be
// Drained, not Removed. Returns how many routes were dropped.
func (g *Gateway) Remove(name string) (int, error) {
	g.topo.Lock()
	defer g.topo.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.shards[name]; !ok {
		return 0, fmt.Errorf("cluster: unknown shard %q", name)
	}
	if len(g.shards) == 1 {
		return 0, fmt.Errorf("cluster: cannot remove %q: no shard would remain", name)
	}
	delete(g.shards, name)
	delete(g.draining, name)
	dropped := 0
	for sid, rt := range g.routes {
		rt.mu.RLock()
		onRemoved := rt.shard == name
		rt.mu.RUnlock()
		if onRemoved {
			delete(g.routes, sid)
			dropped++
		}
	}
	g.dir.Remove(name)
	return dropped, nil
}

// Join warm-joins a shard and rebalances. Before the newcomer can win
// a single placement it is *warmed*: every engine resident on a donor
// member is streamed to it through the snapshot codec (donor GET
// /internal/cluster/snapshot → joiner POST /internal/cluster/warm),
// and the joiner installs a stream only after verifying its chain
// fingerprint against the spec it builds locally — so a truncated or
// corrupted transfer aborts the join and the newcomer never enters the
// ring cold. Then the roster admits it (epoch bump) and every live
// session whose rendezvous owner under the enlarged shard set is the
// newcomer migrates onto it (rendezvous hashing moves no other
// session). Returns how many sessions moved.
func (g *Gateway) Join(sh *Shard) (int, error) {
	g.topo.Lock()
	defer g.topo.Unlock()
	// Holding the ingest lock closes the version race: without it an
	// ingest fan-out could advance every member one engine version
	// while the donor's snapshot of the previous version is mid-stream,
	// admitting a joiner one generation behind the cluster.
	g.ingestMu.Lock()
	defer g.ingestMu.Unlock()

	g.mu.RLock()
	_, dup := g.shards[sh.name]
	g.mu.RUnlock()
	if dup {
		return 0, fmt.Errorf("cluster: shard %q already present", sh.name)
	}
	if sh.secret == "" {
		sh.secret = g.secret
	}
	if err := g.warmShard(sh); err != nil {
		return 0, fmt.Errorf("cluster: warm join %q: %w", sh.name, err)
	}
	if err := g.dir.Join(membership.Member{Name: sh.name, Addr: sh.addr}); err != nil {
		return 0, err
	}

	g.mu.Lock()
	others := make([]*Shard, 0, len(g.shards))
	for _, s := range g.shards {
		others = append(others, s)
	}
	g.shards[sh.name] = sh
	names := g.namesLocked(true)
	g.mu.Unlock()
	sort.Slice(others, func(i, j int) bool { return others[i].name < others[j].name })

	moved := 0
	for _, from := range others {
		list, err := from.sessions()
		if err != nil {
			return moved, err
		}
		for _, info := range list {
			if Owner(names, info.Session) != sh.name {
				continue
			}
			if err := g.migrate(info.Session, from, sh); err != nil {
				return moved, err
			}
			moved++
		}
	}
	return moved, nil
}

// Shards lists the current shard names, sorted.
func (g *Gateway) Shards() []string {
	g.mu.RLock()
	names := g.namesLocked(true)
	g.mu.RUnlock()
	sort.Strings(names)
	return names
}
