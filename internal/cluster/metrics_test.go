package cluster

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vexus/internal/serve"
)

// ---------------------------------------------------------------------------
// Gateway observability: healthz/readyz, the gateway's own metrics,
// the cluster rollup, and — the cross-shard tracing contract — one
// migration carrying one trace id through both shards' span logs.

// syncBuf is a goroutine-safe log sink for the shard slog handlers.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// migrationTraces collects the trace= value of every migration span
// log line with the given span attr.
func migrationTraces(logText, span string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(logText, "\n") {
		if !strings.Contains(line, "msg=migration") || !strings.Contains(line, "span="+span) {
			continue
		}
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "trace="); ok {
				out[v] = true
			}
		}
	}
	return out
}

func TestClusterObservability(t *testing.T) {
	eng := testEngine(t)
	logs := []*syncBuf{{}, {}}
	mkShard := func(i int) *serve.Server {
		scfg := serve.DefaultConfig()
		scfg.ShardAPI = true
		// Debug level turns the migration span logs on — exactly what
		// the CI cluster smoke runs the shard processes with.
		scfg.Logger = slog.New(slog.NewTextHandler(logs[i], &slog.HandlerOptions{Level: slog.LevelDebug}))
		s := serve.New(eng, detGreedy(), scfg)
		t.Cleanup(s.Close)
		return s
	}
	gw, err := NewGatewayConfig(GatewayConfig{},
		LocalShard("s0", mkShard(0).Routes()),
		LocalShard("s1", mkShard(1).Routes()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)

	for _, probe := range []struct{ path, want string }{
		{"/api/v1/healthz", "ok\n"},
		{"/api/v1/readyz", "ready\n"},
	} {
		res, err := http.Get(ts.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK || string(body) != probe.want {
			t.Fatalf("%s: status %d body %q", probe.path, res.StatusCode, body)
		}
	}

	// Create sessions until the draining shard owns at least one, so
	// the drain below is guaranteed to migrate something.
	created := 0
	for i := 0; i < 64; i++ {
		createV1(t, ts.URL)
		created++
		if sessionsOn(t, gw, "s0") > 0 {
			break
		}
	}
	if sessionsOn(t, gw, "s0") == 0 {
		t.Fatalf("no session landed on s0 after %d creates", created)
	}

	moved, err := gw.Drain("s0")
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("drain moved no sessions")
	}

	// The tracing contract: every export span the source shard logged
	// carries a trace id that reappears on the destination's import
	// span — one grep joins the two process logs.
	exports := migrationTraces(logs[0].String(), "export")
	imports := migrationTraces(logs[1].String(), "import")
	if len(exports) != moved {
		t.Fatalf("source logged %d export traces, want %d", len(exports), moved)
	}
	for trace := range exports {
		if len(trace) != 16 {
			t.Errorf("trace %q is not 16 hex chars", trace)
		}
		if !imports[trace] {
			t.Errorf("export trace %s missing from destination import spans", trace)
		}
	}

	// Gateway metrics: the migration instruments moved with the drain,
	// and the request middleware counted the probes above.
	snap := gw.met.reg.Snapshot()
	if got := snap["vexus_gateway_migrations_total"]; got != float64(moved) {
		t.Errorf("vexus_gateway_migrations_total = %v, want %d", got, moved)
	}
	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`vexus_gateway_requests_total{route="POST /api/v1/sessions",status="201"}`,
		"vexus_gateway_migration_seconds_count",
		"vexus_gateway_latch_wait_seconds_count",
		"vexus_gateway_shards 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("gateway scrape is missing %q", want)
		}
	}

	// Cluster rollup: GET /api/v1/cluster sums the surviving shard's
	// snapshot; bucket series are filtered, totals survive.
	var st Status
	getJSON(t, ts.URL+"/api/v1/cluster", &st)
	if st.Metrics == nil {
		t.Fatal("cluster status carries no metrics rollup")
	}
	if got := st.Metrics["vexus_sessions_live"]; got != float64(st.Sessions) {
		t.Errorf("rollup vexus_sessions_live = %v, want %d", got, st.Sessions)
	}
	for series := range st.Metrics {
		if strings.Contains(series, "_bucket{") {
			t.Errorf("rollup leaked bucket series %s", series)
		}
	}
}

// sessionsOn reports how many sessions the named shard holds.
func sessionsOn(t testing.TB, gw *Gateway, name string) int {
	t.Helper()
	for _, row := range gw.Status().Shards {
		if row.Name == name {
			return row.Sessions
		}
	}
	t.Fatalf("shard %s not in status", name)
	return 0
}

// TestReadyzNamesDeadShard: readiness degrades to 503 naming the
// unreachable member.
func TestReadyzNamesDeadShard(t *testing.T) {
	eng := testEngine(t)
	dead := RemoteShard("dead", "127.0.0.1:1")
	gw, err := NewGateway(LocalShard("s0", shardServer(t, eng).Routes()), dead)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)

	res, err := http.Get(ts.URL + "/api/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead shard: status %d", res.StatusCode)
	}
	if !strings.Contains(string(body), "dead") {
		t.Fatalf("503 body %q does not name the dead shard", body)
	}
}
