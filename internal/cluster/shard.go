package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"vexus/internal/membership"
	"vexus/internal/serve"
)

// Shard is one session-owning backend as the gateway sees it: a name
// (the rendezvous-hash identity — it must be stable across restarts,
// or every restart migrates every session) and a way to reach its HTTP
// surface. Two constructors cover the two deployment shapes:
// RemoteShard speaks TCP to a `vexus-server -shard` process, and
// LocalShard calls a serve.Server's handler in-process — the mode
// tests and benchmarks use to stand up a whole cluster in one process
// with zero sockets.
type Shard struct {
	name   string
	addr   string // "" for in-process shards
	base   string // URL prefix outbound requests are rewritten onto
	secret string // cluster shared secret, attached to every outbound hop
	client *http.Client
	// streamer issues requests whose responses are open-ended (the SSE
	// diff stream): no response timeout, and a transport that hands the
	// body over as it is written rather than when the handler returns.
	// The regular client is wrong on both counts — its 30s timeout
	// would kill a quiet stream at the first missed heartbeat window,
	// and the recorder transport buffers the complete response.
	streamer *http.Client
}

// Name returns the shard's rendezvous-hash identity.
func (s *Shard) Name() string { return s.name }

// Addr returns the shard's dial address ("" for in-process shards).
func (s *Shard) Addr() string { return s.addr }

// RemoteShard points at a shard worker listening on addr
// ("host:port"). The name doubles as the hash identity, so use the
// same name for the same logical shard across gateway restarts —
// the address itself is the natural choice.
func RemoteShard(name, addr string) *Shard {
	return &Shard{
		name: name,
		addr: addr,
		base: "http://" + addr,
		// Shard calls are LAN-local; a bounded client keeps one hung
		// shard from wedging gateway request goroutines forever. Streams
		// are the exception: they live as long as the subscriber, so
		// their client bounds the dial, not the response.
		client:   &http.Client{Timeout: 30 * time.Second},
		streamer: &http.Client{},
	}
}

// LocalShard wraps an in-process serve.Server handler as a shard. The
// transport dispatches straight into ServeHTTP on the caller's
// goroutine — no listener, no ports — so an N-shard cluster plus
// gateway is just N+1 handlers in one test binary.
func LocalShard(name string, h http.Handler) *Shard {
	return &Shard{
		name:     name,
		base:     "http://" + name,
		client:   &http.Client{Transport: handlerTransport{h: h}},
		streamer: &http.Client{Transport: streamTransport{h: h}},
	}
}

// WithSecret sets the cluster shared secret attached (as
// membership.SecretHeader) to every request this client issues, and
// returns the shard for chaining. The gateway stamps its own secret
// onto secretless shards at admission, so constructors don't need it.
func (s *Shard) WithSecret(secret string) *Shard {
	s.secret = secret
	return s
}

// handlerTransport serves round trips by invoking the handler
// directly, recording the response. httptest's recorder is the
// stdlib's canonical ResponseWriter-to-Response bridge; using it
// outside a _test file is deliberate — the in-process cluster is
// production code for benchmarks and embedded deployments.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	res := rec.Result()
	res.Request = req
	return res, nil
}

// streamTransport serves round trips whose response is open-ended by
// running the handler on its own goroutine against a pipe: RoundTrip
// returns as soon as the handler commits response headers, and every
// byte the handler writes after that is readable from the response
// body immediately. This is the in-process equivalent of what a real
// TCP transport does for a streaming response — exactly what the
// recorder-based handlerTransport cannot do, since it only produces a
// response once the handler has returned.
type streamTransport struct{ h http.Handler }

func (t streamTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	pr, pw := io.Pipe()
	sw := &streamRecorder{header: make(http.Header), pw: pw, ready: make(chan struct{})}
	go func() {
		t.h.ServeHTTP(sw, req)
		sw.commit(http.StatusOK) // no-op unless the handler never wrote
		pw.Close()
	}()
	<-sw.ready
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", sw.status, http.StatusText(sw.status)),
		StatusCode:    sw.status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        sw.snapshot,
		Body:          pr,
		ContentLength: -1,
		Request:       req,
	}, nil
}

// streamRecorder is the ResponseWriter behind streamTransport. The
// header snapshot is cloned inside the commit Once, so RoundTrip's
// reader and the handler goroutine never share a mutable map. The
// handler sees an http.Flusher (the serve-side SSE handler refuses
// writers without one), but flushing is a no-op: pipe writes already
// block until the reader takes them.
type streamRecorder struct {
	header   http.Header
	pw       *io.PipeWriter
	once     sync.Once
	status   int
	snapshot http.Header
	ready    chan struct{}
}

func (s *streamRecorder) Header() http.Header  { return s.header }
func (s *streamRecorder) WriteHeader(code int) { s.commit(code) }
func (s *streamRecorder) Flush()               {}

func (s *streamRecorder) commit(code int) {
	s.once.Do(func() {
		s.status = code
		s.snapshot = s.header.Clone()
		close(s.ready)
	})
}

func (s *streamRecorder) Write(p []byte) (int, error) {
	s.commit(http.StatusOK)
	return s.pw.Write(p)
}

// stream opens a long-lived GET against the shard (the SSE diff
// stream) through the streaming client. The response is live: headers
// are available as soon as the shard commits them, and the body
// delivers events as the shard writes them. Cancelling ctx tears the
// stream down end to end — for an in-process shard the handler shares
// the context directly, and for a remote one the client closes the
// connection, which the shard-side handler observes the same way.
func (s *Shard) stream(ctx context.Context, path string, header http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if s.secret != "" {
		req.Header.Set(membership.SecretHeader, s.secret)
	}
	res, err := s.streamer.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", s.name, err)
	}
	return res, nil
}

// do issues one request against the shard. path must start with "/"
// and may carry a query string; body may be nil.
func (s *Shard) do(method, path string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, s.base+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if s.secret != "" {
		req.Header.Set(membership.SecretHeader, s.secret)
	}
	res, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", s.name, err)
	}
	return res, nil
}

// doStream is do through the streaming client: no response timeout and
// a live body. The warm-join pump uses it on both legs — an engine
// snapshot can take longer than the bounded client's 30s allowance, and
// piping donor→joiner without buffering requires a transport that hands
// bytes over as they are written.
func (s *Shard) doStream(method, path string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, s.base+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if s.secret != "" {
		req.Header.Set(membership.SecretHeader, s.secret)
	}
	res, err := s.streamer.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", s.name, err)
	}
	return res, nil
}

// getJSON fetches path (with the given headers, which may be nil) and
// decodes the JSON body into v, treating any non-200 as an error.
func (s *Shard) getJSON(path string, header http.Header, v any) error {
	res, err := s.do(http.MethodGet, path, header, nil)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("shard %s: GET %s: status %d: %s", s.name, path, res.StatusCode, msg)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		return fmt.Errorf("shard %s: GET %s: %w", s.name, path, err)
	}
	return nil
}

// sessions lists the shard's live sessions — the authoritative
// residency view drain and join sweeps are driven from.
func (s *Shard) sessions() ([]serve.ShardSessionInfo, error) {
	var out []serve.ShardSessionInfo
	if err := s.getJSON("/internal/cluster/sessions", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseShards validates a comma-separated -shards address list against
// the gateway's own listen address. Blank entries are skipped (a
// trailing comma is not an error); a duplicate or self-referential
// entry is — both configure a cluster that routes requests into a
// loop or double-counts a member, and the misconfigured entry is named
// so the error points at the flag value to fix. The shard name *is*
// the rendezvous identity, so "the same shard listed twice" and "two
// shards with one name" are the same bug.
func ParseShards(raw, self string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, field := range strings.Split(raw, ",") {
		addr := strings.TrimSpace(field)
		if addr == "" {
			continue
		}
		if seen[addr] {
			return nil, fmt.Errorf("cluster: -shards lists %q more than once", addr)
		}
		if selfReferential(addr, self) {
			return nil, fmt.Errorf("cluster: -shards entry %q is the gateway's own address %q (a gateway cannot be its own shard)", addr, self)
		}
		seen[addr] = true
		out = append(out, addr)
	}
	return out, nil
}

// selfReferential reports whether a shard address would dial back into
// the gateway listening on self: an exact match, or the same port with
// one side on a wildcard/loopback host (":8080" and "localhost:8080"
// name the same listener).
func selfReferential(addr, self string) bool {
	if self == "" {
		return false
	}
	if addr == self {
		return true
	}
	ah, ap, aerr := net.SplitHostPort(addr)
	sh, sp, serr := net.SplitHostPort(self)
	if aerr != nil || serr != nil || ap != sp {
		return false
	}
	local := func(h string) bool {
		switch h {
		case "", "0.0.0.0", "::", "localhost", "127.0.0.1", "::1":
			return true
		}
		return false
	}
	return ah == sh || (local(ah) && local(sh))
}
