package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"vexus/internal/serve"
)

// Shard is one session-owning backend as the gateway sees it: a name
// (the rendezvous-hash identity — it must be stable across restarts,
// or every restart migrates every session) and a way to reach its HTTP
// surface. Two constructors cover the two deployment shapes:
// RemoteShard speaks TCP to a `vexus-server -shard` process, and
// LocalShard calls a serve.Server's handler in-process — the mode
// tests and benchmarks use to stand up a whole cluster in one process
// with zero sockets.
type Shard struct {
	name   string
	addr   string // "" for in-process shards
	base   string // URL prefix outbound requests are rewritten onto
	client *http.Client
}

// Name returns the shard's rendezvous-hash identity.
func (s *Shard) Name() string { return s.name }

// Addr returns the shard's dial address ("" for in-process shards).
func (s *Shard) Addr() string { return s.addr }

// RemoteShard points at a shard worker listening on addr
// ("host:port"). The name doubles as the hash identity, so use the
// same name for the same logical shard across gateway restarts —
// the address itself is the natural choice.
func RemoteShard(name, addr string) *Shard {
	return &Shard{
		name: name,
		addr: addr,
		base: "http://" + addr,
		// Shard calls are LAN-local; a bounded client keeps one hung
		// shard from wedging gateway request goroutines forever.
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

// LocalShard wraps an in-process serve.Server handler as a shard. The
// transport dispatches straight into ServeHTTP on the caller's
// goroutine — no listener, no ports — so an N-shard cluster plus
// gateway is just N+1 handlers in one test binary.
func LocalShard(name string, h http.Handler) *Shard {
	return &Shard{
		name:   name,
		base:   "http://" + name,
		client: &http.Client{Transport: handlerTransport{h: h}},
	}
}

// handlerTransport serves round trips by invoking the handler
// directly, recording the response. httptest's recorder is the
// stdlib's canonical ResponseWriter-to-Response bridge; using it
// outside a _test file is deliberate — the in-process cluster is
// production code for benchmarks and embedded deployments.
type handlerTransport struct{ h http.Handler }

func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	res := rec.Result()
	res.Request = req
	return res, nil
}

// do issues one request against the shard. path must start with "/"
// and may carry a query string; body may be nil.
func (s *Shard) do(method, path string, header http.Header, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, s.base+path, body)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	res, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", s.name, err)
	}
	return res, nil
}

// getJSON fetches path and decodes the JSON body into v, treating any
// non-200 as an error.
func (s *Shard) getJSON(path string, v any) error {
	res, err := s.do(http.MethodGet, path, nil, nil)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		return fmt.Errorf("shard %s: GET %s: status %d: %s", s.name, path, res.StatusCode, msg)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		return fmt.Errorf("shard %s: GET %s: %w", s.name, path, err)
	}
	return nil
}

// sessions lists the shard's live sessions — the authoritative
// residency view drain and join sweeps are driven from.
func (s *Shard) sessions() ([]serve.ShardSessionInfo, error) {
	var out []serve.ShardSessionInfo
	if err := s.getJSON("/internal/cluster/sessions", &out); err != nil {
		return nil, err
	}
	return out, nil
}
