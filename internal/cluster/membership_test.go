package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/membership"
	"vexus/internal/serve"
)

// countingHandler wraps a shard handler and counts every request that
// reaches it — the instrument behind the zero-re-resolution assertion.
type countingHandler struct {
	h http.Handler
	n atomic.Int64
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.n.Add(1)
	c.h.ServeHTTP(w, r)
}

// testDataset rebuilds the fixture engine's inputs — what a warm-only
// joiner needs to verify an incoming snapshot stream.
func testDataset(t testing.TB) (*dataset.Dataset, core.PipelineConfig) {
	t.Helper()
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.03
	return data, cfg
}

// TestDurableRouteTableReload is the restart regression the route table
// exists for: a gateway reconstructed from its persisted table resumes
// at the saved epoch with the full shard set and identical placement —
// and sends ZERO requests to any shard to get there.
func TestDurableRouteTableReload(t *testing.T) {
	eng := testEngine(t)
	path := filepath.Join(t.TempDir(), "routes.json")

	handlers := map[string]*countingHandler{}
	mkShard := func(name string) *Shard {
		ch := &countingHandler{h: shardServer(t, eng).Routes()}
		handlers[name] = ch
		return LocalShard(name, ch)
	}

	gwA, err := NewGatewayConfig(GatewayConfig{RoutesPath: path}, mkShard("s0"), mkShard("s1"))
	if err != nil {
		t.Fatal(err)
	}
	if gwA.Epoch() != 1 {
		t.Fatalf("epoch after static seed = %d, want 1", gwA.Epoch())
	}
	// Warm-join a third member (already resident → idempotent stream).
	if _, err := gwA.Join(mkShard("s2")); err != nil {
		t.Fatal(err)
	}
	epochA := gwA.Epoch()
	if epochA != 2 {
		t.Fatalf("epoch after join = %d, want 2", epochA)
	}
	shardsA := gwA.Shards()
	gwA.Close()

	// Reconstruct from the table alone: no static shards, a dial hook
	// that hands back in-process clients. Count every shard request
	// from here on.
	for _, ch := range handlers {
		ch.n.Store(0)
	}
	dialed := 0
	gwB, err := NewGatewayConfig(GatewayConfig{
		RoutesPath: path,
		Dial: func(name, addr string) *Shard {
			dialed++
			return LocalShard(name, handlers[name])
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gwB.Close)

	if got := gwB.Shards(); fmt.Sprint(got) != fmt.Sprint(shardsA) {
		t.Fatalf("reloaded shard set %v, want %v", got, shardsA)
	}
	if gwB.Epoch() != epochA {
		t.Fatalf("reloaded epoch = %d, want %d", gwB.Epoch(), epochA)
	}
	if dialed != 3 {
		t.Fatalf("dialed %d members, want 3", dialed)
	}
	for name, ch := range handlers {
		if n := ch.n.Load(); n != 0 {
			t.Fatalf("gateway reload sent %d requests to %s; reload must not re-resolve against shards", n, name)
		}
	}

	// Same epoch ⇒ identical placement, checked at the hash level over
	// a large sid population.
	for i := 0; i < 1000; i++ {
		sid := fmt.Sprintf("sid-%04d", i)
		if Owner(shardsA, sid) != Owner(gwB.Shards(), sid) {
			t.Fatalf("placement diverged for %s", sid)
		}
	}

	// And the reloaded gateway actually serves: a create lands.
	ts := httptest.NewServer(gwB.Routes())
	t.Cleanup(ts.Close)
	if st, _ := createV1(t, ts.URL); st.Session == "" {
		t.Fatal("create through reloaded gateway failed")
	}
}

// TestTwoGatewaysSamePlacement: two gateways independently constructed
// over the same member set hold the same epoch and route every session
// identically — a session created through one is served through the
// other with no route state shared between them.
func TestTwoGatewaysSamePlacement(t *testing.T) {
	eng := testEngine(t)
	h0 := shardServer(t, eng).Routes()
	h1 := shardServer(t, eng).Routes()
	h2 := shardServer(t, eng).Routes()

	gw1, err := NewGateway(LocalShard("s0", h0), LocalShard("s1", h1), LocalShard("s2", h2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw1.Close)
	// Different construction order: placement must not depend on it.
	gw2, err := NewGateway(LocalShard("s2", h2), LocalShard("s0", h0), LocalShard("s1", h1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw2.Close)

	if gw1.Epoch() != gw2.Epoch() {
		t.Fatalf("independent gateways disagree on epoch: %d vs %d", gw1.Epoch(), gw2.Epoch())
	}
	ts1 := httptest.NewServer(gw1.Routes())
	ts2 := httptest.NewServer(gw2.Routes())
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)
	for i := 0; i < 10; i++ {
		st, _ := createV1(t, ts1.URL)
		if _, _, status := getStateRaw(t, ts2.URL, st.Session); status != http.StatusOK {
			t.Fatalf("session %s created via gw1 not served via gw2: status %d", st.Session, status)
		}
	}
}

// TestRendezvousMinimalDisruption pins the property the whole topology
// design leans on: adding one member to N remaps ~1/(N+1) of a large
// sid population onto the newcomer and nothing else moves; removing
// one member remaps exactly the sids it owned.
func TestRendezvousMinimalDisruption(t *testing.T) {
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	grown := append(append([]string{}, names...), "s5")
	const population = 20000

	moved, movedElsewhere := 0, 0
	ownedByS2, movedOffS2 := 0, 0
	shrunk := []string{"s0", "s1", "s3", "s4"} // s2 removed
	for i := 0; i < population; i++ {
		sid := fmt.Sprintf("session-%05d", i)
		before := Owner(names, sid)

		// Grow: the only allowed movement is onto the newcomer.
		after := Owner(grown, sid)
		if after != before {
			moved++
			if after != "s5" {
				movedElsewhere++
			}
		}

		// Shrink: only s2's sids move.
		if before == "s2" {
			ownedByS2++
		}
		if postRemove := Owner(shrunk, sid); postRemove != before {
			movedOffS2++
			if before != "s2" {
				t.Fatalf("removing s2 moved %s owned by %s", sid, before)
			}
		}
	}
	if movedElsewhere != 0 {
		t.Fatalf("%d sids moved between surviving members on grow", movedElsewhere)
	}
	frac := float64(moved) / population
	if frac < 0.12 || frac > 0.22 {
		t.Fatalf("grow remapped %.3f of sids, want ~1/6", frac)
	}
	if movedOffS2 != ownedByS2 {
		t.Fatalf("shrink moved %d sids, s2 owned %d", movedOffS2, ownedByS2)
	}
}

// TestWarmJoinAbortMidStream kills the snapshot stream mid-transfer and
// asserts the join fails closed end to end: the joiner is never
// admitted, the epoch never moves, and the joiner keeps refusing
// traffic.
func TestWarmJoinAbortMidStream(t *testing.T) {
	eng := testEngine(t)

	// Donor whose snapshot endpoint truncates the stream halfway.
	donorInner := shardServer(t, eng).Routes()
	donorH := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/internal/cluster/snapshot") {
			rec := httptest.NewRecorder()
			donorInner.ServeHTTP(rec, r)
			raw := rec.Body.Bytes()
			for k, vs := range rec.Header() {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.Code)
			w.Write(raw[:len(raw)/2])
			return
		}
		donorInner.ServeHTTP(w, r)
	})

	gw, err := NewGateway(LocalShard("s0", donorH))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	data, pcfg := testDataset(t)
	scfg := serve.DefaultConfig()
	scfg.ShardAPI = true
	joiner := serve.NewPending("default", data, pcfg, detGreedy(), scfg)
	t.Cleanup(joiner.Close)
	joinerH := joiner.Routes()

	epochBefore := gw.Epoch()
	if _, err := gw.Join(LocalShard("s1", joinerH)); err == nil {
		t.Fatal("join with a truncated snapshot stream should fail")
	}
	if got := gw.Shards(); len(got) != 1 {
		t.Fatalf("aborted join admitted the shard: %v", got)
	}
	if gw.Epoch() != epochBefore {
		t.Fatalf("aborted join moved the epoch: %d -> %d", epochBefore, gw.Epoch())
	}
	// The joiner installed nothing: still failing closed.
	rec := httptest.NewRecorder()
	joinerH.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("joiner readyz after aborted join = %d, want 503", rec.Code)
	}

	// An intact donor warms the same joiner successfully — proving the
	// abort above was the stream's fault, not the harness's.
	gw2, err := NewGateway(LocalShard("s0", shardServer(t, eng).Routes()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw2.Close)
	if _, err := gw2.Join(LocalShard("s1", joinerH)); err != nil {
		t.Fatalf("join with intact stream: %v", err)
	}
	rec = httptest.NewRecorder()
	joinerH.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("joiner readyz after warm join = %d, want 200", rec.Code)
	}
}

// TestGatewayFailureDetection drives the gossip lifecycle end to end:
// a joined member that stops heartbeating is suspected, then marked
// down (epoch bump, readyz names it, routes fail closed), and a
// heartbeat brings it back (epoch bump, ready again).
func TestGatewayFailureDetection(t *testing.T) {
	eng := testEngine(t)
	h1 := shardServer(t, eng).Routes()
	gw, err := NewGatewayConfig(GatewayConfig{
		SuspectAfter: 150 * time.Millisecond,
		DownAfter:    300 * time.Millisecond,
	}, LocalShard("s0", shardServer(t, eng).Routes()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)

	if _, err := gw.Join(LocalShard("s1", h1)); err != nil {
		t.Fatal(err)
	}
	epochJoined := gw.Epoch()

	heartbeat := func(name string) (int, membership.Ack) {
		t.Helper()
		body, _ := json.Marshal(membership.Member{Name: name})
		res, err := http.Post(ts.URL+"/internal/cluster/heartbeat", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var ack membership.Ack
		if res.StatusCode == http.StatusOK {
			if err := json.NewDecoder(res.Body).Decode(&ack); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, res.Body)
		}
		return res.StatusCode, ack
	}

	// The ack is the gossip piggyback: epoch plus full roster.
	status, ack := heartbeat("s1")
	if status != http.StatusOK || ack.Epoch != epochJoined || len(ack.Members) != 2 {
		t.Fatalf("heartbeat ack: status %d, %+v", status, ack)
	}
	// Unknown members don't get in via gossip.
	if status, _ := heartbeat("stranger"); status != http.StatusNotFound {
		t.Fatalf("unknown member heartbeat: status %d, want 404", status)
	}

	// s1 goes silent; the sweeper marks it down within a few horizons.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal("timeout waiting for " + what)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor("s1 marked down", func() bool { return gw.Epoch() == epochJoined+1 })

	// readyz names the downed member.
	res, err := http.Get(ts.URL + "/api/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "s1") {
		t.Fatalf("readyz with down member: status %d body %q", res.StatusCode, body)
	}
	// The status body and metrics agree.
	st := gw.Status()
	if st.Epoch != epochJoined+1 {
		t.Fatalf("status epoch %d", st.Epoch)
	}
	downSeen := false
	for _, mi := range st.Members {
		if mi.Name == "s1" && mi.State == membership.StateDown {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatalf("status members missing down verdict: %+v", st.Members)
	}
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mres.Body)
	mres.Body.Close()
	if !strings.Contains(string(mbody), `vexus_cluster_members{state="down"} 1`) {
		t.Fatal("metrics missing down member gauge")
	}
	if !strings.Contains(string(mbody), fmt.Sprintf("vexus_cluster_epoch %d", epochJoined+1)) {
		t.Fatal("metrics missing epoch gauge")
	}

	// Creates keep landing — on the survivor only.
	for i := 0; i < 5; i++ {
		if st, _ := createV1(t, ts.URL); st.Session == "" {
			t.Fatal("create with one member down failed")
		}
	}

	// Recovery: one heartbeat re-enters the routing set.
	status, ack = heartbeat("s1")
	if status != http.StatusOK || ack.Epoch != epochJoined+2 {
		t.Fatalf("recovery heartbeat: status %d epoch %d, want %d", status, ack.Epoch, epochJoined+2)
	}
	waitFor("ready again", func() bool {
		res, err := http.Get(ts.URL + "/api/v1/readyz")
		if err != nil {
			return false
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode == http.StatusOK
	})
}

// TestGatewayClusterAuth: with a secret configured, unauthenticated
// /internal/cluster/* requests are rejected at both layers, while the
// gateway's own hops (create, migrate, warm join) authenticate
// transparently.
func TestGatewayClusterAuth(t *testing.T) {
	eng := testEngine(t)
	const secret = "swordfish"

	mkShard := func(name string) *Shard {
		scfg := serve.DefaultConfig()
		scfg.ShardAPI = true
		scfg.ClusterSecret = secret
		s := serve.New(eng, detGreedy(), scfg)
		t.Cleanup(s.Close)
		return LocalShard(name, s.Routes())
	}
	gw, err := NewGatewayConfig(GatewayConfig{Secret: secret}, mkShard("s0"), mkShard("s1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)

	// Gateway-side: heartbeat rejects without the secret...
	body, _ := json.Marshal(membership.Member{Name: "s0"})
	res, err := http.Post(ts.URL+"/internal/cluster/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated heartbeat: status %d, want 401", res.StatusCode)
	}
	// ...and accepts with it.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/internal/cluster/heartbeat", bytes.NewReader(body))
	req.Header.Set(membership.SecretHeader, secret)
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("authenticated heartbeat: status %d", res.StatusCode)
	}

	// The gateway's own hops carry the secret: creates, drains
	// (export/import/delete), and warm joins all work.
	sids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		st, _ := createV1(t, ts.URL)
		sids = append(sids, st.Session)
	}
	if _, err := gw.Join(mkShard("s2")); err != nil {
		t.Fatalf("authenticated warm join: %v", err)
	}
	if _, err := gw.Drain("s1"); err != nil {
		t.Fatalf("authenticated drain: %v", err)
	}
	for _, sid := range sids {
		if _, _, status := getStateRaw(t, ts.URL, sid); status != http.StatusOK {
			t.Fatalf("session %s lost across authenticated drain: status %d", sid, status)
		}
	}
}
