package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"vexus/internal/membership"
	"vexus/internal/serve"
)

// The gateway half of cluster self-management: heartbeat intake,
// failure detection, and the warm-join snapshot pump. The membership
// Directory owns the durable roster and epoch; this file is where its
// verdicts turn into routing actions — a down member's routes fail
// closed, a recovered member re-enters without re-dialing, a joiner is
// warmed before it can win a placement.

// Epoch reports the topology epoch: the version of the routing set.
// Two gateways at the same epoch place every session id identically.
func (g *Gateway) Epoch() uint64 { return g.dir.Epoch() }

// Members snapshots the membership roster, sorted by name.
func (g *Gateway) Members() []membership.MemberInfo { return g.dir.Members() }

// handleHeartbeat is POST /internal/cluster/heartbeat: a shard
// announcing itself. The ack carries the epoch and full roster — the
// gossip piggyback that lets every member learn the topology in the
// same round trip that refreshed its liveness. Unknown members are
// rejected (404): admission is the warm-join path's job, never a side
// effect of gossip.
func (g *Gateway) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var m membership.Member
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&m); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if m.Name == "" {
		http.Error(w, "heartbeat without a member name", http.StatusBadRequest)
		return
	}
	ack, recovered, err := g.dir.Heartbeat(m)
	if errors.Is(err, membership.ErrUnknownMember) {
		http.Error(w, err.Error()+"; join with POST /api/v1/cluster/join", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if recovered {
		// Re-entry into the routing set. The client usually survived the
		// outage in g.shards; dial only if it never existed (member known
		// purely from a persisted table whose address was undialable).
		g.mu.Lock()
		if _, ok := g.shards[m.Name]; !ok {
			if sh := g.dial(m.Name, m.Addr); sh != nil {
				if sh.secret == "" {
					sh.secret = g.secret
				}
				g.shards[m.Name] = sh
			}
		}
		g.mu.Unlock()
		g.met.log.Info("cluster: shard recovered (heartbeat after down)", "shard", m.Name, "epoch", ack.Epoch)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ack)
}

// sweepMembership runs failure detection and fails routes closed for
// every member the sweep marks down: its route entries are dropped, so
// later requests for those sessions re-home by hash and read as
// expired (404) instead of timing out against a dead address. The
// shard client stays in g.shards — a recovery heartbeat re-enters the
// member without re-dialing — but namesLocked stops routing to it the
// moment the directory marks it down.
// SweepMembership runs one failure-detection pass explicitly — the
// manual counterpart of the background sweeper, for gateways built
// with GatewayConfig.ManualSweep (deterministic harnesses tick it).
func (g *Gateway) SweepMembership() { g.sweepMembership() }

// SweepRoutes runs one route-reconciliation pass explicitly (see
// SweepMembership), returning how many stale routes it dropped.
func (g *Gateway) SweepRoutes() int { return g.sweepRoutes() }

func (g *Gateway) sweepMembership() {
	for _, ev := range g.dir.Sweep() {
		if ev.To != membership.StateDown {
			continue
		}
		g.topo.Lock()
		dropped := g.failShard(ev.Name)
		g.topo.Unlock()
		g.met.log.Warn("cluster: shard down, routes failed closed",
			"shard", ev.Name, "routesDropped", dropped, "epoch", ev.Epoch)
	}
}

// failShard drops every route pinned to the named shard, returning how
// many. Same traversal as Remove, minus the roster delete: down is a
// verdict the member can appeal by heartbeating.
func (g *Gateway) failShard(name string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	dropped := 0
	for sid, rt := range g.routes {
		rt.mu.RLock()
		onDown := rt.shard == name
		rt.mu.RUnlock()
		if onDown {
			delete(g.routes, sid)
			dropped++
		}
	}
	return dropped
}

// warmShard streams every donor-resident engine into a joining shard.
// No donor (first member, or nothing resident anywhere) is not an
// error — there is nothing to be cold about.
func (g *Gateway) warmShard(sh *Shard) error {
	donor := g.pickDonor(sh.name)
	if donor == nil {
		return nil
	}
	var body datasetsDTO
	if err := donor.getJSON("/api/datasets", nil, &body); err != nil {
		return err
	}
	for _, row := range body.Datasets {
		if !row.Resident {
			continue
		}
		if err := g.pumpSnapshot(donor, sh, row.Name); err != nil {
			return err
		}
	}
	return nil
}

// pickDonor chooses the warm-join source: the first (sorted) routable,
// non-draining member other than the joiner. Sorted order makes the
// choice deterministic, which keeps warm-join behavior reproducible in
// tests and across gateways.
func (g *Gateway) pickDonor(exclude string) *Shard {
	g.mu.RLock()
	defer g.mu.RUnlock()
	routable := g.dir.RoutableSet()
	best := ""
	for name := range g.shards {
		if name == exclude || !routable[name] || g.draining[name] {
			continue
		}
		if best == "" || name < best {
			best = name
		}
	}
	if best == "" {
		return nil
	}
	return g.shards[best]
}

// pumpSnapshot relays one engine snapshot donor → joiner without
// buffering it in the gateway: the donor's response body is the
// joiner's request body. Both legs ride the streaming client — an
// engine snapshot can outlive the bounded client's 30s allowance. Any
// failure on either leg (including the joiner's 409 on a fingerprint
// mismatch, which is what a truncated donor stream becomes) aborts the
// join before the newcomer is admitted.
func (g *Gateway) pumpSnapshot(donor, to *Shard, dataset string) error {
	started := time.Now()
	q := "?dataset=" + url.QueryEscape(dataset)
	res, err := donor.doStream(http.MethodGet, "/internal/cluster/snapshot"+q, nil, nil)
	if err != nil {
		return fmt.Errorf("snapshot %s from %s: %w", dataset, donor.name, err)
	}
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 512))
		res.Body.Close()
		return fmt.Errorf("snapshot %s from %s: status %d: %s", dataset, donor.name, res.StatusCode, msg)
	}
	wres, err := to.doStream(http.MethodPost, "/internal/cluster/warm"+q,
		http.Header{"Content-Type": {"application/octet-stream"}}, res.Body)
	res.Body.Close()
	if err != nil {
		return fmt.Errorf("warming %s on %s: %w", dataset, to.name, err)
	}
	defer wres.Body.Close()
	if wres.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(wres.Body, 512))
		return fmt.Errorf("warming %s on %s: status %d: %s", dataset, to.name, wres.StatusCode, msg)
	}
	var result serve.WarmResult
	if err := json.NewDecoder(wres.Body).Decode(&result); err != nil {
		return fmt.Errorf("warming %s on %s: decoding result: %w", dataset, to.name, err)
	}
	g.met.warmBytes.Add(uint64(result.Bytes))
	g.met.warmSeconds.Observe(time.Since(started).Seconds())
	g.met.log.Info("cluster: warm join streamed engine",
		"dataset", dataset, "from", donor.name, "to", to.name,
		"bytes", result.Bytes, "engineVersion", result.EngineVersion,
		"alreadyResident", result.AlreadyResident,
		"ms", time.Since(started).Milliseconds())
	return nil
}
