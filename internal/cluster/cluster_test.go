package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/serve"
)

// ---------------------------------------------------------------------------
// Fixture plumbing: in-process shards over one shared engine. Engines
// are immutable after Build, so sharing one instance across shards is
// the degenerate-but-exact case of the "bit-identical engine on every
// shard" deployment contract.

var (
	engOnce sync.Once
	engFix  *core.Engine
	engErr  error
)

func buildEngine(workers int) (*core.Engine, error) {
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 300, Seed: 7})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.03
	cfg.Workers = workers
	return core.Build(data, cfg)
}

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	engOnce.Do(func() { engFix, engErr = buildEngine(2) })
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engFix
}

// detGreedy is the deterministic optimizer config — the migration
// fidelity precondition (replay re-runs the optimizer).
func detGreedy() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	return cfg
}

// shardServer builds one in-process shard over eng.
func shardServer(t testing.TB, eng *core.Engine) *serve.Server {
	t.Helper()
	scfg := serve.DefaultConfig()
	scfg.ShardAPI = true
	s := serve.New(eng, detGreedy(), scfg)
	t.Cleanup(s.Close)
	return s
}

// testCluster stands up n in-process shards named s0..s(n-1) behind a
// gateway served over httptest.
func testCluster(t testing.TB, eng *core.Engine, n int) (*Gateway, *httptest.Server) {
	t.Helper()
	shards := make([]*Shard, n)
	for i := range shards {
		shards[i] = LocalShard(fmt.Sprintf("s%d", i), shardServer(t, eng).Routes())
	}
	gw, err := NewGateway(shards...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)
	return gw, ts
}

// stateLite is the slice of the state DTO the tests drive trails from.
type stateLite struct {
	Session string `json:"session"`
	Shown   []struct {
		ID int `json:"id"`
	} `json:"shown"`
	Focal   int `json:"focal"`
	History []struct {
		Step int `json:"step"`
	} `json:"history"`
}

func createV1(t testing.TB, base string) (stateLite, string) {
	t.Helper()
	res, err := http.Post(base+"/api/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("create: status %d: %s", res.StatusCode, body)
	}
	var st stateLite
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if loc := res.Header.Get("Location"); loc != "/api/v1/sessions/"+st.Session {
		t.Fatalf("Location %q for session %s", loc, st.Session)
	}
	return st, res.Header.Get("ETag")
}

// applyOne posts a one-action batch (?full=1) and returns the parsed
// state, the raw body, and the response ETag.
func applyOne(t testing.TB, base, sid string, a action.Action) (stateLite, string, string) {
	t.Helper()
	raw, err := json.Marshal([]action.Action{a})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+"/api/v1/sessions/"+sid+"/actions?full=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("apply %v: status %d: %s", a, res.StatusCode, body)
	}
	var st stateLite
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st, string(body), res.Header.Get("ETag")
}

func getStateRaw(t testing.TB, base, sid string) (string, string, int) {
	t.Helper()
	res, err := http.Get(base + "/api/v1/sessions/" + sid + "/state")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, _ := io.ReadAll(res.Body)
	return string(body), res.Header.Get("ETag"), res.StatusCode
}

// normalize blanks the random session id out of a state body or ETag
// so runs with different sids compare byte-for-byte.
func normalize(s, sid string) string { return strings.ReplaceAll(s, sid, "X") }

// mutations extracts n from an `"<sid>.<n>"` validator.
func mutations(t testing.TB, etag, sid string) uint64 {
	t.Helper()
	want := `"` + sid + `.`
	if !strings.HasPrefix(etag, want) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("etag %q does not carry sid %q", etag, sid)
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(etag, want), `"`), 10, 64)
	if err != nil {
		t.Fatalf("etag %q: %v", etag, err)
	}
	return n
}

// ---------------------------------------------------------------------------
// Rendezvous hashing: determinism and minimal disruption.

func TestOwnerDeterministicAndMinimalDisruption(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	sids := make([]string, 500)
	for i := range sids {
		sids[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	counts := map[string]int{}
	owners := map[string]string{}
	for _, sid := range sids {
		o := Owner(names, sid)
		if o2 := Owner([]string{"d", "c", "b", "a"}, sid); o2 != o {
			t.Fatalf("owner of %s depends on name order: %s vs %s", sid, o, o2)
		}
		owners[sid] = o
		counts[o]++
	}
	// Every shard should carry a meaningful share (loose bound: at
	// least half its fair share) — rendezvous is balanced in
	// expectation.
	for _, n := range names {
		if counts[n] < len(sids)/len(names)/2 {
			t.Fatalf("shard %s owns %d of %d sessions — hash badly skewed: %v", n, counts[n], len(sids), counts)
		}
	}
	// Removing "b" moves exactly b's sessions, nobody else's.
	without := []string{"a", "c", "d"}
	for _, sid := range sids {
		o := Owner(without, sid)
		if owners[sid] != "b" && o != owners[sid] {
			t.Fatalf("removing b moved %s from %s to %s", sid, owners[sid], o)
		}
		if owners[sid] == "b" && o == "b" {
			t.Fatal("removed shard still owns sessions")
		}
	}
	if Owner(nil, "x") != "" {
		t.Fatal("owner of empty shard set should be empty")
	}
}

// ---------------------------------------------------------------------------
// Gateway basics: hashed placement, sticky routing, aggregation.

func TestGatewayPlacementAndStickyRouting(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 3)

	const n = 9
	sids := make([]string, n)
	for i := range sids {
		st, etag := createV1(t, ts.URL)
		sids[i] = st.Session
		if len(st.Shown) == 0 {
			t.Fatalf("create %d: empty initial display", i)
		}
		if got := mutations(t, etag, st.Session); got != 1 {
			t.Fatalf("fresh session mutations = %d, want 1", got)
		}
		// Placement agrees with the hash: the gateway's route and the
		// rendezvous owner are the same shard.
		gw.mu.RLock()
		rt := gw.routes[st.Session]
		gw.mu.RUnlock()
		if rt == nil {
			t.Fatalf("create %d: no route recorded", i)
		}
		if want := Owner(gw.Shards(), st.Session); rt.shard != want {
			t.Fatalf("session %s placed on %s, hash owner %s", st.Session, rt.shard, want)
		}
	}

	// Sticky: every sid resolves through the gateway, and a mutation
	// round-trips with a coherent validator.
	for _, sid := range sids {
		body, _, status := getStateRaw(t, ts.URL, sid)
		if status != http.StatusOK {
			t.Fatalf("state %s: status %d: %s", sid, status, body)
		}
	}
	st, _, _ := getStateRawParsed(t, ts.URL, sids[0])
	_, _, etag := applyOne(t, ts.URL, sids[0], action.Action{Op: action.Explore, Group: st.Shown[0].ID})
	if got := mutations(t, etag, sids[0]); got != 2 {
		t.Fatalf("mutations after explore = %d, want 2", got)
	}

	// Occupancy aggregates without double counting: totals equal the
	// number of live sessions, and the per-shard counts sum to it.
	var occ struct {
		Sessions   int            `json:"sessions"`
		PerDataset map[string]int `json:"perDataset"`
		PerShard   map[string]int `json:"perShard"`
	}
	getJSON(t, ts.URL+"/api/sessions", &occ)
	if occ.Sessions != n {
		t.Fatalf("aggregate sessions = %d, want %d", occ.Sessions, n)
	}
	if occ.PerDataset["default"] != n {
		t.Fatalf("perDataset = %v, want default:%d", occ.PerDataset, n)
	}
	sum := 0
	for _, c := range occ.PerShard {
		sum += c
	}
	if sum != n || len(occ.PerShard) != 3 {
		t.Fatalf("perShard = %v, want 3 shards summing to %d", occ.PerShard, n)
	}

	// The dataset listing merges to one row per dataset.
	var ds struct {
		Default  string `json:"default"`
		Datasets []struct {
			Name     string `json:"name"`
			Resident bool   `json:"resident"`
			Sessions int    `json:"sessions"`
		} `json:"datasets"`
	}
	getJSON(t, ts.URL+"/api/datasets", &ds)
	if len(ds.Datasets) != 1 || ds.Datasets[0].Name != "default" {
		t.Fatalf("merged datasets = %+v, want one default row", ds.Datasets)
	}
	if !ds.Datasets[0].Resident || ds.Datasets[0].Sessions != n {
		t.Fatalf("default row = %+v, want resident with %d sessions", ds.Datasets[0], n)
	}

	// Cluster status: every shard healthy, session total matches.
	var cs Status
	getJSON(t, ts.URL+"/api/v1/cluster", &cs)
	if len(cs.Shards) != 3 || cs.Sessions != n {
		t.Fatalf("cluster status %+v", cs)
	}
	for _, row := range cs.Shards {
		if !row.Healthy {
			t.Fatalf("shard %s unhealthy: %s", row.Name, row.Error)
		}
	}
}

func getStateRawParsed(t testing.TB, base, sid string) (stateLite, string, string) {
	t.Helper()
	body, etag, status := getStateRaw(t, base, sid)
	if status != http.StatusOK {
		t.Fatalf("state %s: status %d", sid, status)
	}
	var st stateLite
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	return st, body, etag
}

func getJSON(t testing.TB, url string, v any) {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("GET %s: status %d: %s", url, res.StatusCode, body)
	}
	if err := json.NewDecoder(res.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Lifecycle through the gateway: deletion, unknown sessions, 404 GC.

func TestGatewayDeleteAndUnknownSession(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 2)

	st, _ := createV1(t, ts.URL)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+st.Session, nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", res.StatusCode)
	}
	gw.mu.RLock()
	_, still := gw.routes[st.Session]
	gw.mu.RUnlock()
	if still {
		t.Fatal("route survived session deletion")
	}
	if _, _, status := getStateRaw(t, ts.URL, st.Session); status != http.StatusNotFound {
		t.Fatalf("state after delete: status %d, want 404", status)
	}
	if _, _, status := getStateRaw(t, ts.URL, "deadbeef"); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}
}

// ---------------------------------------------------------------------------
// Drain: replay-based migration moves every session, seamlessly.

func TestGatewayDrainMigratesSessions(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 3)

	// A handful of sessions, each advanced a little so there is real
	// trail to replay.
	type sess struct {
		sid   string
		state string // normalized full state before the drain
		etag  string
	}
	var sessions []sess
	for i := 0; i < 6; i++ {
		st, _ := createV1(t, ts.URL)
		_, body, etag := applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st.Shown[i%len(st.Shown)].ID})
		sessions = append(sessions, sess{st.Session, normalize(body, st.Session), normalize(etag, st.Session)})
	}

	// Drain whichever shard carries the first session.
	gw.mu.RLock()
	victim := gw.routes[sessions[0].sid].shard
	gw.mu.RUnlock()
	var before int
	for _, row := range gw.Status().Shards {
		if row.Name == victim {
			before = row.Sessions
		}
	}
	res, err := http.Post(ts.URL+"/api/v1/cluster/drain?shard="+victim, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var dr struct {
		Shard  string   `json:"shard"`
		Moved  int      `json:"moved"`
		Shards []string `json:"shards"`
	}
	if err := json.NewDecoder(res.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", res.StatusCode)
	}
	if dr.Moved != before {
		t.Fatalf("drain moved %d sessions, shard had %d", dr.Moved, before)
	}
	if len(dr.Shards) != 2 {
		t.Fatalf("shards after drain: %v", dr.Shards)
	}
	for _, n := range dr.Shards {
		if n == victim {
			t.Fatalf("drained shard %s still routed", victim)
		}
	}

	// Every session — migrated or not — serves byte-identical state
	// under the same validator.
	for _, s := range sessions {
		body, etag, status := getStateRaw(t, ts.URL, s.sid)
		if status != http.StatusOK {
			t.Fatalf("state %s after drain: status %d", s.sid, status)
		}
		if normalize(body, s.sid) != s.state {
			t.Fatalf("state of %s changed across drain\nbefore: %s\nafter:  %s", s.sid, s.state, normalize(body, s.sid))
		}
		if normalize(etag, s.sid) != s.etag {
			t.Fatalf("etag of %s changed across drain: %s vs %s", s.sid, s.etag, normalize(etag, s.sid))
		}
	}

	// Sessions keep working after migration, counter continuous.
	st, _, _ := getStateRawParsed(t, ts.URL, sessions[0].sid)
	_, _, etag := applyOne(t, ts.URL, sessions[0].sid, action.Action{Op: action.Explore, Group: st.Shown[0].ID})
	if got := mutations(t, etag, sessions[0].sid); got != 3 {
		t.Fatalf("mutations after post-drain explore = %d, want 3", got)
	}

	// Draining the rest down to one shard works; draining the last
	// must refuse.
	for len(gw.Shards()) > 1 {
		if _, err := gw.Drain(gw.Shards()[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := gw.Drain(gw.Shards()[0]); err == nil {
		t.Fatal("draining the last shard should fail")
	}
	for _, s := range sessions {
		if _, _, status := getStateRaw(t, ts.URL, s.sid); status != http.StatusOK {
			t.Fatalf("session %s lost after full drain-down: status %d", s.sid, status)
		}
	}
}

// ---------------------------------------------------------------------------
// Join: the newcomer steals exactly the sessions it hash-owns.

func TestGatewayJoinRebalances(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 1)

	type sess struct{ sid, state string }
	var sessions []sess
	for i := 0; i < 8; i++ {
		st, _ := createV1(t, ts.URL)
		_, body, _ := applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st.Shown[0].ID})
		sessions = append(sessions, sess{st.Session, normalize(body, st.Session)})
	}

	newShard := LocalShard("s9", shardServer(t, eng).Routes())
	moved, err := gw.Join(newShard)
	if err != nil {
		t.Fatal(err)
	}
	wantMoved := 0
	names := gw.Shards()
	for _, s := range sessions {
		if Owner(names, s.sid) == "s9" {
			wantMoved++
		}
	}
	if moved != wantMoved {
		t.Fatalf("join moved %d sessions, hash reassigns %d", moved, wantMoved)
	}
	if wantMoved == 0 {
		t.Fatal("fixture too small: no session reassigned to the joining shard")
	}
	for _, s := range sessions {
		body, _, status := getStateRaw(t, ts.URL, s.sid)
		if status != http.StatusOK {
			t.Fatalf("state %s after join: status %d", s.sid, status)
		}
		if normalize(body, s.sid) != s.state {
			t.Fatalf("state of %s changed across join", s.sid)
		}
	}
	if _, err := gw.Join(newShard); err == nil {
		t.Fatal("joining a duplicate shard name should fail")
	}
}

// ---------------------------------------------------------------------------
// Remove: the recovery path for a dead member Drain cannot talk to.

func TestGatewayRemoveDeadShard(t *testing.T) {
	eng := testEngine(t)

	// A warm join of an unreachable member refuses up front — the
	// snapshot stream cannot complete, so the newcomer is never
	// admitted and the epoch never moves.
	gwLive, _ := testCluster(t, eng, 1)
	epochBefore := gwLive.Epoch()
	if _, err := gwLive.Join(RemoteShard("dead", "127.0.0.1:1")); err == nil {
		t.Fatal("warm join of an unreachable shard should fail")
	}
	if len(gwLive.Shards()) != 1 {
		t.Fatalf("failed join admitted the shard anyway: %v", gwLive.Shards())
	}
	if gwLive.Epoch() != epochBefore {
		t.Fatalf("failed join moved the epoch: %d -> %d", epochBefore, gwLive.Epoch())
	}

	// A member that dies *after* admission is modeled by seeding it
	// statically (static members are trusted without a warm stream).
	s0 := LocalShard("s0", shardServer(t, eng).Routes())
	dead := RemoteShard("dead", "127.0.0.1:1")
	gw, err := NewGateway(s0, dead)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	t.Cleanup(ts.Close)

	// Placement is sid-random and the dead member wins ~half, failing
	// those creates with 502; keep trying until one lands on s0.
	tryCreate := func() string {
		res, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusCreated {
			io.Copy(io.Discard, res.Body)
			return ""
		}
		var st stateLite
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Session
	}
	sid := ""
	for i := 0; i < 64 && sid == ""; i++ {
		sid = tryCreate()
	}
	if sid == "" {
		t.Fatal("no create landed on the live shard")
	}
	st := stateLite{Session: sid}
	// Drain cannot remove it — it must list the shard's sessions.
	if _, err := gw.Drain("dead"); err == nil {
		t.Fatal("drain of an unreachable shard should fail")
	}
	if len(gw.Shards()) != 2 {
		t.Fatal("failed drain removed the shard anyway")
	}
	// Remove can.
	if _, err := gw.Remove("dead"); err != nil {
		t.Fatal(err)
	}
	if len(gw.Shards()) != 1 {
		t.Fatalf("shards after remove: %v", gw.Shards())
	}
	// The cluster serves again: surviving sessions respond, creates
	// succeed (no placement can hash to the dead member anymore).
	if _, _, status := getStateRaw(t, ts.URL, st.Session); status != http.StatusOK {
		t.Fatalf("surviving session after remove: status %d", status)
	}
	for i := 0; i < 4; i++ {
		if st, _ := createV1(t, ts.URL); st.Session == "" {
			t.Fatal("create failed after removing the dead shard")
		}
	}
	// Removing the last shard refuses, like drain.
	if _, err := gw.Remove(gw.Shards()[0]); err == nil {
		t.Fatal("removing the last shard should fail")
	}
}

// ---------------------------------------------------------------------------
// Route GC: entries for sessions that died shard-side (TTL, LRU,
// out-of-band delete) are reclaimed by the sweeper.

func TestGatewaySweepReclaimsDeadRoutes(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 2)

	dead, _ := createV1(t, ts.URL)
	alive, _ := createV1(t, ts.URL)

	// Kill the first session behind the gateway's back, as a TTL
	// sweep on the shard would.
	gw.mu.RLock()
	sh := gw.shards[gw.routes[dead.Session].shard]
	gw.mu.RUnlock()
	res, err := sh.do(http.MethodDelete, "/api/v1/sessions/"+dead.Session, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	if dropped := gw.sweepRoutes(); dropped != 1 {
		t.Fatalf("sweep dropped %d routes, want 1", dropped)
	}
	gw.mu.RLock()
	_, deadThere := gw.routes[dead.Session]
	_, aliveThere := gw.routes[alive.Session]
	gw.mu.RUnlock()
	if deadThere {
		t.Fatal("dead session's route survived the sweep")
	}
	if !aliveThere {
		t.Fatal("live session's route was swept")
	}
	if _, _, status := getStateRaw(t, ts.URL, alive.Session); status != http.StatusOK {
		t.Fatalf("live session broken after sweep: %d", status)
	}
}

// ---------------------------------------------------------------------------
// Concurrency: live traffic rides through a drain untouched. Run with
// -race (CI does).

func TestGatewayDrainUnderTraffic(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 2)

	st, _ := createV1(t, ts.URL)
	sid := st.Session
	gw.mu.RLock()
	victim := gw.routes[sid].shard
	gw.mu.RUnlock()

	const hammers = 4
	const perHammer = 5
	errc := make(chan error, hammers)
	var wg sync.WaitGroup
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perHammer; i++ {
				raw, _ := json.Marshal([]action.Action{{Op: action.Explore, Group: st.Shown[0].ID}})
				res, err := http.Post(ts.URL+"/api/v1/sessions/"+sid+"/actions", "application/json", bytes.NewReader(raw))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("explore during drain: status %d", res.StatusCode)
					return
				}
			}
		}()
	}
	if _, err := gw.Drain(victim); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	// Counter reflects exactly the successful mutations: create (1) +
	// hammers*perHammer explores, none lost to the migration.
	_, etag, status := getStateRaw(t, ts.URL, sid)
	if status != http.StatusOK {
		t.Fatalf("state after drain under traffic: %d", status)
	}
	if got, want := mutations(t, etag, sid), uint64(1+hammers*perHammer); got != want {
		t.Fatalf("mutations = %d, want %d (no action lost or duplicated)", got, want)
	}
}
