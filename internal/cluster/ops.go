package cluster

import (
	"encoding/json"
	"net/http"
	"sort"

	"vexus/internal/membership"
	"vexus/internal/serve"
)

// The ops surface: cross-shard aggregation for the two registry
// endpoints the single-node server already had (so dashboards work
// unchanged against a gateway), plus the cluster's own status and
// topology endpoints.

// occupancyDTO mirrors the single-node GET /api/sessions body, with a
// per-shard breakdown added. Counts are summed across shards; a
// session lives on exactly one shard, so the sum never double-counts.
type occupancyDTO struct {
	Sessions   int            `json:"sessions"`
	PerDataset map[string]int `json:"perDataset"`
	PerShard   map[string]int `json:"perShard"`
}

// handleSessions aggregates occupancy: each shard reports its own
// sessions, the gateway sums. Unreachable shards contribute nothing
// here (their absence is visible on /api/v1/cluster); the ops view
// should degrade, not 502.
func (g *Gateway) handleSessions(w http.ResponseWriter, _ *http.Request) {
	out := occupancyDTO{PerDataset: map[string]int{}, PerShard: map[string]int{}}
	for _, sh := range g.shardList() {
		list, err := sh.sessions()
		if err != nil {
			continue
		}
		out.PerShard[sh.name] = len(list)
		out.Sessions += len(list)
		for _, info := range list {
			out.PerDataset[info.Dataset]++
		}
	}
	// Datasets with zero sessions anywhere still appear, like the
	// single-node endpoint. Every shard serves the same catalog specs,
	// so the name set comes from the first reachable shard — one extra
	// call, not another full fan-out.
	for _, sh := range g.shardList() {
		var body datasetsDTO
		if err := sh.getJSON("/api/datasets", nil, &body); err != nil {
			continue
		}
		for _, row := range body.Datasets {
			if _, ok := out.PerDataset[row.Name]; !ok {
				out.PerDataset[row.Name] = 0
			}
		}
		break
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// datasetsDTO mirrors the single-node GET /api/datasets body.
type datasetsDTO struct {
	Default  string                `json:"default"`
	Datasets []serve.DatasetStatus `json:"datasets"`
}

// handleDatasets merges the per-shard catalog listings by dataset
// name: resident anywhere is resident, session counts sum, and
// shape metadata (groups/users) comes from whichever shard has the
// engine resident. One dataset, one row — however many shards serve
// it — so the clustered listing never double-counts a dataset.
func (g *Gateway) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.mergedDatasets())
}

func (g *Gateway) mergedDatasets() datasetsDTO {
	out := datasetsDTO{}
	byName := map[string]*serve.DatasetStatus{}
	for _, sh := range g.shardList() {
		var body datasetsDTO
		if err := sh.getJSON("/api/datasets", nil, &body); err != nil {
			continue
		}
		if out.Default == "" {
			out.Default = body.Default
		}
		for _, row := range body.Datasets {
			m := byName[row.Name]
			if m == nil {
				r := row
				byName[row.Name] = &r
				continue
			}
			m.Sessions += row.Sessions
			if row.Resident && !m.Resident {
				m.Resident = true
				m.Warm = row.Warm
				m.Groups, m.Users = row.Groups, row.Users
			}
			// Shards converge on one version per dataset; during the
			// brief window an ingest fan-out is mid-flight the merged
			// row reports the furthest shard.
			if row.Version > m.Version {
				m.Version = row.Version
			}
			if row.Error != "" && m.Error == "" {
				m.Error = row.Error
			}
		}
	}
	for _, row := range byName {
		out.Datasets = append(out.Datasets, *row)
	}
	sort.Slice(out.Datasets, func(i, j int) bool { return out.Datasets[i].Name < out.Datasets[j].Name })
	return out
}

// ShardStatus is one row of GET /api/v1/cluster: health and residency
// of one shard.
type ShardStatus struct {
	Name     string `json:"name"`
	Addr     string `json:"addr,omitempty"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	// State is the membership verdict (alive/suspect/down) — gossip's
	// view, vs. Healthy which is this poll's direct observation.
	State      string         `json:"state,omitempty"`
	Sessions   int            `json:"sessions"`
	PerDataset map[string]int `json:"perDataset,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// Status is the GET /api/v1/cluster body.
type Status struct {
	// Epoch is the topology epoch: the version of the routing set. Two
	// gateways at the same epoch route every session id identically.
	Epoch  uint64        `json:"epoch"`
	Shards []ShardStatus `json:"shards"`
	// Members is the membership roster with liveness states — including
	// members that currently have no dialable client.
	Members  []membership.MemberInfo `json:"members,omitempty"`
	Sessions int                     `json:"sessions"`
	// Metrics is the cluster-wide rollup: every reachable shard's
	// metric snapshot summed series-by-series (histogram bucket series
	// omitted — _sum/_count carry the aggregate). Absent when no shard
	// exposes the shard API.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Status polls every shard's residency listing and assembles the
// cluster health view.
func (g *Gateway) Status() Status {
	var st Status
	st.Epoch = g.dir.Epoch()
	st.Members = g.dir.Members()
	states := make(map[string]membership.State, len(st.Members))
	for _, mi := range st.Members {
		states[mi.Name] = mi.State
	}
	g.mu.RLock()
	draining := make(map[string]bool, len(g.draining))
	for n := range g.draining {
		draining[n] = true
	}
	g.mu.RUnlock()
	for _, sh := range g.shardList() {
		row := ShardStatus{Name: sh.name, Addr: sh.addr, Draining: draining[sh.name], State: string(states[sh.name])}
		list, err := sh.sessions()
		if err != nil {
			row.Error = err.Error()
		} else {
			row.Healthy = true
			row.Sessions = len(list)
			if len(list) > 0 {
				row.PerDataset = map[string]int{}
				for _, info := range list {
					row.PerDataset[info.Dataset]++
				}
			}
			st.Sessions += len(list)
		}
		st.Shards = append(st.Shards, row)
	}
	st.Metrics = g.metricsRollup()
	return st
}

func (g *Gateway) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(g.Status())
}

// drainDTO is the POST /api/v1/cluster/drain and /join response.
type drainDTO struct {
	Shard  string   `json:"shard"`
	Moved  int      `json:"moved"`
	Shards []string `json:"shards"`
}

// handleDrain is POST /api/v1/cluster/drain?shard=<name>: migrate
// every session off the shard and remove it from routing.
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("shard")
	if name == "" {
		http.Error(w, "missing shard parameter", http.StatusBadRequest)
		return
	}
	moved, err := g.Drain(name)
	if err != nil {
		status := http.StatusBadGateway
		g.mu.RLock()
		_, known := g.shards[name]
		g.mu.RUnlock()
		if !known && moved == 0 {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(drainDTO{Shard: name, Moved: moved, Shards: g.Shards()})
}

// handleJoin is POST /api/v1/cluster/join?shard=<name>&addr=<host:port>:
// add a remote shard and rebalance onto it.
func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	name, addr := r.FormValue("shard"), r.FormValue("addr")
	if name == "" || addr == "" {
		http.Error(w, "missing shard or addr parameter", http.StatusBadRequest)
		return
	}
	moved, err := g.Join(RemoteShard(name, addr))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(drainDTO{Shard: name, Moved: moved, Shards: g.Shards()})
}

// handleRemove is POST /api/v1/cluster/remove?shard=<name>: force-drop
// a dead shard from routing, abandoning its sessions. The recovery
// path when Drain cannot reach the member; see Gateway.Remove.
func (g *Gateway) handleRemove(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("shard")
	if name == "" {
		http.Error(w, "missing shard parameter", http.StatusBadRequest)
		return
	}
	dropped, err := g.Remove(name)
	if err != nil {
		status := http.StatusConflict
		g.mu.RLock()
		_, known := g.shards[name]
		g.mu.RUnlock()
		if !known {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(drainDTO{Shard: name, Moved: dropped, Shards: g.Shards()})
}

// shardList snapshots the current shards, sorted by name for
// deterministic aggregation order.
func (g *Gateway) shardList() []*Shard {
	g.mu.RLock()
	out := make([]*Shard, 0, len(g.shards))
	for _, sh := range g.shards {
		out = append(out, sh)
	}
	g.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
