package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vexus/internal/action"
	"vexus/internal/core"
)

// ---------------------------------------------------------------------------
// Minimal SSE client (the serve package keeps its own; a gateway test
// must consume the stream through real HTTP like any external client).

type sseEvent struct {
	id   string
	name string
	data string
}

type sseStream struct {
	res    *http.Response
	events chan sseEvent
}

func openStream(t testing.TB, url, lastEventID string) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	res, err := http.DefaultClient.Do(req) // no timeout: streams outlive any budget
	if err != nil {
		t.Fatal(err)
	}
	s := &sseStream{res: res, events: make(chan sseEvent, 64)}
	t.Cleanup(func() { res.Body.Close() })
	if res.StatusCode != http.StatusOK {
		close(s.events)
		return s
	}
	go func() {
		defer close(s.events)
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.name != "" {
					s.events <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, ":"):
			case strings.HasPrefix(line, "id: "):
				ev.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				ev.name = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
			}
		}
	}()
	return s
}

func (s *sseStream) next(t testing.TB) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if !ok {
			t.Fatal("stream ended before the expected event")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for an SSE event")
	}
	panic("unreachable")
}

func (s *sseStream) end(t testing.TB) {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if ok {
			t.Fatalf("expected stream end, got %q id=%s", ev.name, ev.id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for stream end")
	}
}

// TestStreamResumeAcrossMigration extends the migration equivalence
// contract to the diff stream: a client streaming through the gateway
// is torn down by a mid-trail drain with `event: closed` reason
// "migrated", the trail continues on the new owner while the client is
// away, and a Last-Event-ID reconnect delivers exactly the missed
// diffs — no duplicates, no gaps, no resync — with payloads
// byte-identical to a single-node run's diff stream. Repeats at
// workers 1, 2 and 8 (bit-identical engines ⇒ bit-identical streams).
// Run with -race (CI does).
func TestStreamResumeAcrossMigration(t *testing.T) {
	steps := []func(cur stateLite) action.Action{
		func(cur stateLite) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[0].ID}
		},
		func(cur stateLite) action.Action {
			return action.Action{Op: action.BookmarkGroup, Group: cur.Shown[1].ID}
		},
		func(cur stateLite) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[2].ID}
		},
		func(cur stateLite) action.Action {
			return action.Action{Op: action.Unlearn, Field: "gender", Value: "male"}
		},
		func(cur stateLite) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[0].ID}
		},
		func(cur stateLite) action.Action {
			return action.Action{Op: action.Backtrack, Step: 1}
		},
	}
	const drainAfter = 3 // steps the client watches live on the old owner

	finals := map[int]string{}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng, err := buildEngine(workers)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: the full diff stream of the same trail on one
			// node. Diff payloads carry no session id, so they compare
			// byte-for-byte across runs.
			refDiffs := runReferenceStream(t, eng, steps)

			gw, ts := testCluster(t, eng, 3)
			st, _ := createV1(t, ts.URL)
			sid := st.Session

			stream := openStream(t, ts.URL+"/api/v1/sessions/"+sid+"/events", "")
			if ev := stream.next(t); ev.name != "resync" || ev.id != "1" {
				t.Fatalf("first event %q id=%s, want resync id=1", ev.name, ev.id)
			}

			cur := st
			for i := 0; i < drainAfter; i++ {
				var etag string
				cur, _, etag = applyOne(t, ts.URL, sid, steps[i](cur))
				ev := stream.next(t)
				wantID := fmt.Sprint(mutations(t, etag, sid))
				if ev.name != "diff" || ev.id != wantID {
					t.Fatalf("step %d: event %q id=%s, want diff id=%s", i, ev.name, ev.id, wantID)
				}
				if ev.data != refDiffs[ev.id] {
					t.Fatalf("step %d: diff diverges from single-node\nsingle:  %s\ncluster: %s", i, refDiffs[ev.id], ev.data)
				}
			}

			// Drain the owner mid-trail. The attached stream must get a
			// terminal closed frame telling it to come back, then EOF —
			// and crucially the drain must not block on the open stream
			// (the gateway releases the route latch after attach).
			gw.mu.RLock()
			owner := gw.routes[sid].shard
			gw.mu.RUnlock()
			if _, err := gw.Drain(owner); err != nil {
				t.Fatalf("drain with an attached stream: %v", err)
			}
			ev := stream.next(t)
			if ev.name != "closed" {
				t.Fatalf("after drain: event %q, want closed", ev.name)
			}
			var closed struct {
				Reason string `json:"reason"`
			}
			if err := json.Unmarshal([]byte(ev.data), &closed); err != nil || closed.Reason != "migrated" {
				t.Fatalf("closed reason %q (err %v), want migrated", closed.Reason, err)
			}
			stream.end(t)

			// The trail continues on the new owner while the client is
			// away.
			lastSeen := uint64(drainAfter + 1)
			for i := drainAfter; i < len(steps); i++ {
				cur, _, _ = applyOne(t, ts.URL, sid, steps[i](cur))
			}

			// Reconnect with the resume cursor: exactly the missed diffs,
			// in order, byte-identical to the single-node stream — served
			// from the replayed ring and the new owner's live tail.
			resumed := openStream(t, ts.URL+"/api/v1/sessions/"+sid+"/events", fmt.Sprint(lastSeen))
			for want := lastSeen + 1; want <= uint64(len(steps)+1); want++ {
				ev := resumed.next(t)
				if ev.name != "diff" || ev.id != fmt.Sprint(want) {
					t.Fatalf("resume: event %q id=%s, want diff id=%d (no dupes, no gaps, no resync)", ev.name, ev.id, want)
				}
				if ev.data != refDiffs[ev.id] {
					t.Fatalf("resume id=%s: diff diverges from single-node\nsingle:  %s\ncluster: %s", ev.id, refDiffs[ev.id], ev.data)
				}
			}
			// And the resumed stream is live: one more action flows.
			_, _, etag := applyOne(t, ts.URL, sid, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
			ev = resumed.next(t)
			if ev.name != "diff" || ev.id != fmt.Sprint(mutations(t, etag, sid)) {
				t.Fatalf("post-resume live event %q id=%s, want diff id=%d", ev.name, ev.id, mutations(t, etag, sid))
			}

			body, _, status := getStateRaw(t, ts.URL, sid)
			if status != http.StatusOK {
				t.Fatalf("final state: status %d", status)
			}
			finals[workers] = normalize(body, sid)
		})
	}
	if len(finals) == 3 && (finals[1] != finals[2] || finals[2] != finals[8]) {
		t.Fatalf("final states differ across worker counts:\n1: %s\n2: %s\n8: %s", finals[1], finals[2], finals[8])
	}
}

// runReferenceStream drives the trail on a single node with a stream
// attached and returns the diff payload per event id.
func runReferenceStream(t testing.TB, eng *core.Engine, steps []func(stateLite) action.Action) map[string]string {
	t.Helper()
	single := httptest.NewServer(shardServer(t, eng).Routes())
	defer single.Close()
	st, _ := createV1(t, single.URL)
	stream := openStream(t, single.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	// Hang up before the deferred server Close: Close waits for open
	// connections, and the stream would otherwise hold one forever.
	defer stream.res.Body.Close()
	if ev := stream.next(t); ev.name != "resync" {
		t.Fatalf("reference: first event %q, want resync", ev.name)
	}
	diffs := make(map[string]string, len(steps))
	cur := st
	for i, mk := range steps {
		cur, _, _ = applyOne(t, single.URL, st.Session, mk(cur))
		ev := stream.next(t)
		if ev.name != "diff" {
			t.Fatalf("reference step %d: event %q, want diff", i, ev.name)
		}
		diffs[ev.id] = ev.data
	}
	return diffs
}
