package cluster

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/datagen"
)

// TestMigrationEquivalenceAcrossWorkers is the cluster determinism
// contract, pinned end to end: one exploration trail is driven twice —
// once against a single-node server, once through a gateway whose
// owning shard is drained mid-trail, forcing a replay-based migration
// — and the two runs must produce byte-identical state bodies and the
// same mutation-counter (ETag) sequence at every step. Engines built
// at workers 1, 2 and 8 are bit-identical by the repo's slot-write
// contract, so the walk repeats per worker count and the final states
// must also agree across counts. Run with -race (CI does).
func TestMigrationEquivalenceAcrossWorkers(t *testing.T) {
	// The trail: one of everything that mutates differently, each step
	// derived from the session's current display so the walk is
	// self-consistent under the deterministic optimizer.
	steps := []func(cur stateLite, eng *core.Engine) action.Action{
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[0].ID}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Focus, Group: cur.Shown[1].ID, Class: "gender"}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Brush, Attr: "gender", Values: []string{"female"}}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.BookmarkGroup, Group: cur.Shown[2].ID}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Unlearn, Field: "gender", Value: "male"}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[0].ID}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Backtrack, Step: 1}
		},
		func(cur stateLite, eng *core.Engine) action.Action {
			return action.Action{Op: action.BookmarkUser, User: eng.Data.Users[0].ID}
		},
		func(cur stateLite, _ *core.Engine) action.Action {
			return action.Action{Op: action.Explore, Group: cur.Shown[1].ID}
		},
	}
	const drainAfter = 4 // steps applied on the original owner

	finals := map[int]string{}
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng, err := buildEngine(workers)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: the same trail on a single node, no cluster.
			single := httptest.NewServer(shardServer(t, eng).Routes())
			defer single.Close()
			refStates := make([]string, 0, len(steps))
			refMuts := make([]uint64, 0, len(steps))
			refSt, _ := createV1(t, single.URL)
			cur := refSt
			for _, mk := range steps {
				st, body, etag := applyOne(t, single.URL, refSt.Session, mk(cur, eng))
				refStates = append(refStates, normalize(body, refSt.Session))
				refMuts = append(refMuts, mutations(t, etag, refSt.Session))
				cur = st
			}

			// Clustered: same trail, with the session's shard drained
			// mid-trail — the second half runs on the replayed copy.
			gw, ts := testCluster(t, eng, 3)
			clSt, _ := createV1(t, ts.URL)
			cur = clSt
			for i, mk := range steps {
				if i == drainAfter {
					gw.mu.RLock()
					owner := gw.routes[clSt.Session].shard
					gw.mu.RUnlock()
					if _, err := gw.Drain(owner); err != nil {
						t.Fatalf("drain before step %d: %v", i, err)
					}
					gw.mu.RLock()
					after := gw.routes[clSt.Session].shard
					gw.mu.RUnlock()
					if after == owner {
						t.Fatalf("session still routed to drained shard %s", owner)
					}
				}
				st, body, etag := applyOne(t, ts.URL, clSt.Session, mk(cur, eng))
				if got, want := normalize(body, clSt.Session), refStates[i]; got != want {
					t.Fatalf("step %d: migrated state diverges from single-node\nsingle:   %s\nmigrated: %s", i, want, got)
				}
				if got, want := mutations(t, etag, clSt.Session), refMuts[i]; got != want {
					t.Fatalf("step %d: mutation counter %d, single-node %d", i, got, want)
				}
				cur = st
			}

			// And the final resting state agrees byte-for-byte too.
			body, _, status := getStateRaw(t, ts.URL, clSt.Session)
			if status != 200 {
				t.Fatalf("final state: status %d", status)
			}
			if got := normalize(body, clSt.Session); got != refStates[len(refStates)-1] {
				t.Fatalf("final migrated state diverges:\n%s\nvs\n%s", got, refStates[len(refStates)-1])
			}
			finals[workers] = refStates[len(refStates)-1]
		})
	}

	// Worker counts must agree with each other (bit-identical engines ⇒
	// bit-identical walks).
	if len(finals) == 3 && (finals[1] != finals[2] || finals[2] != finals[8]) {
		t.Fatalf("final states differ across worker counts:\n1: %s\n2: %s\n8: %s", finals[1], finals[2], finals[8])
	}
}

// TestMigrationAfterIngest: a session created before an ingest stays
// pinned to its engine generation even across a migration onto a
// shard that has ingested past it — the export names the engine
// version and the importer resolves it through the target registry's
// retained history. Without the version pin, every drain after any
// ingest would fail with a group-count mismatch and strand the
// session on its shard forever.
func TestMigrationAfterIngest(t *testing.T) {
	eng := testEngine(t)
	gw, ts := testCluster(t, eng, 2)

	st, _ := createV1(t, ts.URL)
	st1, _, etag := applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st.Shown[0].ID})
	if got := mutations(t, etag, st.Session); got != 2 {
		t.Fatalf("mutations before ingest: %d, want 2", got)
	}
	before, _, status := getStateRaw(t, ts.URL, st.Session)
	if status != 200 {
		t.Fatalf("state before ingest: status %d", status)
	}

	// Move every shard to engine version 2.
	ir, res := postIngestAt(t, ts.URL, "default", "", clusterBatch())
	if res.StatusCode != 200 || ir.EngineVersion != 2 {
		t.Fatalf("gateway ingest: status %d, version %d", res.StatusCode, ir.EngineVersion)
	}

	// Drain the owner: the session must land on the surviving shard
	// and keep serving its version-1 state byte-identically.
	gw.mu.RLock()
	owner := gw.routes[st.Session].shard
	gw.mu.RUnlock()
	if _, err := gw.Drain(owner); err != nil {
		t.Fatalf("drain after ingest: %v", err)
	}
	gw.mu.RLock()
	after := gw.routes[st.Session].shard
	gw.mu.RUnlock()
	if after == owner {
		t.Fatalf("session still routed to drained shard %s", owner)
	}
	migrated, etag2, status := getStateRaw(t, ts.URL, st.Session)
	if status != 200 {
		t.Fatalf("state after migration: status %d", status)
	}
	if normalize(migrated, st.Session) != normalize(before, st.Session) {
		t.Fatalf("migrated state diverges from its pre-drain state\nbefore: %s\nafter:  %s",
			normalize(before, st.Session), normalize(migrated, st.Session))
	}
	if got := mutations(t, etag2, st.Session); got != 2 {
		t.Fatalf("mutation counter after migration: %d, want 2", got)
	}

	// And the ETag stream continues seamlessly on the new owner.
	_, _, etag3 := applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st1.Shown[0].ID})
	if got := mutations(t, etag3, st.Session); got != 3 {
		t.Fatalf("mutation counter after post-migration explore: %d, want 3", got)
	}
}

// TestShardImportRejectsDivergence: an import whose trail cannot
// replay (wrong engine shape) fails closed — 409, no session left
// behind on the target.
func TestShardImportRejectsDivergence(t *testing.T) {
	// Source shard on the fixture engine, target on an engine with a
	// different group space (higher minsup ⇒ fewer groups), violating
	// the bit-identical-engines deployment contract.
	src := LocalShard("src", shardServer(t, testEngine(t)).Routes())
	dst := LocalShard("dst", shardServer(t, differentEngine(t)).Routes())

	gw, err2 := NewGateway(src)
	if err2 != nil {
		t.Fatal(err2)
	}
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Routes())
	defer ts.Close()
	st, _ := createV1(t, ts.URL)
	_, _, _ = applyOne(t, ts.URL, st.Session, action.Action{Op: action.Explore, Group: st.Shown[0].ID})

	if err := gw.migrate(st.Session, src, dst); err == nil {
		t.Fatal("migrating onto a mismatched engine should fail")
	}
	// The source still owns the live session; the target holds nothing.
	if _, _, status := getStateRaw(t, ts.URL, st.Session); status != 200 {
		t.Fatalf("source lost the session after failed migration: %d", status)
	}
	list, err := dst.sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("target kept a half-imported session: %v", list)
	}
}

// differentEngine builds an engine whose group space differs from the
// fixture's (higher support threshold ⇒ fewer groups).
func differentEngine(t testing.TB) *core.Engine {
	t.Helper()
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.10
	eng, err := core.Build(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}
