// Package dataset defines the user-data model at the heart of VEXUS:
// users carrying demographic attributes, items, and actions in the
// paper's generic schema [user, item, value] (§II-A). Demographic values
// are interned per attribute so that the rest of the system (mining,
// groups, feedback) can work with compact integer ids.
package dataset

import (
	"fmt"
	"sort"
)

// AttrKind classifies a demographic attribute.
type AttrKind int

const (
	// Categorical attributes have an unordered finite domain
	// (gender, country, occupation).
	Categorical AttrKind = iota
	// Ordinal attributes have an ordered finite domain
	// (seniority: junior < senior < very senior).
	Ordinal
	// Numeric attributes are continuous and must be binned into an
	// ordinal domain before group mining (age, publication count).
	Numeric
)

// String returns the lowercase kind name.
func (k AttrKind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Ordinal:
		return "ordinal"
	case Numeric:
		return "numeric"
	default:
		return fmt.Sprintf("AttrKind(%d)", int(k))
	}
}

// Attribute describes one demographic dimension. For Categorical and
// Ordinal attributes, Values is the interned domain: a user's value for
// the attribute is an index into Values. Numeric attributes carry bin
// boundaries; the interned domain is the list of bin labels.
type Attribute struct {
	Name   string
	Kind   AttrKind
	Values []string  // interned domain (bin labels for Numeric)
	Bins   []float64 // ascending upper bounds, Numeric only; len == len(Values)-1

	valueIndex map[string]int
}

// ValueIndex returns the interned id of value, or -1 if it is not in the
// domain.
func (a *Attribute) ValueIndex(value string) int {
	if a.valueIndex == nil {
		a.valueIndex = make(map[string]int, len(a.Values))
		for i, v := range a.Values {
			a.valueIndex[v] = i
		}
	}
	if i, ok := a.valueIndex[value]; ok {
		return i
	}
	return -1
}

// BinIndex maps a numeric observation to its bin id. The i-th bin covers
// (Bins[i-1], Bins[i]]; values above the last bound fall in the final
// bin. Panics if the attribute is not Numeric.
func (a *Attribute) BinIndex(x float64) int {
	if a.Kind != Numeric {
		panic(fmt.Sprintf("dataset: BinIndex on %s attribute %q", a.Kind, a.Name))
	}
	i := sort.SearchFloat64s(a.Bins, x)
	if i >= len(a.Values) {
		i = len(a.Values) - 1
	}
	return i
}

// Schema is an ordered list of demographic attributes.
type Schema struct {
	Attrs []Attribute

	attrIndex map[string]int
}

// NewSchema builds a schema from the given attributes, validating that
// names are unique and non-empty and that each domain is consistent.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	s := &Schema{Attrs: attrs, attrIndex: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("dataset: attribute %d has empty name", i)
		}
		if _, dup := s.attrIndex[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute %q", a.Name)
		}
		if len(a.Values) == 0 {
			return nil, fmt.Errorf("dataset: attribute %q has empty domain", a.Name)
		}
		seen := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if seen[v] {
				return nil, fmt.Errorf("dataset: attribute %q has duplicate value %q", a.Name, v)
			}
			seen[v] = true
		}
		if a.Kind == Numeric && len(a.Bins) != len(a.Values)-1 {
			return nil, fmt.Errorf("dataset: numeric attribute %q needs len(Bins) == len(Values)-1, got %d vs %d",
				a.Name, len(a.Bins), len(a.Values))
		}
		if a.Kind == Numeric && !sort.Float64sAreSorted(a.Bins) {
			return nil, fmt.Errorf("dataset: numeric attribute %q has unsorted bins", a.Name)
		}
		s.attrIndex[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests
// and generators.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.attrIndex[name]; ok {
		return i
	}
	return -1
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// PossibleGroups returns the number of conjunctive group descriptions
// expressible over the schema, counting the "any" wildcard per
// attribute: Π(|domain_i| + 1) - 1. This is the exponential group-space
// size the paper's introduction warns about (E3): four attributes with
// five values each already yield 6^4 - 1 = 1295 descriptions over
// demographics alone, and ~10^6 once action-derived attributes join.
func (s *Schema) PossibleGroups() int {
	total := 1
	for _, a := range s.Attrs {
		total *= len(a.Values) + 1
	}
	return total - 1
}
