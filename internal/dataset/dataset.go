package dataset

import (
	"fmt"
	"sort"
)

// User is one individual in the dataset. Demo[i] is the interned value
// id of attribute i in the schema, or Missing when unknown.
type User struct {
	ID   string
	Demo []int
}

// Missing marks an absent demographic value.
const Missing = -1

// Item is something users act on (a book, a paper venue, a product).
type Item struct {
	ID    string
	Label string
}

// Action is one record of the generic schema [user, item, value]
// (§II-A): user U rated/bought/published item I with value V.
// User and Item are indices into Dataset.Users / Dataset.Items.
type Action struct {
	User  int
	Item  int
	Value float64
	Time  int64 // optional epoch seconds; 0 when absent
}

// Dataset holds users, items and actions with interned ids.
// Construct with NewBuilder; a built Dataset is immutable and safe for
// concurrent readers.
type Dataset struct {
	Schema  *Schema
	Users   []User
	Items   []Item
	Actions []Action

	userIndex map[string]int
	itemIndex map[string]int

	// actionsByUser[u] lists indices into Actions for user u, in
	// insertion order. Built once at Build time.
	actionsByUser [][]int32
}

// NumUsers returns the number of users.
func (d *Dataset) NumUsers() int { return len(d.Users) }

// NumItems returns the number of items.
func (d *Dataset) NumItems() int { return len(d.Items) }

// NumActions returns the number of actions.
func (d *Dataset) NumActions() int { return len(d.Actions) }

// UserIndex returns the index of the user with the given external id,
// or -1.
func (d *Dataset) UserIndex(id string) int {
	if i, ok := d.userIndex[id]; ok {
		return i
	}
	return -1
}

// ItemIndex returns the index of the item with the given external id,
// or -1.
func (d *Dataset) ItemIndex(id string) int {
	if i, ok := d.itemIndex[id]; ok {
		return i
	}
	return -1
}

// UserActions returns the indices (into Actions) of user u's actions.
// The returned slice must not be modified.
func (d *Dataset) UserActions(u int) []int32 {
	if u < 0 || u >= len(d.actionsByUser) {
		return nil
	}
	return d.actionsByUser[u]
}

// DemoValue returns the string value of attribute attr for user u, and
// whether it is present.
func (d *Dataset) DemoValue(u, attr int) (string, bool) {
	if u < 0 || u >= len(d.Users) || attr < 0 || attr >= d.Schema.NumAttrs() {
		return "", false
	}
	v := d.Users[u].Demo[attr]
	if v == Missing {
		return "", false
	}
	return d.Schema.Attrs[attr].Values[v], true
}

// Builder assembles a Dataset incrementally; it is the target of both
// the ETL import path and the synthetic generators.
type Builder struct {
	schema  *Schema
	users   []User
	items   []Item
	actions []Action

	userIndex map[string]int
	itemIndex map[string]int
	err       error
}

// NewBuilder returns a builder over the given schema.
func NewBuilder(schema *Schema) *Builder {
	return &Builder{
		schema:    schema,
		userIndex: make(map[string]int),
		itemIndex: make(map[string]int),
	}
}

// Err returns the first recorded construction error, if any.
func (b *Builder) Err() error { return b.err }

// AddUser registers a user with raw demographic values keyed by
// attribute name; unknown attributes are an error, unknown values of a
// known attribute are an error (clean them in ETL first), and missing
// attributes are stored as Missing. Returns the user's index.
func (b *Builder) AddUser(id string, demo map[string]string) int {
	if b.err != nil {
		return -1
	}
	if id == "" {
		b.err = fmt.Errorf("dataset: empty user id")
		return -1
	}
	if _, dup := b.userIndex[id]; dup {
		b.err = fmt.Errorf("dataset: duplicate user id %q", id)
		return -1
	}
	u := User{ID: id, Demo: make([]int, b.schema.NumAttrs())}
	for i := range u.Demo {
		u.Demo[i] = Missing
	}
	for name, value := range demo {
		ai := b.schema.AttrIndex(name)
		if ai < 0 {
			b.err = fmt.Errorf("dataset: user %q: unknown attribute %q", id, name)
			return -1
		}
		vi := b.schema.Attrs[ai].ValueIndex(value)
		if vi < 0 {
			b.err = fmt.Errorf("dataset: user %q: attribute %q has out-of-domain value %q", id, name, value)
			return -1
		}
		u.Demo[ai] = vi
	}
	idx := len(b.users)
	b.users = append(b.users, u)
	b.userIndex[id] = idx
	return idx
}

// AddUserBinned registers a user whose numeric attributes are provided
// as raw float64 observations (binned here) and whose discrete
// attributes are provided as strings.
func (b *Builder) AddUserBinned(id string, discrete map[string]string, numeric map[string]float64) int {
	if b.err != nil {
		return -1
	}
	demo := make(map[string]string, len(discrete)+len(numeric))
	for k, v := range discrete {
		demo[k] = v
	}
	for name, x := range numeric {
		ai := b.schema.AttrIndex(name)
		if ai < 0 {
			b.err = fmt.Errorf("dataset: user %q: unknown numeric attribute %q", id, name)
			return -1
		}
		a := &b.schema.Attrs[ai]
		if a.Kind != Numeric {
			b.err = fmt.Errorf("dataset: user %q: attribute %q is %s, not numeric", id, name, a.Kind)
			return -1
		}
		demo[name] = a.Values[a.BinIndex(x)]
	}
	return b.AddUser(id, demo)
}

// HasUser reports whether a user with the given external id has been
// registered (the ETL action loader's referential check).
func (b *Builder) HasUser(id string) bool {
	_, ok := b.userIndex[id]
	return ok
}

// AddItem registers an item, returning its index. Adding the same id
// twice returns the existing index.
func (b *Builder) AddItem(id, label string) int {
	if b.err != nil {
		return -1
	}
	if id == "" {
		b.err = fmt.Errorf("dataset: empty item id")
		return -1
	}
	if i, ok := b.itemIndex[id]; ok {
		return i
	}
	idx := len(b.items)
	b.items = append(b.items, Item{ID: id, Label: label})
	b.itemIndex[id] = idx
	return idx
}

// AddAction records [user, item, value] by external ids, creating the
// item on first sight. The user must already exist.
func (b *Builder) AddAction(userID, itemID string, value float64, ts int64) {
	if b.err != nil {
		return
	}
	u, ok := b.userIndex[userID]
	if !ok {
		b.err = fmt.Errorf("dataset: action references unknown user %q", userID)
		return
	}
	it := b.AddItem(itemID, itemID)
	b.actions = append(b.actions, Action{User: u, Item: it, Value: value, Time: ts})
}

// AddActionByIndex records an action by internal indices (generator fast
// path). Indices are validated at Build time.
func (b *Builder) AddActionByIndex(user, item int, value float64, ts int64) {
	if b.err != nil {
		return
	}
	b.actions = append(b.actions, Action{User: user, Item: item, Value: value, Time: ts})
}

// Build finalizes the dataset. It validates action indices and
// constructs the per-user action lists.
func (b *Builder) Build() (*Dataset, error) {
	if b.err != nil {
		return nil, b.err
	}
	for i, a := range b.actions {
		if a.User < 0 || a.User >= len(b.users) {
			return nil, fmt.Errorf("dataset: action %d has invalid user index %d", i, a.User)
		}
		if a.Item < 0 || a.Item >= len(b.items) {
			return nil, fmt.Errorf("dataset: action %d has invalid item index %d", i, a.Item)
		}
	}
	d := &Dataset{
		Schema:    b.schema,
		Users:     b.users,
		Items:     b.items,
		Actions:   b.actions,
		userIndex: b.userIndex,
		itemIndex: b.itemIndex,
	}
	d.actionsByUser = make([][]int32, len(d.Users))
	counts := make([]int, len(d.Users))
	for _, a := range d.Actions {
		counts[a.User]++
	}
	for u, c := range counts {
		if c > 0 {
			d.actionsByUser[u] = make([]int32, 0, c)
		}
	}
	for i, a := range d.Actions {
		d.actionsByUser[a.User] = append(d.actionsByUser[a.User], int32(i))
	}
	return d, nil
}

// Restore rebuilds a Dataset from its exported parts — the snapshot
// deserialization path (internal/store). Users carry already-interned
// Demo ids and actions carry internal indices; Restore re-derives every
// unexported structure (id maps, per-user action lists) exactly as
// Build does, so a restored dataset is indistinguishable from the one
// the parts were taken from.
func Restore(schema *Schema, users []User, items []Item, actions []Action) (*Dataset, error) {
	if schema == nil {
		return nil, fmt.Errorf("dataset: restore with nil schema")
	}
	b := &Builder{
		schema:    schema,
		users:     users,
		items:     items,
		actions:   actions,
		userIndex: make(map[string]int, len(users)),
		itemIndex: make(map[string]int, len(items)),
	}
	for i, u := range users {
		if len(u.Demo) != schema.NumAttrs() {
			return nil, fmt.Errorf("dataset: user %q has %d demo values, schema has %d attrs", u.ID, len(u.Demo), schema.NumAttrs())
		}
		for ai, v := range u.Demo {
			if v != Missing && (v < 0 || v >= len(schema.Attrs[ai].Values)) {
				return nil, fmt.Errorf("dataset: user %q attribute %q has out-of-domain id %d", u.ID, schema.Attrs[ai].Name, v)
			}
		}
		if _, dup := b.userIndex[u.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate user id %q", u.ID)
		}
		b.userIndex[u.ID] = i
	}
	for i, it := range items {
		if _, dup := b.itemIndex[it.ID]; dup {
			return nil, fmt.Errorf("dataset: duplicate item id %q", it.ID)
		}
		b.itemIndex[it.ID] = i
	}
	return b.Build()
}

// TopItems returns the n most-acted-on item indices, most popular first.
// Ties break by ascending item index for determinism.
func (d *Dataset) TopItems(n int) []int {
	counts := make([]int, len(d.Items))
	for _, a := range d.Actions {
		counts[a.Item]++
	}
	idx := make([]int, len(d.Items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if counts[idx[i]] != counts[idx[j]] {
			return counts[idx[i]] > counts[idx[j]]
		}
		return idx[i] < idx[j]
	})
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
