package dataset

import (
	"math"
	"strings"
	"testing"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Attribute{Name: "gender", Kind: Categorical, Values: []string{"female", "male"}},
		Attribute{Name: "seniority", Kind: Ordinal, Values: []string{"junior", "senior", "very senior"}},
		Attribute{Name: "pubs", Kind: Numeric, Values: []string{"low", "mid", "high"}, Bins: []float64{10, 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
		want  string
	}{
		{"empty name", []Attribute{{Name: "", Values: []string{"x"}}}, "empty name"},
		{"dup attr", []Attribute{
			{Name: "a", Values: []string{"x"}},
			{Name: "a", Values: []string{"y"}},
		}, "duplicate attribute"},
		{"empty domain", []Attribute{{Name: "a"}}, "empty domain"},
		{"dup value", []Attribute{{Name: "a", Values: []string{"x", "x"}}}, "duplicate value"},
		{"bad bins", []Attribute{{Name: "a", Kind: Numeric, Values: []string{"l", "h"}, Bins: []float64{1, 2}}}, "len(Bins)"},
		{"unsorted bins", []Attribute{{Name: "a", Kind: Numeric, Values: []string{"l", "m", "h"}, Bins: []float64{5, 1}}}, "unsorted"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema(c.attrs...)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestAttrValueIndex(t *testing.T) {
	s := testSchema(t)
	a := &s.Attrs[0]
	if got := a.ValueIndex("male"); got != 1 {
		t.Fatalf("ValueIndex(male) = %d, want 1", got)
	}
	if got := a.ValueIndex("other"); got != -1 {
		t.Fatalf("ValueIndex(other) = %d, want -1", got)
	}
}

func TestBinIndex(t *testing.T) {
	s := testSchema(t)
	pubs := &s.Attrs[2]
	cases := []struct {
		x    float64
		want int
	}{{0, 0}, {10, 0}, {10.5, 1}, {100, 1}, {101, 2}, {1e9, 2}, {-5, 0}}
	for _, c := range cases {
		if got := pubs.BinIndex(c.x); got != c.want {
			t.Errorf("BinIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestBinIndexNonNumericPanics(t *testing.T) {
	s := testSchema(t)
	defer func() {
		if recover() == nil {
			t.Fatal("BinIndex on categorical did not panic")
		}
	}()
	s.Attrs[0].BinIndex(1)
}

func TestPossibleGroups(t *testing.T) {
	// Paper §I: 4 attributes × 5 values ⇒ on the order of 10^6 once you
	// count all conjunctive descriptions; over demographics alone the
	// wildcard-counting formula gives 6^4 - 1.
	attrs := make([]Attribute, 4)
	for i := range attrs {
		attrs[i] = Attribute{
			Name:   string(rune('a' + i)),
			Values: []string{"1", "2", "3", "4", "5"},
		}
	}
	s := MustSchema(attrs...)
	if got := s.PossibleGroups(); got != 6*6*6*6-1 {
		t.Fatalf("PossibleGroups = %d, want %d", got, 6*6*6*6-1)
	}
}

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder(testSchema(t))
	b.AddUser("alice", map[string]string{"gender": "female", "seniority": "very senior"})
	b.AddUser("bob", map[string]string{"gender": "male", "seniority": "junior"})
	b.AddUserBinned("carol", map[string]string{"gender": "female"}, map[string]float64{"pubs": 325})
	b.AddAction("alice", "book1", 5, 0)
	b.AddAction("alice", "book2", 4, 0)
	b.AddAction("bob", "book1", 2, 0)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderBasics(t *testing.T) {
	d := buildSmall(t)
	if d.NumUsers() != 3 || d.NumItems() != 2 || d.NumActions() != 3 {
		t.Fatalf("counts = %d/%d/%d, want 3/2/3", d.NumUsers(), d.NumItems(), d.NumActions())
	}
	if got := d.UserIndex("alice"); got != 0 {
		t.Fatalf("UserIndex(alice) = %d", got)
	}
	if got := d.UserIndex("nobody"); got != -1 {
		t.Fatalf("UserIndex(nobody) = %d, want -1", got)
	}
	if got := d.ItemIndex("book2"); got != 1 {
		t.Fatalf("ItemIndex(book2) = %d", got)
	}
	if got := len(d.UserActions(0)); got != 2 {
		t.Fatalf("alice has %d actions, want 2", got)
	}
	if got := d.UserActions(99); got != nil {
		t.Fatalf("out-of-range UserActions = %v, want nil", got)
	}
}

func TestBuilderBinned(t *testing.T) {
	d := buildSmall(t)
	v, ok := d.DemoValue(2, 2)
	if !ok || v != "high" {
		t.Fatalf("carol pubs = %q/%v, want high/true", v, ok)
	}
	// carol's seniority is missing
	if _, ok := d.DemoValue(2, 1); ok {
		t.Fatal("carol seniority should be missing")
	}
}

func TestBuilderErrors(t *testing.T) {
	s := testSchema(t)

	b := NewBuilder(s)
	b.AddUser("x", map[string]string{"nosuch": "v"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Fatalf("err = %v", err)
	}

	b = NewBuilder(s)
	b.AddUser("x", map[string]string{"gender": "robot"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "out-of-domain") {
		t.Fatalf("err = %v", err)
	}

	b = NewBuilder(s)
	b.AddUser("x", nil)
	b.AddUser("x", nil)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate user") {
		t.Fatalf("err = %v", err)
	}

	b = NewBuilder(s)
	b.AddAction("ghost", "item", 1, 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown user") {
		t.Fatalf("err = %v", err)
	}

	b = NewBuilder(s)
	b.AddUser("x", nil)
	b.AddActionByIndex(5, 0, 1, 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "invalid user index") {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorsSticky(t *testing.T) {
	b := NewBuilder(testSchema(t))
	b.AddUser("", nil) // error
	idx := b.AddUser("ok", nil)
	if idx != -1 {
		t.Fatalf("AddUser after error = %d, want -1", idx)
	}
	if b.Err() == nil {
		t.Fatal("Err() = nil after failure")
	}
}

func TestDistribution(t *testing.T) {
	d := buildSmall(t)
	dist := d.Distribution(0, nil) // gender over all
	if dist.Total != 3 || dist.Missing != 0 {
		t.Fatalf("total/missing = %d/%d", dist.Total, dist.Missing)
	}
	if dist.Counts[0] != 2 || dist.Counts[1] != 1 {
		t.Fatalf("counts = %v", dist.Counts)
	}
	if got := dist.Fraction(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("Fraction(female) = %v", got)
	}
	if got := dist.Mode(); got != 0 {
		t.Fatalf("Mode = %d, want 0 (female)", got)
	}

	sub := d.Distribution(1, []int{0, 2}) // seniority over alice+carol
	if sub.Missing != 1 {
		t.Fatalf("missing = %d, want 1 (carol)", sub.Missing)
	}
}

func TestDistributionEntropy(t *testing.T) {
	d := buildSmall(t)
	dist := d.Distribution(0, nil)
	h := dist.Entropy()
	want := -(2.0/3)*math.Log2(2.0/3) - (1.0/3)*math.Log2(1.0/3)
	if math.Abs(h-want) > 1e-12 {
		t.Fatalf("Entropy = %v, want %v", h, want)
	}
	empty := AttrDistribution{Counts: []int{0, 0}}
	if empty.Entropy() != 0 {
		t.Fatal("entropy of empty distribution should be 0")
	}
	if empty.Mode() != -1 {
		t.Fatal("mode of empty distribution should be -1")
	}
}

func TestAllDistributions(t *testing.T) {
	d := buildSmall(t)
	all := d.AllDistributions(nil)
	if len(all) != 3 {
		t.Fatalf("len = %d, want 3", len(all))
	}
	if all[1].Attr != "seniority" {
		t.Fatalf("attr order wrong: %v", all[1].Attr)
	}
}

func TestValueHistogram(t *testing.T) {
	d := buildSmall(t)
	bins := d.ValueHistogram(1, 5, nil)
	// values 5,4,2 → bins[4]=1, bins[3]=1, bins[1]=1
	if bins[4] != 1 || bins[3] != 1 || bins[1] != 1 || bins[0] != 0 {
		t.Fatalf("bins = %v", bins)
	}
	only := d.ValueHistogram(1, 5, []int{1}) // bob: one rating of 2
	if only[1] != 1 || only[4] != 0 {
		t.Fatalf("bob bins = %v", only)
	}
	// clamping
	b2 := NewBuilder(testSchema(t))
	b2.AddUser("u", nil)
	b2.AddAction("u", "i", 99, 0)
	b2.AddAction("u", "i", -7, 0)
	dd, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	cl := dd.ValueHistogram(1, 5, nil)
	if cl[4] != 1 || cl[0] != 1 {
		t.Fatalf("clamped bins = %v", cl)
	}
}

func TestActivityAndMeans(t *testing.T) {
	d := buildSmall(t)
	act := d.ActivityCount()
	if act[0] != 2 || act[1] != 1 || act[2] != 0 {
		t.Fatalf("activity = %v", act)
	}
	means := d.MeanActionValue()
	if means[0] != 4.5 || means[1] != 2 {
		t.Fatalf("means = %v", means)
	}
	if !math.IsNaN(means[2]) {
		t.Fatalf("carol mean = %v, want NaN", means[2])
	}
}

func TestTopItems(t *testing.T) {
	d := buildSmall(t)
	top := d.TopItems(5)
	if len(top) != 2 || top[0] != 0 {
		t.Fatalf("TopItems = %v, want [0 1] (book1 has 2 actions)", top)
	}
	if got := d.TopItems(1); len(got) != 1 {
		t.Fatalf("TopItems(1) len = %d", len(got))
	}
}
