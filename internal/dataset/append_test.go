package dataset

import (
	"reflect"
	"testing"
)

// appendSeed builds a small dataset through the Builder — the
// reference construction Append must be indistinguishable from.
func appendSeed(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder(testSchema(t))
	b.AddUserBinned("u1", map[string]string{"gender": "female", "seniority": "junior"}, map[string]float64{"pubs": 5})
	b.AddUserBinned("u2", map[string]string{"gender": "male", "seniority": "senior"}, map[string]float64{"pubs": 150})
	b.AddItem("i1", "Item One")
	b.AddAction("u1", "i1", 5, 100)
	b.AddAction("u2", "i1", 3, 101)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAppendMatchesBuilder: appending users and actions yields exactly
// the Dataset a Builder fed all records from the start produces —
// indices, id maps, per-user action lists, everything.
func TestAppendMatchesBuilder(t *testing.T) {
	d := appendSeed(t)
	got, err := d.Append(
		[]NewUser{{ID: "u3", Demo: map[string]string{"gender": "female", "seniority": "very senior"}, Numeric: map[string]float64{"pubs": 50}}},
		[]NewAction{
			{User: "u3", Item: "i2", Value: 4, Time: 102}, // new item, created on first sight
			{User: "u1", Item: "i2", Value: 2, Time: 103}, // existing user, batch-new item
			{User: "u3", Item: "i1", Value: 1, Time: 104}, // batch-new user, existing item
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder(testSchema(t))
	b.AddUserBinned("u1", map[string]string{"gender": "female", "seniority": "junior"}, map[string]float64{"pubs": 5})
	b.AddUserBinned("u2", map[string]string{"gender": "male", "seniority": "senior"}, map[string]float64{"pubs": 150})
	b.AddItem("i1", "Item One")
	b.AddAction("u1", "i1", 5, 100)
	b.AddAction("u2", "i1", 3, 101)
	b.AddUserBinned("u3", map[string]string{"gender": "female", "seniority": "very senior"}, map[string]float64{"pubs": 50})
	b.AddAction("u3", "i2", 4, 102)
	b.AddAction("u1", "i2", 2, 103)
	b.AddAction("u3", "i1", 1, 104)
	want, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Append result differs from a from-scratch Builder:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestAppendCopyOnWrite: the receiver is untouched by a successful
// Append — its slices, id maps and action lists are as before.
func TestAppendCopyOnWrite(t *testing.T) {
	d := appendSeed(t)
	before := struct{ users, items, actions int }{len(d.Users), len(d.Items), len(d.Actions)}
	snapshot := *d

	nd, err := d.Append(
		[]NewUser{{ID: "u3", Demo: map[string]string{"gender": "male"}}},
		[]NewAction{{User: "u3", Item: "i9", Value: 1, Time: 200}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Users) != before.users || len(d.Items) != before.items || len(d.Actions) != before.actions {
		t.Fatal("Append mutated the receiver's slices")
	}
	if _, ok := d.userIndex["u3"]; ok {
		t.Fatal("Append leaked a new user into the receiver's index")
	}
	if !reflect.DeepEqual(snapshot.actionsByUser, d.actionsByUser) {
		t.Fatal("Append mutated the receiver's per-user action lists")
	}
	if len(nd.Users) != before.users+1 || len(nd.Actions) != before.actions+1 {
		t.Fatal("appended dataset missing the new records")
	}
}

// TestAppendValidation: every malformed record is rejected, and a
// failed Append leaves no partial state behind.
func TestAppendValidation(t *testing.T) {
	d := appendSeed(t)
	cases := []struct {
		name    string
		users   []NewUser
		actions []NewAction
	}{
		{"empty user id", []NewUser{{ID: ""}}, nil},
		{"duplicate existing user", []NewUser{{ID: "u1"}}, nil},
		{"duplicate within batch", []NewUser{{ID: "x"}, {ID: "x"}}, nil},
		{"unknown attribute", []NewUser{{ID: "x", Demo: map[string]string{"nope": "v"}}}, nil},
		{"out-of-domain value", []NewUser{{ID: "x", Demo: map[string]string{"gender": "robot"}}}, nil},
		{"unknown numeric attribute", []NewUser{{ID: "x", Numeric: map[string]float64{"nope": 1}}}, nil},
		{"numeric on categorical", []NewUser{{ID: "x", Numeric: map[string]float64{"gender": 1}}}, nil},
		{"action for unknown user", nil, []NewAction{{User: "ghost", Item: "i1"}}},
		{"action with empty item", nil, []NewAction{{User: "u1", Item: ""}}},
	}
	for _, tc := range cases {
		nd, err := d.Append(tc.users, tc.actions)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
		if nd != nil {
			t.Errorf("%s: returned a dataset alongside the error", tc.name)
		}
	}
	if len(d.Users) != 2 || len(d.Items) != 1 || len(d.Actions) != 2 {
		t.Fatal("failed Append left partial state in the receiver")
	}
}

// TestAppendBatchInternalReference: an action may reference a user
// introduced earlier in the same batch.
func TestAppendBatchInternalReference(t *testing.T) {
	d := appendSeed(t)
	nd, err := d.Append(
		[]NewUser{{ID: "u3", Demo: map[string]string{"gender": "female"}}},
		[]NewAction{{User: "u3", Item: "i1", Value: 1, Time: 105}},
	)
	if err != nil {
		t.Fatal(err)
	}
	last := nd.Actions[len(nd.Actions)-1]
	if nd.Users[last.User].ID != "u3" {
		t.Fatalf("batch-internal action bound to %q, want u3", nd.Users[last.User].ID)
	}
}
