package dataset

import "fmt"

// NewUser is one not-yet-interned user in an ingestion batch: raw
// discrete demographics keyed by attribute name plus raw numeric
// observations that are binned through the schema, exactly like
// Builder.AddUserBinned.
type NewUser struct {
	ID      string             `json:"id"`
	Demo    map[string]string  `json:"demo,omitempty"`
	Numeric map[string]float64 `json:"numeric,omitempty"`
}

// NewAction is one not-yet-interned action in an ingestion batch,
// addressed by external user/item ids. Unknown items are created on
// first sight (label = id, like Builder.AddAction); the user must
// exist — either already in the dataset or earlier in the same batch.
type NewAction struct {
	User  string  `json:"user"`
	Item  string  `json:"item"`
	Value float64 `json:"value"`
	Time  int64   `json:"time,omitempty"`
}

// Append returns a new Dataset extending d with the given users and
// actions, leaving d untouched (copy-on-write of the slices and id
// maps). The result is exactly the Dataset a Builder fed the original
// records plus the new ones would produce: new users and items intern
// at the next indices, new actions append after the existing ones, so
// every derived structure (per-user action lists, popularity order)
// matches a from-scratch build on the augmented data. On any
// validation error Append returns nil and d is untouched.
func (d *Dataset) Append(users []NewUser, actions []NewAction) (*Dataset, error) {
	users2 := make([]User, len(d.Users), len(d.Users)+len(users))
	copy(users2, d.Users)
	userIndex2 := make(map[string]int, len(d.userIndex)+len(users))
	for id, i := range d.userIndex {
		userIndex2[id] = i
	}

	for _, nu := range users {
		if nu.ID == "" {
			return nil, fmt.Errorf("dataset: append: empty user id")
		}
		if _, dup := userIndex2[nu.ID]; dup {
			return nil, fmt.Errorf("dataset: append: duplicate user id %q", nu.ID)
		}
		u := User{ID: nu.ID, Demo: make([]int, d.Schema.NumAttrs())}
		for i := range u.Demo {
			u.Demo[i] = Missing
		}
		for name, value := range nu.Demo {
			ai := d.Schema.AttrIndex(name)
			if ai < 0 {
				return nil, fmt.Errorf("dataset: append: user %q: unknown attribute %q", nu.ID, name)
			}
			vi := d.Schema.Attrs[ai].ValueIndex(value)
			if vi < 0 {
				return nil, fmt.Errorf("dataset: append: user %q: attribute %q has out-of-domain value %q", nu.ID, name, value)
			}
			u.Demo[ai] = vi
		}
		for name, x := range nu.Numeric {
			ai := d.Schema.AttrIndex(name)
			if ai < 0 {
				return nil, fmt.Errorf("dataset: append: user %q: unknown numeric attribute %q", nu.ID, name)
			}
			a := &d.Schema.Attrs[ai]
			if a.Kind != Numeric {
				return nil, fmt.Errorf("dataset: append: user %q: attribute %q is %s, not numeric", nu.ID, name, a.Kind)
			}
			vi := a.ValueIndex(a.Values[a.BinIndex(x)])
			u.Demo[ai] = vi
		}
		userIndex2[nu.ID] = len(users2)
		users2 = append(users2, u)
	}

	items2 := make([]Item, len(d.Items), len(d.Items)+len(actions))
	copy(items2, d.Items)
	itemIndex2 := make(map[string]int, len(d.itemIndex))
	for id, i := range d.itemIndex {
		itemIndex2[id] = i
	}
	actions2 := make([]Action, len(d.Actions), len(d.Actions)+len(actions))
	copy(actions2, d.Actions)

	for _, na := range actions {
		u, ok := userIndex2[na.User]
		if !ok {
			return nil, fmt.Errorf("dataset: append: action references unknown user %q", na.User)
		}
		if na.Item == "" {
			return nil, fmt.Errorf("dataset: append: empty item id")
		}
		it, ok := itemIndex2[na.Item]
		if !ok {
			it = len(items2)
			items2 = append(items2, Item{ID: na.Item, Label: na.Item})
			itemIndex2[na.Item] = it
		}
		actions2 = append(actions2, Action{User: u, Item: it, Value: na.Value, Time: na.Time})
	}

	// Rebuild the per-user action lists from scratch rather than
	// patching d's: Build allocates them at exact capacity, and the
	// augmented dataset must be indistinguishable from a fresh Build on
	// the same records.
	nd := &Dataset{
		Schema:    d.Schema,
		Users:     users2,
		Items:     items2,
		Actions:   actions2,
		userIndex: userIndex2,
		itemIndex: itemIndex2,
	}
	nd.actionsByUser = make([][]int32, len(nd.Users))
	counts := make([]int, len(nd.Users))
	for _, a := range nd.Actions {
		counts[a.User]++
	}
	for u, c := range counts {
		if c > 0 {
			nd.actionsByUser[u] = make([]int32, 0, c)
		}
	}
	for i, a := range nd.Actions {
		nd.actionsByUser[a.User] = append(nd.actionsByUser[a.User], int32(i))
	}
	return nd, nil
}
