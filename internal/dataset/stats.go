package dataset

import "math"

// AttrDistribution is the histogram of one attribute over a set of
// users: Counts[v] users carry interned value v, Missing users carry no
// value. It backs the STATS module's histograms (§II-B "Granular
// Analysis": "histograms will show an exhaustive list of demographic
// distributions").
type AttrDistribution struct {
	Attr    string
	Values  []string
	Counts  []int
	Missing int
	Total   int
}

// Fraction returns the share of non-missing users carrying value v.
func (d *AttrDistribution) Fraction(v int) float64 {
	known := d.Total - d.Missing
	if known == 0 || v < 0 || v >= len(d.Counts) {
		return 0
	}
	return float64(d.Counts[v]) / float64(known)
}

// Mode returns the most frequent value id, or -1 when no value is known.
// Ties break toward the lower id for determinism.
func (d *AttrDistribution) Mode() int {
	best, bestCount := -1, 0
	for v, c := range d.Counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	return best
}

// Entropy returns the Shannon entropy (bits) of the value distribution,
// ignoring missing values. Uniform distributions score highest; it is
// the "informativeness" signal used when ranking which histograms to
// surface first in STATS.
func (d *AttrDistribution) Entropy() float64 {
	known := d.Total - d.Missing
	if known == 0 {
		return 0
	}
	h := 0.0
	for _, c := range d.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(known)
		h -= p * math.Log2(p)
	}
	return h
}

// Distribution computes the histogram of attribute attr over the given
// user indices. A nil users slice means all users.
func (d *Dataset) Distribution(attr int, users []int) AttrDistribution {
	a := d.Schema.Attrs[attr]
	dist := AttrDistribution{
		Attr:   a.Name,
		Values: a.Values,
		Counts: make([]int, len(a.Values)),
	}
	consider := func(u int) {
		dist.Total++
		v := d.Users[u].Demo[attr]
		if v == Missing {
			dist.Missing++
			return
		}
		dist.Counts[v]++
	}
	if users == nil {
		for u := range d.Users {
			consider(u)
		}
	} else {
		for _, u := range users {
			consider(u)
		}
	}
	return dist
}

// AllDistributions computes every attribute's histogram over the given
// users (nil = all), in schema order.
func (d *Dataset) AllDistributions(users []int) []AttrDistribution {
	out := make([]AttrDistribution, d.Schema.NumAttrs())
	for i := range out {
		out[i] = d.Distribution(i, users)
	}
	return out
}

// ValueHistogram buckets action values into integer bins between lo and
// hi inclusive (e.g. rating scales 1..5 or 1..10). Out-of-range values
// are clamped into the boundary bins. A nil users slice means all
// actions; otherwise only actions of the given users count.
func (d *Dataset) ValueHistogram(lo, hi int, users []int) []int {
	if hi < lo {
		lo, hi = hi, lo
	}
	bins := make([]int, hi-lo+1)
	add := func(v float64) {
		i := int(math.Round(v)) - lo
		if i < 0 {
			i = 0
		}
		if i >= len(bins) {
			i = len(bins) - 1
		}
		bins[i]++
	}
	if users == nil {
		for _, a := range d.Actions {
			add(a.Value)
		}
		return bins
	}
	for _, u := range users {
		for _, ai := range d.UserActions(u) {
			add(d.Actions[ai].Value)
		}
	}
	return bins
}

// ActivityCount returns the number of actions per user, the raw signal
// behind derived attributes such as "publication rate: extremely
// active".
func (d *Dataset) ActivityCount() []int {
	counts := make([]int, len(d.Users))
	for _, a := range d.Actions {
		counts[a.User]++
	}
	return counts
}

// MeanActionValue returns the mean action value per user; users with no
// actions get NaN.
func (d *Dataset) MeanActionValue() []float64 {
	sums := make([]float64, len(d.Users))
	counts := make([]int, len(d.Users))
	for _, a := range d.Actions {
		sums[a.User] += a.Value
		counts[a.User]++
	}
	out := make([]float64, len(d.Users))
	for u := range out {
		if counts[u] == 0 {
			out[u] = math.NaN()
			continue
		}
		out[u] = sums[u] / float64(counts[u])
	}
	return out
}
