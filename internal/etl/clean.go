// Package etl implements the extract-transform-load stage that precedes
// group discovery in the VEXUS architecture (Fig. 1): CSV ingestion of
// the generic [user, item, value] schema, demographic tables, cleaning
// rules, and schema inference for unknown demographic files.
package etl

import (
	"strconv"
	"strings"
)

// CleanRules configures record cleaning. The zero value applies only
// whitespace trimming.
type CleanRules struct {
	// TrimSpace trims surrounding whitespace from every field.
	// Enabled by default in DefaultRules.
	TrimSpace bool
	// LowerCase folds demographic values to lower case so that
	// "Female"/"female" intern to one value.
	LowerCase bool
	// NullMarkers are field contents treated as missing ("", "NULL",
	// "N/A", ...). Matching is case-insensitive after trimming.
	NullMarkers []string
	// MinValue/MaxValue bound the action value; out-of-range behaviour
	// is set by ClampValues. Both zero means no bound.
	MinValue, MaxValue float64
	// ClampValues clamps out-of-range action values into
	// [MinValue, MaxValue] instead of dropping the record.
	ClampValues bool
	// DropDuplicateActions drops repeated (user, item) pairs, keeping
	// the first occurrence.
	DropDuplicateActions bool
}

// DefaultRules returns the cleaning configuration used by the VEXUS
// pipeline: trim, fold case, standard null markers, dedup.
func DefaultRules() CleanRules {
	return CleanRules{
		TrimSpace:            true,
		LowerCase:            true,
		NullMarkers:          []string{"", "null", "n/a", "na", "none", "-", "?"},
		DropDuplicateActions: true,
	}
}

// CleanField applies field-level rules and reports whether the value is
// present (false = missing).
func (r CleanRules) CleanField(s string) (string, bool) {
	if r.TrimSpace {
		s = strings.TrimSpace(s)
	}
	probe := strings.ToLower(s)
	for _, m := range r.NullMarkers {
		if probe == m {
			return "", false
		}
	}
	if r.LowerCase {
		s = probe
	}
	return s, true
}

// CleanValue parses and bounds an action value. ok is false when the
// record should be dropped (unparseable, or out of range without
// clamping).
func (r CleanRules) CleanValue(s string) (v float64, ok bool) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	if r.MinValue == 0 && r.MaxValue == 0 {
		return v, true
	}
	if v < r.MinValue {
		if !r.ClampValues {
			return 0, false
		}
		v = r.MinValue
	}
	if v > r.MaxValue {
		if !r.ClampValues {
			return 0, false
		}
		v = r.MaxValue
	}
	return v, true
}

// Report accumulates what the cleaning stage did, so the import is
// auditable.
type Report struct {
	RowsRead      int
	RowsKept      int
	RowsDropped   int
	BadValue      int
	DuplicateRows int
	MissingFields int
	ShortRows     int
	UnknownUsers  int
	OutOfDomain   int
	ValuesClamped int
	InferredAttrs int
	DistinctUsers int
	DistinctItems int
}

// Add merges other into r.
func (r *Report) Add(other Report) {
	r.RowsRead += other.RowsRead
	r.RowsKept += other.RowsKept
	r.RowsDropped += other.RowsDropped
	r.BadValue += other.BadValue
	r.DuplicateRows += other.DuplicateRows
	r.MissingFields += other.MissingFields
	r.ShortRows += other.ShortRows
	r.UnknownUsers += other.UnknownUsers
	r.OutOfDomain += other.OutOfDomain
	r.ValuesClamped += other.ValuesClamped
	r.InferredAttrs += other.InferredAttrs
	r.DistinctUsers += other.DistinctUsers
	r.DistinctItems += other.DistinctItems
}
