package etl

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"vexus/internal/dataset"
)

// LoadUsers reads a demographic CSV whose header is
// "user,<attr1>,<attr2>,..." and registers each row against the given
// builder. Attribute columns not present in the schema are an error;
// schema attributes absent from the file are simply left missing.
// Values failing CleanField become missing; values outside an
// attribute's domain are counted and dropped (left missing) rather than
// aborting the import, because real demographic dumps are dirty.
func LoadUsers(r io.Reader, b *dataset.Builder, schema *dataset.Schema, rules CleanRules) (Report, error) {
	var rep Report
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return rep, fmt.Errorf("etl: reading users header: %w", err)
	}
	if len(header) == 0 || header[0] != "user" {
		return rep, fmt.Errorf("etl: users header must start with %q, got %v", "user", header)
	}
	cols := make([]int, len(header)) // column -> attribute index
	cols[0] = -1
	for c := 1; c < len(header); c++ {
		ai := schema.AttrIndex(header[c])
		if ai < 0 {
			return rep, fmt.Errorf("etl: users column %q not in schema", header[c])
		}
		cols[c] = ai
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("etl: reading users row: %w", err)
		}
		rep.RowsRead++
		if len(row) < 1 {
			rep.ShortRows++
			rep.RowsDropped++
			continue
		}
		id, ok := rules.CleanField(row[0])
		if !ok || id == "" {
			rep.MissingFields++
			rep.RowsDropped++
			continue
		}
		demo := make(map[string]string)
		for c := 1; c < len(row) && c < len(cols); c++ {
			v, ok := rules.CleanField(row[c])
			if !ok {
				rep.MissingFields++
				continue
			}
			attr := schema.Attrs[cols[c]]
			if attr.ValueIndex(v) < 0 {
				rep.OutOfDomain++
				continue
			}
			demo[attr.Name] = v
		}
		b.AddUser(id, demo)
		if b.Err() != nil {
			return rep, b.Err()
		}
		rep.RowsKept++
		rep.DistinctUsers++
	}
	return rep, nil
}

// LoadActions reads the generic action CSV "user,item,value[,ts]" and
// appends records to the builder. Rows referencing users the builder
// does not know are dropped and counted (real rating dumps contain
// orphan rows). Returns the cleaning report.
func LoadActions(r io.Reader, b *dataset.Builder, known func(userID string) bool, rules CleanRules) (Report, error) {
	var rep Report
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return rep, fmt.Errorf("etl: reading actions header: %w", err)
	}
	if len(header) < 3 || header[0] != "user" || header[1] != "item" || header[2] != "value" {
		return rep, fmt.Errorf("etl: actions header must be user,item,value[,ts]; got %v", header)
	}
	hasTS := len(header) >= 4 && header[3] == "ts"
	seen := make(map[[2]string]bool)
	items := make(map[string]bool)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("etl: reading actions row: %w", err)
		}
		rep.RowsRead++
		if len(row) < 3 {
			rep.ShortRows++
			rep.RowsDropped++
			continue
		}
		uid, ok1 := rules.CleanField(row[0])
		iid, ok2 := rules.CleanField(row[1])
		if !ok1 || !ok2 {
			rep.MissingFields++
			rep.RowsDropped++
			continue
		}
		if !known(uid) {
			rep.UnknownUsers++
			rep.RowsDropped++
			continue
		}
		val, ok := rules.CleanValue(row[2])
		if !ok {
			rep.BadValue++
			rep.RowsDropped++
			continue
		}
		if rules.DropDuplicateActions {
			key := [2]string{uid, iid}
			if seen[key] {
				rep.DuplicateRows++
				rep.RowsDropped++
				continue
			}
			seen[key] = true
		}
		var ts int64
		if hasTS && len(row) >= 4 {
			ts, _ = strconv.ParseInt(row[3], 10, 64)
		}
		b.AddAction(uid, iid, val, ts)
		if b.Err() != nil {
			return rep, b.Err()
		}
		if !items[iid] {
			items[iid] = true
			rep.DistinctItems++
		}
		rep.RowsKept++
	}
	return rep, nil
}

// LoadUsersFile and LoadActionsFile are file-path conveniences.
func LoadUsersFile(path string, b *dataset.Builder, schema *dataset.Schema, rules CleanRules) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	return LoadUsers(f, b, schema, rules)
}

// LoadActionsFile loads an action CSV from disk; see LoadActions.
func LoadActionsFile(path string, b *dataset.Builder, known func(string) bool, rules CleanRules) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	return LoadActions(f, b, known, rules)
}

// WriteUsers emits the demographic table of d as CSV in the format
// LoadUsers reads.
func WriteUsers(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 1+d.Schema.NumAttrs())
	header[0] = "user"
	for i, a := range d.Schema.Attrs {
		header[i+1] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for u := range d.Users {
		row[0] = d.Users[u].ID
		for ai := range d.Schema.Attrs {
			if v, ok := d.DemoValue(u, ai); ok {
				row[ai+1] = v
			} else {
				row[ai+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteActions emits the action table of d as CSV in the format
// LoadActions reads.
func WriteActions(w io.Writer, d *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "item", "value", "ts"}); err != nil {
		return err
	}
	for _, a := range d.Actions {
		err := cw.Write([]string{
			d.Users[a.User].ID,
			d.Items[a.Item].ID,
			strconv.FormatFloat(a.Value, 'g', -1, 64),
			strconv.FormatInt(a.Time, 10),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
