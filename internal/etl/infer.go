package etl

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"vexus/internal/dataset"
)

// InferOptions configures schema inference from a raw demographic CSV.
type InferOptions struct {
	// MaxCategorical is the largest distinct-value count for which a
	// column is treated as categorical; beyond it, numeric columns are
	// binned and string columns keep their top values with the rest
	// mapped to "other".
	MaxCategorical int
	// NumericBins is the number of equal-frequency bins for numeric
	// columns that exceed MaxCategorical.
	NumericBins int
	// MaxDomain caps the retained domain of high-cardinality string
	// columns (top MaxDomain-1 values + "other").
	MaxDomain int
	Rules     CleanRules
}

// DefaultInferOptions mirrors the preprocessing used throughout the
// experiments: up to 12 categorical values, 5 quantile bins.
func DefaultInferOptions() InferOptions {
	return InferOptions{MaxCategorical: 12, NumericBins: 5, MaxDomain: 12, Rules: DefaultRules()}
}

// InferSchema scans a demographic CSV ("user,<attr>,...") and proposes a
// dataset.Schema: low-cardinality columns become Categorical, numeric
// high-cardinality columns become Numeric with equal-frequency bins, and
// string high-cardinality columns are truncated to their most frequent
// values plus "other". The reader is fully consumed; callers re-open the
// file to load data against the inferred schema.
func InferSchema(r io.Reader, opts InferOptions) (*dataset.Schema, Report, error) {
	var rep Report
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, rep, fmt.Errorf("etl: reading header: %w", err)
	}
	if len(header) < 2 || header[0] != "user" {
		return nil, rep, fmt.Errorf("etl: inference needs header user,<attr>,...; got %v", header)
	}
	type colStat struct {
		counts  map[string]int
		numeric []float64
		allNum  bool
		total   int
	}
	stats := make([]colStat, len(header)-1)
	for i := range stats {
		stats[i] = colStat{counts: map[string]int{}, allNum: true}
	}
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, rep, fmt.Errorf("etl: scanning rows: %w", err)
		}
		rep.RowsRead++
		for c := 1; c < len(row) && c < len(header); c++ {
			v, ok := opts.Rules.CleanField(row[c])
			if !ok {
				continue
			}
			st := &stats[c-1]
			st.counts[v]++
			st.total++
			if st.allNum {
				if x, err := strconv.ParseFloat(v, 64); err == nil {
					st.numeric = append(st.numeric, x)
				} else {
					st.allNum = false
					st.numeric = nil
				}
			}
		}
	}
	attrs := make([]dataset.Attribute, 0, len(stats))
	for c, st := range stats {
		name := header[c+1]
		switch {
		case len(st.counts) == 0:
			// Entirely missing column: single-value domain keeps the
			// schema total, the loader will mark everything missing.
			attrs = append(attrs, dataset.Attribute{
				Name: name, Kind: dataset.Categorical, Values: []string{"unknown"},
			})
		case len(st.counts) <= opts.MaxCategorical:
			values := make([]string, 0, len(st.counts))
			for v := range st.counts {
				values = append(values, v)
			}
			sort.Strings(values)
			attrs = append(attrs, dataset.Attribute{
				Name: name, Kind: dataset.Categorical, Values: values,
			})
		case st.allNum && len(st.numeric) > 0:
			attrs = append(attrs, quantileAttribute(name, st.numeric, opts.NumericBins))
		default:
			attrs = append(attrs, topKAttribute(name, st.counts, opts.MaxDomain))
		}
		rep.InferredAttrs++
	}
	schema, err := dataset.NewSchema(attrs...)
	return schema, rep, err
}

// quantileAttribute builds a Numeric attribute with ~equal-frequency
// bins from observed values.
func quantileAttribute(name string, xs []float64, bins int) dataset.Attribute {
	if bins < 2 {
		bins = 2
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	bounds := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		q := sorted[i*len(sorted)/bins]
		if len(bounds) == 0 || q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	labels := make([]string, len(bounds)+1)
	for i := range labels {
		switch i {
		case 0:
			labels[i] = fmt.Sprintf("≤%g", bounds[0])
		case len(bounds):
			labels[i] = fmt.Sprintf(">%g", bounds[len(bounds)-1])
		default:
			labels[i] = fmt.Sprintf("(%g,%g]", bounds[i-1], bounds[i])
		}
	}
	return dataset.Attribute{Name: name, Kind: dataset.Numeric, Values: labels, Bins: bounds}
}

// topKAttribute keeps the k-1 most frequent values and folds the tail
// into "other".
func topKAttribute(name string, counts map[string]int, k int) dataset.Attribute {
	type vc struct {
		v string
		c int
	}
	all := make([]vc, 0, len(counts))
	for v, c := range counts {
		all = append(all, vc{v, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].v < all[j].v
	})
	if k < 2 {
		k = 2
	}
	n := k - 1
	if n > len(all) {
		n = len(all)
	}
	values := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		values = append(values, all[i].v)
	}
	values = append(values, "other")
	return dataset.Attribute{Name: name, Kind: dataset.Categorical, Values: values}
}

// NormalizeToDomain maps a raw cleaned value into the attribute's
// domain for loading against an inferred schema: out-of-domain values
// of a topK attribute become "other"; numeric attributes are binned.
// Returns "", false when the value cannot be mapped.
func NormalizeToDomain(a *dataset.Attribute, raw string) (string, bool) {
	if a.ValueIndex(raw) >= 0 {
		return raw, true
	}
	if a.Kind == dataset.Numeric {
		if x, err := strconv.ParseFloat(raw, 64); err == nil {
			return a.Values[a.BinIndex(x)], true
		}
		return "", false
	}
	if a.ValueIndex("other") >= 0 {
		return "other", true
	}
	return "", false
}
