package etl

import (
	"bytes"
	"strings"
	"testing"

	"vexus/internal/dataset"
)

func schema(t *testing.T) *dataset.Schema {
	t.Helper()
	return dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Categorical, Values: []string{"female", "male"}},
		dataset.Attribute{Name: "country", Kind: dataset.Categorical, Values: []string{"fr", "br", "us"}},
	)
}

func TestCleanField(t *testing.T) {
	r := DefaultRules()
	cases := []struct {
		in     string
		want   string
		wantOK bool
	}{
		{"  Male ", "male", true},
		{"NULL", "", false},
		{"n/a", "", false},
		{"?", "", false},
		{"", "", false},
		{"Paris", "paris", true},
	}
	for _, c := range cases {
		got, ok := r.CleanField(c.in)
		if got != c.want || ok != c.wantOK {
			t.Errorf("CleanField(%q) = %q,%v want %q,%v", c.in, got, ok, c.want, c.wantOK)
		}
	}
}

func TestCleanFieldNoFold(t *testing.T) {
	r := CleanRules{TrimSpace: true}
	got, ok := r.CleanField(" Male ")
	if !ok || got != "Male" {
		t.Fatalf("got %q,%v", got, ok)
	}
}

func TestCleanValue(t *testing.T) {
	r := CleanRules{MinValue: 1, MaxValue: 5}
	if _, ok := r.CleanValue("abc"); ok {
		t.Fatal("unparseable accepted")
	}
	if _, ok := r.CleanValue("7"); ok {
		t.Fatal("out-of-range accepted without clamp")
	}
	r.ClampValues = true
	if v, ok := r.CleanValue("7"); !ok || v != 5 {
		t.Fatalf("clamped = %v,%v", v, ok)
	}
	if v, ok := r.CleanValue("-2"); !ok || v != 1 {
		t.Fatalf("clamped low = %v,%v", v, ok)
	}
	unbounded := CleanRules{}
	if v, ok := unbounded.CleanValue(" 3.5 "); !ok || v != 3.5 {
		t.Fatalf("unbounded = %v,%v", v, ok)
	}
}

const usersCSV = `user,gender,country
alice,Female,fr
bob,male,
carol,NULL,br
,male,us
dave,robot,us
`

func TestLoadUsers(t *testing.T) {
	s := schema(t)
	b := dataset.NewBuilder(s)
	rep, err := LoadUsers(strings.NewReader(usersCSV), b, s, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsRead != 5 {
		t.Fatalf("RowsRead = %d", rep.RowsRead)
	}
	// empty-id row dropped
	if rep.RowsKept != 4 || rep.RowsDropped != 1 {
		t.Fatalf("kept/dropped = %d/%d", rep.RowsKept, rep.RowsDropped)
	}
	if rep.OutOfDomain != 1 { // "robot"
		t.Fatalf("OutOfDomain = %d", rep.OutOfDomain)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 4 {
		t.Fatalf("users = %d", d.NumUsers())
	}
	if v, ok := d.DemoValue(d.UserIndex("alice"), 0); !ok || v != "female" {
		t.Fatalf("alice gender = %q,%v", v, ok)
	}
	if _, ok := d.DemoValue(d.UserIndex("carol"), 0); ok {
		t.Fatal("carol gender should be missing (NULL)")
	}
	if _, ok := d.DemoValue(d.UserIndex("dave"), 0); ok {
		t.Fatal("dave gender should be missing (out of domain)")
	}
}

func TestLoadUsersBadHeader(t *testing.T) {
	s := schema(t)
	b := dataset.NewBuilder(s)
	if _, err := LoadUsers(strings.NewReader("id,gender\n"), b, s, DefaultRules()); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, err := LoadUsers(strings.NewReader("user,height\n"), b, s, DefaultRules()); err == nil {
		t.Fatal("unknown column accepted")
	}
}

const actionsCSV = `user,item,value,ts
alice,b1,5,100
alice,b1,4,200
alice,b2,abc,0
bob,b1,3,300
ghost,b9,1,0
alice,,2,0
`

func TestLoadActions(t *testing.T) {
	s := schema(t)
	b := dataset.NewBuilder(s)
	b.AddUser("alice", nil)
	b.AddUser("bob", nil)
	known := func(id string) bool { return b != nil && (id == "alice" || id == "bob") }
	rep, err := LoadActions(strings.NewReader(actionsCSV), b, known, DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsRead != 6 {
		t.Fatalf("RowsRead = %d", rep.RowsRead)
	}
	if rep.DuplicateRows != 1 {
		t.Fatalf("DuplicateRows = %d", rep.DuplicateRows)
	}
	if rep.BadValue != 1 {
		t.Fatalf("BadValue = %d", rep.BadValue)
	}
	if rep.UnknownUsers != 1 {
		t.Fatalf("UnknownUsers = %d", rep.UnknownUsers)
	}
	if rep.MissingFields != 1 { // empty item id
		t.Fatalf("MissingFields = %d", rep.MissingFields)
	}
	if rep.RowsKept != 2 {
		t.Fatalf("RowsKept = %d", rep.RowsKept)
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumActions() != 2 {
		t.Fatalf("actions = %d", d.NumActions())
	}
	if d.Actions[0].Time != 100 {
		t.Fatalf("ts = %d", d.Actions[0].Time)
	}
}

func TestLoadActionsKeepDuplicates(t *testing.T) {
	s := schema(t)
	b := dataset.NewBuilder(s)
	b.AddUser("alice", nil)
	rules := DefaultRules()
	rules.DropDuplicateActions = false
	csv := "user,item,value\nalice,b1,5\nalice,b1,4\n"
	rep, err := LoadActions(strings.NewReader(csv), b, func(string) bool { return true }, rules)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsKept != 2 || rep.DuplicateRows != 0 {
		t.Fatalf("kept/dup = %d/%d", rep.RowsKept, rep.DuplicateRows)
	}
}

func TestRoundTrip(t *testing.T) {
	s := schema(t)
	b := dataset.NewBuilder(s)
	b.AddUser("alice", map[string]string{"gender": "female", "country": "fr"})
	b.AddUser("bob", map[string]string{"gender": "male"})
	b.AddAction("alice", "b1", 5, 42)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var ubuf, abuf bytes.Buffer
	if err := WriteUsers(&ubuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteActions(&abuf, d); err != nil {
		t.Fatal(err)
	}

	b2 := dataset.NewBuilder(s)
	if _, err := LoadUsers(bytes.NewReader(ubuf.Bytes()), b2, s, DefaultRules()); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadActions(bytes.NewReader(abuf.Bytes()), b2, func(id string) bool {
		return id == "alice" || id == "bob"
	}, DefaultRules()); err != nil {
		t.Fatal(err)
	}
	d2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumUsers() != 2 || d2.NumActions() != 1 {
		t.Fatalf("round trip users/actions = %d/%d", d2.NumUsers(), d2.NumActions())
	}
	if v, _ := d2.DemoValue(0, 1); v != "fr" {
		t.Fatalf("alice country = %q", v)
	}
	if d2.Actions[0].Time != 42 {
		t.Fatalf("ts lost: %d", d2.Actions[0].Time)
	}
}

const inferCSV = `user,gender,age,city
u1,F,23,paris
u2,M,31,lyon
u3,F,45,paris
u4,M,52,grenoble
u5,F,19,paris
u6,M,64,nice
u7,F,38,lyon
u8,M,27,paris
`

func TestInferSchema(t *testing.T) {
	opts := DefaultInferOptions()
	opts.MaxCategorical = 3
	opts.NumericBins = 3
	opts.MaxDomain = 3
	s, rep, err := InferSchema(strings.NewReader(inferCSV), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InferredAttrs != 3 {
		t.Fatalf("InferredAttrs = %d", rep.InferredAttrs)
	}
	gi := s.AttrIndex("gender")
	if gi < 0 || s.Attrs[gi].Kind != dataset.Categorical || len(s.Attrs[gi].Values) != 2 {
		t.Fatalf("gender attr = %+v", s.Attrs[gi])
	}
	ai := s.AttrIndex("age")
	if ai < 0 || s.Attrs[ai].Kind != dataset.Numeric {
		t.Fatalf("age attr = %+v", s.Attrs[ai])
	}
	if len(s.Attrs[ai].Values) < 2 {
		t.Fatalf("age bins = %v", s.Attrs[ai].Values)
	}
	ci := s.AttrIndex("city")
	if ci < 0 {
		t.Fatal("city missing")
	}
	city := s.Attrs[ci]
	if city.ValueIndex("other") < 0 {
		t.Fatalf("city domain lacks other: %v", city.Values)
	}
	if city.ValueIndex("paris") < 0 {
		t.Fatalf("most frequent city not retained: %v", city.Values)
	}
}

func TestInferEmptyColumn(t *testing.T) {
	csv := "user,ghost\nu1,\nu2,NULL\n"
	s, _, err := InferSchema(strings.NewReader(csv), DefaultInferOptions())
	if err != nil {
		t.Fatal(err)
	}
	g := s.Attrs[s.AttrIndex("ghost")]
	if len(g.Values) != 1 || g.Values[0] != "unknown" {
		t.Fatalf("ghost domain = %v", g.Values)
	}
}

func TestNormalizeToDomain(t *testing.T) {
	num := dataset.Attribute{Name: "age", Kind: dataset.Numeric,
		Values: []string{"young", "old"}, Bins: []float64{40}}
	if v, ok := NormalizeToDomain(&num, "23"); !ok || v != "young" {
		t.Fatalf("numeric normalize = %q,%v", v, ok)
	}
	if _, ok := NormalizeToDomain(&num, "xyz"); ok {
		t.Fatal("garbage normalized")
	}
	topk := dataset.Attribute{Name: "city", Kind: dataset.Categorical,
		Values: []string{"paris", "other"}}
	if v, ok := NormalizeToDomain(&topk, "tokyo"); !ok || v != "other" {
		t.Fatalf("topk normalize = %q,%v", v, ok)
	}
	if v, ok := NormalizeToDomain(&topk, "paris"); !ok || v != "paris" {
		t.Fatalf("in-domain normalize = %q,%v", v, ok)
	}
	strict := dataset.Attribute{Name: "g", Kind: dataset.Categorical, Values: []string{"a"}}
	if _, ok := NormalizeToDomain(&strict, "b"); ok {
		t.Fatal("strict domain accepted unknown")
	}
}

func TestReportAdd(t *testing.T) {
	a := Report{RowsRead: 1, RowsKept: 1}
	a.Add(Report{RowsRead: 2, BadValue: 3})
	if a.RowsRead != 3 || a.BadValue != 3 || a.RowsKept != 1 {
		t.Fatalf("merged = %+v", a)
	}
}
