package feedback

import (
	"math"
	"testing"
	"testing/quick"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/rng"
)

func grp(n int, desc groups.Description, members ...int) *groups.Group {
	return &groups.Group{Desc: desc, Members: bitset.FromIndices(n, members)}
}

func TestEmptyVector(t *testing.T) {
	v := New()
	if !v.IsEmpty() {
		t.Fatal("new vector not empty")
	}
	if v.Mass() != 0 {
		t.Fatalf("Mass = %v", v.Mass())
	}
	g := grp(10, groups.NewDescription(1), 0, 1)
	if v.Alignment(g) != 0 {
		t.Fatal("empty profile should score 0")
	}
}

func TestReinforceNormalizes(t *testing.T) {
	v := New()
	g := grp(10, groups.NewDescription(1, 2), 0, 1, 2)
	v.Reinforce(g, 1)
	if math.Abs(v.Mass()-1) > 1e-12 {
		t.Fatalf("Mass = %v, want 1", v.Mass())
	}
	// 3 users + 2 terms, equal raw weight → each 1/5.
	if math.Abs(v.UserScore(0)-0.2) > 1e-12 {
		t.Fatalf("UserScore = %v", v.UserScore(0))
	}
	if math.Abs(v.TermScore(1)-0.2) > 1e-12 {
		t.Fatalf("TermScore = %v", v.TermScore(1))
	}
	if v.UserScore(9) != 0 {
		t.Fatal("unrelated user scored")
	}
}

func TestReinforceZeroWeightNoOp(t *testing.T) {
	v := New()
	v.Reinforce(grp(5, groups.NewDescription(0), 0), 0)
	if !v.IsEmpty() {
		t.Fatal("zero weight reinforced")
	}
	v.Reinforce(grp(5, groups.NewDescription(0), 0), -1)
	if !v.IsEmpty() {
		t.Fatal("negative weight reinforced")
	}
}

func TestRepeatedReinforcementBiases(t *testing.T) {
	v := New()
	a := grp(10, groups.NewDescription(1), 0, 1)
	b := grp(10, groups.NewDescription(2), 8, 9)
	v.Reinforce(a, 1)
	v.Reinforce(a, 1)
	v.Reinforce(b, 1)
	if v.TermScore(1) <= v.TermScore(2) {
		t.Fatalf("term 1 (%v) should outweigh term 2 (%v)",
			v.TermScore(1), v.TermScore(2))
	}
	// "users and demographics that do not get rewarded will gradually
	// end up with a lower score tending to zero" — relative decay.
	if v.Alignment(a) <= v.Alignment(b) {
		t.Fatal("repeatedly chosen group should align higher")
	}
}

func TestUnlearn(t *testing.T) {
	v := New()
	g := grp(10, groups.NewDescription(1, 2), 0, 1)
	v.Reinforce(g, 1)
	before := v.TermScore(2)
	if before <= 0 {
		t.Fatal("precondition")
	}
	v.Unlearn(1)
	if v.TermScore(1) != 0 {
		t.Fatal("unlearned term still scored")
	}
	if math.Abs(v.Mass()-1) > 1e-12 {
		t.Fatalf("Mass after unlearn = %v", v.Mass())
	}
	// Unlearned terms must not be re-learned implicitly.
	v.Reinforce(g, 1)
	if v.TermScore(1) != 0 {
		t.Fatal("unlearned term re-learned by Reinforce")
	}
	// Until explicitly cleared.
	v.ClearUnlearned(1)
	v.Reinforce(g, 1)
	if v.TermScore(1) == 0 {
		t.Fatal("cleared term not learnable")
	}
}

func TestUnlearnUser(t *testing.T) {
	v := New()
	g := grp(10, groups.NewDescription(1), 0, 1)
	v.Reinforce(g, 1)
	v.UnlearnUser(0)
	if v.UserScore(0) != 0 {
		t.Fatal("unlearned user still scored")
	}
	v.Reinforce(g, 1)
	if v.UserScore(0) != 0 {
		t.Fatal("unlearned user re-learned")
	}
	if v.UserScore(1) == 0 {
		t.Fatal("other user lost")
	}
}

func TestUnlearnEverythingThenReinforce(t *testing.T) {
	v := New()
	g := grp(4, groups.NewDescription(1), 0)
	v.Reinforce(g, 1)
	v.Unlearn(1)
	v.UnlearnUser(0)
	if v.Mass() != 0 {
		t.Fatalf("Mass = %v, want 0", v.Mass())
	}
	// A different group can still be learned.
	h := grp(4, groups.NewDescription(2), 1)
	v.Reinforce(h, 1)
	if math.Abs(v.Mass()-1) > 1e-12 {
		t.Fatalf("Mass = %v", v.Mass())
	}
}

func TestReinforceTerm(t *testing.T) {
	v := New()
	v.ReinforceTerm(7, 1)
	if math.Abs(v.TermScore(7)-1) > 1e-12 {
		t.Fatalf("TermScore = %v", v.TermScore(7))
	}
	v.Unlearn(7)
	v.ReinforceTerm(7, 1)
	if v.TermScore(7) != 0 {
		t.Fatal("unlearn pin ignored")
	}
}

func TestDecayKeepsNormalization(t *testing.T) {
	v := New()
	v.Reinforce(grp(10, groups.NewDescription(1), 0, 1), 1)
	v.Decay(0.5)
	if math.Abs(v.Mass()-1) > 1e-12 {
		t.Fatalf("Mass after decay = %v", v.Mass())
	}
	// Invalid factors are no-ops.
	before := v.TermScore(1)
	v.Decay(0)
	v.Decay(1.5)
	if v.TermScore(1) != before {
		t.Fatal("invalid decay changed scores")
	}
}

func TestAlignmentOrdersCandidates(t *testing.T) {
	v := New()
	chosen := grp(20, groups.NewDescription(1, 2), 0, 1, 2, 3)
	v.Reinforce(chosen, 1)
	similar := grp(20, groups.NewDescription(1), 0, 1, 10)
	unrelated := grp(20, groups.NewDescription(9), 15, 16)
	if v.Alignment(similar) <= v.Alignment(unrelated) {
		t.Fatalf("alignment: similar %v <= unrelated %v",
			v.Alignment(similar), v.Alignment(unrelated))
	}
	if a := v.Alignment(similar); a < 0 || a > 1 {
		t.Fatalf("alignment out of [0,1]: %v", a)
	}
}

func TestTopOrderingAndTies(t *testing.T) {
	v := New()
	v.Reinforce(grp(10, groups.NewDescription(3, 5), 7), 1)
	top := v.Top(10)
	if len(top) != 3 {
		t.Fatalf("top = %d entries", len(top))
	}
	// Equal scores: terms before users, ascending ids.
	if top[0].IsUser || top[0].Term != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].IsUser || top[1].Term != 5 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	if !top[2].IsUser || top[2].User != 7 {
		t.Fatalf("top[2] = %+v", top[2])
	}
	if got := v.Top(1); len(got) != 1 {
		t.Fatalf("Top(1) = %d entries", len(got))
	}
}

func TestSnapshotIndependence(t *testing.T) {
	v := New()
	g := grp(10, groups.NewDescription(1), 0)
	v.Reinforce(g, 1)
	v.Unlearn(1)
	snap := v.Snapshot()
	v.ReinforceTerm(2, 1)
	if snap.TermScore(2) != 0 {
		t.Fatal("snapshot mutated")
	}
	// Unlearn pins survive the snapshot.
	snap.Reinforce(g, 1)
	if snap.TermScore(1) != 0 {
		t.Fatal("snapshot lost unlearn pin")
	}
}

func TestString(t *testing.T) {
	v := New()
	v.ReinforceTerm(1, 1)
	if s := v.String(); s == "" || s[0] != 'f' {
		t.Fatalf("String = %q", s)
	}
}

// TestPropNormalizationInvariant: after any sequence of operations the
// vector's mass is 0 (empty) or 1 — the paper's "always kept
// normalized" invariant.
func TestPropNormalizationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		v := New()
		for step := 0; step < 30; step++ {
			switch r.Intn(5) {
			case 0, 1:
				members := r.SampleWithoutReplacement(16, 1+r.Intn(5))
				g := grp(16, groups.NewDescription(groups.TermID(r.Intn(8))), members...)
				v.Reinforce(g, r.Float64()+0.01)
			case 2:
				v.Unlearn(groups.TermID(r.Intn(8)))
			case 3:
				v.UnlearnUser(r.Intn(16))
			case 4:
				v.Decay(0.5 + r.Float64()/2.01)
			}
			m := v.Mass()
			if !(m == 0 || math.Abs(m-1) < 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
