// Package feedback implements the explorer profile of §II-B "Feedback
// Learning": a probability vector over all users and demographic values
// (terms). Choosing a group is positive feedback — the scores of its
// members and of the terms describing it increase and the vector stays
// normalized (all exposed scores sum to 1.0), so everything that is
// never rewarded decays toward zero relative to what is. The CONTEXT
// module displays the vector; deleting an entry ("unlearning") removes
// its mass so that subsequent recommendations are no longer biased
// toward it.
//
// Internally the vector accumulates raw reinforcement mass and exposes
// the normalized view: this keeps repeated reinforcement additive (two
// clicks on a group weigh twice one click) while preserving the
// paper's sum-to-one invariant at every read.
package feedback

import (
	"fmt"
	"sort"

	"vexus/internal/groups"
)

// Vector is the explorer's feedback profile. The zero value is not
// usable; construct with New. Not safe for concurrent mutation.
type Vector struct {
	users map[int]float64
	terms map[groups.TermID]float64
	total float64
	// unlearnedTerms / unlearnedUsers pin deleted entries to zero so
	// that later reinforcements of overlapping groups do not silently
	// re-learn what the explorer explicitly removed; lift the pin with
	// ClearUnlearned.
	unlearnedTerms map[groups.TermID]bool
	unlearnedUsers map[int]bool
}

// New returns an empty (uniform-prior) feedback vector.
func New() *Vector {
	return &Vector{
		users:          make(map[int]float64),
		terms:          make(map[groups.TermID]float64),
		unlearnedTerms: make(map[groups.TermID]bool),
		unlearnedUsers: make(map[int]bool),
	}
}

// IsEmpty reports whether no feedback has been accumulated.
func (v *Vector) IsEmpty() bool { return v.total == 0 }

// Mass returns the total normalized probability mass: 1 once any
// feedback exists, 0 before (the paper's "all scores add up to 1.0").
func (v *Vector) Mass() float64 {
	if v.total == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range v.users {
		sum += x
	}
	for _, x := range v.terms {
		sum += x
	}
	return sum / v.total
}

// Reinforce records a positive signal on a chosen group: each member
// user and each description term gains `weight` raw mass. Entries
// previously unlearned stay at zero.
func (v *Vector) Reinforce(g *groups.Group, weight float64) {
	if weight <= 0 {
		return
	}
	g.Members.Range(func(u int) bool {
		if !v.unlearnedUsers[u] {
			v.users[u] += weight
			v.total += weight
		}
		return true
	})
	for _, id := range g.Desc {
		if !v.unlearnedTerms[id] {
			v.terms[id] += weight
			v.total += weight
		}
	}
}

// ReinforceTerm adds mass to a single term (e.g. a brushed histogram
// bar).
func (v *Vector) ReinforceTerm(id groups.TermID, weight float64) {
	if weight <= 0 || v.unlearnedTerms[id] {
		return
	}
	v.terms[id] += weight
	v.total += weight
}

// Unlearn deletes a term from the profile (the CONTEXT "delete"
// interaction: e.g. removing "male" to de-bias the exploration). The
// remaining entries implicitly renormalize.
func (v *Vector) Unlearn(id groups.TermID) {
	v.total -= v.terms[id]
	delete(v.terms, id)
	v.unlearnedTerms[id] = true
}

// UnlearnUser deletes a user from the profile.
func (v *Vector) UnlearnUser(u int) {
	v.total -= v.users[u]
	delete(v.users, u)
	v.unlearnedUsers[u] = true
}

// ClearUnlearned lifts the unlearn pin from a term so it may be
// learned again.
func (v *Vector) ClearUnlearned(id groups.TermID) { delete(v.unlearnedTerms, id) }

// IsUnlearned reports whether the term is pinned to zero by Unlearn.
func (v *Vector) IsUnlearned(id groups.TermID) bool { return v.unlearnedTerms[id] }

// Decay multiplies the accumulated mass by factor ∈ (0,1). The
// normalized view is unchanged until the next reinforcement, which
// then weighs more against the shrunken past — recency bias for
// session policies that want it.
func (v *Vector) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	for k := range v.users {
		v.users[k] *= factor
	}
	for k := range v.terms {
		v.terms[k] *= factor
	}
	v.total *= factor
}

// UserScore returns the normalized probability mass on user u.
func (v *Vector) UserScore(u int) float64 {
	if v.total == 0 {
		return 0
	}
	return v.users[u] / v.total
}

// TermScore returns the normalized probability mass on term id.
func (v *Vector) TermScore(id groups.TermID) float64 {
	if v.total == 0 {
		return 0
	}
	return v.terms[id] / v.total
}

// Alignment scores how strongly a candidate group agrees with the
// profile: the sum of the normalized masses of its description terms
// plus its members. An empty profile scores every group 0. The result
// is in [0, 1] (a sub-sum of a probability vector), directly usable as
// the weight in the greedy optimizer's weighted similarity (§II-B: "a
// group which is highly in line with the feedback received so far gets
// a higher weight").
func (v *Vector) Alignment(g *groups.Group) float64 {
	if v.total == 0 {
		return 0
	}
	score := 0.0
	for _, id := range g.Desc {
		score += v.terms[id]
	}
	// Iterate the sparse side: scored users are typically far fewer
	// than group members.
	for u, mass := range v.users {
		if g.Members.Contains(u) {
			score += mass
		}
	}
	return score / v.total
}

// UserMass is one (user, normalized mass) pair of the profile.
type UserMass struct {
	User int
	Mass float64
}

// TopUsers returns the m highest-mass users, descending (ties by
// ascending user id). The greedy optimizer scores candidate alignment
// against this truncated view: the vector is heavy-tailed, so the top
// slice carries almost all the user mass while keeping per-candidate
// scoring O(m) instead of O(|profile|).
func (v *Vector) TopUsers(m int) []UserMass {
	if v.total == 0 || len(v.users) == 0 {
		return nil
	}
	out := make([]UserMass, 0, len(v.users))
	for u, raw := range v.users {
		out = append(out, UserMass{User: u, Mass: raw / v.total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mass != out[j].Mass {
			return out[i].Mass > out[j].Mass
		}
		return out[i].User < out[j].User
	})
	if m > 0 && m < len(out) {
		out = out[:m]
	}
	return out
}

// Entry is one displayed row of the CONTEXT module.
type Entry struct {
	// Term is valid when IsUser is false.
	Term groups.TermID
	// User is valid when IsUser is true.
	User   int
	IsUser bool
	Score  float64
}

// Top returns the n highest-mass entries (terms and users mixed),
// descending; ties break deterministically (terms before users, then
// ascending id). This is what CONTEXT renders (Fig. 2 (b)).
func (v *Vector) Top(n int) []Entry {
	out := make([]Entry, 0, len(v.users)+len(v.terms))
	for id, s := range v.terms {
		out = append(out, Entry{Term: id, Score: s / v.total})
	}
	for u, s := range v.users {
		out = append(out, Entry{User: u, IsUser: true, Score: s / v.total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].IsUser != out[j].IsUser {
			return !out[i].IsUser
		}
		if out[i].IsUser {
			return out[i].User < out[j].User
		}
		return out[i].Term < out[j].Term
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// String renders the top entries compactly for logs.
func (v *Vector) String() string {
	top := v.Top(5)
	s := "feedback["
	for i, e := range top {
		if i > 0 {
			s += " "
		}
		if e.IsUser {
			s += fmt.Sprintf("u%d:%.3f", e.User, e.Score)
		} else {
			s += fmt.Sprintf("t%d:%.3f", e.Term, e.Score)
		}
	}
	return s + "]"
}

// Snapshot returns a deep copy, used by HISTORY to restore the profile
// on backtrack.
func (v *Vector) Snapshot() *Vector {
	c := New()
	c.total = v.total
	for k, x := range v.users {
		c.users[k] = x
	}
	for k, x := range v.terms {
		c.terms[k] = x
	}
	for k := range v.unlearnedTerms {
		c.unlearnedTerms[k] = true
	}
	for k := range v.unlearnedUsers {
		c.unlearnedUsers[k] = true
	}
	return c
}
