// Package datagen synthesizes the two user datasets of the paper's
// scenarios (§III): DB-AUTHORS (database researchers and their
// publication actions) and BOOKCROSSING (book ratings at the original
// dataset's scale). The real DB-AUTHORS dump is no longer hosted and
// BookCrossing redistribution is restricted, so the generators
// reproduce the statistical shape that the paper's claims depend on —
// categorical demographics, Zipfian action skew, and overlapping
// community structure — with seeded determinism and configurable scale.
// See DESIGN.md §2 for the substitution argument.
package datagen

import (
	"fmt"

	"vexus/internal/dataset"
	"vexus/internal/rng"
)

// Venues modelled on the database-community conferences the paper
// names (Scenario 1 forms SIGMOD/VLDB/CIKM committees).
var Venues = []string{
	"SIGMOD", "VLDB", "ICDE", "CIKM", "KDD", "WWW", "SIGIR", "EDBT", "PODS", "DASFAA",
}

// Topics are research areas; each author gets one dominant topic that
// drives venue choice, which is what makes topical groups minable.
var Topics = []string{
	"databases", "data mining", "web search", "machine learning",
	"visualization", "systems", "information retrieval", "theory",
}

// Countries for the geographic diversity dimension of Scenario 1.
var Countries = []string{
	"fr", "br", "us", "de", "it", "cn", "in", "uk", "jp", "ca",
}

// topicVenueAffinity[t][v] weights venue v for topic t (rows align
// with Topics, columns with Venues).
var topicVenueAffinity = [][]float64{
	{8, 8, 7, 2, 1, 1, 0.5, 5, 4, 3},   // databases
	{2, 3, 3, 6, 8, 3, 2, 2, 1, 2},     // data mining
	{1, 1, 1, 4, 3, 8, 7, 1, 0.5, 1},   // web search
	{1, 2, 2, 3, 7, 3, 2, 1, 1, 1},     // machine learning
	{2, 2, 3, 2, 2, 2, 1, 2, 0.5, 1},   // visualization
	{4, 5, 5, 1, 1, 2, 0.5, 3, 2, 2},   // systems
	{1, 1, 1, 6, 2, 5, 8, 1, 0.5, 1},   // information retrieval
	{2, 2, 1, 1, 1, 0.5, 0.5, 2, 8, 1}, // theory
}

// DBAuthorsConfig scales the generator.
type DBAuthorsConfig struct {
	NumAuthors int
	Seed       uint64
	// MeanPubs controls the Zipf-skewed per-author publication count
	// (0 = 12). Very senior authors publish ~3× the junior mean.
	MeanPubs int
}

// DBAuthorsSchema returns the demographic schema of the generated
// dataset: gender, seniority, country, topic, and a numeric
// publication-count attribute binned into rates.
func DBAuthorsSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Categorical,
			Values: []string{"female", "male"}},
		dataset.Attribute{Name: "seniority", Kind: dataset.Ordinal,
			Values: []string{"junior", "senior", "very senior"}},
		dataset.Attribute{Name: "country", Kind: dataset.Categorical,
			Values: Countries},
		dataset.Attribute{Name: "topic", Kind: dataset.Categorical,
			Values: Topics},
		dataset.Attribute{Name: "pubrate", Kind: dataset.Numeric,
			Values: []string{"occasional", "regular", "active", "extremely active"},
			Bins:   []float64{5, 20, 60}},
	)
}

// DBAuthors generates the dataset. Each author carries gender (the
// ~62/38 male/female split the paper's STATS anecdote mentions),
// seniority, country, and a dominant topic; actions are publications
// [author, venue, 1] with venue drawn from the author's topic affinity
// and count scaled by seniority.
func DBAuthors(cfg DBAuthorsConfig) (*dataset.Dataset, error) {
	if cfg.NumAuthors <= 0 {
		return nil, fmt.Errorf("datagen: NumAuthors must be positive")
	}
	if cfg.MeanPubs <= 0 {
		cfg.MeanPubs = 12
	}
	r := rng.New(cfg.Seed)
	schema := DBAuthorsSchema()
	b := dataset.NewBuilder(schema)

	venueIdx := make([]int, len(Venues))
	for i, v := range Venues {
		venueIdx[i] = b.AddItem(v, v)
	}

	countryZipf := rng.NewZipf(r.Split(1), 1.1, len(Countries))
	topicZipf := rng.NewZipf(r.Split(2), 0.9, len(Topics))
	pubZipf := rng.NewZipf(r.Split(3), 1.3, cfg.MeanPubs*6)
	demoRng := r.Split(4)
	actRng := r.Split(5)

	for i := 0; i < cfg.NumAuthors; i++ {
		gender := "male"
		if demoRng.Bool(0.38) {
			gender = "female"
		}
		seniority := "junior"
		sFactor := 1.0
		switch x := demoRng.Float64(); {
		case x < 0.2:
			seniority = "very senior"
			sFactor = 3
		case x < 0.5:
			seniority = "senior"
			sFactor = 1.8
		}
		country := Countries[countryZipf.Next()]
		topicID := topicZipf.Next()
		topic := Topics[topicID]

		nPubs := int(float64(pubZipf.Next()+1) * sFactor)
		id := fmt.Sprintf("author%05d", i)
		b.AddUserBinned(id,
			map[string]string{
				"gender": gender, "seniority": seniority,
				"country": country, "topic": topic,
			},
			map[string]float64{"pubrate": float64(nPubs)},
		)
		uidx := i

		aff := topicVenueAffinity[topicID]
		for p := 0; p < nPubs; p++ {
			v := actRng.WeightedChoice(aff)
			year := 1995 + actRng.Intn(23)
			b.AddActionByIndex(uidx, venueIdx[v], 1, int64(year))
		}
	}
	return b.Build()
}
