package datagen

import (
	"fmt"

	"vexus/internal/dataset"
	"vexus/internal/rng"
)

// Genres drive both book identity and user preference communities.
var Genres = []string{
	"fiction", "thriller", "romance", "scifi", "history",
	"biography", "selfhelp", "children",
}

// BookCrossingConfig scales the generator. PaperScale() reproduces the
// cardinalities quoted in §I: 1,000,000 ratings by 278,858 users of
// 271,379 books.
type BookCrossingConfig struct {
	NumUsers   int
	NumBooks   int
	NumRatings int
	Seed       uint64
}

// PaperScale returns the configuration matching the real dataset's
// published cardinalities (E9).
func PaperScale(seed uint64) BookCrossingConfig {
	return BookCrossingConfig{
		NumUsers:   278_858,
		NumBooks:   271_379,
		NumRatings: 1_000_000,
		Seed:       seed,
	}
}

// SmallScale returns a laptop-fast configuration with the same shape.
func SmallScale(seed uint64) BookCrossingConfig {
	return BookCrossingConfig{NumUsers: 3000, NumBooks: 2000, NumRatings: 30_000, Seed: seed}
}

// BookCrossingSchema returns the demographic schema: age bins, country,
// and the reader's favorite genre (the latent community made visible,
// as BookCrossing profiles expose age/location and mining recovers
// taste groups).
func BookCrossingSchema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.Attribute{Name: "age", Kind: dataset.Numeric,
			Values: []string{"teen", "young adult", "adult", "middle age", "senior"},
			Bins:   []float64{19, 29, 44, 59}},
		dataset.Attribute{Name: "country", Kind: dataset.Categorical,
			Values: Countries},
		dataset.Attribute{Name: "favgenre", Kind: dataset.Categorical,
			Values: Genres},
	)
}

// BookCrossing generates the rating dataset: Zipfian book popularity,
// Zipfian user activity, ratings on a 1–10 scale skewed high (the
// paper's Scenario 2 notes "mostly high" ratings), with genre-affinity
// boosting: users rate books of their favorite genre ~2 points higher
// on average, which plants the agree/disagree group structure the
// book-club scenario explores.
func BookCrossing(cfg BookCrossingConfig) (*dataset.Dataset, error) {
	if cfg.NumUsers <= 0 || cfg.NumBooks <= 0 || cfg.NumRatings < 0 {
		return nil, fmt.Errorf("datagen: non-positive BookCrossing dimensions")
	}
	r := rng.New(cfg.Seed)
	schema := BookCrossingSchema()
	b := dataset.NewBuilder(schema)

	// Books: genre assignment, Zipf popularity ranking by index.
	genreRng := r.Split(1)
	bookGenre := make([]int, cfg.NumBooks)
	for i := 0; i < cfg.NumBooks; i++ {
		bookGenre[i] = genreRng.Intn(len(Genres))
		b.AddItem(fmt.Sprintf("book%06d", i), fmt.Sprintf("Book %d (%s)", i, Genres[bookGenre[i]]))
	}

	demoRng := r.Split(2)
	countryZipf := rng.NewZipf(r.Split(3), 1.2, len(Countries))
	genreZipf := rng.NewZipf(r.Split(4), 0.8, len(Genres))
	userGenre := make([]int, cfg.NumUsers)
	for i := 0; i < cfg.NumUsers; i++ {
		age := 13 + demoRng.Intn(70)
		userGenre[i] = genreZipf.Next()
		b.AddUserBinned(fmt.Sprintf("reader%06d", i),
			map[string]string{
				"country":  Countries[countryZipf.Next()],
				"favgenre": Genres[userGenre[i]],
			},
			map[string]float64{"age": float64(age)},
		)
	}

	// Ratings: user picked by Zipf activity, book by Zipf popularity.
	userZipf := rng.NewZipf(r.Split(5), 0.9, cfg.NumUsers)
	bookZipf := rng.NewZipf(r.Split(6), 1.0, cfg.NumBooks)
	rateRng := r.Split(7)
	for n := 0; n < cfg.NumRatings; n++ {
		u := userZipf.Next()
		bk := bookZipf.Next()
		base := 6 + rateRng.Intn(4) // 6..9: "mostly high" (real BX mode is 8)
		if bookGenre[bk] == userGenre[u] {
			base += 2
		} else if rateRng.Bool(0.2) {
			base -= 3 // occasional strong disagreement
		}
		if base < 1 {
			base = 1
		}
		if base > 10 {
			base = 10
		}
		b.AddActionByIndex(u, bk, float64(base), int64(n))
	}
	return b.Build()
}
