package datagen

import (
	"math"
	"testing"
)

func TestDBAuthorsBasics(t *testing.T) {
	d, err := DBAuthors(DBAuthorsConfig{NumAuthors: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != 500 {
		t.Fatalf("users = %d", d.NumUsers())
	}
	if d.NumItems() != len(Venues) {
		t.Fatalf("items = %d", d.NumItems())
	}
	if d.NumActions() == 0 {
		t.Fatal("no publications generated")
	}
	// Every author has a complete demographic profile.
	for u := 0; u < d.NumUsers(); u++ {
		for a := 0; a < d.Schema.NumAttrs(); a++ {
			if _, ok := d.DemoValue(u, a); !ok {
				t.Fatalf("author %d missing attribute %d", u, a)
			}
		}
	}
}

func TestDBAuthorsGenderSplit(t *testing.T) {
	d, err := DBAuthors(DBAuthorsConfig{NumAuthors: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gi := d.Schema.AttrIndex("gender")
	dist := d.Distribution(gi, nil)
	maleIdx := d.Schema.Attrs[gi].ValueIndex("male")
	maleFrac := dist.Fraction(maleIdx)
	// The paper's anecdote: 62% male among senior data-management
	// researchers; the generator targets 62/38 overall.
	if math.Abs(maleFrac-0.62) > 0.03 {
		t.Fatalf("male fraction = %v, want ≈0.62", maleFrac)
	}
}

func TestDBAuthorsTopicVenueCorrelation(t *testing.T) {
	d, err := DBAuthors(DBAuthorsConfig{NumAuthors: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	topicAttr := d.Schema.AttrIndex("topic")
	sigmod := d.ItemIndex("SIGMOD")
	sigir := d.ItemIndex("SIGIR")
	// Database researchers must publish in SIGMOD far more than SIGIR.
	var dbSigmod, dbSigir int
	for u := 0; u < d.NumUsers(); u++ {
		if v, _ := d.DemoValue(u, topicAttr); v != "databases" {
			continue
		}
		for _, ai := range d.UserActions(u) {
			switch d.Actions[ai].Item {
			case sigmod:
				dbSigmod++
			case sigir:
				dbSigir++
			}
		}
	}
	if dbSigmod <= 3*dbSigir {
		t.Fatalf("db researchers: SIGMOD %d vs SIGIR %d — affinity not expressed", dbSigmod, dbSigir)
	}
}

func TestDBAuthorsSeniorityActivity(t *testing.T) {
	d, err := DBAuthors(DBAuthorsConfig{NumAuthors: 3000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sen := d.Schema.AttrIndex("seniority")
	counts := d.ActivityCount()
	var juniorSum, juniorN, seniorSum, seniorN float64
	for u := 0; u < d.NumUsers(); u++ {
		v, _ := d.DemoValue(u, sen)
		switch v {
		case "junior":
			juniorSum += float64(counts[u])
			juniorN++
		case "very senior":
			seniorSum += float64(counts[u])
			seniorN++
		}
	}
	if juniorN == 0 || seniorN == 0 {
		t.Fatal("missing seniority levels")
	}
	if seniorSum/seniorN <= 1.5*(juniorSum/juniorN) {
		t.Fatalf("very senior mean pubs %v not ≫ junior %v",
			seniorSum/seniorN, juniorSum/juniorN)
	}
}

func TestDBAuthorsDeterminism(t *testing.T) {
	a, err := DBAuthors(DBAuthorsConfig{NumAuthors: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DBAuthors(DBAuthorsConfig{NumAuthors: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumActions() != b.NumActions() {
		t.Fatal("not deterministic")
	}
	for i := range a.Actions {
		if a.Actions[i] != b.Actions[i] {
			t.Fatalf("action %d differs", i)
		}
	}
}

func TestDBAuthorsValidation(t *testing.T) {
	if _, err := DBAuthors(DBAuthorsConfig{}); err == nil {
		t.Fatal("zero authors accepted")
	}
}

func TestBookCrossingBasics(t *testing.T) {
	cfg := SmallScale(1)
	d, err := BookCrossing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumUsers() != cfg.NumUsers || d.NumItems() != cfg.NumBooks {
		t.Fatalf("users/books = %d/%d", d.NumUsers(), d.NumItems())
	}
	if d.NumActions() != cfg.NumRatings {
		t.Fatalf("ratings = %d", d.NumActions())
	}
	for _, a := range d.Actions {
		if a.Value < 1 || a.Value > 10 {
			t.Fatalf("rating %v outside 1..10", a.Value)
		}
	}
}

func TestBookCrossingRatingsSkewHigh(t *testing.T) {
	d, err := BookCrossing(SmallScale(2))
	if err != nil {
		t.Fatal(err)
	}
	hist := d.ValueHistogram(1, 10, nil)
	low, high := 0, 0
	for i, c := range hist {
		if i < 5 {
			low += c
		} else {
			high += c
		}
	}
	if high <= 2*low {
		t.Fatalf("ratings not skewed high: low=%d high=%d", low, high)
	}
}

func TestBookCrossingGenreAffinity(t *testing.T) {
	d, err := BookCrossing(SmallScale(3))
	if err != nil {
		t.Fatal(err)
	}
	fav := d.Schema.AttrIndex("favgenre")
	var matchSum, matchN, missSum, missN float64
	for _, a := range d.Actions {
		uGenre, _ := d.DemoValue(a.User, fav)
		label := d.Items[a.Item].Label
		match := false
		if uGenre != "" && len(label) > 0 {
			// Label format: "Book N (<genre>)".
			for _, g := range Genres {
				if g == uGenre && containsGenre(label, g) {
					match = true
					break
				}
			}
		}
		if match {
			matchSum += a.Value
			matchN++
		} else {
			missSum += a.Value
			missN++
		}
	}
	if matchN == 0 || missN == 0 {
		t.Fatal("no genre overlap sampled")
	}
	if matchSum/matchN <= missSum/missN+1 {
		t.Fatalf("genre affinity missing: match mean %v vs other %v",
			matchSum/matchN, missSum/missN)
	}
}

func containsGenre(label, genre string) bool {
	return len(label) > len(genre) &&
		label[len(label)-1-len(genre):len(label)-1] == genre
}

func TestBookCrossingZipfPopularity(t *testing.T) {
	d, err := BookCrossing(SmallScale(4))
	if err != nil {
		t.Fatal(err)
	}
	top := d.TopItems(10)
	counts := make([]int, d.NumItems())
	for _, a := range d.Actions {
		counts[a.Item]++
	}
	topShare := 0
	for _, it := range top {
		topShare += counts[it]
	}
	// With s=1.0 Zipf over 2000 books, the top-10 books draw a large
	// share of the 30k ratings.
	if float64(topShare)/float64(d.NumActions()) < 0.15 {
		t.Fatalf("top-10 share = %v, popularity not Zipfian",
			float64(topShare)/float64(d.NumActions()))
	}
}

func TestBookCrossingValidation(t *testing.T) {
	if _, err := BookCrossing(BookCrossingConfig{NumUsers: 0, NumBooks: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPaperScaleCardinalities(t *testing.T) {
	cfg := PaperScale(1)
	if cfg.NumUsers != 278_858 || cfg.NumBooks != 271_379 || cfg.NumRatings != 1_000_000 {
		t.Fatalf("paper scale wrong: %+v", cfg)
	}
}
