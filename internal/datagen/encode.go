package datagen

import "vexus/internal/mining"

// DBAuthorsEncodeOptions returns the mining-term configuration suited
// to publication data: every action is a publication (value 1), so the
// like-threshold is 1 and an "item:SIGMOD=liked" term reads as
// "published in SIGMOD"; authors who never published there simply lack
// the term (no meaningless "disliked" groups).
func DBAuthorsEncodeOptions() mining.EncodeOptions {
	return mining.EncodeOptions{
		Demographics:   true,
		TopItems:       len(Venues),
		LikeThreshold:  1,
		ActivityLevels: 4,
	}
}

// BookCrossingEncodeOptions returns the term configuration for the
// rating data: the 1–10 scale splits at 7 (≥7 = liked, matching the
// high-skew of the corpus), behaviour terms cover the 48 most-rated
// books so "item:book000123=liked" groups stay frequent enough to
// mine.
func BookCrossingEncodeOptions() mining.EncodeOptions {
	return mining.EncodeOptions{
		Demographics:   true,
		TopItems:       48,
		LikeThreshold:  7,
		ActivityLevels: 4,
	}
}
