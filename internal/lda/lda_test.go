package lda

import (
	"math"
	"testing"

	"vexus/internal/linalg"
	"vexus/internal/rng"
)

// twoBlobs builds two Gaussian clusters separated along a diagonal in
// 4D, labeled 0/1.
func twoBlobs(seed uint64, nPer int) (*linalg.Mat, []int) {
	r := rng.New(seed)
	rows := make([][]float64, 0, 2*nPer)
	labels := make([]int, 0, 2*nPer)
	for c := 0; c < 2; c++ {
		off := float64(c) * 4
		for i := 0; i < nPer; i++ {
			rows = append(rows, []float64{
				off + r.NormFloat64()*0.5,
				off + r.NormFloat64()*0.5,
				r.NormFloat64() * 0.5,
				r.NormFloat64() * 0.5,
			})
			labels = append(labels, c)
		}
	}
	return linalg.FromRows(rows), labels
}

func TestProjectSeparatesClasses(t *testing.T) {
	x, labels := twoBlobs(1, 40)
	res, err := Project(x, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "lda" {
		t.Fatalf("method = %q, want lda", res.Method)
	}
	if len(res.Points) != 80 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Classes must separate along axis 0: the between-class distance
	// exceeds both within-class spreads.
	var m0, m1 [2]float64
	var n0, n1 int
	for i, p := range res.Points {
		if labels[i] == 0 {
			m0[0] += p[0]
			m0[1] += p[1]
			n0++
		} else {
			m1[0] += p[0]
			m1[1] += p[1]
			n1++
		}
	}
	m0[0] /= float64(n0)
	m0[1] /= float64(n0)
	m1[0] /= float64(n1)
	m1[1] /= float64(n1)
	var s0, s1 float64
	for i, p := range res.Points {
		if labels[i] == 0 {
			s0 += (p[0] - m0[0]) * (p[0] - m0[0])
		} else {
			s1 += (p[0] - m1[0]) * (p[0] - m1[0])
		}
	}
	s0 = math.Sqrt(s0 / float64(n0))
	s1 = math.Sqrt(s1 / float64(n1))
	gap := math.Abs(m0[0] - m1[0])
	if gap < 3*(s0+s1)/2 {
		t.Fatalf("classes not separated: gap %v vs spreads %v/%v", gap, s0, s1)
	}
}

// TestProjectSeparationBeatsPCAWhenVarianceMisleads builds data where
// the highest-variance direction is NOT the discriminative one; LDA
// must still separate, which is the reason Focus view uses it.
func TestProjectSeparationBeatsPCAWhenVarianceMisleads(t *testing.T) {
	r := rng.New(3)
	rows := make([][]float64, 0, 120)
	labels := make([]int, 0, 120)
	for c := 0; c < 2; c++ {
		for i := 0; i < 60; i++ {
			rows = append(rows, []float64{
				r.NormFloat64() * 10,               // huge shared variance
				float64(c)*2 + r.NormFloat64()*0.3, // discriminative
				r.NormFloat64() * 0.1,
			})
			labels = append(labels, c)
		}
	}
	x := linalg.FromRows(rows)
	res, err := Project(x, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Mean separation along axis 0 normalized by spread must be large.
	var mean [2]float64
	var sep float64
	for i, p := range res.Points {
		if labels[i] == 0 {
			mean[0] += p[0]
		} else {
			mean[1] += p[0]
		}
	}
	mean[0] /= 60
	mean[1] /= 60
	sep = math.Abs(mean[0] - mean[1])
	if sep < 1 {
		t.Fatalf("LDA failed to find the discriminative direction: sep = %v", sep)
	}
}

func TestProjectSingleClassFallsBackToPCA(t *testing.T) {
	x, _ := twoBlobs(5, 30)
	labels := make([]int, x.Rows) // all zero: one class
	res, err := Project(x, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "pca" {
		t.Fatalf("method = %q, want pca fallback", res.Method)
	}
	if len(res.Points) != x.Rows {
		t.Fatalf("points = %d", len(res.Points))
	}
}

func TestProjectDegenerateFeatures(t *testing.T) {
	// Constant features: within-class scatter singular; ridge + clamp
	// must keep the fit alive.
	rows := [][]float64{
		{1, 7, 0}, {1, 7, 0}, {1, 7, 1}, {1, 7, 1},
	}
	labels := []int{0, 0, 1, 1}
	res, err := Project(linalg.FromRows(rows), labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
			t.Fatalf("NaN in projection: %v", res.Points)
		}
	}
}

func TestProjectValidation(t *testing.T) {
	if _, err := Project(linalg.NewMat(0, 0), nil, DefaultConfig()); err == nil {
		t.Fatal("empty input accepted")
	}
	x := linalg.FromRows([][]float64{{1, 2}})
	if _, err := Project(x, []int{0, 1}, DefaultConfig()); err == nil {
		t.Fatal("label mismatch accepted")
	}
}

func TestExplainedRatioBounds(t *testing.T) {
	x, labels := twoBlobs(7, 25)
	res, err := Project(x, labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExplainedRatio < 0 || res.ExplainedRatio > 1+1e-9 {
		t.Fatalf("ExplainedRatio = %v", res.ExplainedRatio)
	}
}

func TestThreeClasses(t *testing.T) {
	r := rng.New(11)
	rows := make([][]float64, 0, 90)
	labels := make([]int, 0, 90)
	centers := [][2]float64{{0, 0}, {5, 0}, {0, 5}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			rows = append(rows, []float64{
				ctr[0] + r.NormFloat64()*0.4,
				ctr[1] + r.NormFloat64()*0.4,
				r.NormFloat64(),
			})
			labels = append(labels, c)
		}
	}
	res, err := Project(linalg.FromRows(rows), labels, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "lda" {
		t.Fatalf("method = %q", res.Method)
	}
	// All three class centroids in 2D must be pairwise well separated.
	cents := make([][2]float64, 3)
	counts := make([]int, 3)
	for i, p := range res.Points {
		cents[labels[i]][0] += p[0]
		cents[labels[i]][1] += p[1]
		counts[labels[i]]++
	}
	for c := range cents {
		cents[c][0] /= float64(counts[c])
		cents[c][1] /= float64(counts[c])
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			dx := cents[a][0] - cents[b][0]
			dy := cents[a][1] - cents[b][1]
			if math.Sqrt(dx*dx+dy*dy) < 1 {
				t.Fatalf("centroids %d/%d too close: %v", a, b, cents)
			}
		}
	}
}
