// Package lda implements multi-class Linear Discriminant Analysis [8],
// the dimensionality-reduction method of the Focus view (§II-B
// "Granular Analysis"): members of a focused group are projected to 2D
// such that users with similar profiles appear close together, with
// class separation driven by a chosen demographic attribute.
//
// The projection maximizes the Fisher criterion tr((S_w)⁻¹ S_b) by
// taking the top eigenvectors of S_w⁻¹·S_b, with ridge regularization
// of S_w (and a PCA fallback) for the degenerate cases real group data
// produces constantly: single-class groups, classes with one member,
// or collinear features.
package lda

import (
	"fmt"
	"math"

	"vexus/internal/linalg"
)

// Result is a fitted projection.
type Result struct {
	// Points[i] is the 2D embedding of input row i.
	Points [][2]float64
	// Axes are the projection directions (rows of 2×d).
	Axes *linalg.Mat
	// Method is "lda" or "pca" (the fallback actually used).
	Method string
	// ExplainedRatio estimates how much discriminative (or variance,
	// for PCA) mass the two axes carry.
	ExplainedRatio float64
}

// Config tunes the projection.
type Config struct {
	// Ridge is added to S_w's diagonal for invertibility (0 = 1e-6).
	Ridge float64
	// Standardize z-scores features before fitting, so binary term
	// indicators and count features mix sanely.
	Standardize bool
}

// DefaultConfig standardizes with a small ridge.
func DefaultConfig() Config { return Config{Ridge: 1e-6, Standardize: true} }

// Project fits LDA on x (observations × features) with integer class
// labels and returns the 2D embedding. Falls back to PCA when classes
// are degenerate (< 2 distinct labels) and returns an error only on
// structurally unusable input (no rows, label length mismatch).
func Project(x *linalg.Mat, labels []int, cfg Config) (*Result, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, fmt.Errorf("lda: empty input %dx%d", x.Rows, x.Cols)
	}
	if len(labels) != x.Rows {
		return nil, fmt.Errorf("lda: %d labels for %d rows", len(labels), x.Rows)
	}
	if cfg.Ridge <= 0 {
		cfg.Ridge = 1e-6
	}
	work := x
	if cfg.Standardize {
		work = standardize(x)
	}
	classes := distinct(labels)
	if len(classes) >= 2 {
		if res, err := fitLDA(work, labels, classes, cfg.Ridge); err == nil {
			return res, nil
		}
		// Singular even after ridge — fall through to PCA.
	}
	return fitPCA(work)
}

// fitLDA solves the generalized eigenproblem via S_w⁻¹·S_b. Because
// that product is not symmetric, it is symmetrized through the scatter
// square-root trick: eigenvectors of C = S_w^{-1/2} S_b S_w^{-1/2}
// (symmetric) give w = S_w^{-1/2} v.
func fitLDA(x *linalg.Mat, labels []int, classes []int, ridge float64) (*Result, error) {
	d := x.Cols
	grand := linalg.ColumnMeans(x)

	sw := linalg.NewMat(d, d)
	sb := linalg.NewMat(d, d)
	for _, cls := range classes {
		var rows [][]float64
		for i := 0; i < x.Rows; i++ {
			if labels[i] == cls {
				rows = append(rows, x.Data[i*d:(i+1)*d])
			}
		}
		cm := linalg.FromRows(rows)
		mean := linalg.ColumnMeans(cm)
		// S_w += Σ (x−μ_c)(x−μ_c)ᵀ
		for _, r := range rows {
			for a := 0; a < d; a++ {
				da := r[a] - mean[a]
				if da == 0 {
					continue
				}
				for b := 0; b < d; b++ {
					sw.Data[a*d+b] += da * (r[b] - mean[b])
				}
			}
		}
		// S_b += n_c (μ_c−μ)(μ_c−μ)ᵀ
		n := float64(len(rows))
		for a := 0; a < d; a++ {
			da := mean[a] - grand[a]
			for b := 0; b < d; b++ {
				sb.Data[a*d+b] += n * da * (mean[b] - grand[b])
			}
		}
	}
	sw = sw.AddDiagonal(ridge)

	swHalfInv, err := invSqrt(sw)
	if err != nil {
		return nil, err
	}
	c := swHalfInv.Mul(sb).Mul(swHalfInv)
	// Numerical symmetrization before Jacobi.
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			v := (c.At(i, j) + c.At(j, i)) / 2
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	eig, err := linalg.SymEigen(c)
	if err != nil {
		return nil, err
	}
	axes := pickAxes(swHalfInv, eig, d)
	return embed(x, axes, eig.Values, "lda"), nil
}

// invSqrt returns S^{-1/2} via eigendecomposition; eigenvalues below
// the floor are clamped (pseudo-inverse behaviour).
func invSqrt(s *linalg.Mat) (*linalg.Mat, error) {
	eig, err := linalg.SymEigen(s)
	if err != nil {
		return nil, err
	}
	d := s.Rows
	out := linalg.NewMat(d, d)
	for k := 0; k < d; k++ {
		ev := eig.Values[k]
		if ev < 1e-10 {
			continue // drop the null direction
		}
		w := 1 / math.Sqrt(ev)
		for i := 0; i < d; i++ {
			vi := eig.Vectors.At(i, k)
			if vi == 0 {
				continue
			}
			for j := 0; j < d; j++ {
				out.Data[i*d+j] += w * vi * eig.Vectors.At(j, k)
			}
		}
	}
	return out, nil
}

// pickAxes maps the top-2 symmetric eigenvectors back through
// S_w^{-1/2} and normalizes them.
func pickAxes(swHalfInv *linalg.Mat, eig *linalg.Eigen, d int) *linalg.Mat {
	axes := linalg.NewMat(2, d)
	for a := 0; a < 2 && a < d; a++ {
		v := make([]float64, d)
		for i := 0; i < d; i++ {
			v[i] = eig.Vectors.At(i, a)
		}
		w := swHalfInv.MulVec(v)
		norm := 0.0
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			norm = 1
		}
		for j := 0; j < d; j++ {
			axes.Set(a, j, w[j]/norm)
		}
	}
	return axes
}

// fitPCA is the fallback: top-2 principal components.
func fitPCA(x *linalg.Mat) (*Result, error) {
	cov := linalg.Covariance(x)
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, err
	}
	d := x.Cols
	axes := linalg.NewMat(2, d)
	for a := 0; a < 2 && a < d; a++ {
		for j := 0; j < d; j++ {
			axes.Set(a, j, eig.Vectors.At(j, a))
		}
	}
	return embed(x, axes, eig.Values, "pca"), nil
}

// embed projects every row onto the two axes.
func embed(x *linalg.Mat, axes *linalg.Mat, values []float64, method string) *Result {
	res := &Result{
		Points: make([][2]float64, x.Rows),
		Axes:   axes,
		Method: method,
	}
	d := x.Cols
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		var p [2]float64
		for a := 0; a < 2; a++ {
			s := 0.0
			for j := 0; j < d; j++ {
				s += axes.At(a, j) * row[j]
			}
			p[a] = s
		}
		res.Points[i] = p
	}
	total, top := 0.0, 0.0
	for k, v := range values {
		if v > 0 {
			total += v
			if k < 2 {
				top += v
			}
		}
	}
	if total > 0 {
		res.ExplainedRatio = top / total
	}
	return res
}

func standardize(x *linalg.Mat) *linalg.Mat {
	out := x.Clone()
	means := linalg.ColumnMeans(x)
	d := x.Cols
	for j := 0; j < d; j++ {
		variance := 0.0
		for i := 0; i < x.Rows; i++ {
			dv := x.At(i, j) - means[j]
			variance += dv * dv
		}
		sd := math.Sqrt(variance / float64(x.Rows))
		if sd < 1e-12 {
			sd = 1
		}
		for i := 0; i < x.Rows; i++ {
			out.Set(i, j, (x.At(i, j)-means[j])/sd)
		}
	}
	return out
}

func distinct(labels []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
