package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// The codec is deliberately dumb: hand-rolled little-endian primitives
// over byte slices, no reflection, no interface dispatch in the hot
// loops. Bulk data (bitset words) round-trips through binary.LittleEndian
// eight bytes at a time; counts and ids use varints; floats travel as
// their IEEE-754 bit patterns.

// enc accumulates one section payload.
type enc struct {
	b []byte
}

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}
func (e *enc) svarint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// words appends a bulk little-endian word array, length-prefixed.
func (e *enc) words(ws []uint64) {
	e.uvarint(uint64(len(ws)))
	for _, w := range ws {
		e.u64(w)
	}
}

// dec walks one section payload with a sticky error: after the first
// malformed read every subsequent read returns zero, so decode loops
// need a single err check at the end, not one per field.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated or malformed %s at offset %d", what, d.off)
	}
}

func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) svarint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("svarint")
		return 0
	}
	d.off += n
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil || d.off+int(n) > len(d.b) || int(n) < 0 {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// count reads a length that must fit the remaining payload when each
// element occupies at least min bytes — the guard that stops a corrupt
// length from provoking a huge allocation before the CRC would have
// caught it.
func (d *dec) count(min int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(d.b)-d.off)/min) {
		d.fail("count")
		return 0
	}
	return int(n)
}

func (d *dec) words() []uint64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = d.u64()
	}
	return ws
}

// ---------------------------------------------------------------------------
// Section framing: tag, little-endian payload length, payload, CRC-32
// (IEEE) of the payload. Sections appear in a fixed order; the END tag
// closes the file.

type sectionTag uint32

const (
	tagSchema sectionTag = 0x4d484353 // "SCHM"
	tagUsers  sectionTag = 0x52455355 // "USER"
	tagItems  sectionTag = 0x4d455449 // "ITEM"
	tagAction sectionTag = 0x53544341 // "ACTS"
	tagVocab  sectionTag = 0x42434f56 // "VOCB"
	tagTxns   sectionTag = 0x534e5854 // "TXNS"
	tagGroups sectionTag = 0x53505247 // "GRPS"
	tagIndex  sectionTag = 0x58444e49 // "INDX"
	tagMeta   sectionTag = 0x4154454d // "META"
	tagDlog   sectionTag = 0x474f4c44 // "DLOG"
	tagDelta  sectionTag = 0x41544c44 // "DLTA"
	tagEnd    sectionTag = 0x00444e45 // "END\x00"
)

// writeSection frames one payload onto w.
func writeSection(w io.Writer, tag sectionTag, payload []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tag))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// sectionReader iterates framed sections over an in-memory snapshot.
type sectionReader struct {
	b   []byte
	off int
}

// next returns the next section's payload after verifying its CRC and
// that it carries the expected tag.
func (sr *sectionReader) next(want sectionTag) ([]byte, error) {
	if sr.off+12 > len(sr.b) {
		return nil, fmt.Errorf("store: truncated section header at offset %d", sr.off)
	}
	tag := sectionTag(binary.LittleEndian.Uint32(sr.b[sr.off:]))
	n := binary.LittleEndian.Uint64(sr.b[sr.off+4:])
	sr.off += 12
	if tag != want {
		return nil, fmt.Errorf("store: section %q where %q expected", tagString(tag), tagString(want))
	}
	if n > uint64(len(sr.b)-sr.off) {
		return nil, fmt.Errorf("store: section %q length %d overruns file", tagString(tag), n)
	}
	payload := sr.b[sr.off : sr.off+int(n)]
	sr.off += int(n)
	if sr.off+4 > len(sr.b) {
		return nil, fmt.Errorf("store: truncated CRC for section %q", tagString(tag))
	}
	want32 := binary.LittleEndian.Uint32(sr.b[sr.off:])
	sr.off += 4
	if got := crc32.ChecksumIEEE(payload); got != want32 {
		return nil, fmt.Errorf("store: section %q CRC mismatch (%08x != %08x): snapshot corrupt", tagString(tag), got, want32)
	}
	return payload, nil
}

// peek returns the tag of the next section without consuming it — how
// the loader decides whether an optional DLTA section follows or the
// file is closed by END.
func (sr *sectionReader) peek() (sectionTag, error) {
	if sr.off+12 > len(sr.b) {
		return 0, fmt.Errorf("store: truncated section header at offset %d", sr.off)
	}
	return sectionTag(binary.LittleEndian.Uint32(sr.b[sr.off:])), nil
}

func tagString(t sectionTag) string {
	return string([]byte{byte(t), byte(t >> 8), byte(t >> 16), byte(t >> 24)})
}
