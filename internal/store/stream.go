package store

import (
	"fmt"
	"io"

	"vexus/internal/core"
)

// This file is the streaming half of warm joins (internal/cluster): a
// current member serves its engine through Save over HTTP, and the
// joining shard verifies and decodes the stream with LoadFresh before
// it is allowed anywhere near the hash ring. Save already streams —
// it writes header + CRC-framed sections to any io.Writer — so the
// donor side needs nothing new; what a *network* consumer needs that
// the file paths don't is freshness verification over bytes that
// never touch disk.

// maxStreamSnapshot bounds how much of a streamed snapshot LoadFresh
// will buffer — a backstop against a runaway or hostile peer, not a
// size policy (the largest benchmark engines are two orders of
// magnitude smaller).
const maxStreamSnapshot = 1 << 31

// LoadFresh reads a complete snapshot stream and reassembles the
// engine only if the stream's header fingerprint equals the chain of
// the given *base* fingerprint and the lineage the stream itself
// records — the same freshness rule as LoadFileFresh, applied to a
// transport instead of a file. Anything less — a truncated transfer,
// a stream for a different dataset or pipeline config, a corrupt
// section — returns an error (ErrStale for fingerprint mismatches)
// and no engine: the caller fails closed.
func LoadFresh(r io.Reader, fp Fingerprint, workers int) (*core.Engine, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxStreamSnapshot+1))
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot stream: %w", err)
	}
	if len(data) > maxStreamSnapshot {
		return nil, fmt.Errorf("store: snapshot stream exceeds %d bytes", maxStreamSnapshot)
	}
	return LoadFreshBytes(data, fp, workers)
}

// LoadFreshBytes is LoadFresh over an in-memory snapshot.
func LoadFreshBytes(data []byte, fp Fingerprint, workers int) (*core.Engine, error) {
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	dlog, deltaDigests, err := scanLineage(data)
	if err != nil {
		return nil, err
	}
	if hdr.Fingerprint != ChainFingerprint(fp, append(dlog, deltaDigests...)) {
		return nil, ErrStale
	}
	eng, _, err := loadBytes(data, workers)
	return eng, err
}
