// Package store is the warm-start layer between the offline pipeline
// and online serving: it serializes a fully built core.Engine —
// dataset tables, mined group space, inverted-index lists, and the
// transaction encoding — into a versioned binary snapshot and loads it
// back bit-identical to a fresh core.Build, so restarts and
// multi-dataset deployments skip the expensive mining stage entirely.
//
// # Format
//
// A snapshot is a 44-byte header followed by framed sections:
//
//	magic "VXSNAP\x00\n" | version u32 | fingerprint [32]byte
//	then, in fixed order: SCHM USER ITEM ACTS VOCB TXNS GRPS INDX META DLOG
//	then zero or more DLTA sections, then END
//	each section: tag u32 | payload length u64 | payload | CRC-32 (IEEE)
//
// Everything is little-endian; counts and ids are varints; bitsets
// travel as their raw 64-bit word arrays (internal/bitset.Words), so
// the hot structures round-trip with bulk copies instead of
// reflection-driven encoding. Every section is CRC-checked on load —
// a flipped bit fails loudly instead of serving corrupt groups.
//
// The GRPS and INDX sections carry per-record byte-offset tables, so
// loading decodes group member sets and inverted lists in parallel via
// internal/parallel (each record writes only its own slot — the repo's
// slot-write determinism contract). Derived structures that are cheap
// and deterministic to rebuild (user→group inversion, tid-lists, the
// size order) are reconstructed rather than stored: they cannot
// disagree with the snapshot, and the snapshot stays ~40% smaller.
//
// # Content addressing
//
// The header fingerprint is a SHA-256 over the dataset content and the
// result-affecting pipeline configuration (see ComputeFingerprint).
// BuildOrLoad compares it before trusting a snapshot: a stale file —
// new data, changed mining bounds, different index fraction — is
// rebuilt and overwritten, never silently served.
//
// # Live datasets: deltas and compaction
//
// An ingested batch (core.IngestBatch) persists as one DLTA section
// appended in place by AppendDeltaFile — a few bytes of log instead of
// a multi-megabyte base rewrite, which is what makes ingestion cheap
// at the storage layer. The header fingerprint then covers the whole
// chain (ChainFingerprint): base fingerprint folded with each batch
// digest, in order. Loading a snapshot with pending deltas replays
// them — fold every batch into the base dataset, run the pipeline once
// — which is provably identical to the sequence of Engine.Ingest calls
// that produced them. The DLOG section records digests of batches
// already compacted *into* the base sections, so the chain stays
// verifiable from the original spec dataset even after BuildOrLoad
// rewrites the base (it compacts once pending deltas reach
// CompactThreshold).
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"vexus/internal/bitset"
	"vexus/internal/core"
	"vexus/internal/dataset"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/mining"
	"vexus/internal/parallel"
)

// Version is the snapshot format version; Load rejects files written
// by a different one (snapshots are cache, not archive — rebuild).
// Version 2 added the ingestion-log sections (DLOG, DLTA), the chained
// fingerprint, and the pipeline configuration in META.
const Version = 2

// CompactThreshold is the number of pending DLTA sections at which
// BuildOrLoad folds the deltas into a fresh base: below it a warm
// start pays one delta replay (cheap — the batches are tiny next to
// the base); at it the snapshot is rewritten so replay cost cannot
// grow without bound. The compacted batches' digests move into the
// DLOG section, keeping the fingerprint chain verifiable from the
// original spec dataset.
var CompactThreshold = 4

var magic = [8]byte{'V', 'X', 'S', 'N', 'A', 'P', 0, '\n'}

const headerLen = len(magic) + 4 + 32

// Header is the cheap-to-read prefix of a snapshot: enough to decide
// freshness without touching the (potentially large) body.
type Header struct {
	Version     uint32
	Fingerprint Fingerprint
}

// ErrStale reports a snapshot whose fingerprint does not match the
// dataset + configuration the caller is serving.
var ErrStale = errors.New("store: snapshot fingerprint mismatch (dataset or pipeline config changed)")

// Save writes eng as a snapshot. fp is the *base* fingerprint — the
// content address of the pre-ingestion dataset + config; the header is
// stamped with the chain of fp and the engine's lineage, and the
// lineage digests are materialized in the DLOG section (the engine's
// state already contains those batches, so no DLTA sections are
// written — Save always produces a compacted snapshot). For an engine
// fresh from core.Build the lineage is empty and the header carries fp
// itself.
func Save(w io.Writer, eng *core.Engine, fp Fingerprint) error {
	lineage := eng.Lineage()
	head := ChainFingerprint(fp, lineage)
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[len(magic):], Version)
	copy(hdr[len(magic)+4:], head[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	sections := []struct {
		tag     sectionTag
		payload []byte
	}{
		{tagSchema, encodeSchema(eng.Data.Schema)},
		{tagUsers, encodeUsers(eng.Data)},
		{tagItems, encodeItems(eng.Data)},
		{tagAction, encodeActions(eng.Data)},
		{tagVocab, encodeVocab(eng.Space.Vocab)},
		{tagTxns, encodeTransactions(eng.Tx)},
		{tagGroups, encodeGroups(eng.Space)},
		{tagIndex, encodeIndex(eng.Index)},
		{tagMeta, encodeMeta(eng)},
		{tagDlog, encodeDlog(lineage)},
		{tagEnd, nil},
	}
	for _, s := range sections {
		if err := writeSection(w, s.tag, s.payload); err != nil {
			return fmt.Errorf("store: writing section %q: %w", tagString(s.tag), err)
		}
	}
	return nil
}

// Load reads a snapshot and reassembles the engine, decoding the
// group and index sections across `workers` goroutines (<= 0 means
// runtime.NumCPU()); any worker count yields a bit-identical engine.
func Load(r io.Reader, workers int) (*core.Engine, Header, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, Header{}, fmt.Errorf("store: reading snapshot: %w", err)
	}
	return loadBytes(data, workers)
}

// loadBytes parses a whole in-memory snapshot (the random access the
// parallel section decode needs). A snapshot with pending DLTA
// sections takes the replay path: only the dataset tables and META are
// decoded from the base, every batch is folded into the dataset, and
// the pipeline runs once — identical to the Engine.Ingest sequence
// that wrote the deltas, because Ingest itself is defined as a build
// on the augmented dataset.
func loadBytes(data []byte, workers int) (*core.Engine, Header, error) {
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, Header{}, err
	}
	sr := &sectionReader{b: data, off: headerLen}
	payload := map[sectionTag][]byte{}
	for _, tag := range []sectionTag{
		tagSchema, tagUsers, tagItems, tagAction, tagVocab,
		tagTxns, tagGroups, tagIndex, tagMeta, tagDlog,
	} {
		p, err := sr.next(tag)
		if err != nil {
			return nil, hdr, err
		}
		payload[tag] = p
	}
	var deltas [][]byte
	for {
		tag, err := sr.peek()
		if err != nil {
			return nil, hdr, err
		}
		if tag != tagDelta {
			break
		}
		p, err := sr.next(tagDelta)
		if err != nil {
			return nil, hdr, err
		}
		deltas = append(deltas, p)
	}
	if _, err := sr.next(tagEnd); err != nil {
		return nil, hdr, err
	}

	dlog, err := decodeDlog(payload[tagDlog])
	if err != nil {
		return nil, hdr, err
	}
	info, err := decodeMeta(payload[tagMeta])
	if err != nil {
		return nil, hdr, err
	}
	info.Lineage = dlog

	if len(deltas) > 0 {
		return loadWithDeltas(hdr, payload, deltas, info, workers)
	}

	// Independent sections decode concurrently (fork-join); within the
	// groups and index sections each record decodes into its own slot.
	var (
		d      *dataset.Dataset
		vocab  *groups.Vocab
		tx     *mining.Transactions
		gs     []*groups.Group
		spaceN int
		lists  [][]index.Neighbor
		counts []int
		frac   float64
		errs   [4]error
	)
	parallel.Do(workers,
		func() { d, errs[0] = decodeDataset(payload) },
		func() { vocab, tx, errs[1] = decodeVocabTransactions(payload) },
		func() { gs, spaceN, errs[2] = decodeGroups(payload[tagGroups], workers) },
		func() { lists, counts, frac, errs[3] = decodeIndex(payload[tagIndex], workers) },
	)
	for _, err := range errs {
		if err != nil {
			return nil, hdr, err
		}
	}
	if d.NumUsers() != spaceN || tx.N != spaceN {
		return nil, hdr, fmt.Errorf("store: universe mismatch: %d users, %d transactions, %d-user group space",
			d.NumUsers(), tx.N, spaceN)
	}
	for gi, g := range gs {
		for _, id := range g.Desc {
			if int(id) < 0 || int(id) >= vocab.Len() {
				return nil, hdr, fmt.Errorf("store: group %d references term %d outside vocab of %d", gi, id, vocab.Len())
			}
		}
	}
	space, err := groups.NewSpaceParallel(spaceN, vocab, gs, workers)
	if err != nil {
		return nil, hdr, fmt.Errorf("store: rebuilding group space: %w", err)
	}
	ix, err := index.Restore(space, frac, lists, counts)
	if err != nil {
		return nil, hdr, err
	}
	return core.RestoreEngine(d, tx, space, ix, info), hdr, nil
}

// loadWithDeltas is the replay path: decode the base dataset and
// config, fold every pending batch in, build once. The heavy mined
// sections (VOCB, TXNS, GRPS, INDX) are CRC-checked but never decoded
// — the replay build supersedes them.
func loadWithDeltas(hdr Header, payload map[sectionTag][]byte, deltas [][]byte, info core.RestoreInfo, workers int) (*core.Engine, Header, error) {
	if !info.DefaultMiner {
		return nil, hdr, fmt.Errorf("store: snapshot has %d pending deltas but was built with a custom miner; deltas cannot replay", len(deltas))
	}
	d, err := decodeDataset(payload)
	if err != nil {
		return nil, hdr, err
	}
	lineage := info.Lineage
	for i, p := range deltas {
		b, err := core.DecodeIngestBatch(p)
		if err != nil {
			return nil, hdr, fmt.Errorf("store: delta %d: %w", i, err)
		}
		d, err = d.Append(b.Users, b.Actions)
		if err != nil {
			return nil, hdr, fmt.Errorf("store: replaying delta %d: %w", i, err)
		}
		lineage = append(lineage, b.Digest())
	}
	cfg := info.Config
	cfg.Workers = workers
	eng, err := core.BuildWithLineage(d, cfg, lineage)
	if err != nil {
		return nil, hdr, fmt.Errorf("store: rebuilding from %d deltas: %w", len(deltas), err)
	}
	// The original base build's wall clock is long gone from relevance
	// here; report the replay build's own timings.
	return eng, hdr, nil
}

// ReadHeader parses just the snapshot header.
func ReadHeader(r io.Reader) (Header, error) {
	var b [headerLen]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Header{}, fmt.Errorf("store: reading header: %w", err)
	}
	return parseHeader(b[:])
}

func parseHeader(b []byte) (Header, error) {
	if len(b) < headerLen {
		return Header{}, fmt.Errorf("store: %d-byte file is shorter than the %d-byte header", len(b), headerLen)
	}
	for i := range magic {
		if b[i] != magic[i] {
			return Header{}, fmt.Errorf("store: not a vexus snapshot (bad magic)")
		}
	}
	h := Header{Version: binary.LittleEndian.Uint32(b[len(magic):])}
	copy(h.Fingerprint[:], b[len(magic)+4:headerLen])
	if h.Version != Version {
		return Header{}, fmt.Errorf("store: snapshot version %d, this build reads %d — rebuild the snapshot", h.Version, Version)
	}
	return h, nil
}

// SaveFile writes a snapshot atomically: to path+".tmp", synced, then
// renamed over path, so a crash mid-write never leaves a half snapshot
// where BuildOrLoad would find it.
func SaveFile(path string, eng *core.Engine, fp Fingerprint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := Save(bw, eng, fp); err == nil {
		err = bw.Flush()
	} else {
		_ = bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile loads a snapshot from disk. The file is read in one
// pre-sized slurp (os.ReadFile) straight into the in-memory parse —
// no intermediate buffering layer to copy through.
func LoadFile(path string, workers int) (*core.Engine, Header, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, Header{}, err
	}
	return loadBytes(data, workers)
}

// ReadHeaderFile reads just the header of a snapshot on disk.
func ReadHeaderFile(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return ReadHeader(f)
}

// LoadFileFresh loads path only if its header fingerprint matches the
// chain of the given *base* fingerprint and the ingestion lineage the
// file itself records (DLOG + DLTA sections), returning ErrStale
// otherwise — the explicit form of the freshness check BuildOrLoad
// performs. A snapshot whose header does not equal the recomputed
// chain head — stale base, torn delta append, foreign file — is never
// served.
func LoadFileFresh(path string, fp Fingerprint, workers int) (*core.Engine, error) {
	eng, _, err := loadFresh(path, fp, workers)
	return eng, err
}

// loadFresh is LoadFileFresh plus the pending-delta count, which
// BuildOrLoad's compaction policy needs.
func loadFresh(path string, fp Fingerprint, workers int) (*core.Engine, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	hdr, err := parseHeader(data)
	if err != nil {
		return nil, 0, err
	}
	dlog, deltaDigests, err := scanLineage(data)
	if err != nil {
		return nil, 0, err
	}
	head := ChainFingerprint(fp, append(dlog, deltaDigests...))
	if hdr.Fingerprint != head {
		return nil, 0, ErrStale
	}
	eng, _, err := loadBytes(data, workers)
	return eng, len(deltaDigests), err
}

// scanLineage walks the section frames of an in-memory snapshot and
// returns the chain material: the DLOG digests and the digest of every
// DLTA payload (a DLTA payload is exactly a batch's canonical
// encoding, so its SHA-256 is the batch digest). No payload is decoded
// and no CRC is verified — the caller cross-checks the result against
// the header fingerprint, a stronger statement over the same bytes,
// and the CRCs are verified on the real load.
func scanLineage(data []byte) (dlog, deltas []core.BatchDigest, err error) {
	off := headerLen
	for {
		if off+12 > len(data) {
			return nil, nil, fmt.Errorf("store: truncated section header at offset %d", off)
		}
		tag := sectionTag(binary.LittleEndian.Uint32(data[off:]))
		n := binary.LittleEndian.Uint64(data[off+4:])
		off += 12
		if n > uint64(len(data)-off) {
			return nil, nil, fmt.Errorf("store: section %q length %d overruns file", tagString(tag), n)
		}
		payload := data[off : off+int(n)]
		off += int(n) + 4 // payload + CRC
		if off > len(data) {
			return nil, nil, fmt.Errorf("store: truncated CRC for section %q", tagString(tag))
		}
		switch tag {
		case tagDlog:
			if dlog, err = decodeDlog(payload); err != nil {
				return nil, nil, err
			}
		case tagDelta:
			deltas = append(deltas, core.BatchDigest(sha256.Sum256(payload)))
		case tagEnd:
			return dlog, deltas, nil
		}
	}
}

// endFrameLen is the byte length of the END section frame (12-byte
// header + 4-byte CRC of the empty payload) that closes every
// snapshot; AppendDeltaFile overwrites it in place.
const endFrameLen = 16

// AppendDeltaFile appends one ingestion batch to the snapshot at path
// as a DLTA section, in place: the END frame (always the file's last
// 16 bytes) is overwritten with DLTA + a fresh END, the data is
// synced, and only then is the header fingerprint patched to the new
// chain head and synced again. head must be the chain over the base
// fingerprint and the post-ingest engine's full lineage. The write
// order makes a crash at any point safe: a torn tail or an unpatched
// header both leave the recomputed chain disagreeing with the header,
// which reads as stale and falls back to a rebuild — never a silently
// wrong engine.
//
// This is the storage half of what makes ingestion incremental: a
// batch persists in O(batch) bytes while the multi-megabyte base
// stays untouched.
func AppendDeltaFile(path string, b core.IngestBatch, head Fingerprint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var hb [headerLen]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		return fmt.Errorf("store: append delta: reading header: %w", err)
	}
	if _, err := parseHeader(hb[:]); err != nil {
		return fmt.Errorf("store: append delta: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < int64(headerLen+endFrameLen) {
		return fmt.Errorf("store: append delta: %d-byte file has no END frame", st.Size())
	}
	var end [endFrameLen]byte
	if _, err := f.ReadAt(end[:], st.Size()-endFrameLen); err != nil {
		return fmt.Errorf("store: append delta: reading END frame: %w", err)
	}
	if sectionTag(binary.LittleEndian.Uint32(end[:])) != tagEnd ||
		binary.LittleEndian.Uint64(end[4:]) != 0 {
		return fmt.Errorf("store: append delta: file does not end in an END frame (torn write?)")
	}

	payload := b.AppendBinary(nil)
	var tail []byte
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tagDelta))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(payload)))
	tail = append(tail, hdr[:]...)
	tail = append(tail, payload...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	tail = append(tail, crc[:]...)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tagEnd))
	binary.LittleEndian.PutUint64(hdr[4:], 0)
	tail = append(tail, hdr[:]...)
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(nil))
	tail = append(tail, crc[:]...)

	if _, err := f.WriteAt(tail, st.Size()-endFrameLen); err != nil {
		return fmt.Errorf("store: append delta: writing section: %w", err)
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := f.WriteAt(head[:], int64(len(magic)+4)); err != nil {
		return fmt.Errorf("store: append delta: patching header: %w", err)
	}
	return f.Sync()
}

// BuildOrLoad is the warm-start entry point: it loads the snapshot at
// path when one exists and its fingerprint matches the given dataset +
// configuration, and otherwise runs core.Build and writes a fresh
// snapshot for the next start. The returned bool reports a warm load.
//
// A stale, corrupt, truncated, or version-skewed snapshot is never
// served — it falls through to a rebuild that overwrites it. Absent
// and stale files are the expected cache misses and rebuild silently;
// anything else (CRC failure, truncation, version skew) is surfaced as
// a warning alongside the freshly built engine, as is a snapshot that
// could not be written after the build — in both cases the engine is
// valid and err != nil means "serve it, but tell the operator".
// path == "" disables snapshotting and always builds.
//
// A warm load that finds CompactThreshold or more pending deltas
// compacts: the just-replayed engine is rewritten as a fresh base
// (lineage digests moving into DLOG), so the next start replays
// nothing. A failed compaction is a warning, not an error — the
// replayed engine is correct either way.
func BuildOrLoad(path string, d *dataset.Dataset, cfg core.PipelineConfig) (*core.Engine, bool, error) {
	var fp Fingerprint
	var warn error
	if path != "" {
		fp = ComputeFingerprint(d, cfg)
		eng, pending, err := loadFresh(path, fp, cfg.Workers)
		if err == nil {
			if CompactThreshold > 0 && pending >= CompactThreshold {
				if err := SaveFile(path, eng, fp); err != nil {
					warn = fmt.Errorf("store: loaded %d deltas but could not compact %s: %w", pending, path, err)
				}
			}
			return eng, true, warn
		}
		if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, ErrStale) {
			warn = fmt.Errorf("store: ignoring unusable snapshot %s (rebuilding): %w", path, err)
		}
	}
	eng, err := core.Build(d, cfg)
	if err != nil {
		return nil, false, err
	}
	if path != "" {
		if err := SaveFile(path, eng, fp); err != nil {
			warn = errors.Join(warn, fmt.Errorf("store: engine built but snapshot not written: %w", err))
		}
	}
	return eng, false, warn
}

// ---------------------------------------------------------------------------
// Section encoders.

func encodeSchema(s *dataset.Schema) []byte {
	var e enc
	e.uvarint(uint64(len(s.Attrs)))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		e.str(a.Name)
		e.u8(uint8(a.Kind))
		e.uvarint(uint64(len(a.Values)))
		for _, v := range a.Values {
			e.str(v)
		}
		e.uvarint(uint64(len(a.Bins)))
		for _, b := range a.Bins {
			e.f64(b)
		}
	}
	return e.b
}

func encodeUsers(d *dataset.Dataset) []byte {
	var e enc
	e.uvarint(uint64(d.NumUsers()))
	for i := range d.Users {
		u := &d.Users[i]
		e.str(u.ID)
		e.uvarint(uint64(len(u.Demo)))
		for _, v := range u.Demo {
			e.svarint(int64(v))
		}
	}
	return e.b
}

func encodeItems(d *dataset.Dataset) []byte {
	var e enc
	e.uvarint(uint64(d.NumItems()))
	for i := range d.Items {
		e.str(d.Items[i].ID)
		e.str(d.Items[i].Label)
	}
	return e.b
}

func encodeActions(d *dataset.Dataset) []byte {
	var e enc
	e.uvarint(uint64(d.NumActions()))
	for i := range d.Actions {
		a := &d.Actions[i]
		e.uvarint(uint64(a.User))
		e.uvarint(uint64(a.Item))
		e.f64(a.Value)
		e.svarint(a.Time)
	}
	return e.b
}

func encodeVocab(v *groups.Vocab) []byte {
	var e enc
	e.uvarint(uint64(v.Len()))
	for id := groups.TermID(0); int(id) < v.Len(); id++ {
		t := v.Term(id)
		e.str(t.Field)
		e.str(t.Value)
	}
	return e.b
}

func encodeTransactions(tx *mining.Transactions) []byte {
	var e enc
	e.uvarint(uint64(tx.N))
	for _, terms := range tx.PerUser {
		e.uvarint(uint64(len(terms)))
		prev := groups.TermID(0)
		for _, id := range terms {
			e.uvarint(uint64(id - prev)) // ascending → deltas
			prev = id
		}
	}
	return e.b
}

// encodeGroups writes the mined space: a per-record offset table (for
// parallel decode) followed by each group's description and raw member
// words. The user→group inversion is rebuilt on load.
func encodeGroups(space *groups.Space) []byte {
	var records enc
	offsets := make([]uint64, space.Len())
	for gid := 0; gid < space.Len(); gid++ {
		offsets[gid] = uint64(len(records.b))
		g := space.Group(gid)
		records.uvarint(uint64(len(g.Desc)))
		prev := groups.TermID(0)
		for _, id := range g.Desc {
			records.uvarint(uint64(id - prev))
			prev = id
		}
		records.words(g.Members.Words())
	}
	var e enc
	e.uvarint(uint64(space.NumUsers))
	e.uvarint(uint64(space.Len()))
	for _, off := range offsets {
		e.u64(off)
	}
	e.b = append(e.b, records.b...)
	return e.b
}

func encodeIndex(ix *index.Index) []byte {
	n := ix.Space().Len()
	var records enc
	offsets := make([]uint64, n)
	for gid := 0; gid < n; gid++ {
		offsets[gid] = uint64(len(records.b))
		records.uvarint(uint64(ix.OverlapCount(gid)))
		list := ix.MaterializedList(gid)
		records.uvarint(uint64(len(list)))
		for _, nb := range list {
			records.uvarint(uint64(nb.ID))
			records.f64(nb.Sim)
		}
	}
	var e enc
	e.f64(ix.Fraction())
	e.uvarint(uint64(n))
	for _, off := range offsets {
		e.u64(off)
	}
	e.b = append(e.b, records.b...)
	return e.b
}

// encodeMeta writes the engine's metadata: miner name, build timings,
// and — new in format version 2 — whether the default (replayable)
// miner built the space plus the normalized result-affecting pipeline
// scalars, which is what lets a loader re-run the pipeline over
// replayed deltas. Workers is a runtime choice, not state, and is not
// stored.
func encodeMeta(eng *core.Engine) []byte {
	var e enc
	e.str(eng.Miner)
	e.svarint(int64(eng.Timings.Encode))
	e.svarint(int64(eng.Timings.Mine))
	e.svarint(int64(eng.Timings.Index))
	if eng.Ingestable() {
		e.u8(1)
	} else {
		e.u8(0)
	}
	cfg := eng.Config()
	if cfg.Encode.Demographics {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.uvarint(uint64(cfg.Encode.TopItems))
	e.f64(cfg.Encode.LikeThreshold)
	e.uvarint(uint64(cfg.Encode.ActivityLevels))
	e.f64(cfg.MinSupportFrac)
	e.uvarint(uint64(cfg.MaxLen))
	e.uvarint(uint64(cfg.MaxGroups))
	e.f64(cfg.IndexFraction)
	return e.b
}

// encodeDlog writes the digests of batches already folded into the
// base sections.
func encodeDlog(lineage []core.BatchDigest) []byte {
	var e enc
	e.uvarint(uint64(len(lineage)))
	for _, dg := range lineage {
		e.b = append(e.b, dg[:]...)
	}
	return e.b
}

// ---------------------------------------------------------------------------
// Section decoders.

func decodeDataset(payload map[sectionTag][]byte) (*dataset.Dataset, error) {
	schema, err := decodeSchema(payload[tagSchema])
	if err != nil {
		return nil, err
	}
	users, err := decodeUsers(payload[tagUsers])
	if err != nil {
		return nil, err
	}
	items, err := decodeItems(payload[tagItems])
	if err != nil {
		return nil, err
	}
	actions, err := decodeActions(payload[tagAction])
	if err != nil {
		return nil, err
	}
	d, err := dataset.Restore(schema, users, items, actions)
	if err != nil {
		return nil, fmt.Errorf("store: restoring dataset: %w", err)
	}
	return d, nil
}

func decodeSchema(b []byte) (*dataset.Schema, error) {
	d := dec{b: b}
	attrs := make([]dataset.Attribute, d.count(1))
	for i := range attrs {
		attrs[i].Name = d.str()
		attrs[i].Kind = dataset.AttrKind(d.u8())
		attrs[i].Values = make([]string, d.count(1))
		for j := range attrs[i].Values {
			attrs[i].Values[j] = d.str()
		}
		attrs[i].Bins = make([]float64, d.count(8))
		for j := range attrs[i].Bins {
			attrs[i].Bins[j] = d.f64()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	s, err := dataset.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("store: restoring schema: %w", err)
	}
	return s, nil
}

func decodeUsers(b []byte) ([]dataset.User, error) {
	d := dec{b: b}
	users := make([]dataset.User, d.count(2))
	for i := range users {
		users[i].ID = d.str()
		users[i].Demo = make([]int, d.count(1))
		for j := range users[i].Demo {
			users[i].Demo[j] = int(d.svarint())
		}
	}
	return users, d.err
}

func decodeItems(b []byte) ([]dataset.Item, error) {
	d := dec{b: b}
	items := make([]dataset.Item, d.count(2))
	for i := range items {
		items[i].ID = d.str()
		items[i].Label = d.str()
	}
	return items, d.err
}

func decodeActions(b []byte) ([]dataset.Action, error) {
	d := dec{b: b}
	actions := make([]dataset.Action, d.count(11))
	for i := range actions {
		actions[i].User = int(d.uvarint())
		actions[i].Item = int(d.uvarint())
		actions[i].Value = d.f64()
		actions[i].Time = d.svarint()
	}
	return actions, d.err
}

func decodeVocabTransactions(payload map[sectionTag][]byte) (*groups.Vocab, *mining.Transactions, error) {
	d := dec{b: payload[tagVocab]}
	vocab := groups.NewVocab()
	n := d.count(2)
	for i := 0; i < n; i++ {
		field, value := d.str(), d.str()
		if d.err != nil {
			break
		}
		if id := vocab.Intern(field, value); int(id) != i {
			return nil, nil, fmt.Errorf("store: duplicate vocab term %s=%s", field, value)
		}
	}
	if d.err != nil {
		return nil, nil, d.err
	}

	t := dec{b: payload[tagTxns]}
	perUser := make([][]groups.TermID, t.count(1))
	for u := range perUser {
		terms := make([]groups.TermID, t.count(1))
		prev := groups.TermID(0)
		for j := range terms {
			prev += groups.TermID(t.uvarint())
			terms[j] = prev
		}
		if t.err != nil {
			return nil, nil, t.err
		}
		if len(terms) > 0 && int(terms[len(terms)-1]) >= vocab.Len() {
			return nil, nil, fmt.Errorf("store: user %d carries term %d outside vocab of %d", u, terms[len(terms)-1], vocab.Len())
		}
		perUser[u] = terms
	}
	if t.err != nil {
		return nil, nil, t.err
	}
	return vocab, mining.NewTransactions(vocab, perUser), nil
}

// decodeGroups rebuilds the group records. The offset table makes each
// record independently addressable, so records decode across workers
// with each one writing only its own gs[i] slot.
func decodeGroups(b []byte, workers int) ([]*groups.Group, int, error) {
	d := dec{b: b}
	numUsers := int(d.uvarint())
	n := d.count(8)
	offsets := make([]uint64, n)
	for i := range offsets {
		offsets[i] = d.u64()
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	records := b[d.off:]
	gs := make([]*groups.Group, n)
	errs := make([]error, n)
	parallel.Range(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if offsets[i] > uint64(len(records)) {
				errs[i] = fmt.Errorf("store: group %d offset %d overruns section", i, offsets[i])
				continue
			}
			rd := dec{b: records, off: int(offsets[i])}
			desc := make(groups.Description, rd.count(1))
			prev := groups.TermID(0)
			for j := range desc {
				prev += groups.TermID(rd.uvarint())
				desc[j] = prev
			}
			members, err := bitset.FromWords(numUsers, rd.words())
			if rd.err != nil {
				errs[i] = rd.err
				continue
			}
			if err != nil {
				errs[i] = fmt.Errorf("store: group %d members: %w", i, err)
				continue
			}
			gs[i] = &groups.Group{Desc: desc, Members: members}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return gs, numUsers, nil
}

// decodeIndex rebuilds the materialized inverted lists, one record per
// group, sharded across workers slot-wise like decodeGroups.
func decodeIndex(b []byte, workers int) ([][]index.Neighbor, []int, float64, error) {
	d := dec{b: b}
	frac := d.f64()
	n := d.count(8)
	offsets := make([]uint64, n)
	for i := range offsets {
		offsets[i] = d.u64()
	}
	if d.err != nil {
		return nil, nil, 0, d.err
	}
	records := b[d.off:]
	lists := make([][]index.Neighbor, n)
	counts := make([]int, n)
	errs := make([]error, n)
	parallel.Range(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if offsets[i] > uint64(len(records)) {
				errs[i] = fmt.Errorf("store: index record %d offset %d overruns section", i, offsets[i])
				continue
			}
			rd := dec{b: records, off: int(offsets[i])}
			counts[i] = int(rd.uvarint())
			list := make([]index.Neighbor, rd.count(2))
			for j := range list {
				list[j].ID = int(rd.uvarint())
				list[j].Sim = rd.f64()
			}
			if rd.err != nil {
				errs[i] = rd.err
				continue
			}
			lists[i] = list
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, 0, err
		}
	}
	return lists, counts, frac, nil
}

func decodeMeta(b []byte) (core.RestoreInfo, error) {
	d := dec{b: b}
	var info core.RestoreInfo
	info.Miner = d.str()
	info.Timings = core.Timings{
		Encode: time.Duration(d.svarint()),
		Mine:   time.Duration(d.svarint()),
		Index:  time.Duration(d.svarint()),
	}
	info.DefaultMiner = d.u8() == 1
	info.Config.Encode.Demographics = d.u8() == 1
	info.Config.Encode.TopItems = int(d.uvarint())
	info.Config.Encode.LikeThreshold = d.f64()
	info.Config.Encode.ActivityLevels = int(d.uvarint())
	info.Config.MinSupportFrac = d.f64()
	info.Config.MaxLen = int(d.uvarint())
	info.Config.MaxGroups = int(d.uvarint())
	info.Config.IndexFraction = d.f64()
	return info, d.err
}

func decodeDlog(b []byte) ([]core.BatchDigest, error) {
	d := dec{b: b}
	n := d.count(32)
	if d.err != nil {
		return nil, d.err
	}
	out := make([]core.BatchDigest, n)
	for i := range out {
		if d.off+32 > len(b) {
			return nil, fmt.Errorf("store: truncated DLOG digest %d", i)
		}
		copy(out[i][:], b[d.off:])
		d.off += 32
	}
	return out, nil
}
