package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vexus/internal/core"
	"vexus/internal/dataset"
)

func deltaBatch(seq uint64) core.IngestBatch {
	return core.IngestBatch{
		Seq: seq,
		Users: []dataset.NewUser{
			{ID: "late-author", Demo: map[string]string{
				"gender": "female", "seniority": "senior", "country": "br", "topic": "data mining",
			}, Numeric: map[string]float64{"pubrate": 25}},
		},
		Actions: []dataset.NewAction{
			{User: "late-author", Item: "KDD", Value: 1, Time: 2018},
			{User: "author00003", Item: "SIGMOD", Value: 1, Time: 2018},
		},
	}
}

// TestDeltaRoundTripBitIdentical pins the warm-start half of the
// live-dataset contract: a snapshot of the base engine plus an
// appended DLTA section loads — at every worker count — into an engine
// bit-identical to the one Ingest produced in memory; compacting the
// file (full rewrite of the post-ingest engine) preserves that
// identity and the lineage.
func TestDeltaRoundTripBitIdentical(t *testing.T) {
	base, cfg := builtEngine(t)
	fp := ComputeFingerprint(base.Data, cfg)
	b := deltaBatch(1)
	ne, err := base.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "live.snap")
	if err := SaveFile(path, base, fp); err != nil {
		t.Fatal(err)
	}
	head := ChainFingerprint(fp, ne.Lineage())
	if err := AppendDeltaFile(path, b, head); err != nil {
		t.Fatal(err)
	}

	for _, workers := range workerCounts {
		got, pending, err := loadFresh(path, fp, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if pending != 1 {
			t.Fatalf("workers %d: %d pending deltas, want 1", workers, pending)
		}
		requireEnginesIdentical(t, ne, got)
		if got.Version() != 2 || len(got.Lineage()) != 1 || got.Lineage()[0] != b.Digest() {
			t.Fatalf("workers %d: version %d lineage %v", workers, got.Version(), got.Lineage())
		}
	}

	// Compaction: rewrite as a base+DLOG snapshot, no DLTA sections.
	if err := SaveFile(path, ne, fp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dlog, deltas, err := scanLineage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 || len(dlog) != 1 {
		t.Fatalf("compacted file carries %d DLTA and %d DLOG entries, want 0 and 1", len(deltas), len(dlog))
	}
	got, pending, err := loadFresh(path, fp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pending != 0 {
		t.Fatalf("%d pending deltas after compaction", pending)
	}
	requireEnginesIdentical(t, ne, got)
	if got.Version() != 2 || got.Lineage()[0] != b.Digest() {
		t.Fatal("compaction lost the lineage")
	}
}

// TestBuildOrLoadCompactsPastThreshold: a warm load with enough
// pending deltas rewrites the snapshot compacted in place.
func TestBuildOrLoadCompactsPastThreshold(t *testing.T) {
	base, cfg := builtEngine(t)
	fp := ComputeFingerprint(base.Data, cfg)
	b := deltaBatch(1)
	ne, err := base.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live.snap")
	if err := SaveFile(path, base, fp); err != nil {
		t.Fatal(err)
	}
	if err := AppendDeltaFile(path, b, ChainFingerprint(fp, ne.Lineage())); err != nil {
		t.Fatal(err)
	}

	old := CompactThreshold
	CompactThreshold = 1
	defer func() { CompactThreshold = old }()

	got, warm, err := BuildOrLoad(path, base.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("base+delta snapshot did not warm-start")
	}
	requireEnginesIdentical(t, ne, got)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, deltas, err := scanLineage(raw); err != nil || len(deltas) != 0 {
		t.Fatalf("BuildOrLoad left %d deltas uncompacted (err %v)", len(deltas), err)
	}
	// The compacted file still warm-starts from the same spec inputs.
	again, warm, err := BuildOrLoad(path, base.Data, cfg)
	if err != nil || !warm {
		t.Fatalf("compacted snapshot did not warm-start: %v", err)
	}
	requireEnginesIdentical(t, ne, again)
}

// TestDeltaChainStaleness: any divergence between the header chain and
// the sections — a foreign delta, a truncated append, a head that was
// never patched — reads as ErrStale, never as silently wrong data.
func TestDeltaChainStaleness(t *testing.T) {
	base, cfg := builtEngine(t)
	fp := ComputeFingerprint(base.Data, cfg)
	b := deltaBatch(1)
	ne, err := base.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Head never patched (crash between tail write and header write):
	// append with the OLD head still in the header.
	path := filepath.Join(dir, "unpatched.snap")
	if err := SaveFile(path, base, fp); err != nil {
		t.Fatal(err)
	}
	if err := AppendDeltaFile(path, b, fp); err != nil { // header keeps base fp
		t.Fatal(err)
	}
	if _, err := LoadFileFresh(path, fp, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("unpatched header load err = %v, want ErrStale", err)
	}

	// Properly chained file, wrong expected base fingerprint.
	path2 := filepath.Join(dir, "chained.snap")
	if err := SaveFile(path2, base, fp); err != nil {
		t.Fatal(err)
	}
	if err := AppendDeltaFile(path2, b, ChainFingerprint(fp, ne.Lineage())); err != nil {
		t.Fatal(err)
	}
	var wrong Fingerprint
	wrong[0] = 0xFF
	if _, err := LoadFileFresh(path2, wrong, 1); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-base load err = %v, want ErrStale", err)
	}

	// Truncated mid-delta: the file ends inside the DLTA frame.
	raw, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	path3 := filepath.Join(dir, "truncated.snap")
	if err := os.WriteFile(path3, raw[:len(raw)-24], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFileFresh(path3, fp, 1); err == nil {
		t.Fatal("truncated delta file loaded")
	}

	// BuildOrLoad on a stale chain rebuilds instead of failing.
	eng, warm, err := BuildOrLoad(path2, base.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		// path2 is valid for fp — warm is expected; re-check with the
		// unpatched file where the chain cannot verify.
		t.Log("chained snapshot warm-started (expected)")
	}
	eng2, warm2, err := BuildOrLoad(path, base.Data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm2 {
		t.Fatal("stale (unpatched) snapshot warm-started")
	}
	requireEnginesIdentical(t, eng2, base)
	_ = eng
}

// TestAppendDeltaFileValidation: appends refuse files that are not
// well-formed snapshots.
func TestAppendDeltaFileValidation(t *testing.T) {
	dir := t.TempDir()
	b := deltaBatch(1)
	if err := AppendDeltaFile(filepath.Join(dir, "missing.snap"), b, Fingerprint{}); err == nil {
		t.Fatal("appended to a missing file")
	}
	junk := filepath.Join(dir, "junk.snap")
	if err := os.WriteFile(junk, []byte("not a snapshot, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendDeltaFile(junk, b, Fingerprint{}); err == nil {
		t.Fatal("appended to a non-snapshot file")
	}
}

// TestFingerprintNormalizedConfig is the spurious-rebuild pin: configs
// that normalize identically — zero values vs explicit defaults, or
// support fractions that floor to the same absolute threshold — must
// share a fingerprint, and genuinely different effective bounds must
// not.
func TestFingerprintNormalizedConfig(t *testing.T) {
	base, cfg := builtEngine(t)
	d := base.Data

	zero := cfg
	zero.MaxLen, zero.MaxGroups, zero.IndexFraction = 0, 0, 0
	explicit := cfg
	explicit.MaxLen, explicit.MaxGroups, explicit.IndexFraction = 4, 100_000, 0.10
	if ComputeFingerprint(d, zero) != ComputeFingerprint(d, explicit) {
		t.Fatal("zero-value config fingerprints differently from explicit defaults")
	}

	// 400 users: 0.02 and 0.021 both floor to minimum support 8.
	a, bb := cfg, cfg
	a.MinSupportFrac, bb.MinSupportFrac = 0.02, 0.021
	if a.EffectiveMinSupport(d.NumUsers()) != bb.EffectiveMinSupport(d.NumUsers()) {
		t.Fatal("test premise broken: fractions resolve to different thresholds")
	}
	if ComputeFingerprint(d, a) != ComputeFingerprint(d, bb) {
		t.Fatal("equal effective support fingerprints differently")
	}

	c := cfg
	c.MinSupportFrac = 0.05 // 20 users — a different mined space
	if ComputeFingerprint(d, a) == ComputeFingerprint(d, c) {
		t.Fatal("different effective support shares a fingerprint")
	}

	// Workers never enters the address.
	w8 := cfg
	w8.Workers = 8
	if ComputeFingerprint(d, cfg) != ComputeFingerprint(d, w8) {
		t.Fatal("worker count changed the fingerprint")
	}
}
