package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
)

// workerCounts pins the slot-write determinism contract: every load
// must be bit-identical at 1 (sequential), 2, and 8 workers — the dev
// container may have a single core, so this exercises scheduling, not
// speedup.
var workerCounts = []int{1, 2, 8}

var (
	fixOnce sync.Once
	fixData = struct {
		eng *core.Engine
		cfg core.PipelineConfig
		err error
	}{}
)

func testPipelineConfig() core.PipelineConfig {
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	return cfg
}

// builtEngine builds the shared evaluation engine once (immutable).
func builtEngine(t testing.TB) (*core.Engine, core.PipelineConfig) {
	t.Helper()
	fixOnce.Do(func() {
		d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 7})
		if err != nil {
			fixData.err = err
			return
		}
		fixData.cfg = testPipelineConfig()
		fixData.eng, fixData.err = core.Build(d, fixData.cfg)
	})
	if fixData.err != nil {
		t.Fatal(fixData.err)
	}
	return fixData.eng, fixData.cfg
}

// requireEnginesIdentical asserts the full bit-identical contract:
// dataset tables, vocabulary, group space, inverted index, and the
// greedy precomputation (initial display order) must all match.
func requireEnginesIdentical(t *testing.T, want, got *core.Engine) {
	t.Helper()
	// Dataset.
	if got.Data.NumUsers() != want.Data.NumUsers() ||
		got.Data.NumItems() != want.Data.NumItems() ||
		got.Data.NumActions() != want.Data.NumActions() {
		t.Fatalf("dataset shape: %d/%d/%d vs %d/%d/%d",
			got.Data.NumUsers(), got.Data.NumItems(), got.Data.NumActions(),
			want.Data.NumUsers(), want.Data.NumItems(), want.Data.NumActions())
	}
	for i := range want.Data.Users {
		w, g := &want.Data.Users[i], &got.Data.Users[i]
		if w.ID != g.ID {
			t.Fatalf("user %d id %q vs %q", i, g.ID, w.ID)
		}
		for j := range w.Demo {
			if w.Demo[j] != g.Demo[j] {
				t.Fatalf("user %d demo %d: %d vs %d", i, j, g.Demo[j], w.Demo[j])
			}
		}
	}
	for i := range want.Data.Actions {
		if want.Data.Actions[i] != got.Data.Actions[i] {
			t.Fatalf("action %d: %+v vs %+v", i, got.Data.Actions[i], want.Data.Actions[i])
		}
	}
	// Vocabulary.
	if got.Space.Vocab.Len() != want.Space.Vocab.Len() {
		t.Fatalf("vocab %d terms vs %d", got.Space.Vocab.Len(), want.Space.Vocab.Len())
	}
	for id := groups.TermID(0); int(id) < want.Space.Vocab.Len(); id++ {
		if want.Space.Vocab.Term(id) != got.Space.Vocab.Term(id) {
			t.Fatalf("vocab term %d differs", id)
		}
	}
	// Transactions.
	if got.Tx.N != want.Tx.N {
		t.Fatalf("tx N %d vs %d", got.Tx.N, want.Tx.N)
	}
	for u := range want.Tx.PerUser {
		w, g := want.Tx.PerUser[u], got.Tx.PerUser[u]
		if len(w) != len(g) {
			t.Fatalf("user %d carries %d terms vs %d", u, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("user %d term %d: %d vs %d", u, j, g[j], w[j])
			}
		}
	}
	for tid := range want.Tx.Tids {
		if !want.Tx.Tids[tid].Equal(got.Tx.Tids[tid]) {
			t.Fatalf("tid-list %d differs", tid)
		}
	}
	// Group space, including the derived user→group inversion.
	if got.Space.Len() != want.Space.Len() || got.Space.NumUsers != want.Space.NumUsers {
		t.Fatalf("space %d groups / %d users vs %d / %d",
			got.Space.Len(), got.Space.NumUsers, want.Space.Len(), want.Space.NumUsers)
	}
	for gid := 0; gid < want.Space.Len(); gid++ {
		wg, gg := want.Space.Group(gid), got.Space.Group(gid)
		if gg.ID != wg.ID || !wg.Desc.Equal(gg.Desc) {
			t.Fatalf("group %d description differs", gid)
		}
		if !wg.Members.Equal(gg.Members) {
			t.Fatalf("group %d members differ", gid)
		}
	}
	for u := 0; u < want.Space.NumUsers; u++ {
		w, g := want.Space.GroupsOfUser(u), got.Space.GroupsOfUser(u)
		if len(w) != len(g) {
			t.Fatalf("user %d in %d groups vs %d", u, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("user %d group list slot %d: %d vs %d", u, j, g[j], w[j])
			}
		}
	}
	// Inverted index: exact float bits, ids, counts, fraction.
	if got.Index.Fraction() != want.Index.Fraction() {
		t.Fatalf("index fraction %v vs %v", got.Index.Fraction(), want.Index.Fraction())
	}
	for gid := 0; gid < want.Space.Len(); gid++ {
		if got.Index.OverlapCount(gid) != want.Index.OverlapCount(gid) {
			t.Fatalf("group %d overlap count %d vs %d", gid, got.Index.OverlapCount(gid), want.Index.OverlapCount(gid))
		}
		w, g := want.Index.MaterializedList(gid), got.Index.MaterializedList(gid)
		if len(w) != len(g) {
			t.Fatalf("group %d materialized %d entries vs %d", gid, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("group %d neighbor %d: %+v vs %+v", gid, j, g[j], w[j])
			}
		}
	}
	// Miner label and greedy precomputation (initial display order).
	if got.Miner != want.Miner {
		t.Fatalf("miner %q vs %q", got.Miner, want.Miner)
	}
	requireSameSelections(t, want, got)
}

// requireSameSelections drives identical deterministic exploration
// steps (TimeLimit 0) through both engines and requires identical
// greedy selections — ids, scores, float bits.
func requireSameSelections(t *testing.T, want, got *core.Engine) {
	t.Helper()
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 0
	ws, gs := want.NewSession(cfg), got.NewSession(cfg)
	wShown, gShown := ws.Start(), gs.Start()
	if len(wShown) != len(gShown) {
		t.Fatalf("initial display %d groups vs %d", len(gShown), len(wShown))
	}
	for i := range wShown {
		if wShown[i] != gShown[i] {
			t.Fatalf("initial display slot %d: group %d vs %d", i, gShown[i], wShown[i])
		}
	}
	focal := wShown[0]
	for step := 0; step < 3; step++ {
		wSel, err := ws.Explore(focal)
		if err != nil {
			t.Fatal(err)
		}
		gSel, err := gs.Explore(focal)
		if err != nil {
			t.Fatal(err)
		}
		if len(wSel.IDs) != len(gSel.IDs) {
			t.Fatalf("step %d: %d ids vs %d", step, len(gSel.IDs), len(wSel.IDs))
		}
		for i := range wSel.IDs {
			if wSel.IDs[i] != gSel.IDs[i] {
				t.Fatalf("step %d slot %d: group %d vs %d", step, i, gSel.IDs[i], wSel.IDs[i])
			}
		}
		if wSel.Coverage != gSel.Coverage || wSel.Diversity != gSel.Diversity ||
			wSel.Feedback != gSel.Feedback || wSel.Objective != gSel.Objective {
			t.Fatalf("step %d metrics differ: %+v vs %+v", step, gSel, wSel)
		}
		if len(wSel.IDs) == 0 {
			break
		}
		focal = wSel.IDs[0]
	}
}

func TestRoundTripBitIdentical(t *testing.T) {
	eng, cfg := builtEngine(t)
	fp := ComputeFingerprint(eng.Data, cfg)

	var buf bytes.Buffer
	if err := Save(&buf, eng, fp); err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		loaded, hdr, err := Load(bytes.NewReader(buf.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if hdr.Version != Version || hdr.Fingerprint != fp {
			t.Fatalf("workers=%d: header %+v", workers, hdr)
		}
		requireEnginesIdentical(t, eng, loaded)
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	eng, cfg := builtEngine(t)
	fp := ComputeFingerprint(eng.Data, cfg)
	var a, b bytes.Buffer
	if err := Save(&a, eng, fp); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, eng, fp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same engine differ byte-for-byte")
	}
	// And a snapshot of a loaded engine equals the original snapshot:
	// nothing is lost or reordered across a round trip.
	loaded, _, err := Load(bytes.NewReader(a.Bytes()), 2)
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := Save(&c, loaded, fp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("re-saving a loaded engine changes the snapshot bytes")
	}
}

func TestBuildOrLoadWarmStart(t *testing.T) {
	_, cfg := builtEngine(t)
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "authors.snap")

	cold, warm, err := BuildOrLoad(path, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("first BuildOrLoad reported a warm start")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	reloaded, warm, err := BuildOrLoad(path, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("second BuildOrLoad rebuilt instead of loading")
	}
	requireEnginesIdentical(t, cold, reloaded)
}

// TestStaleSnapshotRebuilds: a snapshot written under one configuration
// must never be served for another — the content-address mismatch
// triggers a rebuild whose result matches a fresh Build exactly.
func TestStaleSnapshotRebuilds(t *testing.T) {
	_, cfgA := builtEngine(t)
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "authors.snap")
	if _, _, err := BuildOrLoad(path, d, cfgA); err != nil {
		t.Fatal(err)
	}

	cfgB := cfgA
	cfgB.MinSupportFrac = 0.05 // coarser mining: different group space
	fresh, err := core.Build(d, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	got, warm, err := BuildOrLoad(path, d, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("stale snapshot served as a warm start")
	}
	requireEnginesIdentical(t, fresh, got)

	// The stale file was overwritten: the next start under cfgB is warm.
	if _, warm, err = BuildOrLoad(path, d, cfgB); err != nil || !warm {
		t.Fatalf("rebuilt snapshot not warm on next start: warm=%v err=%v", warm, err)
	}
	// And explicit loading under cfgA now reports staleness.
	if _, err := LoadFileFresh(path, ComputeFingerprint(d, cfgA), 1); err != ErrStale {
		t.Fatalf("LoadFileFresh under the old config: %v, want ErrStale", err)
	}
}

// TestCorruptSnapshotRejectedAndRebuilt: a flipped payload byte must
// fail the section CRC on load, and BuildOrLoad must fall back to a
// rebuild rather than serve the corrupt file.
func TestCorruptSnapshotRejectedAndRebuilt(t *testing.T) {
	eng, cfg := builtEngine(t)
	d := eng.Data
	path := filepath.Join(t.TempDir(), "authors.snap")
	fp := ComputeFingerprint(d, cfg)
	if err := SaveFile(path, eng, fp); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // flip a byte mid-file, past the header
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path, 2); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	got, warm, err := BuildOrLoad(path, d, cfg)
	if got == nil {
		t.Fatalf("rebuild after corruption failed: %v", err)
	}
	// Corruption is not a silent cache miss: the rebuild succeeds but
	// the unusable snapshot is reported.
	if err == nil {
		t.Fatal("corrupt snapshot rebuilt without surfacing a warning")
	}
	if warm {
		t.Fatal("corrupt snapshot reported as warm start")
	}
	requireEnginesIdentical(t, eng, got)

	// The overwritten snapshot serves the next start warm and clean.
	if _, warm, err := BuildOrLoad(path, d, cfg); err != nil || !warm {
		t.Fatalf("snapshot not repaired by rebuild: warm=%v err=%v", warm, err)
	}
}

func TestTruncatedSnapshotRejected(t *testing.T) {
	eng, cfg := builtEngine(t)
	var buf bytes.Buffer
	if err := Save(&buf, eng, ComputeFingerprint(eng.Data, cfg)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 7, headerLen - 1, headerLen + 5, len(raw) / 3, len(raw) - 2} {
		if _, _, err := Load(bytes.NewReader(raw[:cut]), 1); err == nil {
			t.Fatalf("truncation at %d bytes loaded without error", cut)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	eng, cfg := builtEngine(t)
	base := ComputeFingerprint(eng.Data, cfg)

	modified := cfg
	modified.IndexFraction = 0.2
	if ComputeFingerprint(eng.Data, modified) == base {
		t.Fatal("index fraction change not reflected in fingerprint")
	}
	modified = cfg
	modified.MinSupportFrac = 0.01
	if ComputeFingerprint(eng.Data, modified) == base {
		t.Fatal("support change not reflected in fingerprint")
	}
	// Workers must NOT change the address: any count is bit-identical.
	modified = cfg
	modified.Workers = 8
	if ComputeFingerprint(eng.Data, modified) != base {
		t.Fatal("worker count changed the fingerprint")
	}
	// Normalized defaults hash like their explicit values.
	modified = cfg
	modified.MaxLen, modified.MaxGroups, modified.IndexFraction = 0, 0, 0
	explicit := cfg
	explicit.MaxLen, explicit.MaxGroups, explicit.IndexFraction = 4, 100_000, 0.10
	if ComputeFingerprint(eng.Data, modified) != ComputeFingerprint(eng.Data, explicit) {
		t.Fatal("default-normalized config hashes differently from explicit defaults")
	}
	// A custom miner contributes its parameters (FingerprintKey), so
	// two differently bounded instances never alias.
	minerA, minerB := cfg, cfg
	minerA.Miner = lcm.New(mining.Options{MinSupport: 10, MaxLen: 3})
	minerB.Miner = lcm.New(mining.Options{MinSupport: 100, MaxLen: 3})
	if ComputeFingerprint(eng.Data, minerA) == ComputeFingerprint(eng.Data, minerB) {
		t.Fatal("custom miner options not reflected in fingerprint")
	}
	// A different dataset must change the address.
	other, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ComputeFingerprint(other, cfg) == base {
		t.Fatal("dataset change not reflected in fingerprint")
	}
}

// TestSessionReplayAgainstSnapshotEngine pins the PR-1/PR-2 replay
// contract across the new snapshot boundary: a session trail saved
// against the freshly built engine must replay bit-identically against
// a snapshot-loaded engine at every worker count.
func TestSessionReplayAgainstSnapshotEngine(t *testing.T) {
	eng, cfg := builtEngine(t)
	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 0 // deterministic replay

	// Drive a trail on the fresh engine: explore, unlearn, bookmark.
	orig := eng.NewSession(gcfg)
	orig.Start()
	sel, err := orig.Explore(orig.Shown()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) == 0 {
		t.Skip("no candidates on fixture engine")
	}
	if _, err := orig.Explore(sel.IDs[0]); err != nil {
		t.Fatal(err)
	}
	if err := orig.Unlearn("gender", "male"); err != nil {
		t.Fatal(err)
	}
	if err := orig.BookmarkGroup(sel.IDs[0]); err != nil {
		t.Fatal(err)
	}
	var trail bytes.Buffer
	if err := orig.Save(&trail); err != nil {
		t.Fatal(err)
	}

	// Reference: the trail replayed on the *fresh* engine. (Replay is
	// not byte-state restoration — unlearned terms re-apply before the
	// clicks — so the contract is replay-equals-replay, fresh vs
	// snapshot, not replay-equals-live-session.)
	ref := eng.NewSession(gcfg)
	if err := ref.Load(bytes.NewReader(trail.Bytes())); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := Save(&snap, eng, ComputeFingerprint(eng.Data, cfg)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		loaded, _, err := Load(bytes.NewReader(snap.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		replayed := loaded.NewSession(gcfg)
		if err := replayed.Load(bytes.NewReader(trail.Bytes())); err != nil {
			t.Fatalf("workers=%d: replay: %v", workers, err)
		}
		if replayed.Focal() != ref.Focal() {
			t.Fatalf("workers=%d: focal %d vs %d", workers, replayed.Focal(), ref.Focal())
		}
		wShown, gShown := ref.Shown(), replayed.Shown()
		if len(wShown) != len(gShown) {
			t.Fatalf("workers=%d: shown %d vs %d", workers, len(gShown), len(wShown))
		}
		for i := range wShown {
			if wShown[i] != gShown[i] {
				t.Fatalf("workers=%d: shown slot %d: %d vs %d", workers, i, gShown[i], wShown[i])
			}
		}
		if len(replayed.History()) != len(ref.History()) {
			t.Fatalf("workers=%d: history %d vs %d", workers, len(replayed.History()), len(ref.History()))
		}
		if !replayed.Memo().HasGroup(sel.IDs[0]) {
			t.Fatalf("workers=%d: bookmark lost in replay", workers)
		}
		male := loaded.Space.Vocab.Lookup("gender", "male")
		if male >= 0 && replayed.Feedback().TermScore(male) != 0 {
			t.Fatalf("workers=%d: unlearned term re-learned", workers)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	eng, cfg := builtEngine(b)
	var buf bytes.Buffer
	if err := Save(&buf, eng, ComputeFingerprint(eng.Data, cfg)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Load(bytes.NewReader(buf.Bytes()), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestActionLogReplayAgainstSnapshotEngine is the v2 twin of the test
// above: a complete action trail (including focus + brush, which the
// v1 format cannot represent) saved through internal/action replays
// bit-identically against snapshot-loaded engines at every worker
// count.
func TestActionLogReplayAgainstSnapshotEngine(t *testing.T) {
	eng, cfg := builtEngine(t)
	gcfg := greedy.DefaultConfig()
	gcfg.TimeLimit = 0 // deterministic replay

	orig := action.New(eng, gcfg)
	attr := eng.Data.Schema.Attrs[0].Name
	val := eng.Data.Schema.Attrs[0].Values[0]
	for _, a := range []action.Action{
		{Op: action.Start},
		{Op: action.Explore, Group: 0},
		{Op: action.Focus, Group: 0},
		{Op: action.Brush, Attr: attr, Values: []string{val}},
		{Op: action.Unlearn, Field: "gender", Value: "male"},
		{Op: action.BookmarkGroup, Group: 0},
	} {
		if _, err := action.Apply(orig, a); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
	}
	var trail bytes.Buffer
	if err := orig.Save(&trail); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := Save(&snap, eng, ComputeFingerprint(eng.Data, cfg)); err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		loaded, _, err := Load(bytes.NewReader(snap.Bytes()), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		replayed := action.New(loaded, gcfg)
		if err := replayed.Load(bytes.NewReader(trail.Bytes())); err != nil {
			t.Fatalf("workers=%d: replay: %v", workers, err)
		}
		if replayed.Sess.Focal() != orig.Sess.Focal() {
			t.Fatalf("workers=%d: focal %d vs %d", workers, replayed.Sess.Focal(), orig.Sess.Focal())
		}
		wShown, gShown := orig.Sess.Shown(), replayed.Sess.Shown()
		if len(wShown) != len(gShown) {
			t.Fatalf("workers=%d: shown %d vs %d", workers, len(gShown), len(wShown))
		}
		for i := range wShown {
			if wShown[i] != gShown[i] {
				t.Fatalf("workers=%d: shown slot %d: %d vs %d", workers, i, gShown[i], wShown[i])
			}
		}
		if replayed.Focus == nil || replayed.Focus.SelectedCount() != orig.Focus.SelectedCount() {
			t.Fatalf("workers=%d: brushed focus view not restored", workers)
		}
		if !replayed.Sess.Memo().HasGroup(0) {
			t.Fatalf("workers=%d: bookmark lost in replay", workers)
		}
		if replayed.Mutations != orig.Mutations {
			t.Fatalf("workers=%d: mutation counter %d vs %d", workers, replayed.Mutations, orig.Mutations)
		}
	}
}
