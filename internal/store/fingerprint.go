package store

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"vexus/internal/core"
	"vexus/internal/dataset"
	"vexus/internal/mining"
)

// Fingerprint is the snapshot content address: a SHA-256 over the full
// dataset content (schema, users, items, actions) and every
// result-affecting field of the pipeline configuration. Two builds
// share a fingerprint exactly when core.Build would produce
// bit-identical engines for them, so a header match makes a snapshot
// safe to serve and a mismatch forces a rebuild.
//
// PipelineConfig.Workers is deliberately excluded: any worker count
// yields a bit-identical engine (the internal/parallel slot-write
// contract), so a snapshot built with 8 workers warm-starts a 1-worker
// deployment. The configuration is hashed through
// core.PipelineConfig.Normalized — the same defaulting core.Build
// applies — so {MaxLen: 0} and {MaxLen: 4} hash alike, and the
// default-miner support threshold is hashed as the *effective*
// absolute support (EffectiveMinSupport), not the raw fraction: two
// fractions that floor to the same minimum group size on this dataset
// build bit-identical engines and must share the address.
type Fingerprint [sha256.Size]byte

// ComputeFingerprint hashes a dataset + pipeline configuration into
// its content address. For a versioned snapshot this is the *base*
// fingerprint — the head of the delta chain (see ChainFingerprint).
func ComputeFingerprint(d *dataset.Dataset, cfg core.PipelineConfig) Fingerprint {
	cfg = cfg.Normalized()
	h := fpHasher{h: sha256.New()}
	h.str("vexus-snapshot-fp-v2")

	// Schema.
	h.num(len(d.Schema.Attrs))
	for i := range d.Schema.Attrs {
		a := &d.Schema.Attrs[i]
		h.str(a.Name)
		h.num(int(a.Kind))
		h.num(len(a.Values))
		for _, v := range a.Values {
			h.str(v)
		}
		h.num(len(a.Bins))
		for _, b := range a.Bins {
			h.f64(b)
		}
	}
	// Users.
	h.num(d.NumUsers())
	for i := range d.Users {
		h.str(d.Users[i].ID)
		for _, v := range d.Users[i].Demo {
			h.num(v)
		}
	}
	// Items.
	h.num(d.NumItems())
	for i := range d.Items {
		h.str(d.Items[i].ID)
		h.str(d.Items[i].Label)
	}
	// Actions.
	h.num(d.NumActions())
	for i := range d.Actions {
		a := &d.Actions[i]
		h.num(a.User)
		h.num(a.Item)
		h.f64(a.Value)
		h.num(int(a.Time))
	}

	// Pipeline configuration, normalized exactly as core.Build applies
	// defaults so equivalent configs share the address.
	h.str("encode")
	if cfg.Encode.Demographics {
		h.num(1)
	} else {
		h.num(0)
	}
	h.num(cfg.Encode.TopItems)
	h.f64(cfg.Encode.LikeThreshold)
	h.num(cfg.Encode.ActivityLevels)

	h.str("pipeline")
	minerName := ""
	if cfg.Miner != nil {
		// A custom miner contributes its parameters through
		// mining.FingerprintedMiner; one that only has a Name is
		// identified by that alone, so differently parameterized
		// instances of it would alias — implement FingerprintKey on any
		// parameterized miner (every in-tree miner does).
		if fm, ok := cfg.Miner.(mining.FingerprintedMiner); ok {
			minerName = fm.FingerprintKey()
		} else {
			minerName = cfg.Miner.Name()
		}
	} else {
		// Default-miner bounds only matter when the default miner runs.
		// The support fraction enters as the absolute threshold it
		// resolves to on this dataset — the quantity LCM actually sees.
		h.num(cfg.EffectiveMinSupport(d.NumUsers()))
		h.num(cfg.MaxLen)
		h.num(cfg.MaxGroups)
	}
	h.str(minerName)
	h.f64(cfg.IndexFraction)

	var fp Fingerprint
	h.h.Sum(fp[:0])
	return fp
}

// ChainFingerprint folds an ingestion lineage onto a base fingerprint:
// fp_i = SHA-256("vexus-delta-v1" | fp_{i-1} | digest_i). A versioned
// snapshot's header carries the chain head over everything it
// materializes — base build plus every batch in its DLOG and DLTA
// sections — so a loader holding only the spec dataset and config can
// verify the whole file, and any divergence (missing delta, partial
// append, foreign base) reads as stale.
func ChainFingerprint(base Fingerprint, lineage []core.BatchDigest) Fingerprint {
	fp := base
	for _, dg := range lineage {
		h := sha256.New()
		h.Write([]byte("vexus-delta-v1"))
		h.Write(fp[:])
		h.Write(dg[:])
		h.Sum(fp[:0])
	}
	return fp
}

// fpHasher streams primitives into a hash without building the whole
// serialization in memory (datasets can be large).
type fpHasher struct {
	h   hash.Hash
	buf [8]byte
}

func (f *fpHasher) num(v int) {
	binary.LittleEndian.PutUint64(f.buf[:], uint64(int64(v)))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) f64(v float64) {
	binary.LittleEndian.PutUint64(f.buf[:], math.Float64bits(v))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) str(s string) {
	f.num(len(s))
	f.h.Write([]byte(s))
}
