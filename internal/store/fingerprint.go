package store

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"vexus/internal/core"
	"vexus/internal/dataset"
	"vexus/internal/mining"
)

// Fingerprint is the snapshot content address: a SHA-256 over the full
// dataset content (schema, users, items, actions) and every
// result-affecting field of the pipeline configuration. Two builds
// share a fingerprint exactly when core.Build would produce
// bit-identical engines for them, so a header match makes a snapshot
// safe to serve and a mismatch forces a rebuild.
//
// PipelineConfig.Workers is deliberately excluded: any worker count
// yields a bit-identical engine (the internal/parallel slot-write
// contract), so a snapshot built with 8 workers warm-starts a 1-worker
// deployment. Scalar defaults are normalized the way core.Build
// applies them, so {MaxLen: 0} and {MaxLen: 4} hash alike.
type Fingerprint [sha256.Size]byte

// ComputeFingerprint hashes a dataset + pipeline configuration into
// its content address.
func ComputeFingerprint(d *dataset.Dataset, cfg core.PipelineConfig) Fingerprint {
	h := fpHasher{h: sha256.New()}
	h.str("vexus-snapshot-fp-v1")

	// Schema.
	h.num(len(d.Schema.Attrs))
	for i := range d.Schema.Attrs {
		a := &d.Schema.Attrs[i]
		h.str(a.Name)
		h.num(int(a.Kind))
		h.num(len(a.Values))
		for _, v := range a.Values {
			h.str(v)
		}
		h.num(len(a.Bins))
		for _, b := range a.Bins {
			h.f64(b)
		}
	}
	// Users.
	h.num(d.NumUsers())
	for i := range d.Users {
		h.str(d.Users[i].ID)
		for _, v := range d.Users[i].Demo {
			h.num(v)
		}
	}
	// Items.
	h.num(d.NumItems())
	for i := range d.Items {
		h.str(d.Items[i].ID)
		h.str(d.Items[i].Label)
	}
	// Actions.
	h.num(d.NumActions())
	for i := range d.Actions {
		a := &d.Actions[i]
		h.num(a.User)
		h.num(a.Item)
		h.f64(a.Value)
		h.num(int(a.Time))
	}

	// Pipeline configuration, normalized exactly as core.Build applies
	// defaults so equivalent configs share the address.
	h.str("encode")
	if cfg.Encode.Demographics {
		h.num(1)
	} else {
		h.num(0)
	}
	h.num(cfg.Encode.TopItems)
	h.f64(cfg.Encode.LikeThreshold)
	h.num(cfg.Encode.ActivityLevels)

	h.str("pipeline")
	minerName := ""
	if cfg.Miner != nil {
		// A custom miner contributes its parameters through
		// mining.FingerprintedMiner; one that only has a Name is
		// identified by that alone, so differently parameterized
		// instances of it would alias — implement FingerprintKey on any
		// parameterized miner (every in-tree miner does).
		if fm, ok := cfg.Miner.(mining.FingerprintedMiner); ok {
			minerName = fm.FingerprintKey()
		} else {
			minerName = cfg.Miner.Name()
		}
	} else {
		// Default-miner bounds only matter when the default miner runs.
		h.f64(cfg.MinSupportFrac)
		maxLen := cfg.MaxLen
		if maxLen == 0 {
			maxLen = 4
		}
		h.num(maxLen)
		maxGroups := cfg.MaxGroups
		if maxGroups == 0 {
			maxGroups = 100_000
		}
		h.num(maxGroups)
	}
	h.str(minerName)
	frac := cfg.IndexFraction
	if frac == 0 {
		frac = 0.10
	}
	h.f64(frac)

	var fp Fingerprint
	h.h.Sum(fp[:0])
	return fp
}

// fpHasher streams primitives into a hash without building the whole
// serialization in memory (datasets can be large).
type fpHasher struct {
	h   hash.Hash
	buf [8]byte
}

func (f *fpHasher) num(v int) {
	binary.LittleEndian.PutUint64(f.buf[:], uint64(int64(v)))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) f64(v float64) {
	binary.LittleEndian.PutUint64(f.buf[:], math.Float64bits(v))
	f.h.Write(f.buf[:])
}

func (f *fpHasher) str(s string) {
	f.num(len(s))
	f.h.Write([]byte(s))
}
