// Package greedy implements the best-effort selection of the k groups
// shown at every exploration step (§II-B): starting from the group the
// explorer clicked, it returns a set of k ≤ 7 neighbouring groups that
// maximizes a blend of coverage (of the focal group's members) and
// diversity (low redundancy among the returned groups), subject to a
// lower bound on similarity to the focal group, personalized by the
// feedback vector through a weighted similarity, and — critically —
// bounded by a wall-clock time limit. The paper sets the limit to
// 100 ms (the continuity-preserving latency of [6]) and reports ~90%
// diversity and ~85% coverage at that budget; the optimizer here is
// anytime in both phases: the greedy construction falls back to
// similarity-ranked filling if the deadline cuts it short, and any
// remaining budget is spent on local-search swaps that only improve
// the set.
//
// All evaluation is against the ≤ k chosen groups (never the whole
// candidate pool), so one gain evaluation costs O(k) Jaccards and one
// full local-search sweep costs O(k · |pool|) of them — that is what
// lets the candidate pool be "every overlapping group" at interactive
// latencies.
package greedy

import (
	"fmt"
	"math"
	"time"

	"vexus/internal/bitset"
	"vexus/internal/feedback"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/parallel"
)

// Config parameterizes one selection step.
type Config struct {
	// K is the number of groups to return (the paper uses k ≤ 7).
	K int
	// TimeLimit bounds the optimization wall clock. Zero means "full
	// greedy construction, no local search".
	TimeLimit time.Duration
	// MinSimilarity is the lower bound on Jaccard similarity between
	// the focal group and any returned group (the paper's "lower-bound
	// on similarity"). Candidates below it are not considered.
	MinSimilarity float64
	// CoverageWeight and DiversityWeight blend the two §II-B quality
	// objectives; FeedbackWeight adds the profile-alignment term that
	// biases results toward the explorer's interest.
	CoverageWeight  float64
	DiversityWeight float64
	FeedbackWeight  float64
	// CandidatePool caps how many index neighbours are considered
	// (0 = 4096). Larger pools raise attainable quality and cost.
	CandidatePool int
	// Workers bounds the goroutines scoring the candidate pool
	// (0 = runtime.NumCPU()). Scoring parallelizes only above
	// parallelPoolMin candidates; below it the spawn overhead exceeds
	// the work.
	Workers int
}

// DefaultConfig mirrors the paper's operating point: k = 7, 100 ms.
func DefaultConfig() Config {
	return Config{
		K:               7,
		TimeLimit:       100 * time.Millisecond,
		MinSimilarity:   0.01,
		CoverageWeight:  0.5,
		DiversityWeight: 0.5,
		FeedbackWeight:  0.25,
		CandidatePool:   4096,
	}
}

// Selection is the outcome of one optimization step.
type Selection struct {
	// IDs are the chosen group ids, in pick order.
	IDs []int
	// Coverage is the fraction of the focal group's members appearing
	// in at least one chosen group.
	Coverage float64
	// Diversity is 1 − mean pairwise Jaccard among chosen groups.
	Diversity float64
	// Feedback is the mean profile alignment of chosen groups.
	Feedback float64
	// Objective is the blended score the optimizer maximized.
	Objective float64
	// Elapsed is the wall clock actually spent.
	Elapsed time.Duration
	// SwapRounds counts completed local-search improvement rounds.
	SwapRounds int
	// Candidates is the pool size after the similarity filter.
	Candidates int
	// DeadlineHit reports whether the time limit cut optimization
	// short (as opposed to converging to a local optimum).
	DeadlineHit bool
	// FilledBySimilarity counts slots filled by the similarity
	// fallback because the deadline interrupted greedy construction.
	FilledBySimilarity int
}

// Optimizer selects next-step groups over one space + index.
type Optimizer struct {
	space *groups.Space
	ix    *index.Index
}

// New returns an optimizer bound to a space and its similarity index.
func New(space *groups.Space, ix *index.Index) *Optimizer {
	return &Optimizer{space: space, ix: ix}
}

// candidate is one pool entry.
type candidate struct {
	id        int
	sim       float64 // Jaccard to focal
	weighted  float64 // sim · (1 + alignment) — the §II-B weighted similarity
	alignment float64 // feedback alignment
	members   *bitset.Set
}

// SelectNext returns up to cfg.K groups to display after the explorer
// clicks focal. fb may be nil (no personalization). The call returns
// within roughly cfg.TimeLimit plus one candidate scan.
func (o *Optimizer) SelectNext(focal *groups.Group, fb *feedback.Vector, cfg Config) (Selection, error) {
	start := time.Now()
	if cfg.K <= 0 {
		return Selection{}, fmt.Errorf("greedy: K must be positive, got %d", cfg.K)
	}
	if cfg.CandidatePool <= 0 {
		cfg.CandidatePool = 4096
	}
	deadline := start.Add(cfg.TimeLimit)
	unbounded := cfg.TimeLimit <= 0

	cands := o.pool(focal, fb, cfg)
	sel := Selection{Candidates: len(cands)}
	if len(cands) == 0 {
		sel.Diversity = 1
		sel.Elapsed = time.Since(start)
		return sel, nil
	}

	st := newSelState(o.space, focal, cands, cfg)

	// Phase 1: greedy construction with marginal-gain picks. If the
	// deadline lands mid-construction, the remaining slots fill with
	// the best remaining candidates by weighted similarity (the pool
	// is already in that order) so the explorer always receives k
	// groups — "best effort" in the paper's words.
	k := cfg.K
	if k > len(cands) {
		k = len(cands)
	}
	deadlineHit := false
construct:
	for len(st.chosen) < k {
		if !unbounded && len(st.chosen) > 0 && time.Now().After(deadline) {
			deadlineHit = true
			for ci := range cands {
				if len(st.chosen) >= k {
					break
				}
				if !st.inChosen[ci] {
					st.add(ci)
					sel.FilledBySimilarity++
				}
			}
			break construct
		}
		best, bestGain := -1, math.Inf(-1)
		for ci := range cands {
			if st.inChosen[ci] {
				continue
			}
			if gain := st.gain(ci); gain > bestGain {
				best, bestGain = ci, gain
			}
		}
		if best < 0 {
			break
		}
		st.add(best)
	}

	// Phase 2: anytime local search — swap a chosen candidate for an
	// unchosen one whenever that raises the objective; stop at a local
	// optimum or at the deadline.
	if !unbounded && !deadlineHit {
	rounds:
		for {
			improved := false
			for si := 0; si < len(st.chosen); si++ {
				for ci := range cands {
					if st.inChosen[ci] {
						continue
					}
					if time.Now().After(deadline) {
						deadlineHit = true
						break rounds
					}
					if st.trySwap(si, ci) {
						improved = true
					}
				}
			}
			if !improved {
				break
			}
			sel.SwapRounds++
		}
	}

	sel.IDs = make([]int, len(st.chosen))
	for i, ci := range st.chosen {
		sel.IDs[i] = cands[ci].id
	}
	sel.Coverage, sel.Diversity, sel.Feedback = st.objectives()
	sel.Objective = st.score()
	sel.Elapsed = time.Since(start)
	sel.DeadlineHit = deadlineHit
	return sel, nil
}

// parallelPoolMin is the pool size below which candidate scoring runs
// on the calling goroutine: an interactive step over a few dozen
// neighbours finishes faster than the fan-out would even start.
const parallelPoolMin = 512

// pool gathers and filters candidates from the index in descending
// raw-similarity order (the index order); weighted similarity breaks
// into the objective through the feedback term. Scoring each candidate
// reads only the immutable space and profile snapshot and writes only
// its own slot, so large pools shard across cfg.Workers goroutines
// with sequential-identical results.
func (o *Optimizer) pool(focal *groups.Group, fb *feedback.Vector, cfg Config) []candidate {
	nbs := o.ix.Neighbors(focal.ID, cfg.CandidatePool)
	// The index list is sorted by descending similarity: the kept
	// prefix ends at the first entry below the similarity bound.
	keep := len(nbs)
	for i, nb := range nbs {
		if nb.Sim < cfg.MinSimilarity {
			keep = i
			break
		}
	}
	nbs = nbs[:keep]
	// Truncate the profile's user side once per step: per-candidate
	// alignment is then O(topUsers) bit probes instead of a full
	// profile scan for every pool entry.
	var topUsers []feedback.UserMass
	if fb != nil {
		topUsers = fb.TopUsers(128)
	}
	score := func(nb index.Neighbor) candidate {
		g := o.space.Group(nb.ID)
		align := 0.0
		if fb != nil {
			for _, id := range g.Desc {
				align += fb.TermScore(id)
			}
			for _, um := range topUsers {
				if g.Members.Contains(um.User) {
					align += um.Mass
				}
			}
		}
		return candidate{
			id:        nb.ID,
			sim:       nb.Sim,
			weighted:  nb.Sim * (1 + align),
			alignment: align,
			members:   g.Members,
		}
	}
	cands := make([]candidate, len(nbs))
	if workers := parallel.Workers(cfg.Workers, len(nbs)); workers > 1 && len(nbs) >= parallelPoolMin {
		parallel.Range(len(nbs), workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cands[i] = score(nbs[i])
			}
		})
	} else {
		for i, nb := range nbs {
			cands[i] = score(nb)
		}
	}
	// Stable re-rank by weighted similarity so the deadline fallback
	// fills with the *personalized* best, not just the raw-similar.
	if fb != nil && !fb.IsEmpty() {
		sortCandidatesByWeighted(cands)
	}
	return cands
}

func sortCandidatesByWeighted(cands []candidate) {
	// Insertion sort: pools arrive nearly sorted (alignment perturbs
	// raw-similarity order only locally).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

func candLess(a, b candidate) bool {
	if a.weighted != b.weighted {
		return a.weighted > b.weighted
	}
	return a.id < b.id
}

// selState tracks the chosen set. All incremental state is O(k):
// simChosen caches pairwise similarities among chosen groups, covered
// is the union of chosen∩focal.
type selState struct {
	space  *groups.Space
	focal  *groups.Group
	cands  []candidate
	cfg    Config
	chosen []int // candidate indices in pick order
	// simChosen[i][j] = Jaccard(chosen[i], chosen[j]); row/col order
	// follows chosen.
	simChosen [][]float64
	inChosen  []bool
	covered   *bitset.Set // union of chosen ∩ focal
	scratch   *bitset.Set // reusable intersection buffer
	sumPair   float64     // Σ pairwise sim among chosen
	sumAlign  float64
	focalN    int
}

func newSelState(space *groups.Space, focal *groups.Group, cands []candidate, cfg Config) *selState {
	return &selState{
		space:    space,
		focal:    focal,
		cands:    cands,
		cfg:      cfg,
		inChosen: make([]bool, len(cands)),
		covered:  bitset.New(focal.Members.Len()),
		scratch:  bitset.New(focal.Members.Len()),
		focalN:   focal.Size(),
	}
}

// objectives returns (coverage, diversity, feedback) of the chosen set.
func (st *selState) objectives() (cov, div, fbk float64) {
	if st.focalN > 0 {
		cov = float64(st.covered.Count()) / float64(st.focalN)
	} else {
		cov = 1
	}
	k := len(st.chosen)
	if k >= 2 {
		div = 1 - st.sumPair/float64(k*(k-1)/2)
	} else {
		div = 1
	}
	if k > 0 {
		fbk = st.sumAlign / float64(k)
	}
	return cov, div, fbk
}

func (st *selState) score() float64 {
	cov, div, fbk := st.objectives()
	return st.cfg.CoverageWeight*cov + st.cfg.DiversityWeight*div + st.cfg.FeedbackWeight*fbk
}

// gain returns the objective delta of adding candidate ci: one 3-way
// popcount for coverage plus ≤ k Jaccards for diversity.
func (st *selState) gain(ci int) float64 {
	before := st.score()
	c := &st.cands[ci]
	newCovered := st.covered.Count() + c.members.IntersectDifferenceCount(st.focal.Members, st.covered)
	cov := 1.0
	if st.focalN > 0 {
		cov = float64(newCovered) / float64(st.focalN)
	}
	k := len(st.chosen) + 1
	sum := st.sumPair
	for _, cj := range st.chosen {
		sum += c.members.Jaccard(st.cands[cj].members)
	}
	div := 1.0
	if k >= 2 {
		div = 1 - sum/float64(k*(k-1)/2)
	}
	fbk := (st.sumAlign + c.alignment) / float64(k)
	after := st.cfg.CoverageWeight*cov + st.cfg.DiversityWeight*div + st.cfg.FeedbackWeight*fbk
	return after - before
}

// add commits candidate ci to the chosen set.
func (st *selState) add(ci int) {
	c := &st.cands[ci]
	row := make([]float64, len(st.chosen))
	for i, cj := range st.chosen {
		s := c.members.Jaccard(st.cands[cj].members)
		row[i] = s
		st.simChosen[i] = append(st.simChosen[i], s)
		st.sumPair += s
	}
	st.simChosen = append(st.simChosen, append(row, 0))
	st.sumAlign += c.alignment
	st.chosen = append(st.chosen, ci)
	st.inChosen[ci] = true
	// covered ∪= (c ∩ focal), via the scratch buffer.
	st.scratch.Copy(c.members)
	st.scratch.InPlaceIntersect(st.focal.Members)
	st.covered.InPlaceUnion(st.scratch)
}

// removeAt drops chosen[si], returning the removed candidate index.
func (st *selState) removeAt(si int) int {
	ci := st.chosen[si]
	for i := range st.chosen {
		if i == si {
			continue
		}
		st.sumPair -= st.simChosen[si][i]
	}
	st.chosen = append(st.chosen[:si], st.chosen[si+1:]...)
	st.simChosen = append(st.simChosen[:si], st.simChosen[si+1:]...)
	for i := range st.simChosen {
		st.simChosen[i] = append(st.simChosen[i][:si], st.simChosen[i][si+1:]...)
	}
	st.sumAlign -= st.cands[ci].alignment
	st.inChosen[ci] = false
	// Recompute covered from the remaining ≤ k−1 groups.
	st.covered.Clear()
	for _, cj := range st.chosen {
		st.scratch.Copy(st.cands[cj].members)
		st.scratch.InPlaceIntersect(st.focal.Members)
		st.covered.InPlaceUnion(st.scratch)
	}
	return ci
}

// trySwap replaces chosen[si] with candidate ci if it improves the
// score; reports whether the swap was applied. The evaluation path
// costs O(k) Jaccards + O(k) bitset unions.
func (st *selState) trySwap(si, ci int) bool {
	before := st.score()
	old := st.removeAt(si)
	gain := st.gain(ci) // score(chosen∪ci) − score(chosen)
	// score(chosen) changed after removal; compare absolute scores.
	if st.score()+gain > before+1e-12 {
		st.add(ci)
		// Keep pick order stable: move the appended entry to slot si.
		st.moveLastTo(si)
		return true
	}
	st.add(old)
	st.moveLastTo(si)
	return false
}

// moveLastTo relocates the most recently added chosen entry (and its
// similarity rows) to position si, preserving the order of the rest.
func (st *selState) moveLastTo(si int) {
	last := len(st.chosen) - 1
	if si >= last {
		return
	}
	ci := st.chosen[last]
	copy(st.chosen[si+1:], st.chosen[si:last])
	st.chosen[si] = ci

	row := st.simChosen[last]
	copy(st.simChosen[si+1:], st.simChosen[si:last])
	st.simChosen[si] = row
	for i := range st.simChosen {
		r := st.simChosen[i]
		v := r[last]
		copy(r[si+1:], r[si:last])
		r[si] = v
	}
}
