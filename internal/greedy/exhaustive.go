package greedy

import (
	"fmt"
	"math"
	"time"
)

// ExhaustiveSelect enumerates every k-subset of the same candidate
// pool SelectNext would use and returns the true optimum of the
// blended objective (without feedback personalization). It is the
// ground truth against which E1 measures the anytime optimizer's
// quality at each time limit. It errors when C(pool, k) exceeds
// maxEvals (default 5,000,000 when ≤ 0) to guard against combinatorial
// blow-up.
func (o *Optimizer) ExhaustiveSelect(focalID int, cfg Config, maxEvals int) (Selection, error) {
	start := time.Now()
	if cfg.K <= 0 {
		return Selection{}, fmt.Errorf("greedy: K must be positive, got %d", cfg.K)
	}
	if cfg.CandidatePool <= 0 {
		cfg.CandidatePool = 512
	}
	if maxEvals <= 0 {
		maxEvals = 5_000_000
	}
	focal := o.space.Group(focalID)
	cands := o.pool(focal, nil, cfg)
	if len(cands) == 0 {
		return Selection{Diversity: 1, Elapsed: time.Since(start)}, nil
	}
	k := cfg.K
	if k > len(cands) {
		k = len(cands)
	}
	if c := binomial(len(cands), k); c < 0 || c > maxEvals {
		return Selection{}, fmt.Errorf("greedy: C(%d,%d) exceeds budget %d", len(cands), k, maxEvals)
	}

	best := Selection{Objective: math.Inf(-1)}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		st := newSelState(o.space, focal, cands, cfg)
		for _, ci := range idx {
			st.add(ci)
		}
		if sc := st.score(); sc > best.Objective {
			cov, div, fbk := st.objectives()
			ids := make([]int, k)
			for i, ci := range idx {
				ids[i] = cands[ci].id
			}
			best = Selection{
				IDs: ids, Coverage: cov, Diversity: div, Feedback: fbk,
				Objective: sc, Candidates: len(cands),
			}
		}
		if !nextCombination(idx, len(cands)) {
			break
		}
	}
	best.Elapsed = time.Since(start)
	return best, nil
}

// nextCombination advances idx to the next k-combination of [0, n);
// it returns false after the last one.
func nextCombination(idx []int, n int) bool {
	k := len(idx)
	for i := k - 1; i >= 0; i-- {
		if idx[i] < n-k+i {
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
			return true
		}
	}
	return false
}

// binomial returns C(n, k), or -1 on overflow.
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		if c > (1<<62)/(n-k+i) {
			return -1
		}
		c = c * (n - k + i) / i
	}
	return c
}
