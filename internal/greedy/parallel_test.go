package greedy

import (
	"reflect"
	"testing"

	"vexus/internal/feedback"
)

// TestPoolParallelEquivalence: candidate scoring sharded across
// workers must leave SelectNext deterministic — same ids, same
// objective — as the 1-worker path, with and without a feedback
// profile. The space is large enough (700 groups, near-full pools)
// that big focal groups cross parallelPoolMin.
func TestPoolParallelEquivalence(t *testing.T) {
	s, ix := fixture(t, 31, 120, 700)
	fb := feedback.New()
	fb.Reinforce(s.Group(3), 1)
	fb.Reinforce(s.Group(11), 1)
	for _, profile := range []*feedback.Vector{nil, fb} {
		for _, focal := range []int{0, 5, 42} {
			base := DefaultConfig()
			base.TimeLimit = 0 // pure construction: fully deterministic
			base.MinSimilarity = 0
			base.Workers = 1
			want, err := New(s, ix).SelectNext(s.Group(focal), profile, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				cfg := base
				cfg.Workers = workers
				got, err := New(s, ix).SelectNext(s.Group(focal), profile, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.IDs, want.IDs) {
					t.Fatalf("focal=%d workers=%d: ids %v != %v", focal, workers, got.IDs, want.IDs)
				}
				if got.Objective != want.Objective || got.Candidates != want.Candidates {
					t.Fatalf("focal=%d workers=%d: objective/candidates %v/%d != %v/%d",
						focal, workers, got.Objective, got.Candidates, want.Objective, want.Candidates)
				}
			}
		}
	}
}
