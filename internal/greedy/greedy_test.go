package greedy

import (
	"testing"
	"time"

	"vexus/internal/bitset"
	"vexus/internal/feedback"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/rng"
)

// fixture builds a space of n random groups over u users plus its index.
func fixture(t testing.TB, seed uint64, u, n int) (*groups.Space, *index.Index) {
	t.Helper()
	r := rng.New(seed)
	v := groups.NewVocab()
	gs := make([]*groups.Group, 0, n)
	for i := 0; i < n; i++ {
		id := v.Intern("t", string(rune('A'+i%26))+string(rune('a'+i/26)))
		members := bitset.New(u)
		size := 2 + r.Intn(u/3)
		for _, m := range r.SampleWithoutReplacement(u, size) {
			members.Add(m)
		}
		gs = append(gs, &groups.Group{Desc: groups.NewDescription(id), Members: members})
	}
	s, err := groups.NewSpace(u, v, gs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix
}

func TestSelectNextBasic(t *testing.T) {
	s, ix := fixture(t, 1, 60, 30)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.K = 5
	sel, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) != 5 {
		t.Fatalf("selected %d groups, want 5", len(sel.IDs))
	}
	seen := map[int]bool{}
	for _, id := range sel.IDs {
		if id == 0 {
			t.Fatal("focal group selected as its own neighbor")
		}
		if seen[id] {
			t.Fatal("duplicate selection")
		}
		seen[id] = true
	}
	if sel.Coverage < 0 || sel.Coverage > 1 || sel.Diversity < 0 || sel.Diversity > 1 {
		t.Fatalf("objectives out of range: %+v", sel)
	}
	if sel.Objective <= 0 {
		t.Fatalf("objective = %v", sel.Objective)
	}
}

func TestSelectNextValidation(t *testing.T) {
	s, ix := fixture(t, 2, 20, 8)
	o := New(s, ix)
	if _, err := o.SelectNext(s.Group(0), nil, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestSelectNextNoCandidates(t *testing.T) {
	// Two disjoint groups: no neighbor passes the similarity bound.
	v := groups.NewVocab()
	a := v.Intern("t", "a")
	b := v.Intern("t", "b")
	gs := []*groups.Group{
		{Desc: groups.NewDescription(a), Members: bitset.FromIndices(10, []int{0, 1})},
		{Desc: groups.NewDescription(b), Members: bitset.FromIndices(10, []int{5, 6})},
	}
	s, err := groups.NewSpace(10, v, gs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(s, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := New(s, ix).SelectNext(s.Group(0), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) != 0 || sel.Candidates != 0 {
		t.Fatalf("selection from isolated group: %+v", sel)
	}
}

func TestMinSimilarityBound(t *testing.T) {
	s, ix := fixture(t, 3, 60, 30)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.MinSimilarity = 0.3
	sel, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	focal := s.Group(0)
	for _, id := range sel.IDs {
		if sim := focal.Jaccard(s.Group(id)); sim < 0.3 {
			t.Fatalf("group %d below similarity bound: %v", id, sim)
		}
	}
}

func TestFewerCandidatesThanK(t *testing.T) {
	s, ix := fixture(t, 4, 30, 5)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.K = 100
	sel, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) == 0 || len(sel.IDs) > 4 {
		t.Fatalf("selected %d of 4 possible", len(sel.IDs))
	}
}

func TestZeroBudgetStillReturnsK(t *testing.T) {
	// P3 safety: the greedy construction always completes, so even a
	// zero time budget yields a full answer (just unpolished).
	s, ix := fixture(t, 5, 80, 40)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.TimeLimit = 0
	sel, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) != cfg.K {
		t.Fatalf("selected %d, want %d", len(sel.IDs), cfg.K)
	}
	if sel.SwapRounds != 0 {
		t.Fatalf("local search ran with zero budget: %d rounds", sel.SwapRounds)
	}
}

func TestMoreBudgetNeverWorse(t *testing.T) {
	// The anytime property: the objective is non-decreasing in budget
	// (same pool, deterministic greedy start, improving swaps only).
	s, ix := fixture(t, 6, 120, 60)
	o := New(s, ix)
	base := DefaultConfig()
	base.K = 6
	budgets := []time.Duration{0, time.Millisecond, 50 * time.Millisecond, 500 * time.Millisecond}
	prev := -1.0
	for _, b := range budgets {
		cfg := base
		cfg.TimeLimit = b
		sel, err := o.SelectNext(s.Group(0), nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Objective < prev-1e-9 {
			t.Fatalf("budget %v objective %v < previous %v", b, sel.Objective, prev)
		}
		prev = sel.Objective
	}
}

func TestGreedyNearExhaustive(t *testing.T) {
	// On a small pool the polished greedy answer must come close to
	// the exhaustive optimum (the E1 measurement in miniature).
	s, ix := fixture(t, 7, 50, 14)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.K = 4
	cfg.FeedbackWeight = 0 // exhaustive runs without feedback
	cfg.TimeLimit = 2 * time.Second

	opt, err := o.ExhaustiveSelect(0, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objective < 0.9*opt.Objective {
		t.Fatalf("greedy %v << exhaustive %v", got.Objective, opt.Objective)
	}
}

func TestExhaustiveBudgetGuard(t *testing.T) {
	s, ix := fixture(t, 8, 100, 50)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.K = 10
	if _, err := o.ExhaustiveSelect(0, cfg, 1000); err == nil {
		t.Fatal("combinatorial blow-up not caught")
	}
}

func TestFeedbackBiasesSelection(t *testing.T) {
	s, ix := fixture(t, 9, 100, 40)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.K = 3
	cfg.FeedbackWeight = 5 // exaggerate personalization for the test

	neutral, err := o.SelectNext(s.Group(0), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(neutral.IDs) == 0 {
		t.Skip("no candidates")
	}
	// Reinforce a candidate that the neutral run did NOT pick.
	nbs := ix.Neighbors(0, 30)
	var target int = -1
	chosen := map[int]bool{}
	for _, id := range neutral.IDs {
		chosen[id] = true
	}
	for _, nb := range nbs {
		if !chosen[nb.ID] {
			target = nb.ID
			break
		}
	}
	if target < 0 {
		t.Skip("all candidates already selected")
	}
	fb := feedback.New()
	for i := 0; i < 5; i++ {
		fb.Reinforce(s.Group(target), 1)
	}
	biased, err := o.SelectNext(s.Group(0), fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range biased.IDs {
		if id == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("reinforced group %d not selected: %v (feedback %v)",
			target, biased.IDs, biased.Feedback)
	}
}

func TestDeterminism(t *testing.T) {
	s, ix := fixture(t, 10, 80, 40)
	o := New(s, ix)
	cfg := DefaultConfig()
	cfg.TimeLimit = 0 // greedy phase only: strictly deterministic
	a, err := o.SelectNext(s.Group(3), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.SelectNext(s.Group(3), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.IDs) != len(b.IDs) {
		t.Fatal("non-deterministic size")
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			t.Fatalf("non-deterministic pick %d: %d vs %d", i, a.IDs[i], b.IDs[i])
		}
	}
}

func TestNextCombination(t *testing.T) {
	idx := []int{0, 1}
	var all [][2]int
	for {
		all = append(all, [2]int{idx[0], idx[1]})
		if !nextCombination(idx, 4) {
			break
		}
	}
	if len(all) != 6 { // C(4,2)
		t.Fatalf("enumerated %d combinations: %v", len(all), all)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{4, 2, 6}, {10, 3, 120}, {5, 0, 1}, {5, 5, 1}, {3, 5, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if binomial(300, 150) != -1 {
		t.Fatal("overflow not detected")
	}
}
