// Package crossfilter re-implements the incremental coordinated-views
// engine the paper builds its STATS module on (§II-B
// "Interoperability"): multiple dimensions over one record set, where
// brushing (filtering) one dimension instantaneously updates every
// other dimension's histogram. Efficiency comes from incremental
// maintenance — a brush touches only the records whose bins changed
// state, not the whole dataset — which is how the paper satisfies the
// efficiency principle P3 at the user level.
//
// Semantics follow the original crossfilter library: a dimension's own
// histogram ignores that dimension's filter (so the brushed histogram
// still shows the full distribution), while every other dimension sees
// only records passing all filters.
//
// The core state is one exclusion bitmask per record (bit d set ⇔
// dimension d's filter excludes the record). A record is visible when
// its mask is zero; it counts in dimension d's histogram when its mask
// is zero or exactly bit d.
package crossfilter

import "fmt"

// MaxDimensions bounds the number of dimensions (bitmask width).
const MaxDimensions = 64

// Engine owns the records and their dimensions.
type Engine struct {
	n       int
	dims    []*Dimension
	mask    []uint64 // exclusion bitmask per record
	visible int
}

// New returns an engine over n records (identified as 0..n-1).
func New(n int) *Engine {
	if n < 0 {
		panic("crossfilter: negative record count")
	}
	return &Engine{n: n, mask: make([]uint64, n), visible: n}
}

// NumRecords returns the record count.
func (e *Engine) NumRecords() int { return e.n }

// VisibleCount returns the number of records passing every filter.
func (e *Engine) VisibleCount() int { return e.visible }

// Visible returns the ids of records passing every filter, ascending.
func (e *Engine) Visible() []int {
	out := make([]int, 0, e.visible)
	for r, m := range e.mask {
		if m == 0 {
			out = append(out, r)
		}
	}
	return out
}

// IsVisible reports whether record r passes every filter.
func (e *Engine) IsVisible(r int) bool {
	return r >= 0 && r < e.n && e.mask[r] == 0
}

// Dimension is one filterable axis with an ordinal domain [0, Card).
type Dimension struct {
	eng    *Engine
	bit    uint64
	idx    int
	name   string
	labels []string
	values []int     // record -> bin
	byBin  [][]int32 // bin -> records
	kept   []bool    // bin -> passes this dimension's filter
	active bool      // any filter applied?
	hist   []int     // bin -> count of records with mask ∈ {0, own bit}
}

// AddDimension registers a dimension. values[r] must be in [0, card)
// for every record; labels may be nil or one per bin. The returned
// Dimension stays owned by the engine.
func (e *Engine) AddDimension(name string, values []int, card int, labels []string) (*Dimension, error) {
	if len(e.dims) >= MaxDimensions {
		return nil, fmt.Errorf("crossfilter: more than %d dimensions", MaxDimensions)
	}
	if len(values) != e.n {
		return nil, fmt.Errorf("crossfilter: dimension %q has %d values for %d records", name, len(values), e.n)
	}
	if card <= 0 {
		return nil, fmt.Errorf("crossfilter: dimension %q has non-positive cardinality", name)
	}
	if labels != nil && len(labels) != card {
		return nil, fmt.Errorf("crossfilter: dimension %q has %d labels for %d bins", name, len(labels), card)
	}
	d := &Dimension{
		eng:    e,
		bit:    1 << uint(len(e.dims)),
		idx:    len(e.dims),
		name:   name,
		labels: labels,
		values: append([]int(nil), values...),
		byBin:  make([][]int32, card),
		kept:   make([]bool, card),
		hist:   make([]int, card),
	}
	for r, v := range values {
		if v < 0 || v >= card {
			return nil, fmt.Errorf("crossfilter: dimension %q record %d has bin %d outside [0,%d)", name, r, v, card)
		}
		d.byBin[v] = append(d.byBin[v], int32(r))
	}
	for b := range d.kept {
		d.kept[b] = true
	}
	// Adding a dimension never changes visibility (new filter is
	// pass-all), but its histogram must count currently-eligible
	// records: mask 0 (new dim's bit cannot be set yet).
	for r, v := range values {
		if e.mask[r] == 0 {
			d.hist[v]++
		}
	}
	e.dims = append(e.dims, d)
	return d, nil
}

// Name returns the dimension name.
func (d *Dimension) Name() string { return d.name }

// Card returns the number of bins.
func (d *Dimension) Card() int { return len(d.byBin) }

// Labels returns the bin labels (may be nil).
func (d *Dimension) Labels() []string { return d.labels }

// Value returns record r's bin on this dimension.
func (d *Dimension) Value(r int) int { return d.values[r] }

// Histogram returns this dimension's bin counts under every *other*
// dimension's filter (crossfilter semantics). The returned slice is a
// copy.
func (d *Dimension) Histogram() []int {
	return append([]int(nil), d.hist...)
}

// FilterBins keeps only the given bins; everything else is excluded.
// An empty call excludes every record on this dimension.
func (d *Dimension) FilterBins(bins ...int) {
	keep := make([]bool, len(d.byBin))
	for _, b := range bins {
		if b >= 0 && b < len(keep) {
			keep[b] = true
		}
	}
	d.apply(keep, true)
}

// FilterRange keeps bins in [lo, hi] inclusive — the brush gesture on
// an ordinal histogram.
func (d *Dimension) FilterRange(lo, hi int) {
	keep := make([]bool, len(d.byBin))
	for b := lo; b <= hi && b < len(keep); b++ {
		if b >= 0 {
			keep[b] = true
		}
	}
	d.apply(keep, true)
}

// ClearFilter removes this dimension's filter.
func (d *Dimension) ClearFilter() {
	keep := make([]bool, len(d.byBin))
	for b := range keep {
		keep[b] = true
	}
	d.apply(keep, false)
}

// HasFilter reports whether a filter is active on this dimension.
func (d *Dimension) HasFilter() bool { return d.active }

// apply diffs the new keep set against the old and toggles exactly the
// records in changed bins — the O(affected records) incremental update.
func (d *Dimension) apply(keep []bool, active bool) {
	for b := range keep {
		switch {
		case d.kept[b] && !keep[b]:
			d.excludeBin(b)
		case !d.kept[b] && keep[b]:
			d.includeBin(b)
		}
		d.kept[b] = keep[b]
	}
	d.active = active
}

// excludeBin marks every record of bin b as excluded by d.
func (d *Dimension) excludeBin(b int) {
	e := d.eng
	for _, r32 := range d.byBin[b] {
		r := int(r32)
		m := e.mask[r]
		if m&d.bit != 0 {
			continue // already excluded by this dimension
		}
		// Histogram transitions (see package comment): a record leaves
		// dimension x's histogram iff its mask was 0 (leaves all but
		// d's own — own stays because both mask and own-bit rise) or
		// exactly bit(x) for a single x ≠ d.
		switch {
		case m == 0:
			e.visible--
			for _, x := range e.dims {
				if x != d {
					x.hist[x.values[r]]--
				}
			}
		case isPow2(m):
			x := e.dimByBit(m)
			if x != d {
				x.hist[x.values[r]]--
			}
		}
		e.mask[r] = m | d.bit
	}
}

// includeBin re-admits every record of bin b on dimension d.
func (d *Dimension) includeBin(b int) {
	e := d.eng
	for _, r32 := range d.byBin[b] {
		r := int(r32)
		m := e.mask[r]
		if m&d.bit == 0 {
			continue
		}
		m &^= d.bit
		e.mask[r] = m
		switch {
		case m == 0:
			e.visible++
			for _, x := range e.dims {
				if x != d {
					x.hist[x.values[r]]++
				}
			}
		case isPow2(m):
			x := e.dimByBit(m)
			if x != d {
				x.hist[x.values[r]]++
			}
		}
	}
}

func isPow2(m uint64) bool { return m != 0 && m&(m-1) == 0 }

func (e *Engine) dimByBit(bit uint64) *Dimension {
	for _, d := range e.dims {
		if d.bit == bit {
			return d
		}
	}
	panic("crossfilter: unknown dimension bit")
}

// Dimensions returns the registered dimensions in creation order.
func (e *Engine) Dimensions() []*Dimension { return e.dims }
