package crossfilter

import (
	"testing"
	"testing/quick"

	"vexus/internal/rng"
)

// fixture: 8 records over gender (2 bins) and age (3 bins).
//
//	r: 0 1 2 3 4 5 6 7
//	g: 0 0 0 0 1 1 1 1
//	a: 0 1 2 0 1 2 0 1
func fixture(t *testing.T) (*Engine, *Dimension, *Dimension) {
	t.Helper()
	e := New(8)
	g, err := e.AddDimension("gender", []int{0, 0, 0, 0, 1, 1, 1, 1}, 2, []string{"f", "m"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.AddDimension("age", []int{0, 1, 2, 0, 1, 2, 0, 1}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, g, a
}

func TestUnfilteredHistograms(t *testing.T) {
	e, g, a := fixture(t)
	if e.VisibleCount() != 8 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	if h := g.Histogram(); h[0] != 4 || h[1] != 4 {
		t.Fatalf("gender hist = %v", h)
	}
	if h := a.Histogram(); h[0] != 3 || h[1] != 3 || h[2] != 2 {
		t.Fatalf("age hist = %v", h)
	}
}

func TestBrushUpdatesOtherDimensions(t *testing.T) {
	e, g, a := fixture(t)
	// Brush "female" (gender bin 0): records 0..3.
	g.FilterBins(0)
	if e.VisibleCount() != 4 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	// Age histogram now sees only records 0..3: ages 0,1,2,0.
	if h := a.Histogram(); h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("age hist = %v", h)
	}
	// Own histogram ignores own filter (crossfilter semantics).
	if h := g.Histogram(); h[0] != 4 || h[1] != 4 {
		t.Fatalf("gender hist under own filter = %v", h)
	}
}

func TestTwoFilters(t *testing.T) {
	e, g, a := fixture(t)
	g.FilterBins(0)            // records 0..3
	a.FilterRange(0, 0)        // ages == 0: records 0,3,6
	if e.VisibleCount() != 2 { // 0 and 3
		t.Fatalf("visible = %d: %v", e.VisibleCount(), e.Visible())
	}
	vis := e.Visible()
	if len(vis) != 2 || vis[0] != 0 || vis[1] != 3 {
		t.Fatalf("visible = %v", vis)
	}
	// Gender histogram respects the age filter only: records 0,3,6 →
	// f=2, m=1.
	if h := g.Histogram(); h[0] != 2 || h[1] != 1 {
		t.Fatalf("gender hist = %v", h)
	}
	// Age histogram respects the gender filter only: records 0..3.
	if h := a.Histogram(); h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("age hist = %v", h)
	}
}

func TestClearFilterRestores(t *testing.T) {
	e, g, a := fixture(t)
	g.FilterBins(1)
	a.FilterBins(2)
	g.ClearFilter()
	a.ClearFilter()
	if e.VisibleCount() != 8 {
		t.Fatalf("visible after clear = %d", e.VisibleCount())
	}
	if h := a.Histogram(); h[0] != 3 || h[1] != 3 || h[2] != 2 {
		t.Fatalf("age hist after clear = %v", h)
	}
	if g.HasFilter() || a.HasFilter() {
		t.Fatal("HasFilter after clear")
	}
}

func TestEmptyFilterExcludesAll(t *testing.T) {
	e, g, _ := fixture(t)
	g.FilterBins() // nothing kept
	if e.VisibleCount() != 0 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	g.ClearFilter()
	if e.VisibleCount() != 8 {
		t.Fatalf("visible after clear = %d", e.VisibleCount())
	}
}

func TestRefineFilterIncrementally(t *testing.T) {
	e, g, a := fixture(t)
	a.FilterBins(0, 1) // drop age 2
	if e.VisibleCount() != 6 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	a.FilterBins(0) // tighten
	if e.VisibleCount() != 3 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	a.FilterBins(0, 1, 2) // widen to everything (still "active")
	if e.VisibleCount() != 8 {
		t.Fatalf("visible = %d", e.VisibleCount())
	}
	if !a.HasFilter() {
		t.Fatal("widened filter should still be active")
	}
	_ = g
}

func TestIsVisible(t *testing.T) {
	e, g, _ := fixture(t)
	g.FilterBins(0)
	if !e.IsVisible(0) || e.IsVisible(4) {
		t.Fatal("IsVisible wrong")
	}
	if e.IsVisible(-1) || e.IsVisible(99) {
		t.Fatal("out of range should be invisible")
	}
}

func TestValidation(t *testing.T) {
	e := New(3)
	if _, err := e.AddDimension("x", []int{0, 1}, 2, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := e.AddDimension("x", []int{0, 1, 5}, 2, nil); err == nil {
		t.Fatal("out-of-range bin accepted")
	}
	if _, err := e.AddDimension("x", []int{0, 0, 0}, 0, nil); err == nil {
		t.Fatal("zero cardinality accepted")
	}
	if _, err := e.AddDimension("x", []int{0, 0, 0}, 2, []string{"only-one"}); err == nil {
		t.Fatal("label mismatch accepted")
	}
}

func TestAddDimensionAfterFilter(t *testing.T) {
	e := New(4)
	g, err := e.AddDimension("g", []int{0, 0, 1, 1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.FilterBins(0)
	// A dimension added now must see only the 2 visible records.
	a, err := e.AddDimension("a", []int{0, 1, 0, 1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h := a.Histogram(); h[0] != 1 || h[1] != 1 {
		t.Fatalf("late dimension hist = %v", h)
	}
}

func TestTooManyDimensions(t *testing.T) {
	e := New(1)
	for i := 0; i < MaxDimensions; i++ {
		if _, err := e.AddDimension("d", []int{0}, 1, nil); err != nil {
			t.Fatalf("dim %d rejected: %v", i, err)
		}
	}
	if _, err := e.AddDimension("overflow", []int{0}, 1, nil); err == nil {
		t.Fatal("65th dimension accepted")
	}
}

// TestPropMatchesNaiveRecomputation drives random filter sequences and
// checks every histogram and the visible set against a from-scratch
// recomputation — the central correctness property of the incremental
// engine.
func TestPropMatchesNaiveRecomputation(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		n := 30 + r.Intn(40)
		nDims := 2 + r.Intn(3)
		cards := make([]int, nDims)
		values := make([][]int, nDims)
		for d := range values {
			cards[d] = 2 + r.Intn(4)
			values[d] = make([]int, n)
			for i := range values[d] {
				values[d][i] = r.Intn(cards[d])
			}
		}
		e := New(n)
		dims := make([]*Dimension, nDims)
		for d := range dims {
			var err error
			dims[d], err = e.AddDimension("d", values[d], cards[d], nil)
			if err != nil {
				return false
			}
		}
		keeps := make([][]bool, nDims)
		for d := range keeps {
			keeps[d] = make([]bool, cards[d])
			for b := range keeps[d] {
				keeps[d][b] = true
			}
		}
		for step := 0; step < 25; step++ {
			d := r.Intn(nDims)
			switch r.Intn(3) {
			case 0:
				var bins []int
				for b := 0; b < cards[d]; b++ {
					if r.Bool(0.5) {
						bins = append(bins, b)
						keeps[d][b] = true
					} else {
						keeps[d][b] = false
					}
				}
				dims[d].FilterBins(bins...)
			case 1:
				lo := r.Intn(cards[d])
				hi := lo + r.Intn(cards[d]-lo)
				for b := 0; b < cards[d]; b++ {
					keeps[d][b] = b >= lo && b <= hi
				}
				dims[d].FilterRange(lo, hi)
			case 2:
				for b := range keeps[d] {
					keeps[d][b] = true
				}
				dims[d].ClearFilter()
			}
			if !checkAgainstNaive(e, dims, values, keeps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func checkAgainstNaive(e *Engine, dims []*Dimension, values [][]int, keeps [][]bool) bool {
	n := e.NumRecords()
	visible := 0
	hists := make([][]int, len(dims))
	for d := range hists {
		hists[d] = make([]int, dims[d].Card())
	}
	for r := 0; r < n; r++ {
		failAll := 0
		failedBy := -1
		for d := range dims {
			if !keeps[d][values[d][r]] {
				failAll++
				failedBy = d
			}
		}
		if failAll == 0 {
			visible++
			for d := range dims {
				hists[d][values[d][r]]++
			}
		} else if failAll == 1 {
			hists[failedBy][values[failedBy][r]]++
		}
	}
	if e.VisibleCount() != visible {
		return false
	}
	if len(e.Visible()) != visible {
		return false
	}
	for d := range dims {
		got := dims[d].Histogram()
		for b := range got {
			if got[b] != hists[d][b] {
				return false
			}
		}
	}
	return true
}
