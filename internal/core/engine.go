// Package core implements VEXUS itself: the offline pipeline of Fig. 1
// (ETL'd dataset → group discovery → inverted-index generation) and the
// interactive exploration session with the five visual modules of
// Fig. 2 — GROUPVIZ (the k displayed groups), CONTEXT (the feedback
// vector), STATS (crossfilter histograms + LDA focus view over a
// group's members), HISTORY (the navigation trail with backtrack), and
// MEMO (bookmarked groups and users, the analysis goal).
package core

import (
	"errors"
	"fmt"
	"time"

	"vexus/internal/dataset"
	"vexus/internal/greedy"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
)

// PipelineConfig parameterizes the offline stage.
type PipelineConfig struct {
	// Encode selects which dataset dimensions become mining terms.
	Encode mining.EncodeOptions
	// Miner discovers the groups; nil uses LCM with the bounds below
	// (the paper's default choice for user datasets).
	Miner mining.Miner
	// MinSupportFrac is the minimum group size as a fraction of the
	// user count when Miner is nil (default 0.01, floor 2 users).
	MinSupportFrac float64
	// MaxLen caps description length for the default miner (default 4).
	MaxLen int
	// MaxGroups aborts pattern explosion for the default miner
	// (default 100000).
	MaxGroups int
	// IndexFraction is the materialized share of each inverted list
	// (default 0.10, the paper's operating point).
	IndexFraction float64
	// Workers bounds the goroutines used by the parallel stages of the
	// pipeline — group discovery (for miners implementing
	// mining.ParallelMiner), space inversion, and index
	// materialization (0 = runtime.NumCPU(), 1 = fully sequential).
	// Any value produces bit-identical engines; only wall clock
	// changes.
	Workers int
}

// DefaultPipelineConfig returns the configuration used by the
// experiments and examples.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Encode:         mining.DefaultEncodeOptions(),
		MinSupportFrac: 0.01,
		MaxLen:         4,
		MaxGroups:      100_000,
		IndexFraction:  0.10,
	}
}

// Timings records offline-stage wall clock for E9 reports.
type Timings struct {
	Encode time.Duration
	Mine   time.Duration
	Index  time.Duration
}

// Engine is the built offline state: everything a Session navigates.
type Engine struct {
	Data    *dataset.Dataset
	Tx      *mining.Transactions
	Space   *groups.Space
	Index   *index.Index
	Miner   string
	Timings Timings

	// sizeOrder is all group ids sorted by descending size, computed
	// once at Build: the initial display of every fresh session is a
	// prefix of it, so session creation never re-sorts the space.
	sizeOrder []int
}

// Build runs the offline pipeline on an already-ETL'd dataset.
func Build(d *dataset.Dataset, cfg PipelineConfig) (*Engine, error) {
	if cfg.IndexFraction == 0 {
		cfg.IndexFraction = 0.10
	}
	start := time.Now()
	tx, err := mining.Encode(d, cfg.Encode)
	if err != nil {
		return nil, fmt.Errorf("core: encode: %w", err)
	}
	encodeTime := time.Since(start)

	miner := cfg.Miner
	if miner == nil {
		minSup := int(cfg.MinSupportFrac * float64(d.NumUsers()))
		if minSup < 2 {
			minSup = 2
		}
		maxLen := cfg.MaxLen
		if maxLen == 0 {
			maxLen = 4
		}
		maxGroups := cfg.MaxGroups
		if maxGroups == 0 {
			maxGroups = 100_000
		}
		miner = lcm.New(mining.Options{
			MinSupport: minSup,
			MaxLen:     maxLen,
			MaxGroups:  maxGroups,
		})
	}
	start = time.Now()
	// Miners with a parallel entry point (LCM) shard enumeration over
	// cfg.Workers; the rest run their sequential Mine. Either way the
	// result is bit-identical to a 1-worker run.
	gs, err := mining.MineParallel(miner, tx, mining.ParallelOptions{Workers: cfg.Workers})
	if err != nil && !errors.Is(err, mining.ErrTooManyGroups) {
		return nil, fmt.Errorf("core: mining (%s): %w", miner.Name(), err)
	}
	mineTime := time.Since(start)
	if len(gs) == 0 {
		return nil, fmt.Errorf("core: %s discovered no groups; lower the support threshold", miner.Name())
	}
	space, err := groups.NewSpaceParallel(d.NumUsers(), tx.Vocab, gs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: building space: %w", err)
	}

	start = time.Now()
	ix, err := index.BuildParallel(space, cfg.IndexFraction, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: index: %w", err)
	}
	indexTime := time.Since(start)

	order := make([]int, space.Len())
	for i := range order {
		order[i] = i
	}
	space.SortBySize(order)

	return &Engine{
		Data:      d,
		Tx:        tx,
		Space:     space,
		Index:     ix,
		Miner:     miner.Name(),
		sizeOrder: order,
		Timings: Timings{
			Encode: encodeTime,
			Mine:   mineTime,
			Index:  indexTime,
		},
	}, nil
}

// RestoreEngine reassembles an Engine from already-built offline parts
// — the snapshot load path (internal/store). The size order is
// recomputed rather than deserialized (SortBySize is deterministic, so
// the result is identical to the order Build produced and can never
// disagree with the restored space). Timings carries the *original*
// build's wall clock for reporting; the load itself is expected to be
// far cheaper.
func RestoreEngine(d *dataset.Dataset, tx *mining.Transactions, space *groups.Space, ix *index.Index, miner string, timings Timings) *Engine {
	order := make([]int, space.Len())
	for i := range order {
		order[i] = i
	}
	space.SortBySize(order)
	return &Engine{
		Data:      d,
		Tx:        tx,
		Space:     space,
		Index:     ix,
		Miner:     miner,
		sizeOrder: order,
		Timings:   timings,
	}
}

// GroupLabel renders a group's description through the engine's vocab.
func (e *Engine) GroupLabel(gid int) string {
	return e.Space.Group(gid).Desc.Label(e.Space.Vocab)
}

// NewSession starts an interactive exploration over the engine.
func (e *Engine) NewSession(cfg greedy.Config) *Session {
	return newSession(e, cfg)
}

// GroupView is one GROUPVIZ circle: enough to render size, color and
// hover text (Fig. 2 (a)).
type GroupView struct {
	ID    int
	Label string
	Size  int
	// ColorShares is the distribution of the selected color attribute
	// over the group's members (index-aligned with the attribute's
	// Values; the final entry counts missing values).
	ColorShares []float64
	// Similarity to the current focal group (0 for the initial view).
	Similarity float64
}

// groupView assembles the view of one group; colorAttr < 0 disables
// color coding.
func (e *Engine) groupView(gid, colorAttr int, focal *groups.Group) GroupView {
	g := e.Space.Group(gid)
	v := GroupView{
		ID:    gid,
		Label: e.GroupLabel(gid),
		Size:  g.Size(),
	}
	if focal != nil {
		v.Similarity = focal.Jaccard(g)
	}
	if colorAttr >= 0 && colorAttr < e.Data.Schema.NumAttrs() {
		attr := e.Data.Schema.Attrs[colorAttr]
		shares := make([]float64, len(attr.Values)+1)
		total := 0
		g.Members.Range(func(u int) bool {
			dv := e.Data.Users[u].Demo[colorAttr]
			if dv == dataset.Missing {
				shares[len(shares)-1]++
			} else {
				shares[dv]++
			}
			total++
			return true
		})
		if total > 0 {
			for i := range shares {
				shares[i] /= float64(total)
			}
		}
		v.ColorShares = shares
	}
	return v
}
