// Package core implements VEXUS itself: the offline pipeline of Fig. 1
// (ETL'd dataset → group discovery → inverted-index generation) and the
// interactive exploration session with the five visual modules of
// Fig. 2 — GROUPVIZ (the k displayed groups), CONTEXT (the feedback
// vector), STATS (crossfilter histograms + LDA focus view over a
// group's members), HISTORY (the navigation trail with backtrack), and
// MEMO (bookmarked groups and users, the analysis goal).
package core

import (
	"errors"
	"fmt"
	"time"

	"vexus/internal/dataset"
	"vexus/internal/greedy"
	"vexus/internal/groups"
	"vexus/internal/index"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
)

// PipelineConfig parameterizes the offline stage.
type PipelineConfig struct {
	// Encode selects which dataset dimensions become mining terms.
	Encode mining.EncodeOptions
	// Miner discovers the groups; nil uses LCM with the bounds below
	// (the paper's default choice for user datasets).
	Miner mining.Miner
	// MinSupportFrac is the minimum group size as a fraction of the
	// user count when Miner is nil (default 0.01, floor 2 users).
	MinSupportFrac float64
	// MaxLen caps description length for the default miner (default 4).
	MaxLen int
	// MaxGroups aborts pattern explosion for the default miner
	// (default 100000).
	MaxGroups int
	// IndexFraction is the materialized share of each inverted list
	// (default 0.10, the paper's operating point).
	IndexFraction float64
	// Workers bounds the goroutines used by the parallel stages of the
	// pipeline — group discovery (for miners implementing
	// mining.ParallelMiner), space inversion, and index
	// materialization (0 = runtime.NumCPU(), 1 = fully sequential).
	// Any value produces bit-identical engines; only wall clock
	// changes.
	Workers int
}

// DefaultPipelineConfig returns the configuration used by the
// experiments and examples.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Encode:         mining.DefaultEncodeOptions(),
		MinSupportFrac: 0.01,
		MaxLen:         4,
		MaxGroups:      100_000,
		IndexFraction:  0.10,
	}
}

// Normalized returns a copy with every result-affecting default filled
// in, exactly as Build applies them (mirroring mining.Options.Normalized):
// MaxLen 0 → 4, MaxGroups 0 → 100000, IndexFraction 0 → 0.10.
// MinSupportFrac is left as given — its floor depends on the dataset
// size and is exposed separately via EffectiveMinSupport. Two configs
// that normalize equal build bit-identical engines on the same data,
// which is the contract snapshot fingerprints rely on.
func (cfg PipelineConfig) Normalized() PipelineConfig {
	if cfg.MaxLen == 0 {
		cfg.MaxLen = 4
	}
	if cfg.MaxGroups == 0 {
		cfg.MaxGroups = 100_000
	}
	if cfg.IndexFraction == 0 {
		cfg.IndexFraction = 0.10
	}
	return cfg
}

// EffectiveMinSupport is the absolute minimum group size the default
// miner uses on a dataset of numUsers users: MinSupportFrac of the
// user count, floored at 2. This — not the raw fraction — is what
// determines the mined space, so it is what fingerprints hash.
func (cfg PipelineConfig) EffectiveMinSupport(numUsers int) int {
	minSup := int(cfg.MinSupportFrac * float64(numUsers))
	if minSup < 2 {
		minSup = 2
	}
	return minSup
}

// Timings records offline-stage wall clock for E9 reports.
type Timings struct {
	Encode time.Duration
	Mine   time.Duration
	Index  time.Duration
}

// BatchDigest is the SHA-256 content address of one ingestion batch —
// the unit of the engine's lineage (see Engine.Lineage).
type BatchDigest [32]byte

// Engine is the built offline state: everything a Session navigates.
// An engine value is immutable after Build; Ingest produces a *new*
// engine at the next version rather than mutating in place, so
// sessions holding an older version keep serving it unchanged.
type Engine struct {
	Data    *dataset.Dataset
	Tx      *mining.Transactions
	Space   *groups.Space
	Index   *index.Index
	Miner   string
	Timings Timings

	// sizeOrder is all group ids sorted by descending size, computed
	// once at Build: the initial display of every fresh session is a
	// prefix of it, so session creation never re-sorts the space.
	sizeOrder []int

	// cfg is the normalized pipeline configuration the engine was built
	// with — Ingest re-runs the pipeline under it so the result is
	// byte-identical to Build on the augmented dataset.
	cfg PipelineConfig

	// lineage is the ordered digests of every ingestion batch applied
	// since the base build; Version() is 1+len(lineage).
	lineage []BatchDigest

	// noIngest marks engines restored from a snapshot that was built
	// with a custom miner: the miner itself is not serializable, so the
	// pipeline cannot be replayed and Ingest must refuse.
	noIngest bool
}

// Version is the engine's monotonically increasing generation: 1 for a
// fresh Build, +1 per ingested batch. Engine versions are immutable —
// a new version is always a new *Engine value.
func (e *Engine) Version() uint64 { return 1 + uint64(len(e.lineage)) }

// Config returns the normalized pipeline configuration the engine was
// built with.
func (e *Engine) Config() PipelineConfig { return e.cfg }

// Lineage returns a copy of the digests of the ingestion batches
// applied since the base build, in application order.
func (e *Engine) Lineage() []BatchDigest {
	return append([]BatchDigest(nil), e.lineage...)
}

// Build runs the offline pipeline on an already-ETL'd dataset.
func Build(d *dataset.Dataset, cfg PipelineConfig) (*Engine, error) {
	cfg = cfg.Normalized()
	start := time.Now()
	tx, err := mining.Encode(d, cfg.Encode)
	if err != nil {
		return nil, fmt.Errorf("core: encode: %w", err)
	}
	encodeTime := time.Since(start)

	miner := cfg.Miner
	if miner == nil {
		miner = lcm.New(mining.Options{
			MinSupport: cfg.EffectiveMinSupport(d.NumUsers()),
			MaxLen:     cfg.MaxLen,
			MaxGroups:  cfg.MaxGroups,
		})
	}
	start = time.Now()
	// Miners with a parallel entry point (LCM) shard enumeration over
	// cfg.Workers; the rest run their sequential Mine. Either way the
	// result is bit-identical to a 1-worker run.
	gs, err := mining.MineParallel(miner, tx, mining.ParallelOptions{Workers: cfg.Workers})
	if err != nil && !errors.Is(err, mining.ErrTooManyGroups) {
		return nil, fmt.Errorf("core: mining (%s): %w", miner.Name(), err)
	}
	mineTime := time.Since(start)
	if len(gs) == 0 {
		return nil, fmt.Errorf("core: %s discovered no groups; lower the support threshold", miner.Name())
	}
	space, err := groups.NewSpaceParallel(d.NumUsers(), tx.Vocab, gs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: building space: %w", err)
	}

	start = time.Now()
	ix, err := index.BuildParallel(space, cfg.IndexFraction, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: index: %w", err)
	}
	indexTime := time.Since(start)

	order := make([]int, space.Len())
	for i := range order {
		order[i] = i
	}
	space.SortBySize(order)

	return &Engine{
		Data:      d,
		Tx:        tx,
		Space:     space,
		Index:     ix,
		Miner:     miner.Name(),
		sizeOrder: order,
		cfg:       cfg,
		Timings: Timings{
			Encode: encodeTime,
			Mine:   mineTime,
			Index:  indexTime,
		},
	}, nil
}

// RestoreInfo carries the metadata side of a snapshot back into
// RestoreEngine: the miner name, the original build's wall clock, the
// normalized pipeline configuration, whether that configuration used
// the default (replayable) miner, and the ingestion lineage.
type RestoreInfo struct {
	Miner        string
	Timings      Timings
	Config       PipelineConfig
	DefaultMiner bool
	Lineage      []BatchDigest
}

// RestoreEngine reassembles an Engine from already-built offline parts
// — the snapshot load path (internal/store). The size order is
// recomputed rather than deserialized (SortBySize is deterministic, so
// the result is identical to the order Build produced and can never
// disagree with the restored space). Timings carries the *original*
// build's wall clock for reporting; the load itself is expected to be
// far cheaper.
func RestoreEngine(d *dataset.Dataset, tx *mining.Transactions, space *groups.Space, ix *index.Index, info RestoreInfo) *Engine {
	order := make([]int, space.Len())
	for i := range order {
		order[i] = i
	}
	space.SortBySize(order)
	return &Engine{
		Data:      d,
		Tx:        tx,
		Space:     space,
		Index:     ix,
		Miner:     info.Miner,
		sizeOrder: order,
		cfg:       info.Config.Normalized(),
		lineage:   append([]BatchDigest(nil), info.Lineage...),
		noIngest:  !info.DefaultMiner,
		Timings:   info.Timings,
	}
}

// GroupLabel renders a group's description through the engine's vocab.
func (e *Engine) GroupLabel(gid int) string {
	return e.Space.Group(gid).Desc.Label(e.Space.Vocab)
}

// NewSession starts an interactive exploration over the engine.
func (e *Engine) NewSession(cfg greedy.Config) *Session {
	return newSession(e, cfg)
}

// GroupView is one GROUPVIZ circle: enough to render size, color and
// hover text (Fig. 2 (a)).
type GroupView struct {
	ID    int
	Label string
	Size  int
	// ColorShares is the distribution of the selected color attribute
	// over the group's members (index-aligned with the attribute's
	// Values; the final entry counts missing values).
	ColorShares []float64
	// Similarity to the current focal group (0 for the initial view).
	Similarity float64
}

// groupView assembles the view of one group; colorAttr < 0 disables
// color coding.
func (e *Engine) groupView(gid, colorAttr int, focal *groups.Group) GroupView {
	g := e.Space.Group(gid)
	v := GroupView{
		ID:    gid,
		Label: e.GroupLabel(gid),
		Size:  g.Size(),
	}
	if focal != nil {
		v.Similarity = focal.Jaccard(g)
	}
	if colorAttr >= 0 && colorAttr < e.Data.Schema.NumAttrs() {
		attr := e.Data.Schema.Attrs[colorAttr]
		shares := make([]float64, len(attr.Values)+1)
		total := 0
		g.Members.Range(func(u int) bool {
			dv := e.Data.Users[u].Demo[colorAttr]
			if dv == dataset.Missing {
				shares[len(shares)-1]++
			} else {
				shares[dv]++
			}
			total++
			return true
		})
		if total > 0 {
			for i := range shares {
				shares[i] /= float64(total)
			}
		}
		v.ColorShares = shares
	}
	return v
}
