package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"vexus/internal/dataset"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/mining/stream"
)

// IngestBatch is one unit of the ingestion log: new users and actions
// to fold into a resident engine. Seq numbers batches like the action
// log numbers mutations — batch k is applied to engine version k and
// produces version k+1 — which makes ingestion replayable and
// idempotent at every layer (snapshot deltas, HTTP, shard fan-out).
type IngestBatch struct {
	Seq     uint64              `json:"seq,omitempty"`
	Users   []dataset.NewUser   `json:"users,omitempty"`
	Actions []dataset.NewAction `json:"actions,omitempty"`
}

// Empty reports whether the batch carries no records at all.
func (b IngestBatch) Empty() bool { return len(b.Users) == 0 && len(b.Actions) == 0 }

// AppendBinary appends the batch's canonical binary encoding — the
// form DLTA snapshot sections store and Digest hashes. Maps are
// serialized as key-sorted pairs so the encoding (and therefore the
// digest) is independent of Go map iteration order.
func (b IngestBatch) AppendBinary(buf []byte) []byte {
	buf = append(buf, "vexus-ingest-v1"...)
	buf = binary.AppendUvarint(buf, b.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Users)))
	for _, u := range b.Users {
		buf = appendString(buf, u.ID)
		buf = binary.AppendUvarint(buf, uint64(len(u.Demo)))
		for _, k := range sortedKeys(u.Demo) {
			buf = appendString(buf, k)
			buf = appendString(buf, u.Demo[k])
		}
		buf = binary.AppendUvarint(buf, uint64(len(u.Numeric)))
		for _, k := range sortedKeysF(u.Numeric) {
			buf = appendString(buf, k)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(u.Numeric[k]))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Actions)))
	for _, a := range b.Actions {
		buf = appendString(buf, a.User)
		buf = appendString(buf, a.Item)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(a.Value))
		buf = binary.AppendUvarint(buf, uint64(a.Time))
	}
	return buf
}

// Digest is the batch's SHA-256 content address over the canonical
// binary encoding. Equal batches digest equal on every machine; the
// snapshot fingerprint chain and shard convergence checks build on it.
func (b IngestBatch) Digest() BatchDigest {
	return BatchDigest(sha256.Sum256(b.AppendBinary(nil)))
}

// DecodeIngestBatch parses a canonical binary encoding produced by
// AppendBinary. The round trip is exact: re-encoding the result yields
// the input bytes, so digests survive storage.
func DecodeIngestBatch(data []byte) (IngestBatch, error) {
	d := &batchDecoder{data: data}
	var b IngestBatch
	magic := "vexus-ingest-v1"
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return b, fmt.Errorf("core: ingest batch: bad magic")
	}
	d.pos = len(magic)
	b.Seq = d.uvarint()
	if n := d.count(); n > 0 {
		b.Users = make([]dataset.NewUser, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			u := dataset.NewUser{ID: d.str()}
			if dn := d.count(); dn > 0 {
				u.Demo = make(map[string]string, dn)
				for j := 0; j < dn && d.err == nil; j++ {
					k := d.str()
					u.Demo[k] = d.str()
				}
			}
			if nn := d.count(); nn > 0 {
				u.Numeric = make(map[string]float64, nn)
				for j := 0; j < nn && d.err == nil; j++ {
					k := d.str()
					u.Numeric[k] = d.f64()
				}
			}
			b.Users = append(b.Users, u)
		}
	}
	if n := d.count(); n > 0 {
		b.Actions = make([]dataset.NewAction, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			a := dataset.NewAction{User: d.str(), Item: d.str()}
			a.Value = d.f64()
			a.Time = int64(d.uvarint())
			b.Actions = append(b.Actions, a)
		}
	}
	if d.err != nil {
		return IngestBatch{}, fmt.Errorf("core: ingest batch: %w", d.err)
	}
	if d.pos != len(data) {
		return IngestBatch{}, fmt.Errorf("core: ingest batch: %d trailing bytes", len(data)-d.pos)
	}
	return b, nil
}

// Ingest folds one batch into the engine, returning the engine at the
// next version; the receiver is untouched and keeps serving its own
// version. The materialized state — groups, stats, inverted index — is
// byte-identical to core.Build on the augmented dataset: encoding
// depends on global popularity and activity quantiles and the minimum
// support on the user count, so exactness requires re-running the
// deterministic pipeline, not patching structures in place. (The cheap
// lossy-counting preview of what a batch will change is IngestPreview;
// the documented exactness boundary lives there.) Ingest refuses on
// engines built with a custom miner — only the default LCM pipeline is
// replayable from configuration.
func (e *Engine) Ingest(b IngestBatch) (*Engine, error) {
	if !e.Ingestable() {
		return nil, fmt.Errorf("core: ingest: engine was built with a custom miner; only default-miner pipelines are replayable")
	}
	if b.Empty() {
		return nil, fmt.Errorf("core: ingest: empty batch")
	}
	d2, err := e.Data.Append(b.Users, b.Actions)
	if err != nil {
		return nil, err
	}
	ne, err := Build(d2, e.cfg)
	if err != nil {
		return nil, fmt.Errorf("core: ingest: rebuild: %w", err)
	}
	ne.lineage = make([]BatchDigest, len(e.lineage)+1)
	copy(ne.lineage, e.lineage)
	ne.lineage[len(e.lineage)] = b.Digest()
	return ne, nil
}

// Ingestable reports whether the engine accepts Ingest batches: only
// pipelines run with the default miner are replayable from
// configuration. Engines built with a custom mining.Miner — or
// restored from a snapshot of one — refuse ingestion.
func (e *Engine) Ingestable() bool { return !e.noIngest && e.cfg.Miner == nil }

// BuildWithLineage runs Build on a dataset that already has an
// ingestion lineage folded in, stamping the result with that lineage —
// the snapshot delta-replay path. Folding every batch into the dataset
// first and building once is exactly equal to ingesting them one at a
// time: each Ingest is itself defined as Build on the augmented
// dataset, so only the final build is observable.
func BuildWithLineage(d *dataset.Dataset, cfg PipelineConfig, lineage []BatchDigest) (*Engine, error) {
	e, err := Build(d, cfg)
	if err != nil {
		return nil, err
	}
	e.lineage = append([]BatchDigest(nil), lineage...)
	return e, nil
}

// IngestPreview dry-runs a batch through the streaming miner (Jin &
// Agrawal lossy counting, §II-A): it appends the batch to a copy of
// the dataset, re-encodes, and feeds every transaction through
// stream.Miner.Process, returning the Snapshot candidate set. This is
// the discovery channel for evolving data — bounded memory, one pass
// — and it carries the lossy-counting bound, not exactness: no
// frequent itemset ≥ σ·N is missed, every reported count is within ε·N
// of true, but membership bitsets and stats are not materialized.
// Committing the batch with Ingest always rebuilds exactly. The
// returned vocabulary is the augmented encoding's — the one the
// itemsets' term ids live in; callers render labels against it, never
// against the receiver's vocabulary (term ids are not stable across
// versions).
func (e *Engine) IngestPreview(b IngestBatch, cfg stream.Config) ([]stream.FrequentItemset, *groups.Vocab, error) {
	d2, err := e.Data.Append(b.Users, b.Actions)
	if err != nil {
		return nil, nil, err
	}
	tx, err := mining.Encode(d2, e.cfg.Encode)
	if err != nil {
		return nil, nil, fmt.Errorf("core: ingest preview: encode: %w", err)
	}
	m := stream.New(cfg)
	scratch := make([]groups.TermID, 0, 32)
	for _, terms := range tx.PerUser {
		// Process sorts and dedups in place; feed it a copy so the
		// encoded transactions stay pristine.
		scratch = append(scratch[:0], terms...)
		m.Process(scratch)
	}
	return m.Snapshot(), tx.Vocab, nil
}

// GroupTouched reports whether a group from an older engine version is
// affected by the newer space: its description vanished, or its
// membership changed. Count equality plus word-prefix equality proves
// identity even though the newer space's bitsets live in a larger
// universe — equal counts leave no room for extra members in the new
// words.
func GroupTouched(g *groups.Group, newSpace *groups.Space) bool {
	ng := newSpace.ByDescription(g.Desc)
	if ng == nil {
		return true
	}
	if ng.Members.Count() != g.Members.Count() {
		return true
	}
	ow, nw := g.Members.Words(), ng.Members.Words()
	if len(nw) < len(ow) {
		return true
	}
	for i, w := range ow {
		if nw[i] != w {
			return true
		}
	}
	return false
}

// DiffSpaces counts the groups of the new space that are discovered
// (description absent from old) or changed (present with different
// membership) relative to the old space — the summary an ingest
// response reports.
func DiffSpaces(old, new *groups.Space) (discovered, changed int) {
	for _, ng := range new.Groups() {
		og := old.ByDescription(ng.Desc)
		if og == nil {
			discovered++
			continue
		}
		if GroupTouched(og, new) {
			changed++
		}
	}
	return discovered, changed
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func sortedKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysF(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// batchDecoder is a minimal sticky-error reader over the canonical
// batch encoding.
type batchDecoder struct {
	data []byte
	pos  int
	err  error
}

func (d *batchDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint at %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

// count reads a length and bounds it by the bytes remaining, so a
// corrupt length cannot drive a huge allocation.
func (d *batchDecoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.pos) {
		d.err = fmt.Errorf("count %d exceeds remaining %d bytes", v, len(d.data)-d.pos)
		return 0
	}
	return int(v)
}

func (d *batchDecoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.data[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *batchDecoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data)-d.pos < 8 {
		d.err = fmt.Errorf("truncated float at %d", d.pos)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v
}
