package core

import (
	"fmt"
	"sync"

	"vexus/internal/greedy"
)

// Prefetcher implements the paper's anticipation claim (§I: "VEXUS
// builds an explorer profile and uses it to anticipate follow-up steps
// and select groups on-the-fly"): after each display, it concurrently
// precomputes the optimizer's answer for every shown group, so that if
// the explorer clicks one of them the next display is served from
// cache in microseconds instead of a fresh 100 ms optimization.
//
// Precomputed selections are keyed by (group, feedback generation):
// any feedback mutation — a click, an unlearn — invalidates the cache,
// because personalization changes the right answer.
type Prefetcher struct {
	sess *Session
	opt  *greedy.Optimizer

	mu      sync.Mutex
	gen     int
	results map[int]greedy.Selection
	genOf   map[int]int
	wg      sync.WaitGroup
}

// NewPrefetcher wraps a session. The prefetcher issues read-only work
// against the engine (which is immutable); it must be the only writer
// driving the session.
func NewPrefetcher(sess *Session) *Prefetcher {
	return &Prefetcher{
		sess:    sess,
		opt:     greedy.New(sess.eng.Space, sess.eng.Index),
		results: make(map[int]greedy.Selection),
		genOf:   make(map[int]int),
	}
}

// PrefetchShown launches background optimizations for every currently
// shown group, predicting the feedback state *as if* the explorer had
// clicked it. Call after Start or after each Explore.
func (p *Prefetcher) PrefetchShown() {
	p.mu.Lock()
	gen := p.gen
	p.mu.Unlock()

	cfg := p.sess.Config()
	for _, gid := range p.sess.Shown() {
		gid := gid
		// Predict the post-click profile: snapshot + reinforce.
		fb := p.sess.Feedback().Snapshot()
		g := p.sess.eng.Space.Group(gid)
		fb.Reinforce(g, 1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			sel, err := p.opt.SelectNext(g, fb, cfg)
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.gen == gen {
				p.results[gid] = sel
				p.genOf[gid] = gen
			}
			p.mu.Unlock()
		}()
	}
}

// Wait blocks until in-flight prefetches finish (tests and benchmarks;
// interactive callers never need it).
func (p *Prefetcher) Wait() { p.wg.Wait() }

// Explore serves the click from cache when the prefetched answer is
// current, falling back to a live optimization otherwise. The session's
// feedback and history advance identically on both paths.
func (p *Prefetcher) Explore(gid int) (greedy.Selection, bool, error) {
	p.mu.Lock()
	sel, ok := p.results[gid]
	if ok && p.genOf[gid] != p.gen {
		ok = false
	}
	p.mu.Unlock()

	if ok {
		if err := p.sess.applyPrefetched(gid, sel); err != nil {
			return greedy.Selection{}, false, err
		}
		p.invalidate()
		p.PrefetchShown()
		return sel, true, nil
	}
	live, err := p.sess.Explore(gid)
	if err != nil {
		return greedy.Selection{}, false, err
	}
	p.invalidate()
	p.PrefetchShown()
	return live, false, nil
}

// invalidate bumps the generation, discarding stale precomputations.
func (p *Prefetcher) invalidate() {
	p.mu.Lock()
	p.gen++
	p.results = make(map[int]greedy.Selection)
	p.genOf = make(map[int]int)
	p.mu.Unlock()
}

// applyPrefetched advances the session state exactly as Explore would,
// but with an already-computed selection.
func (s *Session) applyPrefetched(gid int, sel greedy.Selection) error {
	if len(s.history) == 0 {
		s.Start()
	}
	if gid < 0 || gid >= s.eng.Space.Len() {
		return fmt.Errorf("core: no group %d", gid)
	}
	g := s.eng.Space.Group(gid)
	s.fb.Reinforce(g, 1)
	s.focal = gid
	s.shown = append([]int(nil), sel.IDs...)
	s.history = append(s.history, &Step{
		Focal:     gid,
		Shown:     append([]int(nil), sel.IDs...),
		Selection: sel,
		fbAfter:   s.fb.Snapshot(),
	})
	return nil
}
