package core

import (
	"fmt"
	"sort"

	"vexus/internal/crossfilter"
	"vexus/internal/dataset"
	"vexus/internal/lda"
	"vexus/internal/linalg"
)

// FocusView is the STATS module opened on one group (§II-B "Granular
// Analysis"): an exhaustive set of demographic histograms over the
// group's members wired through crossfilter (a brush on one histogram
// updates all others instantaneously), plus the 2D LDA projection in
// which similar members appear close together (Fig. 2 Focus View).
type FocusView struct {
	GroupID int
	// Members maps view-local record ids to dataset user indices.
	Members []int

	eng  *Engine
	cf   *crossfilter.Engine
	dims map[string]*crossfilter.Dimension

	// Projection is the 2D embedding of the members; Points align with
	// Members. Nil when the group has fewer than 3 members.
	Projection *lda.Result
	// ClassAttr is the attribute whose values were the LDA classes.
	ClassAttr string
}

// Focus opens the STATS module on group gid. classAttr selects the LDA
// class labels (e.g. "gender"); an empty classAttr uses the first
// schema attribute.
func (s *Session) Focus(gid int, classAttr string) (*FocusView, error) {
	if gid < 0 || gid >= s.eng.Space.Len() {
		return nil, fmt.Errorf("core: no group %d", gid)
	}
	schema := s.eng.Data.Schema
	if classAttr == "" && schema.NumAttrs() > 0 {
		classAttr = schema.Attrs[0].Name
	}
	classIdx := schema.AttrIndex(classAttr)
	if classIdx < 0 {
		return nil, fmt.Errorf("core: no attribute %q", classAttr)
	}

	members := s.eng.Space.Group(gid).Members.Indices()
	fv := &FocusView{
		GroupID:   gid,
		Members:   members,
		eng:       s.eng,
		cf:        crossfilter.New(len(members)),
		dims:      make(map[string]*crossfilter.Dimension, schema.NumAttrs()),
		ClassAttr: classAttr,
	}

	// One crossfilter dimension per demographic attribute, with a
	// trailing "missing" bin.
	for ai := range schema.Attrs {
		attr := &schema.Attrs[ai]
		values := make([]int, len(members))
		card := len(attr.Values) + 1
		for i, u := range members {
			v := s.eng.Data.Users[u].Demo[ai]
			if v == dataset.Missing {
				v = card - 1
			}
			values[i] = v
		}
		labels := append(append([]string(nil), attr.Values...), "missing")
		dim, err := fv.cf.AddDimension(attr.Name, values, card, labels)
		if err != nil {
			return nil, fmt.Errorf("core: focus dimension %q: %w", attr.Name, err)
		}
		fv.dims[attr.Name] = dim
	}

	// LDA projection over the members' term-indicator vectors.
	if len(members) >= 3 && s.eng.Tx.Vocab.Len() > 0 {
		fv.fitProjection(classIdx)
	}
	return fv, nil
}

func (fv *FocusView) fitProjection(classIdx int) {
	vocabLen := fv.eng.Tx.Vocab.Len()
	rows := make([][]float64, len(fv.Members))
	labels := make([]int, len(fv.Members))
	for i, u := range fv.Members {
		vec := make([]float64, vocabLen)
		for _, id := range fv.eng.Tx.PerUser[u] {
			vec[id] = 1
		}
		rows[i] = vec
		l := fv.eng.Data.Users[u].Demo[classIdx]
		if l == dataset.Missing {
			l = -1
		}
		labels[i] = l
	}
	res, err := lda.Project(linalg.FromRows(rows), labels, lda.DefaultConfig())
	if err == nil {
		fv.Projection = res
	}
}

// Attributes lists the histogram dimensions in schema order.
func (fv *FocusView) Attributes() []string {
	out := make([]string, 0, len(fv.dims))
	for ai := range fv.eng.Data.Schema.Attrs {
		out = append(out, fv.eng.Data.Schema.Attrs[ai].Name)
	}
	return out
}

// Histogram returns the labeled bin counts of one attribute under all
// *other* brushes (crossfilter semantics).
func (fv *FocusView) Histogram(attr string) ([]string, []int, error) {
	dim, ok := fv.dims[attr]
	if !ok {
		return nil, nil, fmt.Errorf("core: no focus dimension %q", attr)
	}
	return dim.Labels(), dim.Histogram(), nil
}

// Brush keeps only the given values of an attribute (by label), e.g.
// Brush("gender", "female") to "limit the search only to females".
func (fv *FocusView) Brush(attr string, values ...string) error {
	dim, ok := fv.dims[attr]
	if !ok {
		return fmt.Errorf("core: no focus dimension %q", attr)
	}
	labels := dim.Labels()
	bins := make([]int, 0, len(values))
	for _, v := range values {
		found := -1
		for b, l := range labels {
			if l == v {
				found = b
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("core: attribute %q has no value %q", attr, v)
		}
		bins = append(bins, found)
	}
	dim.FilterBins(bins...)
	return nil
}

// ClearBrush removes the filter on one attribute.
func (fv *FocusView) ClearBrush(attr string) error {
	dim, ok := fv.dims[attr]
	if !ok {
		return fmt.Errorf("core: no focus dimension %q", attr)
	}
	dim.ClearFilter()
	return nil
}

// SelectedCount returns how many members pass every brush.
func (fv *FocusView) SelectedCount() int { return fv.cf.VisibleCount() }

// SelectedUsers returns the dataset user indices passing every brush —
// the updated member table of §II-B ("An updated list of selected
// users is shown in a table").
func (fv *FocusView) SelectedUsers() []int {
	local := fv.cf.Visible()
	out := make([]int, len(local))
	for i, r := range local {
		out[i] = fv.Members[r]
	}
	return out
}

// MemberRow is one row of the member table.
type MemberRow struct {
	User   int
	ID     string
	Demo   []string // value per schema attribute ("" = missing)
	NumAct int      // activity count (e.g. publications)
}

// Table materializes the selected members with resolved demographics,
// sorted by descending activity (the anecdote's "Elke A. Rundensteiner
// with 325 publications" surfaces first).
func (fv *FocusView) Table(limit int) []MemberRow {
	users := fv.SelectedUsers()
	rows := make([]MemberRow, 0, len(users))
	for _, u := range users {
		row := MemberRow{
			User:   u,
			ID:     fv.eng.Data.Users[u].ID,
			Demo:   make([]string, fv.eng.Data.Schema.NumAttrs()),
			NumAct: len(fv.eng.Data.UserActions(u)),
		}
		for ai := range row.Demo {
			if v, ok := fv.eng.Data.DemoValue(u, ai); ok {
				row.Demo[ai] = v
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].NumAct != rows[j].NumAct {
			return rows[i].NumAct > rows[j].NumAct
		}
		return rows[i].User < rows[j].User
	})
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	return rows
}
