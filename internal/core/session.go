package core

import (
	"fmt"

	"vexus/internal/feedback"
	"vexus/internal/greedy"
)

// Step is one HISTORY entry: the group the explorer clicked and the
// display that resulted. fbAfter snapshots the feedback vector after
// the step so Backtrack restores both position and personalization.
type Step struct {
	// Focal is the clicked group id; -1 for the initial display.
	Focal int
	// Shown is the GROUPVIZ content after the step.
	Shown []int
	// Selection carries the optimizer's quality metrics for the step.
	Selection greedy.Selection

	fbAfter *feedback.Vector
}

// Session is one explorer's interactive walk over the group space.
// Sessions are not safe for concurrent use.
type Session struct {
	eng *Engine
	cfg greedy.Config
	opt *greedy.Optimizer
	fb  *feedback.Vector

	shown   []int
	focal   int
	history []*Step
	memo    *Memo
}

func newSession(e *Engine, cfg greedy.Config) *Session {
	if cfg.K <= 0 {
		cfg = greedy.DefaultConfig()
	}
	return &Session{
		eng:   e,
		cfg:   cfg,
		opt:   greedy.New(e.Space, e.Index),
		fb:    feedback.New(),
		focal: -1,
		memo:  newMemo(),
	}
}

// Engine returns the underlying offline state.
func (s *Session) Engine() *Engine { return s.eng }

// Config returns the per-step optimization settings.
func (s *Session) Config() greedy.Config { return s.cfg }

// Start produces the initial GROUPVIZ display: the k largest groups
// (deterministic, diverse enough in practice to seed any task). It
// resets any previous exploration state.
func (s *Session) Start() []int {
	ids := s.eng.sizeOrder
	if ids == nil {
		// Zero-value Engine (not from Build): sort locally rather than
		// caching on the shared engine, which concurrent sessions read.
		ids = make([]int, s.eng.Space.Len())
		for i := range ids {
			ids[i] = i
		}
		s.eng.Space.SortBySize(ids)
	}
	k := s.cfg.K
	if k > len(ids) {
		k = len(ids)
	}
	s.shown = append([]int(nil), ids[:k]...)
	s.focal = -1
	s.fb = feedback.New()
	s.history = []*Step{{
		Focal:   -1,
		Shown:   append([]int(nil), s.shown...),
		fbAfter: s.fb.Snapshot(),
	}}
	s.memo = newMemo()
	return s.Shown()
}

// StartFrom seeds the display with explicit group ids (e.g. last
// year's PC as a starting group in Scenario 1).
func (s *Session) StartFrom(ids ...int) ([]int, error) {
	for _, id := range ids {
		if id < 0 || id >= s.eng.Space.Len() {
			return nil, fmt.Errorf("core: no group %d", id)
		}
	}
	s.shown = append([]int(nil), ids...)
	s.focal = -1
	s.fb = feedback.New()
	s.history = []*Step{{
		Focal:   -1,
		Shown:   append([]int(nil), s.shown...),
		fbAfter: s.fb.Snapshot(),
	}}
	s.memo = newMemo()
	return s.Shown(), nil
}

// Explore is the central interaction (§II-B "Interactivity"): the
// explorer clicks group gid; VEXUS records the implicit positive
// feedback, runs the time-bounded greedy optimizer, and replaces the
// display with the next k groups. Returns the optimizer's selection
// metrics.
func (s *Session) Explore(gid int) (greedy.Selection, error) {
	if len(s.history) == 0 {
		s.Start()
	}
	if gid < 0 || gid >= s.eng.Space.Len() {
		return greedy.Selection{}, fmt.Errorf("core: no group %d", gid)
	}
	g := s.eng.Space.Group(gid)
	s.fb.Reinforce(g, 1)
	sel, err := s.opt.SelectNext(g, s.fb, s.cfg)
	if err != nil {
		return greedy.Selection{}, err
	}
	s.focal = gid
	s.shown = append([]int(nil), sel.IDs...)
	s.history = append(s.history, &Step{
		Focal:     gid,
		Shown:     append([]int(nil), sel.IDs...),
		Selection: sel,
		fbAfter:   s.fb.Snapshot(),
	})
	return sel, nil
}

// Shown returns the current GROUPVIZ group ids.
func (s *Session) Shown() []int { return append([]int(nil), s.shown...) }

// Focal returns the last-clicked group id, or -1.
func (s *Session) Focal() int { return s.focal }

// Views renders the current display color-coded by the named
// attribute ("" disables coloring) — the data behind Fig. 2 (a).
func (s *Session) Views(colorAttr string) []GroupView {
	ai := -1
	if colorAttr != "" {
		ai = s.eng.Data.Schema.AttrIndex(colorAttr)
	}
	out := make([]GroupView, 0, len(s.shown))
	for _, gid := range s.shown {
		if s.focal >= 0 {
			out = append(out, s.eng.groupView(gid, ai, s.eng.Space.Group(s.focal)))
		} else {
			out = append(out, s.eng.groupView(gid, ai, nil))
		}
	}
	return out
}

// History returns the navigation trail (oldest first). The returned
// slice must not be modified.
func (s *Session) History() []*Step { return s.history }

// Backtrack restores the session to history step idx (0 = initial
// display), discarding the steps after it — position, display and
// feedback vector all rewind, preserving the explorer's train of
// thought exactly as HISTORY promises.
func (s *Session) Backtrack(idx int) error {
	if idx < 0 || idx >= len(s.history) {
		return fmt.Errorf("core: no history step %d (have %d)", idx, len(s.history))
	}
	st := s.history[idx]
	s.shown = append([]int(nil), st.Shown...)
	s.focal = st.Focal
	s.fb = st.fbAfter.Snapshot()
	s.history = s.history[:idx+1]
	return nil
}

// Feedback exposes the live profile (the CONTEXT module reads it; the
// simulator reinforces through Explore only).
func (s *Session) Feedback() *feedback.Vector { return s.fb }

// Context returns the top-n CONTEXT entries with resolved labels.
func (s *Session) Context(n int) []ContextEntry {
	top := s.fb.Top(n)
	out := make([]ContextEntry, len(top))
	for i, e := range top {
		ce := ContextEntry{Score: e.Score, IsUser: e.IsUser}
		if e.IsUser {
			ce.Label = s.eng.Data.Users[e.User].ID
			ce.User = e.User
		} else {
			ce.Label = s.eng.Space.Vocab.Term(e.Term).String()
			ce.Term = int(e.Term)
		}
		out[i] = ce
	}
	return out
}

// ContextEntry is one row of the CONTEXT display.
type ContextEntry struct {
	Label  string
	Score  float64
	IsUser bool
	User   int
	Term   int
}

// Unlearn removes a demographic value from the profile by label
// ("gender=male"), the explicit de-biasing interaction of §II-B.
func (s *Session) Unlearn(field, value string) error {
	id := s.eng.Space.Vocab.Lookup(field, value)
	if id < 0 {
		return fmt.Errorf("core: unknown term %s=%s", field, value)
	}
	s.fb.Unlearn(id)
	return nil
}

// UnlearnUser removes a user from the profile by external id.
func (s *Session) UnlearnUser(userID string) error {
	u := s.eng.Data.UserIndex(userID)
	if u < 0 {
		return fmt.Errorf("core: unknown user %q", userID)
	}
	s.fb.UnlearnUser(u)
	return nil
}

// Memo returns the bookmark collection.
func (s *Session) Memo() *Memo { return s.memo }

// BookmarkGroup saves a group to MEMO.
func (s *Session) BookmarkGroup(gid int) error {
	if gid < 0 || gid >= s.eng.Space.Len() {
		return fmt.Errorf("core: no group %d", gid)
	}
	s.memo.addGroup(gid)
	return nil
}

// BookmarkUser saves a user to MEMO.
func (s *Session) BookmarkUser(u int) error {
	if u < 0 || u >= s.eng.Data.NumUsers() {
		return fmt.Errorf("core: no user %d", u)
	}
	s.memo.addUser(u)
	return nil
}

// Memo is the MEMO module: the explorer's accumulating answer.
type Memo struct {
	groupIDs []int
	userIDs  []int
	hasGroup map[int]bool
	hasUser  map[int]bool
}

func newMemo() *Memo {
	return &Memo{hasGroup: map[int]bool{}, hasUser: map[int]bool{}}
}

func (m *Memo) addGroup(gid int) {
	if !m.hasGroup[gid] {
		m.hasGroup[gid] = true
		m.groupIDs = append(m.groupIDs, gid)
	}
}

func (m *Memo) addUser(u int) {
	if !m.hasUser[u] {
		m.hasUser[u] = true
		m.userIDs = append(m.userIDs, u)
	}
}

// Groups returns bookmarked group ids in bookmark order.
func (m *Memo) Groups() []int { return append([]int(nil), m.groupIDs...) }

// Users returns bookmarked user ids in bookmark order.
func (m *Memo) Users() []int { return append([]int(nil), m.userIDs...) }

// HasUser reports whether user u is bookmarked.
func (m *Memo) HasUser(u int) bool { return m.hasUser[u] }

// HasGroup reports whether group gid is bookmarked.
func (m *Memo) HasGroup(gid int) bool { return m.hasGroup[gid] }

// RemoveUser drops a bookmarked user.
func (m *Memo) RemoveUser(u int) {
	if !m.hasUser[u] {
		return
	}
	delete(m.hasUser, u)
	for j, x := range m.userIDs {
		if x == u {
			m.userIDs = append(m.userIDs[:j], m.userIDs[j+1:]...)
			break
		}
	}
}
