package core_test

import (
	"bytes"
	"testing"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
	"vexus/internal/mining/stream"
	"vexus/internal/store"
)

// The ingest tests live in core_test (not core) so they can reach for
// store.Save as the equality oracle: two engines are identical exactly
// when their snapshots serialize to the same bytes under the same
// fingerprint — every materialized structure is covered, with no
// reflective comparison to drift out of sync with the engine's fields.

func ingestTestData(t *testing.T) (*dataset.Dataset, core.PipelineConfig) {
	t.Helper()
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 300, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultPipelineConfig()
	cfg.Encode = datagen.DBAuthorsEncodeOptions()
	cfg.MinSupportFrac = 0.02
	return d, cfg
}

func ingestTestBatch() core.IngestBatch {
	return core.IngestBatch{
		Users: []dataset.NewUser{
			{ID: "newcomer1", Demo: map[string]string{
				"gender": "female", "seniority": "junior", "country": "fr", "topic": "databases",
			}, Numeric: map[string]float64{"pubrate": 3}},
			{ID: "newcomer2", Demo: map[string]string{
				"gender": "male", "seniority": "very senior", "country": "us", "topic": "data mining",
			}, Numeric: map[string]float64{"pubrate": 80}},
		},
		Actions: []dataset.NewAction{
			{User: "newcomer1", Item: "SIGMOD", Value: 1, Time: 2018},
			{User: "newcomer2", Item: "KDD", Value: 1, Time: 2018},
			{User: "author00001", Item: "VLDB", Value: 1, Time: 2018},
		},
	}
}

// snapshotBytes serializes an engine under a fixed fingerprint — the
// bit-identity oracle. Timings are wall clock, the one deliberately
// non-deterministic field a snapshot carries; zero them so the
// comparison covers exactly the materialized state.
func snapshotBytes(t *testing.T, eng *core.Engine) []byte {
	t.Helper()
	eng.Timings = core.Timings{}
	var buf bytes.Buffer
	if err := store.Save(&buf, eng, store.Fingerprint{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestEquivalentToBuild pins the tentpole exactness contract at
// several worker counts: Ingest(batch) on a resident engine is
// byte-identical to core.Build over the augmented dataset, whatever
// parallelism either side ran with.
func TestIngestEquivalentToBuild(t *testing.T) {
	d, cfg := ingestTestData(t)
	b := ingestTestBatch()
	for _, workers := range []int{1, 2, 8} {
		wcfg := cfg
		wcfg.Workers = workers
		base, err := core.Build(d, wcfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := base.Version(); got != 1 {
			t.Fatalf("workers %d: fresh engine version = %d, want 1", workers, got)
		}
		ne, err := base.Ingest(b)
		if err != nil {
			t.Fatalf("workers %d: ingest: %v", workers, err)
		}
		if got := ne.Version(); got != 2 {
			t.Fatalf("workers %d: post-ingest version = %d, want 2", workers, got)
		}
		if base.Version() != 1 {
			t.Fatalf("workers %d: receiver version mutated to %d", workers, base.Version())
		}

		d2, err := d.Append(b.Users, b.Actions)
		if err != nil {
			t.Fatal(err)
		}
		// Reference build always runs single-worker: equality across
		// the pairs (1,1) (2,1) (8,1) pins worker independence too.
		rcfg := cfg
		rcfg.Workers = 1
		want, err := core.BuildWithLineage(d2, rcfg, ne.Lineage())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapshotBytes(t, ne), snapshotBytes(t, want)) {
			t.Fatalf("workers %d: Ingest(batch) is not bit-identical to Build(augmented dataset)", workers)
		}
	}
}

// TestIngestChained walks the version ladder: two batches produce
// versions 2 and 3 with a two-entry lineage, equal to folding both
// batches into the dataset and building once.
func TestIngestChained(t *testing.T) {
	d, cfg := ingestTestData(t)
	base, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1 := ingestTestBatch()
	b2 := core.IngestBatch{Actions: []dataset.NewAction{
		{User: "newcomer1", Item: "ICDE", Value: 1, Time: 2019},
		{User: "author00002", Item: "SIGMOD", Value: 1, Time: 2019},
	}}
	v2, err := base.Ingest(b1)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := v2.Ingest(b2)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Version() != 3 || len(v3.Lineage()) != 2 {
		t.Fatalf("version = %d lineage = %d, want 3 and 2", v3.Version(), len(v3.Lineage()))
	}
	if v3.Lineage()[0] != b1.Digest() || v3.Lineage()[1] != b2.Digest() {
		t.Fatal("lineage digests do not match the ingested batches")
	}

	d2, err := d.Append(b1.Users, b1.Actions)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := d2.Append(b2.Users, b2.Actions)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.BuildWithLineage(d3, cfg, v3.Lineage())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotBytes(t, v3), snapshotBytes(t, want)) {
		t.Fatal("chained ingests diverge from one build over the fully augmented dataset")
	}
}

// TestIngestValidation: bad batches are rejected and leave the engine
// untouched.
func TestIngestValidation(t *testing.T) {
	d, cfg := ingestTestData(t)
	eng, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest(core.IngestBatch{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	bad := core.IngestBatch{Users: []dataset.NewUser{
		{ID: "x", Demo: map[string]string{"gender": "robot"}},
	}}
	if _, err := eng.Ingest(bad); err == nil {
		t.Fatal("out-of-domain demographic value accepted")
	}
	dup := core.IngestBatch{Users: []dataset.NewUser{
		{ID: "author00001", Demo: map[string]string{"gender": "female"}},
	}}
	if _, err := eng.Ingest(dup); err == nil {
		t.Fatal("duplicate user id accepted")
	}
	if eng.Version() != 1 {
		t.Fatalf("failed ingests advanced the version to %d", eng.Version())
	}
}

// TestIngestRefusesCustomMiner: only the default LCM pipeline is
// replayable from configuration, so engines built with an explicit
// miner refuse batches.
func TestIngestRefusesCustomMiner(t *testing.T) {
	d, cfg := ingestTestData(t)
	cfg.Miner = lcm.New(mining.Options{MinSupport: 6, MaxLen: 4})
	eng, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Ingestable() {
		t.Fatal("custom-miner engine reports Ingestable")
	}
	if _, err := eng.Ingest(ingestTestBatch()); err == nil {
		t.Fatal("custom-miner engine accepted a batch")
	}
}

// TestBatchCodecRoundTrip: the canonical binary encoding decodes back
// to the same batch and the digest is deterministic.
func TestBatchCodecRoundTrip(t *testing.T) {
	b := ingestTestBatch()
	b.Seq = 7
	raw := b.AppendBinary(nil)
	got, err := core.DecodeIngestBatch(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.AppendBinary(nil), raw) {
		t.Fatal("decode→encode is not the identity")
	}
	if got.Digest() != b.Digest() {
		t.Fatal("digest changed across the round trip")
	}
	other := b
	other.Seq = 8
	if other.Digest() == b.Digest() {
		t.Fatal("digest ignores seq")
	}
	if _, err := core.DecodeIngestBatch(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated encoding accepted")
	}
	if _, err := core.DecodeIngestBatch(append(append([]byte(nil), raw...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestGroupTouchedAndDiff: after an ingest, groups the new users join
// read as touched, groups they cannot affect read as untouched, and
// DiffSpaces is consistent with per-group checks.
func TestGroupTouchedAndDiff(t *testing.T) {
	d, cfg := ingestTestData(t)
	base, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := base.Ingest(ingestTestBatch())
	if err != nil {
		t.Fatal(err)
	}
	touched, untouched := 0, 0
	for _, g := range base.Space.Groups() {
		if core.GroupTouched(g, ne.Space) {
			touched++
		} else {
			untouched++
		}
	}
	// Two new users in specific demographics: some groups must grow,
	// and the ones in demographics the batch never mentions must not.
	if touched == 0 {
		t.Fatal("no group touched by an ingest that adds members")
	}
	if untouched == 0 {
		t.Fatal("every group touched — targeted invalidation would degenerate to broadcast")
	}
	discovered, changed := core.DiffSpaces(base.Space, ne.Space)
	if discovered < 0 || changed == 0 {
		t.Fatalf("DiffSpaces = (%d, %d), want at least one changed group", discovered, changed)
	}
}

// TestIngestPreviewRunsLossy: the preview channel mines the augmented
// stream within the lossy-counting contract and leaves the engine at
// its version.
func TestIngestPreviewRunsLossy(t *testing.T) {
	d, cfg := ingestTestData(t)
	eng, err := core.Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	items, vocab, err := eng.IngestPreview(ingestTestBatch(), stream.Config{Support: 0.05, Epsilon: 0.005, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Fatal("preview found no frequent itemsets at 5% support")
	}
	if vocab == nil {
		t.Fatal("preview returned no vocabulary")
	}
	for _, it := range items {
		if len(it.Terms) == 0 || it.Count <= 0 {
			t.Fatalf("malformed preview itemset %+v", it)
		}
		if it.Terms.Label(vocab) == "" {
			t.Fatal("itemset does not render against the returned vocabulary")
		}
	}
	if eng.Version() != 1 {
		t.Fatal("preview advanced the engine version")
	}
}
