package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	eng := buildEngine(t)
	cfg := sessionCfg()
	cfg.TimeLimit = 0 // deterministic replay

	s := eng.NewSession(cfg)
	s.Start()
	first, err := s.Explore(s.Shown()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(first.IDs) == 0 {
		t.Skip("no candidates")
	}
	if _, err := s.Explore(first.IDs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlearn("gender", "male"); err != nil {
		t.Fatal(err)
	}
	if err := s.BookmarkGroup(first.IDs[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.BookmarkUser(3); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored := eng.NewSession(cfg)
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Same trail length and focal.
	if len(restored.History()) != len(s.History()) {
		t.Fatalf("history %d vs %d", len(restored.History()), len(s.History()))
	}
	if restored.Focal() != s.Focal() {
		t.Fatalf("focal %d vs %d", restored.Focal(), s.Focal())
	}
	// Memo restored.
	if !restored.Memo().HasGroup(first.IDs[0]) || !restored.Memo().HasUser(3) {
		t.Fatal("memo not restored")
	}
	// Unlearn pin survived (reinforcing a gender=male group must keep
	// the term at zero).
	male := eng.Space.Vocab.Lookup("gender", "male")
	if male >= 0 && restored.Feedback().TermScore(male) != 0 {
		t.Fatal("unlearned term re-learned on replay")
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()

	if err := s.Load(strings.NewReader(`{"version":2}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if err := s.Load(strings.NewReader(`{"version":1,"numGroups":1}`)); err == nil {
		t.Fatal("group-count mismatch accepted")
	}
	if err := s.Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Load(strings.NewReader(
		`{"version":1,"numGroups":` + itoa(eng.Space.Len()) + `,"memoUsers":["ghost"]}`)); err == nil {
		t.Fatal("unknown memo user accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestPrefetcherServesFromCache(t *testing.T) {
	eng := buildEngine(t)
	cfg := sessionCfg()
	cfg.TimeLimit = 30 * time.Millisecond

	s := eng.NewSession(cfg)
	s.Start()
	p := NewPrefetcher(s)
	p.PrefetchShown()
	p.Wait()

	gid := s.Shown()[0]
	start := time.Now()
	sel, cached, err := p.Explore(gid)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("prefetched click not served from cache")
	}
	if len(sel.IDs) == 0 {
		t.Fatal("cached selection empty")
	}
	// The cached path must be far below the optimizer budget (it
	// launches the *next* prefetch asynchronously).
	if elapsed > cfg.TimeLimit {
		t.Fatalf("cached explore took %v", elapsed)
	}
	// Session state advanced exactly like a live Explore.
	if s.Focal() != gid || len(s.History()) != 2 {
		t.Fatalf("session state wrong: focal=%d history=%d", s.Focal(), len(s.History()))
	}
	if s.Feedback().IsEmpty() {
		t.Fatal("feedback not reinforced on cached path")
	}
	p.Wait()
}

func TestPrefetcherFallsBackOnMiss(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	p := NewPrefetcher(s)
	// No prefetch issued: must fall back to live optimization.
	gid := s.Shown()[1]
	sel, cached, err := p.Explore(gid)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("cache hit without prefetching")
	}
	if len(sel.IDs) == 0 && sel.Candidates > 0 {
		t.Fatal("live fallback returned nothing")
	}
	p.Wait()
}

func TestPrefetcherInvalidation(t *testing.T) {
	eng := buildEngine(t)
	cfg := sessionCfg()
	s := eng.NewSession(cfg)
	s.Start()
	p := NewPrefetcher(s)
	p.PrefetchShown()
	p.Wait()

	// A feedback mutation outside the prefetcher invalidates: the next
	// click must be a live computation.
	if _, err := s.Explore(s.Shown()[0]); err != nil {
		t.Fatal(err)
	}
	p.invalidate()
	_, cached, err := p.Explore(s.Shown()[0])
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("stale cache served after invalidation")
	}
	p.Wait()
}
