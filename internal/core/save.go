package core

import (
	"encoding/json"
	"fmt"
	"io"

	"vexus/internal/groups"
)

// savedSession is the v1 serialized form of a session — the SAVE
// module of Fig. 1. It stores the *trail* (which groups were clicked,
// what was bookmarked, which terms were unlearned), not derived state:
// loading replays the clicks through the live engine, so a session
// saved against one index configuration restores correctly against
// another.
//
// Known v1 limitations — the format is lossy by construction and kept
// only for backward compatibility:
//
//   - Only Explore clicks are kept (Save walks st.Focal), so Focus and
//     Brush interactions vanish: a session saved with an open, brushed
//     STATS view restores with no focus view at all.
//   - Unlearned *users* are not representable (only unlearnedTerms
//     exists), so a replay silently re-learns users the explorer
//     explicitly deleted from CONTEXT.
//   - Ordering is flattened: all unlearns replay before all clicks,
//     and backtracks are gone entirely — only the surviving trail is
//     stored, never the branches the explorer rewound away.
//
// The v2 format (internal/action: Session.Save/Load) serializes the
// complete action log instead and replays it through the same
// dispatcher live traffic uses; it also loads v1 files. New code
// should save through internal/action.
type savedSession struct {
	Version   int      `json:"version"`
	Miner     string   `json:"miner"`
	NumGroups int      `json:"numGroups"`
	Clicks    []int    `json:"clicks"`
	MemoG     []int    `json:"memoGroups"`
	MemoU     []string `json:"memoUsers"`
	Unlearned []string `json:"unlearnedTerms"`
}

// Save serializes the session's exploration trail as JSON.
func (s *Session) Save(w io.Writer) error {
	saved := savedSession{
		Version:   1,
		Miner:     s.eng.Miner,
		NumGroups: s.eng.Space.Len(),
	}
	for _, st := range s.history {
		if st.Focal >= 0 {
			saved.Clicks = append(saved.Clicks, st.Focal)
		}
	}
	saved.MemoG = s.memo.Groups()
	for _, u := range s.memo.Users() {
		saved.MemoU = append(saved.MemoU, s.eng.Data.Users[u].ID)
	}
	for _, id := range s.unlearnedTerms() {
		saved.Unlearned = append(saved.Unlearned, s.eng.Space.Vocab.Term(id).String())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(saved)
}

// unlearnedTerms lists term ids the explorer deleted from CONTEXT, in
// vocab order.
func (s *Session) unlearnedTerms() []groups.TermID {
	var out []groups.TermID
	for id := groups.TermID(0); int(id) < s.eng.Space.Vocab.Len(); id++ {
		if s.fb.IsUnlearned(id) {
			out = append(out, id)
		}
	}
	return out
}

// Load restores a saved trail into this (fresh) session by replaying
// the clicks: Start, then Explore each saved click, re-apply unlearned
// terms in order, and restore bookmarks. The engine must hold the same
// group space the session was saved against (same group count guards
// against gross mismatch; descriptions are the real identity, so a
// rebuilt space with identical data replays identically).
func (s *Session) Load(r io.Reader) error {
	var saved savedSession
	if err := json.NewDecoder(r).Decode(&saved); err != nil {
		return fmt.Errorf("core: decoding saved session: %w", err)
	}
	if saved.Version != 1 {
		return fmt.Errorf("core: unsupported session version %d", saved.Version)
	}
	if saved.NumGroups != s.eng.Space.Len() {
		return fmt.Errorf("core: saved session has %d groups, engine has %d",
			saved.NumGroups, s.eng.Space.Len())
	}
	s.Start()
	for _, t := range saved.Unlearned {
		field, value, ok := splitTerm(t)
		if !ok {
			return fmt.Errorf("core: malformed unlearned term %q", t)
		}
		if err := s.Unlearn(field, value); err != nil {
			return err
		}
	}
	for _, gid := range saved.Clicks {
		if _, err := s.Explore(gid); err != nil {
			return fmt.Errorf("core: replaying click on group %d: %w", gid, err)
		}
	}
	for _, gid := range saved.MemoG {
		if err := s.BookmarkGroup(gid); err != nil {
			return err
		}
	}
	for _, uid := range saved.MemoU {
		u := s.eng.Data.UserIndex(uid)
		if u < 0 {
			return fmt.Errorf("core: saved memo user %q not in dataset", uid)
		}
		if err := s.BookmarkUser(u); err != nil {
			return err
		}
	}
	return nil
}

func splitTerm(t string) (field, value string, ok bool) {
	for i := 0; i < len(t); i++ {
		if t[i] == '=' {
			return t[:i], t[i+1:], true
		}
	}
	return "", "", false
}
