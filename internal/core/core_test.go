package core

import (
	"strings"
	"testing"
	"time"

	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/greedy"
	"vexus/internal/mining"
	"vexus/internal/mining/birch"
)

// buildEngine creates a small DB-AUTHORS engine shared by tests.
func buildEngine(t testing.TB) *Engine {
	t.Helper()
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPipelineConfig()
	cfg.MinSupportFrac = 0.03
	eng, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sessionCfg() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 10 * time.Millisecond
	return cfg
}

func TestBuildPipeline(t *testing.T) {
	eng := buildEngine(t)
	if eng.Space.Len() == 0 {
		t.Fatal("no groups discovered")
	}
	if eng.Miner != "lcm" {
		t.Fatalf("miner = %q", eng.Miner)
	}
	if eng.Index.Fraction() != 0.10 {
		t.Fatalf("index fraction = %v", eng.Index.Fraction())
	}
	if eng.Timings.Mine <= 0 {
		t.Fatal("mining timing not recorded")
	}
	// Group labels resolve through the vocabulary.
	label := eng.GroupLabel(0)
	if label == "" || !strings.Contains(label, "=") {
		t.Fatalf("label = %q", label)
	}
}

func TestBuildWithCustomMiner(t *testing.T) {
	d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPipelineConfig()
	bc := birch.DefaultConfig()
	bc.K = 6
	cfg.Miner = birch.New(bc)
	cfg.Encode = mining.EncodeOptions{Demographics: true}
	eng, err := Build(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Miner != "birch" {
		t.Fatalf("miner = %q", eng.Miner)
	}
	if eng.Space.Len() == 0 || eng.Space.Len() > 6 {
		t.Fatalf("birch groups = %d", eng.Space.Len())
	}
}

func TestBuildEmptyDataFails(t *testing.T) {
	s := dataset.MustSchema(dataset.Attribute{
		Name: "g", Kind: dataset.Categorical, Values: []string{"a"}})
	d, err := dataset.NewBuilder(s).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d, DefaultPipelineConfig()); err == nil {
		t.Fatal("empty dataset produced an engine")
	}
}

func TestSessionStartAndExplore(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	shown := s.Start()
	if len(shown) != 7 {
		t.Fatalf("initial display = %d groups, want k=7", len(shown))
	}
	if s.Focal() != -1 {
		t.Fatal("initial focal should be -1")
	}
	// Initial display is the largest groups, descending.
	for i := 1; i < len(shown); i++ {
		if eng.Space.Group(shown[i]).Size() > eng.Space.Group(shown[i-1]).Size() {
			t.Fatal("initial display not size-ordered")
		}
	}

	sel, err := s.Explore(shown[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) == 0 {
		t.Fatal("explore returned no groups")
	}
	if s.Focal() != shown[0] {
		t.Fatalf("focal = %d, want %d", s.Focal(), shown[0])
	}
	if len(s.History()) != 2 {
		t.Fatalf("history = %d steps", len(s.History()))
	}
	if s.Feedback().IsEmpty() {
		t.Fatal("explore did not reinforce feedback")
	}
}

func TestSessionExploreInvalid(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	if _, err := s.Explore(-1); err == nil {
		t.Fatal("negative gid accepted")
	}
	if _, err := s.Explore(1 << 30); err == nil {
		t.Fatal("huge gid accepted")
	}
}

func TestSessionExploreWithoutStart(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	// Explore auto-starts.
	if _, err := s.Explore(0); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 2 {
		t.Fatalf("history = %d", len(s.History()))
	}
}

func TestStartFrom(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	shown, err := s.StartFrom(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(shown) != 2 || shown[0] != 2 || shown[1] != 5 {
		t.Fatalf("shown = %v", shown)
	}
	if _, err := s.StartFrom(1 << 30); err == nil {
		t.Fatal("invalid seed group accepted")
	}
}

func TestBacktrackRestoresEverything(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	first, err := s.Explore(s.Shown()[0])
	if err != nil {
		t.Fatal(err)
	}
	fbAfter1 := s.Feedback().Snapshot()
	if len(first.IDs) == 0 {
		t.Skip("no candidates")
	}
	if _, err := s.Explore(first.IDs[0]); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 3 {
		t.Fatalf("history = %d", len(s.History()))
	}

	if err := s.Backtrack(1); err != nil {
		t.Fatal(err)
	}
	if len(s.History()) != 2 {
		t.Fatalf("history after backtrack = %d", len(s.History()))
	}
	// Display and feedback rewound to step 1.
	gotShown := s.Shown()
	for i, id := range first.IDs {
		if gotShown[i] != id {
			t.Fatalf("shown not restored: %v vs %v", gotShown, first.IDs)
		}
	}
	for _, e := range fbAfter1.Top(100) {
		var got float64
		if e.IsUser {
			got = s.Feedback().UserScore(e.User)
		} else {
			got = s.Feedback().TermScore(e.Term)
		}
		if got != e.Score {
			t.Fatalf("feedback not restored for %+v: %v", e, got)
		}
	}

	if err := s.Backtrack(99); err == nil {
		t.Fatal("invalid step accepted")
	}
}

func TestViewsColorShares(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	views := s.Views("gender")
	if len(views) != 7 {
		t.Fatalf("views = %d", len(views))
	}
	for _, v := range views {
		if v.Size <= 0 || v.Label == "" {
			t.Fatalf("bad view %+v", v)
		}
		if len(v.ColorShares) != 3 { // female, male, missing
			t.Fatalf("color shares = %v", v.ColorShares)
		}
		sum := 0.0
		for _, sh := range v.ColorShares {
			sum += sh
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("shares sum = %v", sum)
		}
	}
	// Unknown attribute: no colors, no panic.
	plain := s.Views("")
	if plain[0].ColorShares != nil {
		t.Fatal("uncolored view has shares")
	}
}

func TestContextAndUnlearn(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	if _, err := s.Explore(s.Shown()[0]); err != nil {
		t.Fatal(err)
	}
	ctx := s.Context(5)
	if len(ctx) == 0 {
		t.Fatal("context empty after explore")
	}
	for _, e := range ctx {
		if e.Label == "" || e.Score <= 0 {
			t.Fatalf("bad context entry %+v", e)
		}
	}
	// Unlearn the top term.
	var top ContextEntry
	for _, e := range ctx {
		if !e.IsUser {
			top = e
			break
		}
	}
	if top.Label != "" {
		parts := strings.SplitN(top.Label, "=", 2)
		if err := s.Unlearn(parts[0], parts[1]); err != nil {
			t.Fatal(err)
		}
		for _, e := range s.Context(100) {
			if e.Label == top.Label {
				t.Fatal("unlearned term still in context")
			}
		}
	}
	if err := s.Unlearn("nosuch", "value"); err == nil {
		t.Fatal("unknown term unlearned")
	}
	if err := s.UnlearnUser("ghost"); err == nil {
		t.Fatal("unknown user unlearned")
	}
	if err := s.UnlearnUser(eng.Data.Users[0].ID); err != nil {
		t.Fatal(err)
	}
}

func TestMemo(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	if err := s.BookmarkGroup(1); err != nil {
		t.Fatal(err)
	}
	if err := s.BookmarkGroup(1); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := s.BookmarkUser(3); err != nil {
		t.Fatal(err)
	}
	m := s.Memo()
	if len(m.Groups()) != 1 || len(m.Users()) != 1 {
		t.Fatalf("memo = %v / %v", m.Groups(), m.Users())
	}
	if !m.HasGroup(1) || !m.HasUser(3) || m.HasUser(4) {
		t.Fatal("memo membership wrong")
	}
	m.RemoveUser(3)
	if m.HasUser(3) || len(m.Users()) != 0 {
		t.Fatal("remove failed")
	}
	m.RemoveUser(3) // no-op
	if err := s.BookmarkGroup(-1); err == nil {
		t.Fatal("invalid group bookmarked")
	}
	if err := s.BookmarkUser(1 << 30); err == nil {
		t.Fatal("invalid user bookmarked")
	}
}

func TestFocusView(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	gid := s.Shown()[0]
	fv, err := s.Focus(gid, "gender")
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Members) != eng.Space.Group(gid).Size() {
		t.Fatalf("members = %d", len(fv.Members))
	}
	if fv.SelectedCount() != len(fv.Members) {
		t.Fatal("initial selection should be everyone")
	}
	attrs := fv.Attributes()
	if len(attrs) != eng.Data.Schema.NumAttrs() {
		t.Fatalf("attributes = %v", attrs)
	}
	labels, counts, err := fv.Histogram("gender")
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || len(counts) != 3 {
		t.Fatalf("gender histogram = %v %v", labels, counts)
	}
	total := counts[0] + counts[1] + counts[2]
	if total != len(fv.Members) {
		t.Fatalf("histogram total = %d, members = %d", total, len(fv.Members))
	}

	// Brush to females only: the member table shrinks accordingly.
	if err := fv.Brush("gender", "female"); err != nil {
		t.Fatal(err)
	}
	if fv.SelectedCount() != counts[0] {
		t.Fatalf("selected %d, want %d females", fv.SelectedCount(), counts[0])
	}
	for _, u := range fv.SelectedUsers() {
		if v, _ := eng.Data.DemoValue(u, eng.Data.Schema.AttrIndex("gender")); v != "female" {
			t.Fatalf("non-female user %d in selection", u)
		}
	}
	// Coordinated views: the *other* histograms shrink too.
	_, topicCounts, err := fv.Histogram("topic")
	if err != nil {
		t.Fatal(err)
	}
	topicTotal := 0
	for _, c := range topicCounts {
		topicTotal += c
	}
	if topicTotal != fv.SelectedCount() {
		t.Fatalf("topic histogram total %d != selected %d", topicTotal, fv.SelectedCount())
	}

	if err := fv.ClearBrush("gender"); err != nil {
		t.Fatal(err)
	}
	if fv.SelectedCount() != len(fv.Members) {
		t.Fatal("clear brush did not restore")
	}

	// Errors.
	if err := fv.Brush("nosuch", "x"); err == nil {
		t.Fatal("unknown attribute brushed")
	}
	if err := fv.Brush("gender", "robot"); err == nil {
		t.Fatal("unknown value brushed")
	}
	if _, _, err := fv.Histogram("nosuch"); err == nil {
		t.Fatal("unknown histogram served")
	}
	if err := fv.ClearBrush("nosuch"); err == nil {
		t.Fatal("unknown clear accepted")
	}
}

func TestFocusProjection(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	fv, err := s.Focus(s.Shown()[0], "topic")
	if err != nil {
		t.Fatal(err)
	}
	if fv.Projection == nil {
		t.Fatal("no projection on a large group")
	}
	if len(fv.Projection.Points) != len(fv.Members) {
		t.Fatalf("points = %d, members = %d",
			len(fv.Projection.Points), len(fv.Members))
	}
	if fv.ClassAttr != "topic" {
		t.Fatalf("class attr = %q", fv.ClassAttr)
	}
}

func TestFocusTable(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	fv, err := s.Focus(s.Shown()[0], "")
	if err != nil {
		t.Fatal(err)
	}
	rows := fv.Table(10)
	if len(rows) == 0 || len(rows) > 10 {
		t.Fatalf("table = %d rows", len(rows))
	}
	// Sorted by descending activity.
	for i := 1; i < len(rows); i++ {
		if rows[i].NumAct > rows[i-1].NumAct {
			t.Fatal("table not activity-sorted")
		}
	}
	if rows[0].ID == "" || len(rows[0].Demo) != eng.Data.Schema.NumAttrs() {
		t.Fatalf("bad row %+v", rows[0])
	}
}

func TestFocusInvalidInputs(t *testing.T) {
	eng := buildEngine(t)
	s := eng.NewSession(sessionCfg())
	s.Start()
	if _, err := s.Focus(-1, ""); err == nil {
		t.Fatal("invalid group focused")
	}
	if _, err := s.Focus(0, "nosuch"); err == nil {
		t.Fatal("invalid class attribute accepted")
	}
}
