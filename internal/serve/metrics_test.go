package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"vexus/internal/telemetry"
)

// ---------------------------------------------------------------------------
// Observability surface: liveness/readiness, the Prometheus
// exposition, and the disabled-registry escape hatch.

func TestHealthzReadyz(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	res, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: status %d body %q", res.StatusCode, body)
	}

	res, err = http.Get(ts.URL + "/api/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || string(body) != "ready\n" {
		t.Fatalf("readyz: status %d body %q", res.StatusCode, body)
	}
}

// TestMetricsExposition drives one of everything through the public
// API and asserts the scrape carries the request, action, session and
// residency series the dashboards (and the CI smoke) key on.
func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	st, _ := createV1Session(t, ts)
	sid := st.Session
	res0, err := http.Post(ts.URL+"/api/v1/sessions/"+sid+"/actions", "application/json",
		strings.NewReader(`[{"op":"explore","group":0}]`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res0.Body)
	res0.Body.Close()
	if res0.StatusCode != http.StatusOK {
		t.Fatalf("actions: status %d", res0.StatusCode)
	}
	if res, err := http.Get(ts.URL + "/api/v1/sessions/" + sid + "/state"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		`vexus_http_requests_total{route="POST /api/v1/sessions",status="201"} 1`,
		`vexus_http_requests_total{route="POST /api/v1/sessions/{sid}/actions",status="200"} 1`,
		`vexus_http_request_seconds_count{route="GET /api/v1/sessions/{sid}/state"} 1`,
		`vexus_action_apply_seconds_count{op="explore"} 1`,
		"vexus_sessions_created_total 1",
		"vexus_sessions_live 1",
		"vexus_engines_resident 1",
		"# TYPE vexus_http_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape is missing %q", want)
		}
	}
	// The scrape itself must not count: a second scrape still reports
	// the same request totals.
	if strings.Contains(text, `route="GET /metrics"`) {
		t.Error("/metrics instrumented itself")
	}
}

// TestMetricsDisabled pins the zero-overhead contract surface: under
// telemetry.Disabled the scrape is empty and the trace header is not
// minted (Routes() registered the raw handlers).
func TestMetricsDisabled(t *testing.T) {
	scfg := DefaultConfig()
	scfg.Telemetry = telemetry.Disabled
	_, ts := testServer(t, scfg)

	st, _ := createV1Session(t, ts)
	res, err := http.Get(ts.URL + "/api/v1/sessions/" + st.Session + "/state")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(telemetry.TraceHeader); got != "" {
		t.Fatalf("disabled server minted trace %q", got)
	}

	res, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if len(raw) != 0 {
		t.Fatalf("disabled registry exposed %q", raw)
	}
}

// TestTracePropagation: a caller-supplied trace id is adopted and
// reflected; absent one, the middleware mints an id.
func TestTracePropagation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/datasets", nil)
	req.Header.Set(telemetry.TraceHeader, "cafe0123cafe0123")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(telemetry.TraceHeader); got != "cafe0123cafe0123" {
		t.Fatalf("trace not adopted: got %q", got)
	}

	res, err = http.Get(ts.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if got := res.Header.Get(telemetry.TraceHeader); len(got) != 16 {
		t.Fatalf("minted trace %q, want 16 hex chars", got)
	}
}
