package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/dataset"
)

// serveIngestBatch is the canonical test batch against the dbauthors
// fixture: two new authors plus a new action for an existing one.
func serveIngestBatch() core.IngestBatch {
	return core.IngestBatch{
		Users: []dataset.NewUser{
			{ID: "fresh1", Demo: map[string]string{
				"gender": "female", "seniority": "junior", "country": "fr", "topic": "databases",
			}, Numeric: map[string]float64{"pubrate": 3}},
			{ID: "fresh2", Demo: map[string]string{
				"gender": "male", "seniority": "senior", "country": "us", "topic": "data mining",
			}, Numeric: map[string]float64{"pubrate": 40}},
		},
		Actions: []dataset.NewAction{
			{User: "fresh1", Item: "SIGMOD", Value: 1, Time: 2018},
			{User: "fresh2", Item: "KDD", Value: 1, Time: 2018},
			{User: "author00001", Item: "VLDB", Value: 1, Time: 2018},
		},
	}
}

func postIngest(t testing.TB, ts *httptest.Server, name, query string, b core.IngestBatch) (IngestResult, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/v1/datasets/"+name+"/ingest"+query, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var out IngestResult
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
			t.Fatalf("ingest response: %v", err)
		}
	}
	return out, res
}

// datasetRow fetches one dataset's row from GET /api/datasets.
func datasetRow(t testing.TB, ts *httptest.Server, name string) DatasetStatus {
	t.Helper()
	res, err := http.Get(ts.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body struct {
		Default  string          `json:"default"`
		Datasets []DatasetStatus `json:"datasets"`
	}
	if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, row := range body.Datasets {
		if row.Name == name {
			return row
		}
	}
	t.Fatalf("dataset %q not in listing", name)
	panic("unreachable")
}

// TestIngestEndpoint walks the commit path over HTTP: version bump,
// the seq ladder (assign, idempotent replay, gap), validation errors,
// and the listing's engineVersion.
func TestIngestEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	if row := datasetRow(t, ts, "default"); row.Version != 1 {
		t.Fatalf("fresh engine version = %d, want 1", row.Version)
	}

	res, hres := postIngest(t, ts, "default", "", serveIngestBatch())
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", hres.StatusCode)
	}
	if res.Dataset != "default" || res.Seq != 1 || res.EngineVersion != 2 {
		t.Fatalf("ingest result %+v, want seq 1 → engine version 2", res)
	}
	if res.Users != 2 || res.Actions != 3 || res.Groups == 0 {
		t.Fatalf("ingest result %+v: wrong batch accounting", res)
	}
	row := datasetRow(t, ts, "default")
	if row.Version != 2 || row.Users != 402 {
		t.Fatalf("listing after ingest: version %d users %d, want 2 and 402", row.Version, row.Users)
	}

	// Idempotent replay: the committed seq acks without re-applying.
	rb := serveIngestBatch()
	rb.Seq = 1
	res, hres = postIngest(t, ts, "default", "", rb)
	if hres.StatusCode != http.StatusOK || !res.AlreadyApplied || res.EngineVersion != 2 {
		t.Fatalf("replay: status %d result %+v, want alreadyApplied at version 2", hres.StatusCode, res)
	}

	// A skipped seq is a conflict, not a silent reorder.
	gap := serveIngestBatch()
	gap.Seq = 7
	if _, hres = postIngest(t, ts, "default", "", gap); hres.StatusCode != http.StatusConflict {
		t.Fatalf("seq gap: status %d, want 409", hres.StatusCode)
	}

	if _, hres = postIngest(t, ts, "default", "", core.IngestBatch{}); hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", hres.StatusCode)
	}
	bad := core.IngestBatch{Users: []dataset.NewUser{
		{ID: "zz", Demo: map[string]string{"gender": "robot"}},
	}}
	if _, hres = postIngest(t, ts, "default", "", bad); hres.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-domain value: status %d, want 400", hres.StatusCode)
	}
	if _, hres = postIngest(t, ts, "nope", "", serveIngestBatch()); hres.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", hres.StatusCode)
	}
	if row := datasetRow(t, ts, "default"); row.Version != 2 {
		t.Fatalf("failed ingests advanced the version to %d", row.Version)
	}

	// Sessions created after the swap explore the new generation.
	st, _ := createV1Session(t, ts)
	if len(st.Shown) == 0 {
		t.Fatal("post-ingest session shows no groups")
	}
}

// TestIngestNoticeAndETagSeamless pins the targeted-invalidation
// contract end to end: only a session whose display intersects the
// change hears about an ingest, the notice frame carries no event id,
// and the session's diff ids / ETags continue unbroken across it.
func TestIngestNoticeAndETagSeamless(t *testing.T) {
	s, ts := testServer(t, Config{})
	b := serveIngestBatch()

	// Local oracle: find a group the batch provably touches.
	base := testEngine(t)
	ne, err := base.Ingest(b)
	if err != nil {
		t.Fatal(err)
	}
	gid := -1
	for i := 0; i < base.Space.Len(); i++ {
		if core.GroupTouched(base.Space.Group(i), ne.Space) {
			gid = i
			break
		}
	}
	if gid < 0 {
		t.Fatal("test batch touches no group")
	}

	st, _ := createV1Session(t, ts)
	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	if ev := stream.next(t); ev.name != "resync" {
		t.Fatalf("first event %q, want resync", ev.name)
	}

	// Focus the session on the group the batch is known to touch.
	if _, ares := act(t, ts, st.Session, action.Action{Op: action.Explore, Group: gid}); ares.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d", ares.StatusCode)
	}
	if ev := stream.next(t); ev.name != "diff" || ev.id != "2" {
		t.Fatalf("explore event %q id %q, want diff id 2", ev.name, ev.id)
	}

	// Deterministic negative: a rebuild of the same data has an
	// identical space, so no group reads as touched and the notice
	// reaches nobody — targeted invalidation, not broadcast.
	s.cat.mu.Lock()
	reg := s.cat.entries["default"].reg
	s.cat.mu.Unlock()
	same, err := core.Build(base.Data, base.Config())
	if err != nil {
		t.Fatal(err)
	}
	if n := notifyTouched(reg, same, "default", 1); n != 0 {
		t.Fatalf("identical engine notified %d sessions, want 0", n)
	}

	// The real ingest: the focal group is touched, so exactly this
	// session is notified.
	res, hres := postIngest(t, ts, "default", "", b)
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", hres.StatusCode)
	}
	if res.Notified != 1 {
		t.Fatalf("ingest notified %d sessions, want exactly 1", res.Notified)
	}
	ev := stream.next(t)
	if ev.name != "notice" {
		t.Fatalf("post-ingest event %q, want notice", ev.name)
	}
	if ev.id != "" {
		t.Fatalf("notice carries id %q — it would advance resume cursors", ev.id)
	}
	var note struct {
		Dataset       string `json:"dataset"`
		EngineVersion uint64 `json:"engineVersion"`
		Seq           uint64 `json:"seq"`
		Reason        string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(ev.data), &note); err != nil {
		t.Fatalf("notice payload: %v", err)
	}
	if note.Dataset != "default" || note.EngineVersion != 2 || note.Seq != 1 || note.Reason == "" {
		t.Fatalf("notice payload %+v", note)
	}

	// Seamlessness: the session stays pinned to its engine and the next
	// mutation is simply id 3 — the notice moved nothing.
	_, ares := act(t, ts, st.Session, action.Action{Op: action.Explore, Group: gid})
	if ares.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest explore: status %d", ares.StatusCode)
	}
	if got := etagMut(t, ares.Header.Get("ETag")); got != 3 {
		t.Fatalf("post-ingest ETag mutation %d, want 3", got)
	}
	if ev := stream.next(t); ev.name != "diff" || ev.id != "3" {
		t.Fatalf("post-ingest event %q id %q, want diff id 3", ev.name, ev.id)
	}
}

// TestIngestPreviewEndpoint: ?preview=1 dry-runs the batch through the
// streaming miner and commits nothing.
func TestIngestPreviewEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	raw, err := json.Marshal(serveIngestBatch())
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/v1/datasets/default/ingest?preview=1", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("preview status %d", res.StatusCode)
	}
	var out IngestPreviewResult
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.EngineVersion != 1 || out.Support <= 0 || out.Epsilon <= 0 {
		t.Fatalf("preview header %+v", out)
	}
	if len(out.Candidates) == 0 {
		t.Fatal("preview found no candidates at the engine's support level")
	}
	for _, c := range out.Candidates {
		if c.Label == "" || c.Count <= 0 {
			t.Fatalf("malformed candidate %+v", c)
		}
	}
	if row := datasetRow(t, ts, "default"); row.Version != 1 {
		t.Fatalf("preview committed: version %d", row.Version)
	}
}
