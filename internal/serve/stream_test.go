package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"vexus/internal/action"
)

// ---------------------------------------------------------------------------
// SSE test client: a real streaming GET plus a line-parsing goroutine,
// so tests assert on whole events instead of raw chunks.

type sseEvent struct {
	id   string
	name string
	data string
}

type sseStream struct {
	res    *http.Response
	events chan sseEvent
}

// openStream attaches to url (optionally resuming after lastEventID)
// and pumps parsed events; on a non-200 the response is returned for
// the caller to assert on and the event channel is closed immediately.
func openStream(t testing.TB, url, lastEventID string) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	res, err := http.DefaultClient.Do(req) // DefaultClient: no timeout
	if err != nil {
		t.Fatal(err)
	}
	s := &sseStream{res: res, events: make(chan sseEvent, 64)}
	t.Cleanup(s.close)
	if res.StatusCode != http.StatusOK {
		close(s.events)
		return s
	}
	go func() {
		defer close(s.events)
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.name != "" {
					s.events <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, ":"): // heartbeat comment
			case strings.HasPrefix(line, "id: "):
				ev.id = line[len("id: "):]
			case strings.HasPrefix(line, "event: "):
				ev.name = line[len("event: "):]
			case strings.HasPrefix(line, "data: "):
				ev.data = line[len("data: "):]
			}
		}
	}()
	return s
}

func (s *sseStream) close() { s.res.Body.Close() }

// next waits for the next event; fails the test on timeout or EOF.
func (s *sseStream) next(t testing.TB) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if !ok {
			t.Fatal("stream ended before the expected event")
		}
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an SSE event")
	}
	panic("unreachable")
}

// ended reports whether the stream terminates (EOF) without another
// event — the expected epilogue after a terminal closed frame.
func (s *sseStream) ended(t testing.TB) bool {
	t.Helper()
	select {
	case ev, ok := <-s.events:
		if ok {
			t.Fatalf("expected stream end, got event %q id=%s", ev.name, ev.id)
		}
		return true
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for stream end")
	}
	return false
}

// etagMut extracts the mutation counter from a `"<sid>.<n>"` ETag.
func etagMut(t testing.TB, etag string) uint64 {
	t.Helper()
	i := strings.LastIndex(etag, ".")
	if i < 0 || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("malformed etag %q", etag)
	}
	n, err := strconv.ParseUint(etag[i+1:len(etag)-1], 10, 64)
	if err != nil {
		t.Fatalf("malformed etag %q: %v", etag, err)
	}
	return n
}

// TestStreamDiffIDsMatchETags is the cursor-unification contract: a
// fresh attach opens with one full-state resync at the current
// counter, and every subsequent mutation arrives as a diff event whose
// id equals the mutation counter the action response's ETag carries.
func TestStreamDiffIDsMatchETags(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, etag := createV1Session(t, ts)

	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	ev := stream.next(t)
	if ev.name != "resync" {
		t.Fatalf("first event %q, want resync", ev.name)
	}
	if want := fmt.Sprint(etagMut(t, etag)); ev.id != want {
		t.Fatalf("resync id %s, want %s (create ETag %s)", ev.id, want, etag)
	}
	var snap stateDTO
	if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
		t.Fatalf("resync payload: %v", err)
	}
	if snap.Session != st.Session {
		t.Fatalf("resync session %q, want %q", snap.Session, st.Session)
	}

	cur := st
	for i := 0; i < 3; i++ {
		next, res := act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
		wantID := etagMut(t, res.Header.Get("ETag"))
		ev := stream.next(t)
		if ev.name != "diff" {
			t.Fatalf("event %d: name %q, want diff", i, ev.name)
		}
		if ev.id != fmt.Sprint(wantID) {
			t.Fatalf("event %d: id %s, want %d", i, ev.id, wantID)
		}
		var d action.Diff
		if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
			t.Fatalf("diff payload: %v", err)
		}
		if d.Mutations != wantID {
			t.Fatalf("diff.mutations %d, want %d", d.Mutations, wantID)
		}
		if d.Op != action.Explore {
			t.Fatalf("diff.op %q, want explore", d.Op)
		}
		cur = next
	}
}

// TestStreamResume pins Last-Event-ID semantics: a resume within the
// replay ring receives exactly the missed diffs (no resync, no dupes,
// no gaps) and then goes live; a resume at the head preloads nothing.
func TestStreamResume(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := createV1Session(t, ts)

	cur := st
	for i := 0; i < 4; i++ { // mutations 2..5
		cur, _ = act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
	}

	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "2")
	for want := uint64(3); want <= 5; want++ {
		ev := stream.next(t)
		if ev.name != "diff" || ev.id != fmt.Sprint(want) {
			t.Fatalf("resume replay: got %q id=%s, want diff id=%d", ev.name, ev.id, want)
		}
	}
	// The stream is live after the replay: the next mutation flows.
	cur, _ = act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
	if ev := stream.next(t); ev.name != "diff" || ev.id != "6" {
		t.Fatalf("post-replay: got %q id=%s, want diff id=6", ev.name, ev.id)
	}

	// Resume at the head: nothing to replay, straight to live. The
	// cursor also rides ?lastEventID= for clients that cannot set the
	// reconnect header (a fresh EventSource).
	head := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events?"+
		url.Values{"lastEventID": {"6"}}.Encode(), "")
	act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
	if ev := head.next(t); ev.name != "diff" || ev.id != "7" {
		t.Fatalf("head resume: got %q id=%s, want diff id=7", ev.name, ev.id)
	}
}

// TestStreamResumeBeyondRing pins the drop-to-resync contract: when
// the gap since Last-Event-ID exceeds the replay ring, the server
// answers with one full-snapshot resync at the current counter — it
// never serves a gapped diff sequence.
func TestStreamResumeBeyondRing(t *testing.T) {
	_, ts := testServer(t, Config{StreamReplay: 2})
	st, _ := createV1Session(t, ts)

	cur := st
	var last string
	for i := 0; i < 5; i++ { // mutations 2..6; ring holds only {5,6}
		var res *http.Response
		cur, res = act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
		last = res.Header.Get("ETag")
	}

	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "2")
	ev := stream.next(t)
	if ev.name != "resync" {
		t.Fatalf("beyond-ring resume: got %q, want resync", ev.name)
	}
	if want := fmt.Sprint(etagMut(t, last)); ev.id != want {
		t.Fatalf("resync id %s, want %s", ev.id, want)
	}
	// Still covered: the ring's own tail resumes exactly.
	tail := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "4")
	for want := 5; want <= 6; want++ {
		ev := tail.next(t)
		if ev.name != "diff" || ev.id != fmt.Sprint(want) {
			t.Fatalf("ring tail: got %q id=%s, want diff id=%d", ev.name, ev.id, want)
		}
	}
}

// TestStreamDeleteSendsClosed pins the teardown contract: deleting a
// session delivers a terminal `event: closed` with reason "deleted"
// (carrying no id, so a client's resume cursor stays on the last
// diff), then the stream ends.
func TestStreamDeleteSendsClosed(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := createV1Session(t, ts)
	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	if ev := stream.next(t); ev.name != "resync" {
		t.Fatalf("first event %q, want resync", ev.name)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+st.Session, nil)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	ev := stream.next(t)
	if ev.name != "closed" {
		t.Fatalf("got %q, want closed", ev.name)
	}
	if ev.id != "" {
		t.Fatalf("closed frame carries id %q; it must not advance the resume cursor", ev.id)
	}
	var body struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(ev.data), &body); err != nil || body.Reason != "deleted" {
		t.Fatalf("closed reason %q (err %v), want deleted", body.Reason, err)
	}
	stream.ended(t)

	// A late attach to the dead session is a plain 404, not a hang.
	gone := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	if gone.res.StatusCode != http.StatusNotFound {
		t.Fatalf("attach after delete: status %d, want 404", gone.res.StatusCode)
	}
}

// TestStreamMultiClientConvergence is the collaborative contract over
// HTTP: N attached clients observe the identical diff sequence for an
// interleaved action trail, and every client's final state read is
// byte-identical.
func TestStreamMultiClientConvergence(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := createV1Session(t, ts)

	const clients = 3
	streams := make([]*sseStream, clients)
	for i := range streams {
		streams[i] = openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
		if ev := streams[i].next(t); ev.name != "resync" {
			t.Fatalf("client %d: first event %q, want resync", i, ev.name)
		}
	}

	cur := st
	const steps = 5
	for i := 0; i < steps; i++ {
		g := cur.Shown[i%len(cur.Shown)].ID
		a := action.Action{Op: action.Explore, Group: g}
		if i%2 == 1 {
			a = action.Action{Op: action.BookmarkGroup, Group: g}
		}
		cur, _ = act(t, ts, st.Session, a)
	}

	var wantSeq []sseEvent
	for i := 0; i < clients; i++ {
		var seq []sseEvent
		for j := 0; j < steps; j++ {
			seq = append(seq, streams[i].next(t))
		}
		if i == 0 {
			wantSeq = seq
			for j, ev := range seq {
				if ev.name != "diff" || ev.id != fmt.Sprint(j+2) {
					t.Fatalf("event %d: %q id=%s, want diff id=%d", j, ev.name, ev.id, j+2)
				}
			}
			continue
		}
		for j := range seq {
			if seq[j] != wantSeq[j] {
				t.Fatalf("client %d diverged at event %d:\n got %+v\nwant %+v", i, j, seq[j], wantSeq[j])
			}
		}
	}

	var states [clients]string
	for i := range states {
		res, err := http.Get(ts.URL + "/api/v1/sessions/" + st.Session + "/state")
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
		for sc.Scan() {
			buf.WriteString(sc.Text())
		}
		res.Body.Close()
		states[i] = buf.String()
	}
	for i := 1; i < clients; i++ {
		if states[i] != states[0] {
			t.Fatalf("client %d read a different final state", i)
		}
	}
}

// TestHubOverflowNeverBlocksPublisher is the backpressure contract at
// the hub level (HTTP-level overflow depends on TCP buffering, so the
// bound is pinned where it lives): publish into a full subscriber
// queue returns immediately, marks the subscriber lost exactly once,
// and keeps serving the other subscribers.
func TestHubOverflowNeverBlocksPublisher(t *testing.T) {
	h := newStreamHub(2, 8)
	slow := h.subscribe(nil)
	fast := h.subscribe(nil)

	pub := func(id uint64) {
		done := make(chan struct{})
		go func() {
			h.publish(action.Result{Diff: action.Diff{Mutations: id}})
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("publish %d blocked", id)
		}
	}

	for id := uint64(1); id <= 5; id++ {
		pub(id)
		// Keep fast drained so only slow overflows.
		select {
		case ev := <-fast.queue:
			if ev.id != id {
				t.Fatalf("fast subscriber got id %d, want %d", ev.id, id)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("fast subscriber starved at id %d", id)
		}
	}

	select {
	case <-slow.lost:
	default:
		t.Fatal("slow subscriber not marked lost after overflow")
	}
	select {
	case <-fast.lost:
		t.Fatal("fast subscriber spuriously marked lost")
	default:
	}

	// The lost subscriber re-subscribes (what the serving goroutine does
	// before emitting a resync) and is live again.
	again := h.subscribe(slow)
	pub(6)
	select {
	case ev := <-again.queue:
		if ev.id != 6 {
			t.Fatalf("resubscribed got id %d, want 6", ev.id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("resubscribed subscriber got nothing")
	}

	// And the ring is contiguous over everything published.
	tail, ok := h.tailAfter(3)
	if !ok || len(tail) != 3 || tail[0].id != 4 || tail[2].id != 6 {
		t.Fatalf("tailAfter(3) = %v (ok=%v), want ids 4..6", tail, ok)
	}
}

// TestStreamOverflowDropsToResync drives the overflow recovery end to
// end over HTTP: a subscriber whose queue overflows receives a resync
// at the current counter and the stream continues live afterwards.
func TestStreamOverflowDropsToResync(t *testing.T) {
	srv, ts := testServer(t, Config{StreamQueue: 1})
	st, _ := createV1Session(t, ts)

	stream := openStream(t, ts.URL+"/api/v1/sessions/"+st.Session+"/events", "")
	if ev := stream.next(t); ev.name != "resync" {
		t.Fatalf("first event %q, want resync", ev.name)
	}

	// Overflow the queue at the hub while the serving goroutine is
	// parked: publish under the session lock, as OnDiff does. With
	// queueCap 1 the first publish fills the queue and the second marks
	// the subscriber lost.
	cs, ok := srv.cat.findSession(st.Session)
	if !ok {
		t.Fatal("session vanished")
	}
	cur := st
	for i := 0; i < 3; i++ {
		cur, _ = act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
	}
	_ = cs

	// The client must land on a consistent cursor: some diffs, then —
	// once the overflow hit — exactly one resync whose id is ≥ the last
	// diff seen, then live events. Scan until the resync.
	var lastDiff, resyncAt uint64
	for {
		ev := stream.next(t)
		switch ev.name {
		case "diff":
			id, _ := strconv.ParseUint(ev.id, 10, 64)
			if id <= lastDiff {
				t.Fatalf("diff id %d not after %d", id, lastDiff)
			}
			lastDiff = id
		case "resync":
			resyncAt, _ = strconv.ParseUint(ev.id, 10, 64)
		default:
			t.Fatalf("unexpected event %q", ev.name)
		}
		if resyncAt > 0 {
			break
		}
		if lastDiff >= 4 {
			// All diffs arrived without overflow (scheduling won the
			// race); that is a legal outcome of a bounded queue test.
			return
		}
	}
	if resyncAt < lastDiff {
		t.Fatalf("resync at %d behind last diff %d", resyncAt, lastDiff)
	}
	// Live again after the resync.
	act(t, ts, st.Session, action.Action{Op: action.Explore, Group: cur.Shown[0].ID})
	ev := stream.next(t)
	if ev.name != "diff" && ev.name != "resync" {
		t.Fatalf("stream dead after overflow recovery: %q", ev.name)
	}
}

// TestEvictionPinsStreamingSessions is the regression test for both
// eviction paths reaping sessions with live subscribers: the TTL
// sweeper and the LRU capacity evictor must both skip a session whose
// hub has attached streams, and resume evicting once they detach.
func TestEvictionPinsStreamingSessions(t *testing.T) {
	eng := testEngine(t)

	t.Run("ttl-sweep", func(t *testing.T) {
		reg := newRegistry(eng, fastGreedy(), time.Minute, 0)
		defer reg.close()
		clock := time.Unix(1000, 0)
		reg.now = func() time.Time { return clock }
		cs, err := reg.create()
		if err != nil {
			t.Fatal(err)
		}
		sub := cs.hub.subscribe(nil)
		clock = clock.Add(time.Hour)
		if n := reg.sweep(); n != 0 {
			t.Fatalf("sweep reaped %d sessions under a live stream", n)
		}
		if _, ok := reg.get(cs.id); !ok {
			t.Fatal("streaming session swept")
		}
		clock = clock.Add(time.Hour) // get() above refreshed recency
		cs.hub.unsubscribe(sub)
		if n := reg.sweep(); n != 1 {
			t.Fatalf("sweep after detach reaped %d, want 1", n)
		}
	})

	t.Run("lru-capacity", func(t *testing.T) {
		reg := newRegistry(eng, fastGreedy(), 0, 1)
		defer reg.close()
		clock := time.Unix(1000, 0)
		reg.now = func() time.Time { return clock }
		pinned, err := reg.create()
		if err != nil {
			t.Fatal(err)
		}
		sub := pinned.hub.subscribe(nil)
		clock = clock.Add(time.Hour) // far past minEvictIdle
		if _, err := reg.create(); !errors.Is(err, errServerFull) {
			t.Fatalf("create with the only session pinned: err %v, want errServerFull", err)
		}
		cs2, err := func() (*clientSession, error) {
			pinned.hub.unsubscribe(sub)
			return reg.create()
		}()
		if err != nil {
			t.Fatalf("create after detach: %v", err)
		}
		if _, ok := reg.get(pinned.id); ok {
			t.Fatal("unpinned LRU session survived capacity eviction")
		}
		// The evicted session's streams (none now, but the hub) closed
		// with a final reason.
		if s := pinned.hub.subscribe(nil); s != nil {
			t.Fatal("evicted session's hub still accepts subscribers")
		}
		_ = cs2
	})
}

// TestCatalogEngineEvictionClosesStreams pins satellite #3: when the
// catalog's resident-engine cap evicts a dataset, sessions die loudly —
// every attached stream receives `event: closed` with the eviction
// reason before teardown.
func TestCatalogEngineEvictionClosesStreams(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 1)

	a, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create authors session: status %d", res.StatusCode)
	}
	stream := openStream(t, ts.URL+"/api/v1/sessions/"+a.Session+"/events", "")
	if ev := stream.next(t); ev.name != "resync" {
		t.Fatalf("first event %q, want resync", ev.name)
	}

	// Touching the second dataset overflows maxResident=1 and evicts
	// authors along with its sessions.
	if _, res := post(t, ts, "/api/session", url.Values{"dataset": {"books"}}); res.StatusCode != http.StatusOK {
		t.Fatalf("create books session: status %d", res.StatusCode)
	}

	ev := stream.next(t)
	if ev.name != "closed" {
		t.Fatalf("got %q, want closed", ev.name)
	}
	var body struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal([]byte(ev.data), &body); err != nil || body.Reason != "dataset evicted" {
		t.Fatalf("closed reason %q (err %v), want 'dataset evicted'", body.Reason, err)
	}
	stream.ended(t)
}
