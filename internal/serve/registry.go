package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/greedy"
)

// errServerFull means the registry is at capacity and every session is
// recently active, so evicting any of them would cut off a live
// explorer. Callers should surface 503.
var errServerFull = errors.New("session capacity reached and all sessions are active")

// errDuplicateSession means a caller-chosen session id (the cluster
// create/import path) is already live here. Callers surface 409.
var errDuplicateSession = errors.New("session id already exists")

// errVersionGone means a migration import asked for an engine version
// this registry no longer retains (restarted since, or more than
// engineHistoryCap ingests ago). Callers surface 409 — the migration
// fails closed and the source keeps serving.
var errVersionGone = errors.New("engine version no longer resident")

// engineHistoryCap bounds how many superseded engine versions a
// registry retains after ingests. Sessions are pinned to the version
// they started on, and a migrating session must find its version on
// the new owner — every shard ingests the same batches, so retaining
// recent generations makes drain-after-ingest work without re-aiming
// anyone. Engines are immutable and shared, so the cost is memory for
// generations nobody may hold anymore; the cap keeps a long-lived
// server from accreting every generation since start.
const engineHistoryCap = 8

// defaultMinEvictIdle is how long a session must have been idle before
// the capacity evictor may take it: without this floor, a burst of
// anonymous session creates would evict every legitimate explorer.
const defaultMinEvictIdle = 10 * time.Second

// clientSession is one explorer's isolated state — an action.Session
// (the core session, the open STATS focus view, the mutation counter
// and the action log), guarded by its own mutex so concurrent requests
// to the *same* session serialize while requests to different sessions
// run fully in parallel — the engine underneath is immutable after
// Build and shared by all sessions of the same dataset. Every
// mutation, legacy or v1, goes through action.Apply, which advances
// the mutation counter the /api/state ETag derives from.
type clientSession struct {
	id      string
	dataset string       // catalog name of the dataset this session explores
	eng     *core.Engine // the engine the session runs over

	// hub fans the session's diff stream out to SSE subscribers and
	// holds the Last-Event-ID replay ring. It has its own lock (order:
	// mu before hub.mu); a nonzero subscriber count pins the session
	// against TTL/LRU eviction — an idle-watching analyst mutates
	// nothing, but their stream is live use.
	hub *streamHub

	mu  sync.Mutex
	act *action.Session
}

// etag renders the current validator from the action layer's mutation
// counter; the caller must hold mu. Diff.Mutations carries the same
// number, so a client consuming batch diffs always knows the validator
// its cached state corresponds to.
func (cs *clientSession) etag() string {
	return `"` + cs.id + "." + strconv.FormatUint(cs.act.Mutations, 10) + `"`
}

// registry owns the live sessions: creation, lookup-with-touch, LRU
// capacity eviction, and TTL sweeping of idle sessions. Its mutex
// covers only the map and the recency bookkeeping — never the
// per-session work — so the registry is a few map operations on every
// request, not a global serialization point.
type registry struct {
	// eng is the engine *new* sessions start on — the dataset's current
	// version. Guarded by mu: an ingest swaps it (swapEngine) while
	// creates read it. Existing sessions keep the pointer they were
	// created with (clientSession.eng); engine versions are immutable,
	// so a session pinned to an older version keeps serving it
	// unchanged until the session ends.
	eng *core.Engine
	// history retains superseded engine versions, keyed by Version():
	// swapEngine records the outgoing engine here (bounded by
	// engineHistoryCap, oldest first out) so a migration import can pin
	// its replayed session to the exact generation it was exploring on
	// the source shard. Guarded by mu; nil until the first swap.
	history map[uint64]*core.Engine
	cfg     greedy.Config
	// dataset is the catalog name stamped onto every session this
	// registry creates ("default" in single-engine deployments; ""
	// only when a registry is constructed directly, as tests do).
	dataset string

	// streamQueue / streamReplay size each session's SSE subscriber
	// queues and replay ring (0 = package defaults); the catalog wires
	// them from Config.
	streamQueue  int
	streamReplay int

	// met is the catalog's telemetry bundle; nil when a registry is
	// constructed directly (tests), so every touch is guarded.
	met *serverMetrics

	mu           sync.Mutex
	byID         map[string]*sessionEntry
	ttl          time.Duration
	max          int
	minEvictIdle time.Duration
	now          func() time.Time // injectable for sweeper/eviction tests
	stopOnce     sync.Once
	stop         chan struct{}
}

// sessionEntry pairs a session with its recency stamp (guarded by
// registry.mu, not the session mutex, so touching is cheap).
type sessionEntry struct {
	cs       *clientSession
	lastUsed time.Time
}

// newRegistry builds a session registry; max <= 0 means unlimited
// sessions (mirroring ttl <= 0 = never expire).
func newRegistry(eng *core.Engine, cfg greedy.Config, ttl time.Duration, max int) *registry {
	return &registry{
		eng:          eng,
		cfg:          cfg,
		byID:         make(map[string]*sessionEntry),
		ttl:          ttl,
		max:          max,
		minEvictIdle: defaultMinEvictIdle,
		now:          time.Now,
		stop:         make(chan struct{}),
	}
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("vexus-server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// NewSessionID mints a fresh 128-bit hex session id. Exported for the
// cluster gateway, which draws ids itself so it can place a session on
// the shard its rendezvous hash owns before the session exists.
func NewSessionID() string { return newSessionID() }

// sessions snapshots the live sessions, for the shard residency
// listing; the slice is a copy, safe to use after the lock drops.
func (r *registry) sessions() []*clientSession {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*clientSession, 0, len(r.byID))
	for _, e := range r.byID {
		out = append(out, e.cs)
	}
	return out
}

// create starts a fresh exploration session. At capacity (max > 0)
// the least-recently-used session is evicted first — an interactive
// system prefers serving a new explorer over preserving an abandoned
// tab — but only if it has been idle at least minEvictIdle: when every
// session is actively in use, create fails with errServerFull instead
// of letting a creation burst evict live explorers. The capacity check
// runs before session construction, so a rejected burst costs a map
// lookup, not an engine walk.
func (r *registry) create() (*clientSession, error) {
	return r.createWithID(newSessionID())
}

// createWithID is create with a caller-chosen session id — the cluster
// path, where the gateway picks the id so that rendezvous hashing of
// the id routes every later request to this shard (and migration can
// re-create the session under the same id on a new owner). A live
// duplicate fails with errDuplicateSession; ids never recycle through
// this path because the gateway draws them from the same 128-bit
// space as newSessionID.
func (r *registry) createWithID(id string) (*clientSession, error) {
	return r.createWithIDAt(id, 0)
}

// createWithIDAt is createWithID pinned to a specific engine version —
// the migration import path, where the replayed session must keep
// exploring the generation it started on, whatever this shard has
// ingested since. Version 0 (and the current version) selects the
// current engine; any other version resolves through the retained
// history and fails with errVersionGone when it is no longer there.
func (r *registry) createWithIDAt(id string, version uint64) (*clientSession, error) {
	cs := &clientSession{
		id:      id,
		dataset: r.dataset,
		hub:     newStreamHub(r.streamQueue, r.streamReplay),
	}
	if m := r.met; m != nil {
		// Hand the hub its instruments directly — nil-safe, so the hub
		// never branches on whether telemetry is on.
		cs.hub.subsGauge = m.streamSubscribers
		cs.hub.drops = m.streamDrops
	}
	cs.mu.Lock() // released only once the session is constructed
	r.mu.Lock()
	if _, exists := r.byID[cs.id]; exists {
		r.mu.Unlock()
		return nil, errDuplicateSession
	}
	for r.max > 0 && len(r.byID) >= r.max {
		if !r.evictOldestLocked() {
			r.mu.Unlock()
			return nil, errServerFull
		}
	}
	// The engine read happens under r.mu — a concurrent ingest may be
	// swapping it — and is captured once: the session is pinned to
	// whichever version was current at creation (or, for a migration
	// import, to the exact version the export named).
	cs.eng = r.eng
	if version != 0 && version != r.eng.Version() {
		var ok bool
		if cs.eng, ok = r.history[version]; !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: version %d (current %d)", errVersionGone, version, r.eng.Version())
		}
	}
	r.byID[cs.id] = &sessionEntry{cs: cs, lastUsed: r.now()}
	r.mu.Unlock()
	// Construct outside the registry lock: the slot is reserved, and
	// anything that resolves the id meanwhile blocks on cs.mu until
	// the session exists. The initial display is action #1, so a fresh
	// session's ETag is "<sid>.1", exactly like every later mutation.
	// The fan-out hook attaches before the Start so the replay ring is
	// contiguous from event id 1.
	cs.act = action.New(cs.eng, r.cfg)
	cs.act.OnDiff = cs.hub.publish
	if m := r.met; m != nil {
		if hist := m.actionSeconds; hist != nil {
			cs.act.Observe = func(op action.Kind, d time.Duration) {
				hist.With(string(op)).Observe(d.Seconds())
			}
		}
		m.sessionsCreated.Inc()
	}
	_ = action.ApplyQuiet(cs.act, action.Action{Op: action.Start}) // Start cannot fail
	cs.mu.Unlock()
	return cs, nil
}

// evictOldestLocked removes the least-recently-used entry if it has
// been idle at least minEvictIdle, reporting whether it evicted; the
// caller holds r.mu. Sessions with live SSE subscribers are pinned —
// a watching analyst never posts an action, so lastUsed goes stale,
// but reaping under their stream would cut off a live explorer. A
// linear scan is fine: eviction runs only at capacity or from the
// sweeper, never on the request fast path. Ties on lastUsed break to
// the smallest sid: many sessions share one stamp under a coarse (or
// injected virtual) clock, and map iteration order must not pick the
// victim.
func (r *registry) evictOldestLocked() bool {
	var oldest string
	var oldestAt time.Time
	for id, e := range r.byID {
		if e.cs.hub.subscribers() > 0 {
			continue
		}
		if oldest == "" || e.lastUsed.Before(oldestAt) || (e.lastUsed.Equal(oldestAt) && id < oldest) {
			oldest, oldestAt = id, e.lastUsed
		}
	}
	if oldest == "" || r.now().Sub(oldestAt) < r.minEvictIdle {
		return false
	}
	r.byID[oldest].cs.hub.close(reasonDeleted)
	delete(r.byID, oldest)
	if m := r.met; m != nil {
		m.sessionsEvicted.Inc()
	}
	return true
}

// swapEngine points future session creates at a new engine version.
// Live sessions are untouched — they stay pinned to the version they
// started on (group ids and term ids are not stable across versions,
// so carrying a session's state over would silently re-aim it at
// different groups; targeted notice events tell affected clients to
// start over instead). The outgoing engine is retained in the version
// history so migrating sessions pinned to it can still land here.
func (r *registry) swapEngine(eng *core.Engine) {
	r.mu.Lock()
	if r.history == nil {
		r.history = make(map[uint64]*core.Engine)
	}
	r.history[r.eng.Version()] = r.eng
	for len(r.history) > engineHistoryCap {
		oldest, first := uint64(0), true
		for v := range r.history {
			if first || v < oldest {
				oldest, first = v, false
			}
		}
		delete(r.history, oldest)
	}
	r.eng = eng
	r.mu.Unlock()
}

// get returns the session with the given id, refreshing its recency.
func (r *registry) get(id string) (*clientSession, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	e.lastUsed = r.now()
	return e.cs, true
}

// remove deletes a session; unknown ids are a no-op. A handler already
// holding the session's mutex simply finishes its request against the
// now-unreachable session. Attached streams receive a terminal
// `event: closed` carrying reason — "migrated" tells clients to
// reconnect (their session lives on another shard), anything else is
// final.
func (r *registry) remove(id, reason string) {
	r.mu.Lock()
	e, ok := r.byID[id]
	delete(r.byID, id)
	r.mu.Unlock()
	if ok {
		e.cs.hub.close(reason)
	}
}

// count returns the number of live sessions.
func (r *registry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// sweep evicts every session idle longer than the TTL and returns how
// many were dropped. Sessions with live SSE subscribers are pinned,
// whatever their idle age: delivered events are their activity. ttl <=
// 0 disables sweeping.
func (r *registry) sweep() int {
	if r.ttl <= 0 {
		return 0
	}
	cutoff := r.now().Add(-r.ttl)
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for id, e := range r.byID {
		if e.lastUsed.Before(cutoff) && e.cs.hub.subscribers() == 0 {
			e.cs.hub.close(reasonDeleted)
			delete(r.byID, id)
			n++
		}
	}
	if n > 0 {
		if m := r.met; m != nil {
			m.sessionsExpired.Add(uint64(n))
		}
	}
	return n
}

// startSweeper runs sweep on the given interval until close.
func (r *registry) startSweeper(interval time.Duration) {
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.sweep()
			case <-r.stop:
				return
			}
		}
	}()
}

// closeStreams sends every session's attached streams a terminal
// `event: closed` with the given reason — the teardown signal for
// catalog engine eviction and server shutdown, so a streaming client
// sees why its stream ended instead of a bare hangup.
func (r *registry) closeStreams(reason string) {
	for _, cs := range r.sessions() {
		cs.hub.close(reason)
	}
}

// close stops the sweeper goroutine and tears down any streams still
// attached (idempotent).
func (r *registry) close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.closeStreams(reasonClosing)
}
