package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"vexus/internal/core"
	"vexus/internal/mining/stream"
	"vexus/internal/store"
)

// This file is the live-dataset write path: POST
// /api/v1/datasets/{name}/ingest folds a batch of new users and
// actions into the named dataset's engine. Ingestion follows the same
// discipline as the action log — batches are sequence-numbered against
// the engine version (batch k applies to version k and produces k+1),
// which makes the endpoint replayable: a retry of an already-applied
// seq is acknowledged without re-applying, a gap is rejected with 409,
// and the cluster gateway pins one seq across every shard so they all
// converge on the same version.
//
// Sessions never see their engine change underneath them: each stays
// pinned to the version it started on, and only sessions whose shown
// or focal groups are actually touched by the new data receive an
// advisory `event: notice` on their SSE stream (id-less, so resume
// cursors and `"<sid>.<mutations>"` ETags are untouched). Everyone
// else's stream is byte-identical to a world where the ingest never
// happened.

// maxIngestBody bounds one ingest request body. Batches are meant to
// be incremental — bulk history belongs in the build path.
const maxIngestBody = 8 << 20

// errSeqConflict marks a batch whose seq is ahead of the engine
// version — the client skipped a batch; handlers surface 409.
var errSeqConflict = errors.New("ingest seq ahead of engine version")

// persistError marks an ingest that could not be made durable; the
// engine was NOT swapped, so a retry is safe. Handlers surface 500.
type persistError struct{ err error }

func (p *persistError) Error() string { return "persist ingest: " + p.err.Error() }
func (p *persistError) Unwrap() error { return p.err }

// IngestResult is the response body of a committed (or replayed)
// ingest. Exported so the cluster gateway can decode shard responses
// into the same shape it serves.
type IngestResult struct {
	Dataset       string `json:"dataset"`
	Seq           uint64 `json:"seq"`
	EngineVersion uint64 `json:"engineVersion"`
	// AlreadyApplied marks an idempotent replay: the batch's seq was
	// below the next expected one, so nothing changed.
	AlreadyApplied bool `json:"alreadyApplied,omitempty"`
	Users          int  `json:"users"`
	Actions        int  `json:"actions"`
	// Groups is the new version's group count; NewGroups and
	// ChangedGroups summarize its delta against the previous version.
	Groups        int `json:"groups"`
	NewGroups     int `json:"newGroups"`
	ChangedGroups int `json:"changedGroups"`
	// Notified counts the live sessions whose display was touched by
	// the new data and therefore received a notice event.
	Notified int `json:"notified"`
}

// ingest commits one batch against the named dataset. The rebuild runs
// under the entry's ingestMu — never under catalog.mu — so exploration
// requests proceed throughout; the engine swap at the end is a pointer
// write under catalog.mu.
func (c *Catalog) ingest(name string, b core.IngestBatch) (IngestResult, error) {
	for {
		e, reg, err := c.acquire(name)
		if err != nil {
			return IngestResult{}, err
		}
		e.ingestMu.Lock()
		c.mu.Lock()
		if e.reg != reg || e.eng == nil {
			// Evicted between acquire and here: rebuild and retry.
			c.mu.Unlock()
			e.ingestMu.Unlock()
			continue
		}
		cur, baseFP, snap := e.eng, e.baseFP, e.snap
		c.mu.Unlock()
		res, err := c.applyIngest(e, reg, cur, baseFP, snap, b)
		e.ingestMu.Unlock()
		return res, err
	}
}

// applyIngest is the seq check → rebuild → persist → swap → notify
// ladder; the caller holds e.ingestMu (and nothing else).
func (c *Catalog) applyIngest(e *catalogEntry, reg *registry, cur *core.Engine, baseFP store.Fingerprint, snap string, b core.IngestBatch) (IngestResult, error) {
	res := IngestResult{
		Dataset:       e.name,
		EngineVersion: cur.Version(),
		Users:         len(b.Users),
		Actions:       len(b.Actions),
	}
	next := cur.Version()
	switch {
	case b.Seq == 0:
		b.Seq = next
	case b.Seq < next:
		// A replayed batch: this seq is already folded in. Acknowledge
		// without touching anything — that is what makes gateway
		// retries and crash-recovery replays safe.
		res.Seq = b.Seq
		res.AlreadyApplied = true
		res.Groups = cur.Space.Len()
		return res, nil
	case b.Seq > next:
		return res, fmt.Errorf("%w: batch seq %d, next expected %d", errSeqConflict, b.Seq, next)
	}
	res.Seq = b.Seq

	rebuildStart := time.Now()
	ne, err := cur.Ingest(b)
	if err != nil {
		return res, err
	}
	c.met.ingestRebuild.Observe(time.Since(rebuildStart).Seconds())

	// Durability before visibility: the delta reaches the snapshot
	// before any session can observe the new version, so a crash after
	// a 200 can never lose an acknowledged batch. If in-place append
	// fails (say the base snapshot was never written), fall back to a
	// full compacted rewrite; only when neither lands does the ingest
	// fail — engine unswapped, retry safe.
	if snap != "" {
		head := store.ChainFingerprint(baseFP, ne.Lineage())
		if aerr := store.AppendDeltaFile(snap, b, head); aerr != nil {
			if serr := store.SaveFile(snap, ne, baseFP); serr != nil {
				return res, &persistError{fmt.Errorf("append delta: %v; rewrite snapshot: %w", aerr, serr)}
			}
		}
	}

	swapStart := time.Now()
	c.mu.Lock()
	resident := e.reg == reg
	if resident {
		e.eng = ne
		e.lastUsed = c.now()
	}
	c.mu.Unlock()

	res.EngineVersion = ne.Version()
	res.Groups = ne.Space.Len()
	res.NewGroups, res.ChangedGroups = core.DiffSpaces(cur.Space, ne.Space)

	c.met.ingestBatches.Inc()
	c.met.ingestRows.With("users").Add(uint64(len(b.Users)))
	c.met.ingestRows.With("actions").Add(uint64(len(b.Actions)))
	// Chain length = deltas past the base build; BuildOrLoad compaction
	// resets it on the next cold start.
	c.met.deltaChain.With(e.name).Set(int64(ne.Version() - 1))

	if !resident {
		// The dataset was evicted while we rebuilt. With a snapshot the
		// batch is durable — the next acquire folds the delta in and
		// lands on exactly this version — so the ingest succeeded; the
		// in-memory-only case has nowhere to keep it.
		if snap == "" {
			return res, &persistError{errors.New("dataset evicted mid-ingest and no snapshot directory to persist to")}
		}
		return res, nil
	}
	reg.swapEngine(ne)
	c.met.ingestSwap.Observe(time.Since(swapStart).Seconds())
	res.Notified = notifyTouched(reg, ne, e.name, b.Seq)
	c.met.log.Info("ingest committed",
		"dataset", e.name, "seq", res.Seq, "version", res.EngineVersion,
		"users", res.Users, "actions", res.Actions, "notified", res.Notified)
	return res, nil
}

// notifyTouched sends the advisory notice to exactly the sessions
// whose current display intersects the change. The event carries no id
// — writeSSE omits the id line — so it never advances a client's
// Last-Event-ID cursor and the session's diff stream and ETags remain
// seamless; clients treat it as "the dataset moved on, start a fresh
// session to see version N".
func notifyTouched(reg *registry, ne *core.Engine, dataset string, seq uint64) int {
	data, _ := json.Marshal(struct {
		Dataset       string `json:"dataset"`
		EngineVersion uint64 `json:"engineVersion"`
		Seq           uint64 `json:"seq"`
		Reason        string `json:"reason"`
	}{dataset, ne.Version(), seq, "dataset updated"})
	ev := streamEvent{name: "notice", data: data}
	n := 0
	for _, cs := range reg.sessions() {
		cs.mu.Lock()
		touched := sessionTouched(cs, ne)
		cs.mu.Unlock()
		if touched {
			cs.hub.broadcast(ev)
			n++
		}
	}
	return n
}

// sessionTouched reports whether the new engine version disturbs what
// the session is looking at: any shown or focal group whose
// description vanished or whose membership changed. Group ids index
// the session's own pinned engine; comparisons go through descriptions
// (core.GroupTouched), which are the only identity stable across
// versions.
func sessionTouched(cs *clientSession, ne *core.Engine) bool {
	if cs.eng == ne {
		return false
	}
	gids := cs.act.Sess.Shown()
	if f := cs.act.Sess.Focal(); f >= 0 {
		gids = append(gids, f)
	}
	for _, gid := range gids {
		if gid < 0 || gid >= cs.eng.Space.Len() {
			continue
		}
		if core.GroupTouched(cs.eng.Space.Group(gid), ne.Space) {
			return true
		}
	}
	return false
}

// handleDatasetIngest is POST /api/v1/datasets/{name}/ingest: commit a
// batch ({users, actions, seq?}) or, with ?preview=1, dry-run it
// through the streaming lossy-counting miner without committing.
func (s *Server) handleDatasetIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dec := json.NewDecoder(bytes.NewReader(readBodyLimit(r, maxIngestBody)))
	dec.DisallowUnknownFields()
	var b core.IngestBatch
	if err := dec.Decode(&b); err != nil {
		http.Error(w, "bad ingest batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if b.Empty() {
		http.Error(w, "empty ingest batch", http.StatusBadRequest)
		return
	}
	if r.URL.Query().Get("preview") == "1" {
		s.handleIngestPreview(w, name, b)
		return
	}
	res, err := s.cat.ingest(name, b)
	if err != nil {
		status := http.StatusBadRequest
		var pe *persistError
		switch {
		case errors.Is(err, errUnknownDataset):
			status = http.StatusNotFound
		case errors.Is(err, errSeqConflict):
			status = http.StatusConflict
		case errors.As(err, &pe):
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// IngestPreviewResult is the ?preview=1 response: the lossy-counting
// candidate itemsets over the augmented dataset. Counts come with the
// Jin & Agrawal bound — nothing ≥ support·N is missing, every count is
// within epsilon·N of true — not the exactness a commit materializes.
type IngestPreviewResult struct {
	Dataset       string           `json:"dataset"`
	EngineVersion uint64           `json:"engineVersion"`
	Support       float64          `json:"support"`
	Epsilon       float64          `json:"epsilon"`
	Candidates    []previewItemset `json:"candidates"`
}

type previewItemset struct {
	Label string `json:"label"`
	Count int    `json:"count"`
	Delta int    `json:"delta"`
}

func (s *Server) handleIngestPreview(w http.ResponseWriter, name string, b core.IngestBatch) {
	eng, err := s.cat.engine(name)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errUnknownDataset) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	cfg := stream.DefaultConfig()
	if frac := eng.Config().MinSupportFrac; frac > cfg.Epsilon {
		cfg.Support = frac
	}
	items, vocab, err := eng.IngestPreview(b, cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res := IngestPreviewResult{
		Dataset:       name,
		EngineVersion: eng.Version(),
		Support:       cfg.Support,
		Epsilon:       cfg.Epsilon,
		Candidates:    make([]previewItemset, 0, len(items)),
	}
	for _, it := range items {
		res.Candidates = append(res.Candidates, previewItemset{
			Label: it.Terms.Label(vocab),
			Count: it.Count,
			Delta: it.Delta,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// engine resolves a dataset name to its resident engine (building on
// first use), retrying around the acquire/evict race.
func (c *Catalog) engine(name string) (*core.Engine, error) {
	for {
		e, reg, err := c.acquire(name)
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		eng := e.eng
		resident := e.reg == reg
		c.mu.Unlock()
		if resident && eng != nil {
			return eng, nil
		}
	}
}
