package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/greedy"
)

// ---------------------------------------------------------------------------
// Fixture: one small engine shared by every test (immutable after Build).

var (
	engOnce sync.Once
	engFix  *core.Engine
	engErr  error
)

func testEngine(t testing.TB) *core.Engine {
	t.Helper()
	engOnce.Do(func() {
		data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 400, Seed: 7})
		if err != nil {
			engErr = err
			return
		}
		cfg := core.DefaultPipelineConfig()
		cfg.Encode = datagen.DBAuthorsEncodeOptions()
		cfg.MinSupportFrac = 0.02
		engFix, engErr = core.Build(data, cfg)
	})
	if engErr != nil {
		t.Fatal(engErr)
	}
	return engFix
}

// fastGreedy keeps per-request optimization time negligible in tests.
func fastGreedy() greedy.Config {
	cfg := greedy.DefaultConfig()
	cfg.TimeLimit = 2 * time.Millisecond
	return cfg
}

func testServer(t testing.TB, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testEngine(t), fastGreedy(), scfg)
	ts := httptest.NewServer(s.Routes())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// post sends a form POST and decodes the JSON state on 200.
func post(t testing.TB, ts *httptest.Server, path string, form url.Values) (stateDTO, *http.Response) {
	t.Helper()
	res, err := http.PostForm(ts.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st stateDTO
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatalf("POST %s: bad JSON: %v", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return st, res
}

func getState(t testing.TB, ts *httptest.Server, sid string) (stateDTO, *http.Response) {
	t.Helper()
	res, err := http.Get(ts.URL + "/api/state?sid=" + sid)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st stateDTO
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return st, res
}

// act applies actions through the v1 batch endpoint (?full=1) and
// returns the resulting full state — the test-side replacement for
// the removed legacy one-action endpoints.
func act(t testing.TB, ts *httptest.Server, sid string, acts ...action.Action) (stateDTO, *http.Response) {
	t.Helper()
	st, res := actErr(ts, sid, acts...)
	if res == nil {
		t.Fatalf("act %v: request failed", acts)
	}
	return st, res
}

// actErr is the non-fatal variant usable inside stress goroutines.
func actErr(ts *httptest.Server, sid string, acts ...action.Action) (stateDTO, *http.Response) {
	var st stateDTO
	raw, err := json.Marshal(acts)
	if err != nil {
		return st, nil
	}
	res, err := http.Post(ts.URL+"/api/v1/sessions/"+sid+"/actions?full=1",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		return st, nil
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK {
		if json.NewDecoder(res.Body).Decode(&st) != nil {
			return st, nil
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return st, res
}

func createSession(t testing.TB, ts *httptest.Server) stateDTO {
	t.Helper()
	st, res := post(t, ts, "/api/session", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("session create: status %d", res.StatusCode)
	}
	if st.Session == "" {
		t.Fatal("session create returned empty id")
	}
	if len(st.Shown) == 0 {
		t.Fatal("session create returned empty initial display")
	}
	return st
}

// ---------------------------------------------------------------------------
// Round-trips.

func TestSessionCreateAndState(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	if st.Focal != -1 {
		t.Fatalf("fresh session focal = %d, want -1", st.Focal)
	}
	got, res := getState(t, ts, st.Session)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("state: status %d", res.StatusCode)
	}
	if got.Session != st.Session || len(got.Shown) != len(st.Shown) {
		t.Fatalf("state mismatch after create: %+v vs %+v", got.Session, st.Session)
	}
}

func TestExploreBacktrackRoundTrip(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session

	target := st.Shown[0].ID
	after, res := act(t, ts, sid, action.Action{Op: action.Explore, Group: target})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d", res.StatusCode)
	}
	if after.Focal != target {
		t.Fatalf("explore focal = %d, want %d", after.Focal, target)
	}
	if len(after.History) != 2 {
		t.Fatalf("history after explore = %d steps, want 2", len(after.History))
	}
	if len(after.Context) == 0 {
		t.Fatal("explore left the feedback context empty")
	}

	back, res := act(t, ts, sid, action.Action{Op: action.Backtrack, Step: 0})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("backtrack: status %d", res.StatusCode)
	}
	if back.Focal != -1 || len(back.History) != 1 {
		t.Fatalf("backtrack state: focal %d history %d, want -1/1", back.Focal, len(back.History))
	}
	if len(back.Context) != 0 {
		t.Fatal("backtrack did not rewind the feedback vector")
	}
}

func TestBookmarkRoundTrip(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session

	after, res := act(t, ts, sid, action.Action{Op: action.BookmarkGroup, Group: st.Shown[0].ID})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bookmark group: status %d", res.StatusCode)
	}
	if len(after.Memo.Groups) != 1 {
		t.Fatalf("memo groups = %v, want 1 entry", after.Memo.Groups)
	}

	userID := testEngine(t).Data.Users[0].ID
	after, res = act(t, ts, sid, action.Action{Op: action.BookmarkUser, User: userID})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("bookmark user: status %d", res.StatusCode)
	}
	if len(after.Memo.Users) != 1 || after.Memo.Users[0] != userID {
		t.Fatalf("memo users = %v, want [%s]", after.Memo.Users, userID)
	}
}

func TestFocusAndSVGEndpoints(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session

	after, res := act(t, ts, sid, action.Action{Op: action.Focus, Group: st.Shown[0].ID})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("focus: status %d", res.StatusCode)
	}
	if after.Focus == nil || len(after.Focus.Histograms) == 0 {
		t.Fatal("focus returned no histograms")
	}

	svg, err := http.Get(ts.URL + "/api/groupviz.svg?sid=" + sid)
	if err != nil {
		t.Fatal(err)
	}
	defer svg.Body.Close()
	if svg.StatusCode != http.StatusOK {
		t.Fatalf("groupviz.svg: status %d", svg.StatusCode)
	}
	if ct := svg.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("groupviz.svg content type %q", ct)
	}
}

// ---------------------------------------------------------------------------
// 4xx paths.

func TestBadSessionAndParams(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session

	cases := []struct {
		name string
		do   func() *http.Response
		want int
	}{
		{"state missing sid", func() *http.Response {
			_, res := getState(t, ts, "")
			return res
		}, http.StatusBadRequest},
		{"state unknown sid", func() *http.Response {
			_, res := getState(t, ts, "deadbeef")
			return res
		}, http.StatusNotFound},
		{"explore unknown sid", func() *http.Response {
			_, res := act(t, ts, "deadbeef", action.Action{Op: action.Explore, Group: 0})
			return res
		}, http.StatusNotFound},
		{"explore out-of-range gid", func() *http.Response {
			_, res := act(t, ts, sid, action.Action{Op: action.Explore, Group: 999999})
			return res
		}, http.StatusBadRequest},
		{"backtrack out-of-range step", func() *http.Response {
			_, res := act(t, ts, sid, action.Action{Op: action.Backtrack, Step: 42})
			return res
		}, http.StatusBadRequest},
		{"bookmark unknown user", func() *http.Response {
			_, res := act(t, ts, sid, action.Action{Op: action.BookmarkUser, User: "nobody"})
			return res
		}, http.StatusBadRequest},
		{"brush without focus", func() *http.Response {
			fresh := createSession(t, ts)
			_, res := act(t, ts, fresh.Session, action.Action{Op: action.Brush, Attr: "gender", Values: []string{"female"}})
			return res
		}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if res := c.do(); res.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, res.StatusCode, c.want)
		}
	}
}

func TestSessionDelete(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/session?sid="+st.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", res.StatusCode)
	}
	if _, res := getState(t, ts, st.Session); res.StatusCode != http.StatusNotFound {
		t.Fatalf("state after delete: status %d, want 404", res.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Registry behavior: LRU capacity eviction and TTL sweeping.

func TestSessionLRUEviction(t *testing.T) {
	eng := testEngine(t)
	reg := newRegistry(eng, fastGreedy(), 0, 2)
	clock := time.Unix(1_700_000_000, 0)
	reg.now = func() time.Time { return clock }

	first, err := reg.create()
	if err != nil {
		t.Fatal(err)
	}
	second, err := reg.create()
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(time.Minute)
	// Touch the first so the second is the LRU when the third arrives.
	if _, ok := reg.get(first.id); !ok {
		t.Fatal("touch first failed")
	}
	third, err := reg.create()
	if err != nil {
		t.Fatalf("create at capacity with an idle LRU: %v", err)
	}
	if _, ok := reg.get(second.id); ok {
		t.Fatal("LRU session survived capacity eviction")
	}
	for _, cs := range []*clientSession{first, third} {
		if _, ok := reg.get(cs.id); !ok {
			t.Fatalf("session %s evicted wrongly", cs.id)
		}
	}
}

// TestSessionCreateBurstDoesNotEvictActive: when the registry is full
// of recently active sessions, a creation burst gets 503s instead of
// evicting live explorers.
func TestSessionCreateBurstDoesNotEvictActive(t *testing.T) {
	scfg := DefaultConfig()
	scfg.MaxSessions = 2
	_, ts := testServer(t, scfg)

	first := createSession(t, ts)
	second := createSession(t, ts)
	_, res := post(t, ts, "/api/session", nil)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create over active capacity: status %d, want 503", res.StatusCode)
	}
	for _, sid := range []string{first.Session, second.Session} {
		if _, res := getState(t, ts, sid); res.StatusCode != http.StatusOK {
			t.Fatalf("active session %s lost to creation burst: status %d", sid, res.StatusCode)
		}
	}
}

// TestUnlimitedSessions: max <= 0 means no cap (mirroring ttl <= 0 =
// never expire), not a one-session server.
func TestUnlimitedSessions(t *testing.T) {
	reg := newRegistry(testEngine(t), fastGreedy(), 0, 0)
	for i := 0; i < 5; i++ {
		if _, err := reg.create(); err != nil {
			t.Fatalf("create %d with unlimited sessions: %v", i, err)
		}
	}
	if reg.count() != 5 {
		t.Fatalf("count = %d, want 5", reg.count())
	}
}

func TestRegistryTTLSweep(t *testing.T) {
	eng := testEngine(t)
	reg := newRegistry(eng, fastGreedy(), 10*time.Minute, 100)
	clock := time.Unix(1_700_000_000, 0)
	reg.now = func() time.Time { return clock }

	a, err := reg.create()
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(7 * time.Minute)
	b, err := reg.create()
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.sweep(); n != 0 {
		t.Fatalf("sweep evicted %d sessions before TTL", n)
	}
	clock = clock.Add(5 * time.Minute) // a idle 12m, b idle 5m
	if n := reg.sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, ok := reg.get(a.id); ok {
		t.Fatal("idle session survived the sweep")
	}
	if _, ok := reg.get(b.id); !ok {
		t.Fatal("active session was swept")
	}
	if reg.count() != 1 {
		t.Fatalf("count = %d, want 1", reg.count())
	}
}

// ---------------------------------------------------------------------------
// Concurrency: disjoint sessions must be fully isolated under load.
// Run with -race (CI does).

func TestConcurrentSessionIsolation(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	const explorers = 8
	const steps = 6

	var wg sync.WaitGroup
	errs := make(chan error, explorers)
	for e := 0; e < explorers; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			st := createSessionErr(ts)
			if st == nil {
				errs <- fmt.Errorf("explorer %d: session create failed", e)
				return
			}
			sid := st.Session
			// Each explorer bookmarks a distinct group, then walks its
			// own path; the bookmark must survive every step untouched
			// by the other explorers.
			myBookmark := st.Shown[e%len(st.Shown)].ID
			cur, res := actErr(ts, sid, action.Action{Op: action.BookmarkGroup, Group: myBookmark})
			if res == nil || res.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("explorer %d: bookmark failed", e)
				return
			}
			wantHistory := 1
			for i := 0; i < steps; i++ {
				if i == steps/2 {
					// Mid-walk backtrack to the start.
					cur, res = actErr(ts, sid, action.Action{Op: action.Backtrack, Step: 0})
					if res == nil || res.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("explorer %d: backtrack failed", e)
						return
					}
					wantHistory = 1
					continue
				}
				if len(cur.Shown) == 0 {
					errs <- fmt.Errorf("explorer %d: empty display mid-walk", e)
					return
				}
				g := cur.Shown[(e+i)%len(cur.Shown)].ID
				cur, res = actErr(ts, sid, action.Action{Op: action.Explore, Group: g})
				if res == nil || res.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("explorer %d: explore failed (status %v)", e, res)
					return
				}
				wantHistory++
				if cur.Session != sid {
					errs <- fmt.Errorf("explorer %d: state leaked session %s", e, cur.Session)
					return
				}
				if cur.Focal != g {
					errs <- fmt.Errorf("explorer %d: focal %d, want %d", e, cur.Focal, g)
					return
				}
				if len(cur.History) != wantHistory {
					errs <- fmt.Errorf("explorer %d: history %d, want %d", e, len(cur.History), wantHistory)
					return
				}
				if len(cur.Memo.Groups) != 1 {
					errs <- fmt.Errorf("explorer %d: memo cross-contaminated: %v", e, cur.Memo.Groups)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// createSessionErr / postErr are the non-fatal variants used inside
// stress goroutines (testing.T is not goroutine-safe for Fatal).
func createSessionErr(ts *httptest.Server) *stateDTO {
	res, err := http.Post(ts.URL+"/api/session", "application/x-www-form-urlencoded", nil)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil
	}
	var st stateDTO
	if json.NewDecoder(res.Body).Decode(&st) != nil {
		return nil
	}
	return &st
}

func postErr(ts *httptest.Server, path string, form url.Values) (stateDTO, *http.Response) {
	var st stateDTO
	res, err := http.PostForm(ts.URL+path, form)
	if err != nil {
		return st, nil
	}
	defer res.Body.Close()
	if res.StatusCode == http.StatusOK {
		if json.NewDecoder(res.Body).Decode(&st) != nil {
			return st, nil
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return st, res
}

// TestConcurrentSameSessionSerializes: hammering ONE session from many
// goroutines must not corrupt it — the per-session mutex serializes,
// and the history grows by exactly the number of successful explores.
func TestConcurrentSameSessionSerializes(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session
	g := st.Shown[0].ID

	const hammers = 16
	var wg sync.WaitGroup
	var ok int64
	var mu sync.Mutex
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, res := actErr(ts, sid, action.Action{Op: action.Explore, Group: g})
			if res != nil && res.StatusCode == http.StatusOK {
				mu.Lock()
				ok++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	final, res := getState(t, ts, sid)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("final state: status %d", res.StatusCode)
	}
	if int64(len(final.History)) != ok+1 {
		t.Fatalf("history %d steps after %d successful explores, want %d",
			len(final.History), ok, ok+1)
	}
}
