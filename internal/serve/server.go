package serve

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"vexus/internal/action"
	"vexus/internal/core"
	"vexus/internal/greedy"
	"vexus/internal/membership"
	"vexus/internal/telemetry"
	"vexus/internal/viz"
)

// server multiplexes many concurrent explorers over a catalog of
// immutable engines: every client owns an isolated action.Session
// (created via POST /api/v1/sessions or the legacy POST /api/session,
// optionally scoped to a named dataset with ?dataset=) addressed by
// its session id. Sessions lock individually, so explorers never
// serialize on each other — only on their own in-flight request — and
// datasets build or snapshot-load lazily on first use.
//
// Every mutation routes through internal/action.Apply via the /api/v1
// batch endpoint — the only write path — so the per-action Diff
// (shown/context/memo deltas + mutation counter) is available on
// every mutation, and a session's applied-action log is always the
// complete story of its state (which is what makes replay-based
// migration in internal/cluster exact).
type Server struct {
	cat *Catalog
	// met is the catalog's telemetry bundle (never nil; instruments are
	// no-ops under telemetry.Disabled).
	met *serverMetrics
	// shardAPI enables the /internal/cluster/* routes a gateway drives
	// (Config.ShardAPI): id-assigned session creation, residency
	// listing, and trail export/import for replay-based migration.
	shardAPI bool
	// secret gates every /internal/cluster/* route behind the shared
	// cluster secret ("" = open, the pre-auth deployment shape).
	secret string
	// heartbeat paces SSE comment keepalives on the events stream.
	heartbeat time.Duration
}

// Config bounds the session registry.
type Config struct {
	// SessionTTL evicts sessions idle longer than this (0 disables).
	SessionTTL time.Duration
	// MaxSessions caps live sessions (0 = unlimited); at capacity the
	// least-recently-used idle session is evicted to admit a new
	// explorer, and creation fails with 503 when none is idle.
	MaxSessions int
	// SweepInterval is how often the TTL sweeper runs (0 = TTL/4).
	SweepInterval time.Duration
	// ShardAPI exposes the cluster-internal migration surface
	// (/internal/cluster/*). Enable it only on shard workers that sit
	// behind a gateway: it lets callers choose session ids.
	ShardAPI bool
	// ClusterSecret, when non-empty, requires every /internal/cluster/*
	// request to carry it in the X-Vexus-Cluster-Secret header
	// (constant-time compare; see internal/membership). Set the same
	// secret on the gateway and every shard.
	ClusterSecret string
	// StreamQueue bounds each SSE subscriber's send queue; a publish
	// finding the queue full drops that subscriber to a full-snapshot
	// resync instead of blocking the action write path (0 = 32).
	StreamQueue int
	// StreamReplay bounds the per-session ring of recent diff events
	// served to Last-Event-ID resumes; larger gaps resync (0 = 256).
	StreamReplay int
	// StreamHeartbeat is the SSE comment-keepalive interval (0 = 15s).
	StreamHeartbeat time.Duration
	// Telemetry receives every metric this server records. nil means a
	// fresh private registry (GET /metrics works out of the box);
	// telemetry.Disabled turns instrumentation off entirely — Routes()
	// then registers handlers unwrapped, the zero-overhead baseline the
	// p6 benchmark measures against.
	Telemetry *telemetry.Registry
	// Logger is the structured logger for span records and catalog
	// events (nil = slog.Default()). Request/migration span logs are
	// emitted at Debug, so they cost nothing unless the handler's level
	// admits them.
	Logger *slog.Logger
	// Clock overrides the time source recency stamps, TTL sweeps, and
	// LRU eviction read from (nil = time.Now). Deterministic harnesses
	// (internal/loadsim) drive it with a virtual tick clock so eviction
	// decisions replay identically run to run.
	Clock func() time.Time
}

func DefaultConfig() Config {
	return Config{
		SessionTTL:  30 * time.Minute,
		MaxSessions: 4096,
	}
}

// maxBatchActions caps one v1 batch request; larger scripts should be
// split — the cap bounds per-request lock hold time on a session.
const maxBatchActions = 256

// New wraps a single pre-built engine — the classic one-dataset
// deployment, also the shape every existing test drives.
func New(eng *core.Engine, cfg greedy.Config, scfg Config) *Server {
	cat := newSingleEngineCatalog("default", eng, cfg, scfg)
	return &Server{
		cat:       cat,
		met:       cat.met,
		shardAPI:  scfg.ShardAPI,
		secret:    scfg.ClusterSecret,
		heartbeat: heartbeatOrDefault(scfg),
	}
}

// NewCatalogServer serves a whole dataset catalog, engines built or
// snapshot-loaded on first request.
func NewCatalogServer(cat *Catalog) *Server {
	return &Server{
		cat:       cat,
		met:       cat.met,
		shardAPI:  cat.scfg.ShardAPI,
		secret:    cat.scfg.ClusterSecret,
		heartbeat: heartbeatOrDefault(cat.scfg),
	}
}

func heartbeatOrDefault(scfg Config) time.Duration {
	if scfg.StreamHeartbeat > 0 {
		return scfg.StreamHeartbeat
	}
	return defaultStreamHeartbeat
}

// close releases every resident registry's sweeper.
func (s *Server) Close() { s.cat.Close() }

func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	// handle registers pattern with the telemetry middleware: the route
	// label is the pattern string itself (bounded cardinality), and the
	// wrapper propagates X-Vexus-Trace and records count + latency.
	// Under telemetry.Disabled with no Debug logger, Wrap returns the
	// handler unchanged — zero per-request overhead.
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.met.http.Wrap(pattern, h))
	}
	handle("GET /", s.handleIndex)

	// v1: the typed action API. Sessions are resources; mutations are
	// POSTed action batches; responses are per-action diffs (?full=1
	// for a full state snapshot instead).
	handle("POST /api/v1/sessions", s.handleV1SessionCreate)
	handle("DELETE /api/v1/sessions/{sid}", s.handleV1SessionDelete)
	handle("GET /api/v1/sessions/{sid}/state", s.handleV1State)
	handle("GET /api/v1/sessions/{sid}/events", s.handleV1Events)
	handle("POST /api/v1/sessions/{sid}/actions", s.handleV1Actions)
	// Live datasets: batched, sequence-numbered ingestion (and its
	// ?preview=1 lossy-counting dry run).
	handle("POST /api/v1/datasets/{name}/ingest", s.handleDatasetIngest)
	// GET /api/v1/state?sid= mirrors the legacy address shape for
	// clients migrating one endpoint at a time.
	handle("GET /api/v1/state", s.handleState)

	// Observability surface: liveness, readiness, and the Prometheus
	// exposition. /metrics is served straight off the registry — it is
	// not itself instrumented, so scrapes don't inflate request counts.
	handle("GET /api/v1/healthz", s.handleHealthz)
	handle("GET /api/v1/readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.met.reg.Handler())

	// Legacy addressing kept for session lifecycle and reads; the
	// legacy one-action mutation shims (/api/explore, /api/backtrack,
	// …) are gone — the bundled page posts /api/v1 action batches now,
	// and so must every other client.
	handle("POST /api/session", s.handleSessionCreate)
	handle("DELETE /api/session", s.handleSessionDelete)
	handle("GET /api/sessions", s.handleSessions)
	handle("GET /api/datasets", s.handleDatasets)
	handle("GET /api/state", s.handleState)
	handle("GET /api/groupviz.svg", s.handleGroupVizSVG)
	handle("GET /api/focus.svg", s.handleFocusSVG)

	if s.shardAPI {
		// Cluster-internal surface (enabled by Config.ShardAPI, i.e.
		// the -shard flag or an in-process cluster): session creation
		// with a gateway-chosen id, residency listing, the
		// export/import pair behind replay-based migration, the
		// warm-join snapshot stream pair, and the metrics snapshot the
		// gateway rolls up. A shard is expected to sit behind a gateway
		// on a private network; these routes are not part of the public
		// API, and with Config.ClusterSecret set every one of them
		// rejects requests that do not carry the shared secret.
		internal := func(pattern string, h http.HandlerFunc) {
			mux.Handle(pattern, s.met.http.Wrap(pattern, membership.Require(s.secret, h)))
		}
		internal("POST /internal/cluster/sessions", s.handleShardSessionCreate)
		internal("GET /internal/cluster/sessions", s.handleShardSessionList)
		internal("GET /internal/cluster/sessions/{sid}/export", s.handleShardExport)
		internal("POST /internal/cluster/sessions/{sid}/import", s.handleShardImport)
		internal("GET /internal/cluster/snapshot", s.handleShardSnapshot)
		internal("POST /internal/cluster/warm", s.handleShardWarm)
		mux.Handle("GET /internal/cluster/metrics", membership.Require(s.secret, http.HandlerFunc(s.handleShardMetrics)))
	}
	return mux
}

// session resolves the sid parameter to a live session (whatever
// dataset it belongs to), writing the 4xx itself when it can't: 400
// for a missing id, 404 for an unknown or expired one.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*clientSession, bool) {
	return s.sessionByID(w, r.FormValue("sid"))
}

// sessionByID is the sid-explicit variant backing both the legacy
// query-parameter and the v1 path-segment addressing.
func (s *Server) sessionByID(w http.ResponseWriter, sid string) (*clientSession, bool) {
	if sid == "" {
		http.Error(w, "missing session id (create one with POST /api/v1/sessions)", http.StatusBadRequest)
		return nil, false
	}
	cs, ok := s.cat.findSession(sid)
	if !ok {
		http.Error(w, "unknown or expired session "+sid, http.StatusNotFound)
		return nil, false
	}
	return cs, true
}

// stateDTO is the full UI state pushed to the page after every action.
type stateDTO struct {
	Session string       `json:"session"`
	Dataset string       `json:"dataset,omitempty"`
	Shown   []groupDTO   `json:"shown"`
	Focal   int          `json:"focal"`
	Context []contextDTO `json:"context"`
	History []historyDTO `json:"history"`
	Memo    memoDTO      `json:"memo"`
	Focus   *focusDTO    `json:"focus,omitempty"`
}

type groupDTO struct {
	ID         int     `json:"id"`
	Label      string  `json:"label"`
	Size       int     `json:"size"`
	Similarity float64 `json:"similarity"`
}

type contextDTO struct {
	Label  string  `json:"label"`
	Score  float64 `json:"score"`
	IsUser bool    `json:"isUser"`
}

type historyDTO struct {
	Step  int    `json:"step"`
	Label string `json:"label"`
}

type memoDTO struct {
	Groups []string `json:"groups"`
	Users  []string `json:"users"`
}

type focusDTO struct {
	GroupID    int            `json:"groupId"`
	Label      string         `json:"label"`
	Members    int            `json:"members"`
	Selected   int            `json:"selected"`
	Histograms []histogramDTO `json:"histograms"`
	Table      []tableRowDTO  `json:"table"`
}

type histogramDTO struct {
	Attr   string   `json:"attr"`
	Labels []string `json:"labels"`
	Counts []int    `json:"counts"`
}

type tableRowDTO struct {
	ID     string   `json:"id"`
	Acts   int      `json:"acts"`
	Demo   []string `json:"demo"`
	Marked bool     `json:"marked"`
}

// batchDTO is the body of POST /api/v1/sessions/{sid}/actions: per-
// action results for the applied prefix, and — when a mid-batch action
// failed — its position and message. ETag is the validator after the
// applied prefix, equal to the ETag header.
type batchDTO struct {
	Session     string          `json:"session"`
	ETag        string          `json:"etag"`
	Applied     int             `json:"applied"`
	Results     []action.Result `json:"results"`
	Error       string          `json:"error,omitempty"`
	FailedIndex *int            `json:"failedIndex,omitempty"`
}

// state assembles the DTO; the caller must hold cs.mu. Everything
// renders through the session's own engine, so sessions over different
// catalog datasets coexist behind one mux.
func (s *Server) state(cs *clientSession) stateDTO {
	eng := cs.eng
	sess := cs.act.Sess
	st := stateDTO{Session: cs.id, Dataset: cs.dataset, Focal: sess.Focal()}
	focal := sess.Focal()
	for _, v := range sess.Views("") {
		sim := 0.0
		if focal >= 0 {
			sim = eng.Space.Group(focal).Jaccard(eng.Space.Group(v.ID))
		}
		st.Shown = append(st.Shown, groupDTO{
			ID: v.ID, Label: v.Label, Size: v.Size, Similarity: sim,
		})
	}
	for _, e := range sess.Context(action.ContextTop) {
		st.Context = append(st.Context, contextDTO{Label: e.Label, Score: e.Score, IsUser: e.IsUser})
	}
	for i, step := range sess.History() {
		label := "start"
		if step.Focal >= 0 {
			label = eng.GroupLabel(step.Focal)
		}
		st.History = append(st.History, historyDTO{Step: i, Label: label})
	}
	m := sess.Memo()
	for _, gid := range m.Groups() {
		st.Memo.Groups = append(st.Memo.Groups, eng.GroupLabel(gid))
	}
	for _, u := range m.Users() {
		st.Memo.Users = append(st.Memo.Users, eng.Data.Users[u].ID)
	}
	if focus := cs.act.Focus; focus != nil {
		fd := &focusDTO{
			GroupID:  focus.GroupID,
			Label:    eng.GroupLabel(focus.GroupID),
			Members:  len(focus.Members),
			Selected: focus.SelectedCount(),
		}
		for _, attr := range focus.Attributes() {
			labels, counts, err := focus.Histogram(attr)
			if err != nil {
				continue
			}
			fd.Histograms = append(fd.Histograms, histogramDTO{Attr: attr, Labels: labels, Counts: counts})
		}
		for _, row := range focus.Table(12) {
			fd.Table = append(fd.Table, tableRowDTO{
				ID: row.ID, Acts: row.NumAct, Demo: row.Demo,
				Marked: m.HasUser(row.User),
			})
		}
		st.Focus = fd
	}
	return st
}

// writeState renders the session's state with its ETag (derived from
// the session's mutation counter); the caller must hold cs.mu.
func (s *Server) writeState(w http.ResponseWriter, cs *clientSession) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	_ = json.NewEncoder(w).Encode(s.state(cs))
}

// createSession backs both creation endpoints; status is the success
// code (200 legacy, 201 v1).
func (s *Server) createSession(w http.ResponseWriter, dataset string, status int) {
	cs, err := s.cat.createSession(dataset)
	if err != nil {
		writeCreateError(w, err)
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if status == http.StatusCreated {
		w.Header().Set("Location", "/api/v1/sessions/"+cs.id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(s.state(cs))
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.createSession(w, r.FormValue("dataset"), http.StatusOK)
}

func (s *Server) handleV1SessionCreate(w http.ResponseWriter, r *http.Request) {
	s.createSession(w, r.FormValue("dataset"), http.StatusCreated)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	s.cat.removeSession(cs.id, s.deleteReason(r))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleV1SessionDelete(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.sessionByID(w, r.PathValue("sid"))
	if !ok {
		return
	}
	s.cat.removeSession(cs.id, s.deleteReason(r))
	w.WriteHeader(http.StatusNoContent)
}

// deleteReason is what a deleted session's attached streams are told.
// The gateway's post-migration cleanup passes ?reason=migrated so a
// streaming client knows to reconnect (its session lives on, on the
// new owner) rather than give up; the hint is honored only on shard
// workers — on a public server any caller-supplied reason collapses
// to the plain delete.
func (s *Server) deleteReason(r *http.Request) string {
	if s.shardAPI && r.FormValue("reason") == reasonMigrated {
		return reasonMigrated
	}
	return reasonDeleted
}

// handleSessions reports registry occupancy — the ops view of a
// multi-explorer deployment — total and per dataset (every catalog
// dataset appears, non-resident ones at 0).
func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	total, per := s.cat.sessionCount()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Sessions   int            `json:"sessions"`
		PerDataset map[string]int `json:"perDataset"`
	}{total, per})
}

// handleDatasets lists the catalog: every known dataset, whether its
// engine is resident, whether the last start was warm, and its live
// session count.
func (s *Server) handleDatasets(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Default  string          `json:"default"`
		Datasets []DatasetStatus `json:"datasets"`
	}{s.cat.defaultName, s.cat.status()})
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	s.stateResponse(w, r, cs)
}

func (s *Server) handleV1State(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.sessionByID(w, r.PathValue("sid"))
	if !ok {
		return
	}
	s.stateResponse(w, r, cs)
}

func (s *Server) stateResponse(w http.ResponseWriter, r *http.Request, cs *clientSession) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if etag := cs.etag(); etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeState(w, cs)
}

// etagMatches implements the RFC 9110 §13.1.2 If-None-Match check
// against the current validator. "*" (the whole field, not a list
// member) matches any current representation; otherwise the field is a
// comma-separated list of entity tags compared with the *weak*
// comparison — W/ prefixes are ignored on both sides, opaque tags must
// be identical.
func etagMatches(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	current := strings.TrimPrefix(etag, "W/")
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part != "" && part == current {
			return true
		}
	}
	return false
}

// handleV1Actions is the batch mutation endpoint: a JSON array of
// actions (or {"actions":[...]}) applied in order under the session
// lock. The response carries one Result — optimizer metrics plus state
// diff — per applied action; ?full=1 returns the full state snapshot
// instead (the diffs still happen, they are just not serialized). A
// mid-batch failure stops the batch: the prefix stays applied and the
// response names the failing index. The ETag header always reflects
// the state after the applied prefix.
func (s *Server) handleV1Actions(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.sessionByID(w, r.PathValue("sid"))
	if !ok {
		return
	}
	acts, err := action.DecodeLog(readBody(r))
	if err != nil {
		http.Error(w, "bad action batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(acts) == 0 {
		http.Error(w, "empty action batch", http.StatusBadRequest)
		return
	}
	if len(acts) > maxBatchActions {
		http.Error(w, "batch exceeds "+strconv.Itoa(maxBatchActions)+" actions", http.StatusBadRequest)
		return
	}

	cs.mu.Lock()
	defer cs.mu.Unlock()
	results, applyErr := action.ApplyAll(cs.act, acts)

	if applyErr == nil && r.URL.Query().Get("full") == "1" {
		s.writeState(w, cs)
		return
	}
	body := batchDTO{
		Session: cs.id,
		ETag:    cs.etag(),
		Applied: len(results),
		Results: results,
	}
	status := http.StatusOK
	if applyErr != nil {
		status = http.StatusBadRequest
		body.Error = applyErr.Error()
		var be *action.BatchError
		if errors.As(applyErr, &be) {
			idx := be.Index
			body.FailedIndex = &idx
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// readBody slurps the request body (bounded well above the batch cap)
// for the strict JSON decoder; a truncated body simply fails to parse.
func readBody(r *http.Request) []byte {
	return readBodyLimit(r, 1<<20)
}

// readBodyLimit is readBody with an explicit bound — the migration
// import uses a far larger one, since a session export carries the
// entire action trail, not one request's batch.
func readBodyLimit(r *http.Request, limit int64) []byte {
	defer r.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(r.Body, limit))
	return raw
}

func (s *Server) handleGroupVizSVG(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sess := cs.act.Sess
	colorAttr := r.URL.Query().Get("color")
	if colorAttr == "" {
		colorAttr = cs.eng.Data.Schema.Attrs[0].Name
	}
	views := sess.Views(colorAttr)
	maxSize := 1
	for _, v := range views {
		if v.Size > maxSize {
			maxSize = v.Size
		}
	}
	nodes := make([]viz.Node, len(views))
	for i, v := range views {
		nodes[i] = viz.Node{ID: v.ID, Radius: viz.RadiusForSize(v.Size, maxSize)}
	}
	var edges []viz.Edge
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			sim := cs.eng.Space.Group(views[i].ID).Jaccard(cs.eng.Space.Group(views[j].ID))
			if sim > 0 {
				edges = append(edges, viz.Edge{A: i, B: j, Strength: sim})
			}
		}
	}
	placed := viz.Layout(nodes, edges, viz.DefaultLayoutConfig())
	circles := make([]viz.Circle, len(placed))
	for i, nd := range placed {
		circles[i] = viz.Circle{
			X: nd.X, Y: nd.Y, R: nd.Radius,
			Label:     views[i].Label,
			Title:     strconv.Itoa(views[i].Size),
			Shares:    views[i].ColorShares,
			Highlight: views[i].ID == sess.Focal(),
		}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.GroupVizSVG(circles, 720, 480)))
}

func (s *Server) handleFocusSVG(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.session(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	focus := cs.act.Focus
	if focus == nil || focus.Projection == nil {
		http.Error(w, "no focused projection", http.StatusNotFound)
		return
	}
	classIdx := cs.eng.Data.Schema.AttrIndex(focus.ClassAttr)
	points := make([]viz.ScatterPoint, len(focus.Projection.Points))
	for i, p := range focus.Projection.Points {
		u := focus.Members[i]
		cls := -1
		if classIdx >= 0 {
			cls = cs.eng.Data.Users[u].Demo[classIdx]
		}
		points[i] = viz.ScatterPoint{X: p[0], Y: p[1], Class: cls, Label: cs.eng.Data.Users[u].ID}
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(viz.ScatterSVG(points, 420, 320)))
}
