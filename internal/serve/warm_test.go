package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/membership"
)

// warmFixture builds the donor/joiner pair for warm-join tests: both
// sides constructed from the same dataset + pipeline config, so the
// joiner's locally computed fingerprint chain matches what the donor
// streams.
func warmFixture(t *testing.T, seed uint64, scfg Config) (*dataset.Dataset, core.PipelineConfig, *Server) {
	t.Helper()
	data, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: 250, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = datagen.DBAuthorsEncodeOptions()
	pcfg.MinSupportFrac = 0.03
	eng, err := core.Build(data, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	donor := New(eng, fastGreedy(), scfg)
	t.Cleanup(donor.Close)
	return data, pcfg, donor
}

func shardConfig() Config {
	scfg := DefaultConfig()
	scfg.ShardAPI = true
	return scfg
}

// get/post against an in-process handler.
func roundTrip(h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestWarmJoinRoundTrip(t *testing.T) {
	scfg := shardConfig()
	data, pcfg, donor := warmFixture(t, 11, scfg)
	donorH := donor.Routes()

	joiner := NewPending("default", data, pcfg, fastGreedy(), scfg)
	t.Cleanup(joiner.Close)
	joinerH := joiner.Routes()

	// Before the snapshot arrives the joiner fails closed: readiness
	// and session creation both 503.
	if rec := roundTrip(joinerH, http.MethodGet, "/api/v1/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending readyz = %d, want 503", rec.Code)
	}
	if rec := roundTrip(joinerH, http.MethodPost, "/api/v1/sessions", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pending create = %d, want 503", rec.Code)
	}

	snap := roundTrip(donorH, http.MethodGet, "/internal/cluster/snapshot", nil)
	if snap.Code != http.StatusOK {
		t.Fatalf("donor snapshot: %d: %s", snap.Code, snap.Body)
	}
	raw := snap.Body.Bytes()
	if len(raw) == 0 {
		t.Fatal("empty snapshot stream")
	}

	warm := roundTrip(joinerH, http.MethodPost, "/internal/cluster/warm", raw)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm install: %d: %s", warm.Code, warm.Body)
	}

	// Now the joiner serves: ready, and creates succeed.
	if rec := roundTrip(joinerH, http.MethodGet, "/api/v1/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("warmed readyz = %d: %s", rec.Code, rec.Body)
	}
	if rec := roundTrip(joinerH, http.MethodPost, "/api/v1/sessions", nil); rec.Code != http.StatusCreated {
		t.Fatalf("warmed create = %d: %s", rec.Code, rec.Body)
	}

	// Warming an already-resident shard is an idempotent no-op.
	again := roundTrip(joinerH, http.MethodPost, "/internal/cluster/warm", raw)
	if again.Code != http.StatusOK || !bytes.Contains(again.Body.Bytes(), []byte("alreadyResident")) {
		t.Fatalf("re-warm: %d: %s", again.Code, again.Body)
	}
}

func TestWarmJoinFailsClosed(t *testing.T) {
	scfg := shardConfig()
	data, pcfg, donor := warmFixture(t, 11, scfg)
	snap := roundTrip(donor.Routes(), http.MethodGet, "/internal/cluster/snapshot", nil)
	if snap.Code != http.StatusOK {
		t.Fatalf("donor snapshot: %d", snap.Code)
	}
	raw := snap.Body.Bytes()

	// A different dataset's stream — same shape, wrong fingerprint.
	_, _, other := warmFixture(t, 99, scfg)
	otherSnap := roundTrip(other.Routes(), http.MethodGet, "/internal/cluster/snapshot", nil)

	for _, tc := range []struct {
		name string
		body []byte
	}{
		{"truncated stream", raw[:len(raw)/2]},
		{"garbage", []byte("definitely not a snapshot")},
		{"wrong dataset", otherSnap.Body.Bytes()},
	} {
		joiner := NewPending("default", data, pcfg, fastGreedy(), scfg)
		h := joiner.Routes()
		rec := roundTrip(h, http.MethodPost, "/internal/cluster/warm", tc.body)
		if rec.Code == http.StatusOK {
			t.Fatalf("%s: warm install accepted (%d)", tc.name, rec.Code)
		}
		// The entry is untouched: still pending, still failing closed.
		if rec := roundTrip(h, http.MethodGet, "/api/v1/readyz", nil); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: readyz after rejected warm = %d, want 503", tc.name, rec.Code)
		}
		if rec := roundTrip(h, http.MethodPost, "/api/v1/sessions", nil); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: create after rejected warm = %d, want 503", tc.name, rec.Code)
		}
		joiner.Close()
	}
}

func TestInternalEndpointsRequireSecret(t *testing.T) {
	scfg := shardConfig()
	scfg.ClusterSecret = "hunter2"
	_, _, srv := warmFixture(t, 11, scfg)
	h := srv.Routes()

	paths := []struct{ method, path string }{
		{http.MethodGet, "/internal/cluster/sessions"},
		{http.MethodGet, "/internal/cluster/metrics"},
		{http.MethodGet, "/internal/cluster/snapshot"},
		{http.MethodPost, "/internal/cluster/warm"},
	}
	for _, p := range paths {
		// Missing and wrong secrets are rejected before the handler runs.
		if rec := roundTrip(h, p.method, p.path, nil); rec.Code != http.StatusUnauthorized {
			t.Fatalf("%s %s without secret: %d, want 401", p.method, p.path, rec.Code)
		}
		req := httptest.NewRequest(p.method, p.path, nil)
		req.Header.Set(membership.SecretHeader, "wrong")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusUnauthorized {
			t.Fatalf("%s %s with wrong secret: %d, want 401", p.method, p.path, rec.Code)
		}
		// The right secret reaches the handler.
		req = httptest.NewRequest(p.method, p.path, nil)
		req.Header.Set(membership.SecretHeader, "hunter2")
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusUnauthorized {
			t.Fatalf("%s %s with right secret still 401", p.method, p.path)
		}
	}

	// The public surface stays open: no secret required.
	if rec := roundTrip(h, http.MethodPost, "/api/v1/sessions", nil); rec.Code != http.StatusCreated {
		t.Fatalf("public create behind secret config: %d", rec.Code)
	}
}
