package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vexus/internal/action"
	"vexus/internal/telemetry"
)

// This file is the server-push half of the exploration loop: every
// mutation already yields an action.Diff whose Mutations counter is
// the state validator (`"<sid>.<mutations>"`), so GET
// /api/v1/sessions/{sid}/events turns the validator stream into an SSE
// stream — each event's id IS the post-action mutation counter, which
// makes Last-Event-ID resume and If-None-Match revalidation the same
// cursor. N clients attached to one session see the same diff
// sequence in the same order (the action dispatcher serializes writes
// under the session lock), which is what makes collaborative
// exploration converge byte-identically.
//
// Backpressure follows the bounded-send-queue discipline of
// peer-routed gossip (SNIPPETS §1, tendermint's sendQueueCapacity): a
// publisher NEVER blocks on a subscriber. Each subscriber owns a
// bounded queue; overflow marks the subscriber lost, its stale queue
// is abandoned, and the serving goroutine drops it back in with one
// full-snapshot `resync` event — the slow client pays with a snapshot,
// the action write path pays nothing.

// Stream tuning defaults (Config.StreamQueue / StreamReplay /
// StreamHeartbeat override them).
const (
	// defaultStreamQueue bounds one subscriber's in-flight event queue.
	defaultStreamQueue = 32
	// defaultStreamReplay bounds the per-session ring of recent diff
	// events kept for Last-Event-ID resume; gaps beyond it resync.
	defaultStreamReplay = 256
	// defaultStreamHeartbeat paces SSE comment keepalives.
	defaultStreamHeartbeat = 15 * time.Second
)

// Teardown reasons carried by the terminal `event: closed` frame.
// "migrated" tells a client its session lives on (reconnect with
// Last-Event-ID and the new owner's replayed ring resumes the diff
// stream); every other reason is final.
const (
	reasonDeleted  = "deleted"
	reasonMigrated = "migrated"
	reasonEvicted  = "dataset evicted"
	reasonClosing  = "server closing"
)

// streamEvent is one SSE frame: the event id (the mutation counter
// after the action), the event name and the pre-encoded JSON payload.
// Payloads are encoded once at publish time, not per subscriber.
type streamEvent struct {
	id   uint64
	name string
	data []byte
}

// subscriber is one attached SSE client. The queue is bounded; lost is
// closed (once) when a publish found it full, and closed is closed
// when the session itself is torn down (reason says why).
type subscriber struct {
	queue    chan streamEvent
	lost     chan struct{}
	lostOnce sync.Once
	closed   chan struct{}
	reason   string
}

// markLost flags a subscriber whose queue overflowed; drops counts the
// transition exactly once per subscriber (nil-safe).
func (sub *subscriber) markLost(drops *telemetry.Counter) {
	sub.lostOnce.Do(func() {
		close(sub.lost)
		drops.Inc()
	})
}

// streamHub fans one session's diff events out to its subscribers and
// keeps the bounded replay ring behind Last-Event-ID resume. Lock
// order: a caller holding the session mutex may take hub.mu, never the
// reverse — publish runs under both (OnDiff fires inside Apply under
// the session lock), so a subscriber registered under both locks can
// never miss or double-see an event around its registration point.
type streamHub struct {
	// subsGauge / drops are the hub's telemetry instruments, handed
	// over by the registry at session creation. Both are nil-safe
	// no-ops when unset (direct hub construction in tests, or
	// telemetry.Disabled), so hub code calls them unconditionally.
	subsGauge *telemetry.Gauge
	drops     *telemetry.Counter

	mu       sync.Mutex
	subs     map[*subscriber]struct{}
	ring     []streamEvent // contiguous ids, oldest first
	ringCap  int
	queueCap int
	closed   bool
	reason   string
}

func newStreamHub(queueCap, ringCap int) *streamHub {
	if queueCap <= 0 {
		queueCap = defaultStreamQueue
	}
	if ringCap <= 0 {
		ringCap = defaultStreamReplay
	}
	return &streamHub{
		subs:     make(map[*subscriber]struct{}),
		ringCap:  ringCap,
		queueCap: queueCap,
	}
}

// publish encodes one diff event, records it in the replay ring and
// fans it out. Non-blocking by contract: a full subscriber queue marks
// that subscriber lost (it will drop to a snapshot resync) instead of
// ever stalling the action write path.
func (h *streamHub) publish(res action.Result) {
	data, err := json.Marshal(res.Diff)
	if err != nil {
		return // Diff is plain data; cannot happen
	}
	ev := streamEvent{id: res.Diff.Mutations, name: "diff", data: data}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if len(h.ring) == h.ringCap {
		copy(h.ring, h.ring[1:])
		h.ring[len(h.ring)-1] = ev
	} else {
		h.ring = append(h.ring, ev)
	}
	for sub := range h.subs {
		select {
		case sub.queue <- ev:
		default:
			sub.markLost(h.drops)
		}
	}
}

// broadcast fans an out-of-band advisory event (id 0, so it never
// moves a client's resume cursor) to the current subscribers without
// recording it in the replay ring — ingest-triggered notices are
// ephemeral: a client that attaches later sees the new catalog state
// anyway, and replaying a stale "your dataset changed" would only
// confuse resume. Same non-blocking contract as publish.
func (h *streamHub) broadcast(ev streamEvent) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.subs {
		select {
		case sub.queue <- ev:
		default:
			sub.markLost(h.drops)
		}
	}
}

// subscribe registers a fresh subscriber, replacing old (nil on first
// attach) in the same critical section so the swap can never skip or
// duplicate an event. Returns nil when the hub is already closed.
func (h *streamHub) subscribe(old *subscriber) *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if old != nil {
		if _, present := h.subs[old]; present {
			delete(h.subs, old)
			h.subsGauge.Dec()
		}
	}
	if h.closed {
		return nil
	}
	sub := &subscriber{
		queue:  make(chan streamEvent, h.queueCap),
		lost:   make(chan struct{}),
		closed: make(chan struct{}),
	}
	h.subs[sub] = struct{}{}
	h.subsGauge.Inc()
	return sub
}

// unsubscribe detaches a subscriber (client gone, handler returning).
// The gauge moves only when the subscriber was still attached — hub
// close already detached (and counted) everyone it tore down.
func (h *streamHub) unsubscribe(sub *subscriber) {
	if sub == nil {
		return
	}
	h.mu.Lock()
	if _, present := h.subs[sub]; present {
		delete(h.subs, sub)
		h.subsGauge.Dec()
	}
	h.mu.Unlock()
}

// tailAfter returns the ring events with id > after when the ring
// still covers that gap contiguously; ok=false means the gap exceeds
// the replay window and the caller must resync from a snapshot.
func (h *streamHub) tailAfter(after uint64) ([]streamEvent, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ring) == 0 {
		return nil, false
	}
	last := h.ring[len(h.ring)-1].id
	if after >= last {
		return nil, after == last
	}
	first := h.ring[0].id
	if after+1 < first {
		return nil, false
	}
	out := make([]streamEvent, 0, last-after)
	for _, ev := range h.ring {
		if ev.id > after {
			out = append(out, ev)
		}
	}
	return out, true
}

// subscribers reports how many clients are attached — the eviction
// pin: a session with live streams is in active use even when its
// analyst mutates nothing.
func (h *streamHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// reset clears the replay ring (subscribers stay attached). The
// migration import path uses it right before replaying a trail whose
// counter restarts at zero, so the replayed ring is contiguous again.
func (h *streamHub) reset() {
	h.mu.Lock()
	h.ring = h.ring[:0]
	h.mu.Unlock()
}

// close tears the hub down: every subscriber's serving goroutine sends
// one terminal `event: closed` carrying the reason, then hangs up.
// Idempotent; the first reason wins.
func (h *streamHub) close(reason string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.reason = reason
	for sub := range h.subs {
		sub.reason = reason
		close(sub.closed)
		delete(h.subs, sub)
		h.subsGauge.Dec()
	}
}

// writeSSE emits one frame. The id line precedes data so the client's
// lastEventId always tracks the last delivered diff; terminal closed
// frames carry no id, leaving the resume cursor on the last diff.
func writeSSE(w io.Writer, ev streamEvent) error {
	if ev.id > 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", ev.id); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
	return err
}

func closedEvent(reason string) streamEvent {
	data, _ := json.Marshal(struct {
		Reason string `json:"reason"`
	}{reason})
	return streamEvent{name: "closed", data: data}
}

// lastEventID extracts the resume cursor: the Last-Event-ID header an
// EventSource reconnect sends, or the ?lastEventID= query parameter
// for first attaches that already hold state at a known validator.
func lastEventID(r *http.Request) (uint64, bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("lastEventID")
	}
	if raw == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// resyncLocked renders the session's full state as one `resync` event
// with the current mutation counter as its id — the recovery frame for
// fresh attaches, gaps beyond the replay ring, and dropped slow
// subscribers. Caller holds cs.mu.
func (s *Server) resyncLocked(cs *clientSession) streamEvent {
	data, _ := json.Marshal(s.state(cs))
	return streamEvent{id: cs.act.Mutations, name: "resync", data: data}
}

// handleV1Events is GET /api/v1/sessions/{sid}/events: the SSE diff
// stream. Every event's id is the post-action mutation counter (the
// ETag suffix), `event: diff` payloads are action.Diff bodies, and the
// contract is:
//
//   - no Last-Event-ID        → one `resync` (full state snapshot,
//     id = current counter), then live diffs;
//   - Last-Event-ID within    → the missed diffs, exactly once, in
//     the replay ring           order, then live diffs;
//   - gap beyond the ring, or → one `resync`, then live diffs;
//     a slow subscriber whose
//     bounded queue overflowed
//   - session torn down       → terminal `event: closed` with a
//     (delete, migration,       reason; "migrated" means reconnect
//     dataset eviction,         with Last-Event-ID to resume on the
//     shutdown)                 new owner.
//
// A slow client never blocks the write path: its queue is bounded and
// overflow drops it to a resync, never the publisher.
func (s *Server) handleV1Events(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.sessionByID(w, r.PathValue("sid"))
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	after, resume := lastEventID(r)

	// Register under the session lock: no action can be applied (hence
	// no event published) between computing the preload and the
	// subscriber joining the live fan-out.
	cs.mu.Lock()
	sub := cs.hub.subscribe(nil)
	var preload []streamEvent
	resumed := false
	if sub != nil {
		if resume {
			if tail, covered := cs.hub.tailAfter(after); covered {
				preload = tail
				resumed = true
			} else {
				preload = []streamEvent{s.resyncLocked(cs)}
			}
		} else {
			preload = []streamEvent{s.resyncLocked(cs)}
		}
	}
	cs.mu.Unlock()
	if sub != nil && s.met != nil {
		if resumed {
			s.met.streamResumes.Inc()
		} else {
			s.met.streamResyncs.Inc()
		}
	}
	if sub == nil {
		http.Error(w, "session is shutting down", http.StatusNotFound)
		return
	}
	defer func() { cs.hub.unsubscribe(sub) }()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for _, ev := range preload {
		if writeSSE(w, ev) != nil {
			return
		}
	}
	fl.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-hb.C:
			if _, err := io.WriteString(w, ":hb\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-sub.lost:
			// Queue overflowed: abandon the stale queue and rejoin with
			// a snapshot. Swap + render under cs.mu so the resync id and
			// the new queue's first event are contiguous.
			cs.mu.Lock()
			next := cs.hub.subscribe(sub)
			var ev streamEvent
			if next != nil {
				ev = s.resyncLocked(cs)
			}
			cs.mu.Unlock()
			if next != nil && s.met != nil {
				s.met.streamResyncs.Inc()
			}
			if next == nil {
				_ = writeSSE(w, closedEvent(cs.hub.reason))
				fl.Flush()
				return
			}
			sub = next
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		case <-sub.closed:
			_ = writeSSE(w, closedEvent(sub.reason))
			fl.Flush()
			return
		case ev := <-sub.queue:
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
		}
	}
}
