package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"vexus/internal/action"
)

// postBatch sends an action batch to the v1 endpoint.
func postBatch(t testing.TB, ts *httptest.Server, sid, query string, acts []action.Action) (batchDTO, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(acts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/v1/sessions/"+sid+"/actions"+query, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body batchDTO
	if res.Header.Get("Content-Type") == "application/json" {
		if err := json.NewDecoder(res.Body).Decode(&body); err != nil {
			t.Fatalf("batch response: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, res.Body)
	}
	return body, res
}

func createV1Session(t testing.TB, ts *httptest.Server) (stateDTO, string) {
	t.Helper()
	res, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("v1 session create: status %d, want 201", res.StatusCode)
	}
	var st stateDTO
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if loc := res.Header.Get("Location"); loc != "/api/v1/sessions/"+st.Session {
		t.Fatalf("Location %q for session %s", loc, st.Session)
	}
	return st, res.Header.Get("ETag")
}

// ---------------------------------------------------------------------------
// Smoke: the CI step runs exactly this test.

func TestV1SmokeBatch(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, etag := createV1Session(t, ts)
	if etag == "" {
		t.Fatal("create returned no ETag")
	}

	acts := []action.Action{
		{Op: action.Explore, Group: st.Shown[0].ID},
		{Op: action.BookmarkGroup, Group: st.Shown[0].ID},
		{Op: action.Unlearn, Field: "gender", Value: "male"},
	}
	body, res := postBatch(t, ts, st.Session, "", acts)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", res.StatusCode)
	}
	if body.Applied != 3 || len(body.Results) != 3 {
		t.Fatalf("applied %d with %d results, want 3/3", body.Applied, len(body.Results))
	}
	// Diff shape: explore moved the focal, replaced shown groups and
	// returned optimizer metrics; mutation counters are consecutive.
	d0 := body.Results[0]
	if d0.Metrics == nil {
		t.Fatal("explore result has no metrics")
	}
	if !d0.Diff.FocalChanged || d0.Diff.Focal != st.Shown[0].ID {
		t.Fatalf("explore diff focal: %+v", d0.Diff)
	}
	if len(d0.Diff.ShownAdded) == 0 && len(d0.Diff.ShownRemoved) == 0 {
		t.Fatalf("explore diff reports no display change: %+v", d0.Diff)
	}
	if len(body.Results[1].Diff.MemoGroupsAdded) != 1 {
		t.Fatalf("bookmark diff: %+v", body.Results[1].Diff)
	}
	for i, r := range body.Results {
		if want := uint64(i + 2); r.Diff.Mutations != want { // create's Start was mutation 1
			t.Fatalf("result %d mutations %d, want %d", i, r.Diff.Mutations, want)
		}
	}
	if body.ETag == "" || body.ETag != res.Header.Get("ETag") {
		t.Fatalf("batch etag body %q vs header %q", body.ETag, res.Header.Get("ETag"))
	}

	// Unchanged state + the batch's validator → 304 with no body.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/sessions/"+st.Session+"/state", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", body.ETag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("state with current validator: status %d, want 304", resp.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Batch semantics.

func TestV1BatchErrorPosition(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, _ := createV1Session(t, ts)

	acts := []action.Action{
		{Op: action.BookmarkGroup, Group: st.Shown[0].ID},
		{Op: action.Explore, Group: -7},
		{Op: action.BookmarkGroup, Group: st.Shown[1].ID},
	}
	body, res := postBatch(t, ts, st.Session, "", acts)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("failing batch: status %d, want 400", res.StatusCode)
	}
	if body.FailedIndex == nil || *body.FailedIndex != 1 {
		t.Fatalf("failedIndex %v, want 1", body.FailedIndex)
	}
	if body.Applied != 1 || len(body.Results) != 1 {
		t.Fatalf("applied %d/%d results, want the 1-action prefix", body.Applied, len(body.Results))
	}
	if body.Error == "" {
		t.Fatal("failing batch carries no error message")
	}
	// The prefix stays applied: the bookmark exists, the tail does not.
	got, _ := getState(t, ts, st.Session)
	if len(got.Memo.Groups) != 1 {
		t.Fatalf("memo after failed batch: %v", got.Memo.Groups)
	}
}

func TestV1BatchFullState(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, _ := createV1Session(t, ts)
	var full stateDTO
	raw, err := json.Marshal([]action.Action{{Op: action.Explore, Group: st.Shown[0].ID}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/v1/sessions/"+st.Session+"/actions?full=1",
		"application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("full batch: status %d", res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Focal != st.Shown[0].ID || full.Session != st.Session {
		t.Fatalf("full state: focal %d session %q", full.Focal, full.Session)
	}
	if res.Header.Get("ETag") == "" {
		t.Fatal("full batch response has no ETag")
	}
}

func TestV1BatchRejects(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, etag := createV1Session(t, ts)

	cases := []struct {
		name string
		body string
	}{
		{"unknown op", `[{"op":"teleport"}]`},
		{"unknown field", `[{"op":"explore","group":1,"bogus":true}]`},
		{"field on wrong op", `[{"op":"start","group":1}]`},
		{"not json", `go go go`},
		{"empty batch", `[]`},
		{"no actions key", `{"version":2}`},
	}
	for _, c := range cases {
		res, err := http.Post(ts.URL+"/api/v1/sessions/"+st.Session+"/actions",
			"application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, res.StatusCode)
		}
	}
	// A rejected batch mutates nothing: the validator still matches.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/sessions/"+st.Session+"/state", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("state changed by rejected batches: status %d", resp.StatusCode)
	}

	// Oversized batches are refused outright.
	big := make([]action.Action, maxBatchActions+1)
	for i := range big {
		big[i] = action.Action{Op: action.Start}
	}
	_, res := postBatch(t, ts, st.Session, "", big)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", res.StatusCode)
	}

	// Unknown session → 404, missing → 400 (empty sid collapses the
	// path, so the mux 404s it — either way it is a client error).
	res, err = http.Post(ts.URL+"/api/v1/sessions/deadbeef/actions", "application/json",
		strings.NewReader(`[{"op":"start"}]`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session batch: status %d, want 404", res.StatusCode)
	}
}

func TestV1SessionDelete(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, _ := createV1Session(t, ts)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+st.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNoContent {
		t.Fatalf("v1 delete: status %d, want 204", res.StatusCode)
	}
	if _, res := getState(t, ts, st.Session); res.StatusCode != http.StatusNotFound {
		t.Fatalf("state after v1 delete: status %d, want 404", res.StatusCode)
	}
}

// ---------------------------------------------------------------------------
// Diff correctness at the HTTP layer: every batch diff pinned against
// a recompute from the full states around it.

func TestV1DiffsPinnedAgainstFullState(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st, _ := createV1Session(t, ts)

	fetch := func() stateDTO {
		got, res := getState(t, ts, st.Session)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("state: %d", res.StatusCode)
		}
		return got
	}
	shownIDs := func(s stateDTO) []int {
		out := make([]int, len(s.Shown))
		for i, g := range s.Shown {
			out[i] = g.ID
		}
		return out
	}
	ctxLabels := func(s stateDTO) []string {
		out := make([]string, len(s.Context))
		for i, c := range s.Context {
			out[i] = c.Label
		}
		return out
	}
	asSet := func(xs []int) map[int]bool {
		m := map[int]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	asStrSet := func(xs []string) map[string]bool {
		m := map[string]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}

	cur := fetch()
	steps := []func(stateDTO) action.Action{
		func(s stateDTO) action.Action { return action.Action{Op: action.Explore, Group: s.Shown[0].ID} },
		func(s stateDTO) action.Action { return action.Action{Op: action.Focus, Group: s.Shown[1].ID} },
		func(s stateDTO) action.Action { return action.Action{Op: action.BookmarkGroup, Group: s.Shown[2].ID} },
		func(s stateDTO) action.Action { return action.Action{Op: action.Backtrack, Step: 0} },
	}
	for i, mk := range steps {
		a := mk(cur)
		before := cur
		body, res := postBatch(t, ts, st.Session, "", []action.Action{a})
		if res.StatusCode != http.StatusOK {
			t.Fatalf("step %d: status %d", i, res.StatusCode)
		}
		after := fetch()
		d := body.Results[0].Diff

		bs, as_ := asSet(shownIDs(before)), asSet(shownIDs(after))
		for _, g := range d.ShownAdded {
			if bs[g] || !as_[g] {
				t.Fatalf("step %d: shownAdded %d not a genuine addition", i, g)
			}
		}
		for _, g := range d.ShownRemoved {
			if !bs[g] || as_[g] {
				t.Fatalf("step %d: shownRemoved %d not a genuine removal", i, g)
			}
		}
		if wantAdd := len(as_) - intersection(bs, as_); len(d.ShownAdded) != wantAdd {
			t.Fatalf("step %d: %d shownAdded, recompute %d", i, len(d.ShownAdded), wantAdd)
		}
		if wantDel := len(bs) - intersection(bs, as_); len(d.ShownRemoved) != wantDel {
			t.Fatalf("step %d: %d shownRemoved, recompute %d", i, len(d.ShownRemoved), wantDel)
		}
		if d.Focal != after.Focal {
			t.Fatalf("step %d: diff focal %d, state %d", i, d.Focal, after.Focal)
		}
		if d.FocalChanged != (before.Focal != after.Focal) {
			t.Fatalf("step %d: focalChanged %v, states %d→%d", i, d.FocalChanged, before.Focal, after.Focal)
		}
		if d.HistorySteps != len(after.History) {
			t.Fatalf("step %d: diff history %d, state %d", i, d.HistorySteps, len(after.History))
		}
		bc, ac := asStrSet(ctxLabels(before)), asStrSet(ctxLabels(after))
		for _, l := range d.ContextAdded {
			if bc[l] || !ac[l] {
				t.Fatalf("step %d: contextAdded %q not a genuine addition", i, l)
			}
		}
		for _, l := range d.ContextRemoved {
			if !bc[l] || ac[l] {
				t.Fatalf("step %d: contextRemoved %q not a genuine removal", i, l)
			}
		}
		if (d.Focus != nil) != (after.Focus != nil) {
			t.Fatalf("step %d: diff focus %v, state focus %v", i, d.Focus, after.Focus)
		}
		cur = after
	}
}

func intersection(a, b map[int]bool) int {
	n := 0
	for x := range a {
		if b[x] {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// etagMatches: RFC 9110 §13.1.2 table.

func TestEtagMatches(t *testing.T) {
	cases := []struct {
		name   string
		header string
		etag   string
		want   bool
	}{
		{"empty header", "", `"a.1"`, false},
		{"star", "*", `"a.1"`, true},
		{"star with spaces", "  *  ", `"a.1"`, true},
		{"exact", `"a.1"`, `"a.1"`, true},
		{"mismatch", `"a.2"`, `"a.1"`, false},
		{"weak header vs strong", `W/"a.1"`, `"a.1"`, true},
		{"strong header vs weak current", `"a.1"`, `W/"a.1"`, true},
		{"weak both", `W/"a.1"`, `W/"a.1"`, true},
		{"list hit", `"x", "a.1", "y"`, `"a.1"`, true},
		{"list miss", `"x", "y"`, `"a.1"`, false},
		{"list with weak hit", `"x", W/"a.1"`, `"a.1"`, true},
		{"list spacing", `"x",W/"a.1"`, `"a.1"`, true},
		{"star inside list is not a wildcard", `"x", *`, `"a.1"`, false},
		{"empty member ignored", `, "a.1"`, `"a.1"`, true},
		{"unquoted garbage", `a.1`, `"a.1"`, false},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, c.etag); got != c.want {
			t.Errorf("%s: etagMatches(%q, %q) = %v, want %v", c.name, c.header, c.etag, got, c.want)
		}
	}
}

// ---------------------------------------------------------------------------
// /api/sessions reports every catalog dataset, non-resident ones at 0.

func TestSessionsReportNonResidentDatasets(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 0)
	// Touch only "authors": "books" never builds.
	if _, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}}); res.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", res.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var occ struct {
		Sessions   int            `json:"sessions"`
		PerDataset map[string]int `json:"perDataset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&occ); err != nil {
		t.Fatal(err)
	}
	if occ.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", occ.Sessions)
	}
	if got, ok := occ.PerDataset["authors"]; !ok || got != 1 {
		t.Fatalf("authors count = %d (present %v), want 1", got, ok)
	}
	if got, ok := occ.PerDataset["books"]; !ok || got != 0 {
		t.Fatalf("non-resident books count = %d (present %v), want 0", got, ok)
	}
}

// ---------------------------------------------------------------------------
// v1 on catalog deployments: dataset scoping carries over.

func TestV1SessionCreateWithDataset(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 0)
	res, err := http.Post(ts.URL+"/api/v1/sessions?dataset=books", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusCreated {
		t.Fatalf("v1 create with dataset: status %d", res.StatusCode)
	}
	var st stateDTO
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Dataset != "books" {
		t.Fatalf("dataset %q, want books", st.Dataset)
	}
	res2, err := http.Post(ts.URL+"/api/v1/sessions?dataset=nope", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res2.Body)
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", res2.StatusCode)
	}
}
