package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"vexus/internal/core"
	"vexus/internal/dataset"
	"vexus/internal/greedy"
	"vexus/internal/store"
	"vexus/internal/telemetry"
)

// This file is the shard half of warm joins. A joining shard must not
// serve (or even build) an engine of its own: it receives the cluster's
// engine as a snapshot stream — written by a current member with
// store.Save, relayed by the gateway — and installs it only after
// store.LoadFresh has verified the header fingerprint against the
// chain of the shard's *locally computed* base fingerprint and the
// lineage the stream records. The joiner's own dataset + config is the
// root of trust: a stream for the wrong dataset, a different pipeline
// config, a truncated transfer, or a torn section can never install.
//
//	GET  /internal/cluster/snapshot?dataset=  (donor: stream the engine)
//	POST /internal/cluster/warm?dataset=      (joiner: verify + install)
//
// Both are cluster-internal and sit behind the shared-secret gate with
// the rest of /internal/cluster/*.

// errWarming marks a dataset that is configured warm-only (-warm) and
// has not received its snapshot yet; handlers surface it as 503, which
// keeps the joiner failing readiness — and refusing sessions — until
// the stream has verified. That is the fail-closed half of the warm
// join: a joiner that never gets its snapshot simply never serves.
var errWarming = errors.New("dataset awaiting warm-join snapshot")

// NewPending builds a warm-only shard server: it knows its dataset (so
// it can verify the incoming stream's fingerprint chain) but will not
// build an engine — the engine must arrive as a verified snapshot
// stream on POST /internal/cluster/warm. Until then every session
// create and readiness probe answers 503.
func NewPending(name string, d *dataset.Dataset, pcfg core.PipelineConfig, gcfg greedy.Config, scfg Config) *Server {
	c := &Catalog{
		gcfg:        gcfg,
		scfg:        scfg,
		workers:     pcfg.Workers,
		defaultName: name,
		entries:     map[string]*catalogEntry{},
		now:         time.Now,
	}
	c.met = newServerMetrics(scfg.Telemetry, scfg.Logger, c)
	c.entries[name] = &catalogEntry{name: name, pendingData: d, pendingCfg: pcfg}
	return &Server{
		cat:       c,
		met:       c.met,
		shardAPI:  scfg.ShardAPI,
		secret:    scfg.ClusterSecret,
		heartbeat: heartbeatOrDefault(scfg),
	}
}

// warmCoordinates resolves the dataset name to what verification
// needs: the spec dataset and pipeline config (the fingerprint roots)
// plus the snapshot path future ingests should append to ("" =
// in-memory only).
func (c *Catalog) warmCoordinates(name string) (*dataset.Dataset, core.PipelineConfig, string, error) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return nil, core.PipelineConfig{}, "", fmt.Errorf("%w %q", errUnknownDataset, name)
	}
	if e.pendingData != nil {
		d, pcfg := e.pendingData, e.pendingCfg
		c.mu.Unlock()
		return d, pcfg, "", nil
	}
	spec := e.spec
	c.mu.Unlock()
	d, encode, err := c.loadSpecData(spec)
	if err != nil {
		return nil, core.PipelineConfig{}, "", err
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = encode
	pcfg.MinSupportFrac = spec.MinSup
	if pcfg.MinSupportFrac == 0 {
		pcfg.MinSupportFrac = 0.02
	}
	pcfg.Workers = c.workers
	snap := ""
	if c.dir != "" {
		snap = filepath.Join(c.dir, name+".snap")
	}
	return d, pcfg, snap, nil
}

// handleShardSnapshot is GET /internal/cluster/snapshot?dataset=: the
// donor side of a warm join. The resident engine streams out through
// store.Save — header stamped with the chain of the base fingerprint
// and the engine's lineage, so the receiver can verify it end to end.
// A dataset without a recorded base fingerprint (an engine handed to
// serve.New mid-lineage) refuses: it cannot produce an attestable
// stream.
func (s *Server) handleShardSnapshot(w http.ResponseWriter, r *http.Request) {
	e, _, err := s.cat.acquire(r.FormValue("dataset"))
	if err != nil {
		writeCreateError(w, err)
		return
	}
	s.cat.mu.Lock()
	eng, baseFP := e.eng, e.baseFP
	s.cat.mu.Unlock()
	if eng == nil {
		http.Error(w, "engine not resident", http.StatusServiceUnavailable)
		return
	}
	if baseFP == (store.Fingerprint{}) {
		http.Error(w, "dataset has no recorded base fingerprint; cannot stream a verifiable snapshot", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Vexus-Dataset", e.name)
	w.Header().Set("X-Vexus-Engine-Version", strconv.FormatUint(eng.Version(), 10))
	if err := store.Save(w, eng, baseFP); err != nil {
		// Headers are gone; all we can do is log and let the truncated
		// stream fail verification on the receiving side — which it
		// will, by construction.
		s.met.log.Warn("warm join: streaming snapshot failed", "dataset", e.name, "err", err)
	}
}

// WarmResult is the POST /internal/cluster/warm response body — the
// gateway decodes it to meter warm-join transfer size.
type WarmResult struct {
	Dataset       string `json:"dataset"`
	EngineVersion uint64 `json:"engineVersion"`
	Bytes         int    `json:"bytes"`
	// AlreadyResident reports a no-op: the shard had the engine (warm
	// joins against an already-running member are idempotent).
	AlreadyResident bool `json:"alreadyResident,omitempty"`
}

// handleShardWarm is POST /internal/cluster/warm?dataset=: the joiner
// side. The body is a snapshot stream; it installs only if
// store.LoadFreshBytes verifies its fingerprint chain against this
// shard's own dataset + config. Every failure leaves the entry
// exactly as it was — pending stays pending, resident stays resident —
// so a killed or corrupt stream cannot move the shard toward serving.
func (s *Server) handleShardWarm(w http.ResponseWriter, r *http.Request) {
	name := r.FormValue("dataset")
	if name == "" {
		name = s.cat.defaultName
	}
	s.cat.mu.Lock()
	e, ok := s.cat.entries[name]
	if !ok {
		s.cat.mu.Unlock()
		http.Error(w, "unknown dataset "+name, http.StatusNotFound)
		return
	}
	s.cat.mu.Unlock()

	// ingestMu is the entry's slow-operation lock: one warm install at
	// a time, and never interleaved with an ingest rebuild.
	e.ingestMu.Lock()
	defer e.ingestMu.Unlock()

	s.cat.mu.Lock()
	resident := e.eng
	s.cat.mu.Unlock()
	if resident != nil {
		// Drain the stream before answering so the donor's Save doesn't
		// see its pipe closed mid-write and log a spurious failure.
		_, _ = io.Copy(io.Discard, r.Body)
		writeJSON(w, http.StatusOK, WarmResult{
			Dataset: name, EngineVersion: resident.Version(), AlreadyResident: true,
		})
		return
	}

	d, pcfg, snap, err := s.cat.warmCoordinates(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	baseFP := store.ComputeFingerprint(d, pcfg)
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<31))
	if err != nil {
		http.Error(w, "reading snapshot stream: "+err.Error(), http.StatusBadRequest)
		return
	}
	workers := s.cat.workers
	if workers == 0 {
		workers = pcfg.Workers
	}
	eng, err := store.LoadFreshBytes(raw, baseFP, workers)
	if err != nil {
		s.met.log.Warn("warm join: snapshot rejected", "dataset", name, "bytes", len(raw), "err", err)
		http.Error(w, "snapshot failed verification: "+err.Error(), http.StatusConflict)
		return
	}

	s.cat.mu.Lock()
	if e.eng == nil {
		e.eng, e.warm, e.lastUsed = eng, true, s.cat.now()
		e.baseFP, e.snap = baseFP, snap
		e.reg = s.cat.newRegistry(name, eng)
		e.err = nil
	}
	installed := e.eng
	s.cat.mu.Unlock()
	s.met.log.Info("warm join: snapshot installed", "dataset", name,
		"bytes", len(raw), "engineVersion", installed.Version())
	writeJSON(w, http.StatusOK, WarmResult{
		Dataset: name, EngineVersion: installed.Version(), Bytes: len(raw),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// LoadInfo reports this server's gossip metadata: live session count
// and per-dataset resident engine versions — what the membership
// announcer stamps on every heartbeat.
func (s *Server) LoadInfo() (int, map[string]uint64) {
	total, _ := s.cat.sessionCount()
	engines := map[string]uint64{}
	s.cat.mu.Lock()
	for name, e := range s.cat.entries {
		if e.eng != nil {
			engines[name] = e.eng.Version()
		}
	}
	s.cat.mu.Unlock()
	return total, engines
}

// Telemetry exposes the server's metric registry, so process wiring
// (cmd/vexus-server) can register instruments — the heartbeat RTT
// histogram — on the same registry the shard exposes and the gateway
// rolls up.
func (s *Server) Telemetry() *telemetry.Registry { return s.met.reg }
