package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"

	"vexus/internal/telemetry"
)

// serverMetrics bundles every instrument the serving layers share —
// one per Catalog, so in-process clusters (tests, LocalShard) keep
// per-shard metrics separate instead of bleeding into a global. All
// instrument fields are nil-safe no-ops when Config.Telemetry is
// telemetry.Disabled, which is what makes instrumented call sites
// unconditional.
type serverMetrics struct {
	reg *telemetry.Registry
	log *slog.Logger

	http *telemetry.HTTPMetrics

	// Per-action-type apply latency, fed by the action.Session.Observe
	// hook wired at session creation.
	actionSeconds *telemetry.HistogramVec

	sessionsCreated *telemetry.Counter
	sessionsEvicted *telemetry.Counter
	sessionsExpired *telemetry.Counter

	engineEvictions *telemetry.Counter
	buildWaits      *telemetry.Counter
	buildSeconds    *telemetry.Histogram
	loadSeconds     *telemetry.Histogram

	streamSubscribers *telemetry.Gauge
	streamResumes     *telemetry.Counter
	streamResyncs     *telemetry.Counter
	streamDrops       *telemetry.Counter

	ingestBatches *telemetry.Counter
	ingestRows    *telemetry.CounterVec
	ingestRebuild *telemetry.Histogram
	ingestSwap    *telemetry.Histogram
	deltaChain    *telemetry.GaugeVec
}

// newServerMetrics registers the serve-layer families on reg and wires
// the live-occupancy gauges to the catalog (evaluated at scrape time —
// residency already lives in the catalog; mirroring it on every change
// would be a second source of truth).
func newServerMetrics(reg *telemetry.Registry, logger *slog.Logger, c *Catalog) *serverMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if logger == nil {
		logger = slog.Default()
	}
	m := &serverMetrics{
		reg:  reg,
		log:  logger,
		http: telemetry.NewHTTPMetrics(reg, "http", logger),

		actionSeconds: reg.HistogramVec("vexus_action_apply_seconds",
			"Apply latency per exploration action type.", telemetry.DefBuckets, "op"),

		sessionsCreated: reg.Counter("vexus_sessions_created_total", "Sessions created."),
		sessionsEvicted: reg.Counter("vexus_sessions_evicted_total", "Sessions evicted at capacity (LRU)."),
		sessionsExpired: reg.Counter("vexus_sessions_expired_total", "Sessions reaped by the TTL sweeper."),

		engineEvictions: reg.Counter("vexus_engine_evictions_total", "Resident engines evicted by the catalog LRU."),
		buildWaits:      reg.Counter("vexus_engine_build_waits_total", "Requests that waited on another goroutine's singleflight engine build."),
		buildSeconds:    reg.Histogram("vexus_engine_build_seconds", "Cold engine builds (full pipeline).", telemetry.SlowBuckets),
		loadSeconds:     reg.Histogram("vexus_engine_load_seconds", "Warm engine starts (snapshot load).", telemetry.SlowBuckets),

		streamSubscribers: reg.Gauge("vexus_stream_subscribers", "Live SSE subscribers."),
		streamResumes:     reg.Counter("vexus_stream_resumes_total", "Stream attaches resumed from the replay ring."),
		streamResyncs:     reg.Counter("vexus_stream_resyncs_total", "Stream attaches served a full-snapshot resync."),
		streamDrops:       reg.Counter("vexus_stream_drops_total", "Subscribers dropped to resync by queue overflow."),

		ingestBatches: reg.Counter("vexus_ingest_batches_total", "Ingest batches committed."),
		ingestRows:    reg.CounterVec("vexus_ingest_rows_total", "Rows ingested by kind.", "kind"),
		ingestRebuild: reg.Histogram("vexus_ingest_rebuild_seconds", "Engine rebuild time per ingest batch.", telemetry.SlowBuckets),
		ingestSwap:    reg.Histogram("vexus_ingest_swap_seconds", "Engine version-swap time (persist done to visible).", nil),
		deltaChain:    reg.GaugeVec("vexus_ingest_delta_chain", "Pending-delta chain length per dataset.", "dataset"),
	}
	reg.GaugeFunc("vexus_sessions_live", "Live sessions across all datasets.", func() float64 {
		total, _ := c.sessionCount()
		return float64(total)
	})
	reg.GaugeFunc("vexus_engines_resident", "Catalog engines currently resident.", func() float64 {
		return float64(c.residentCount())
	})
	return m
}

// handleHealthz is GET /api/v1/healthz: pure liveness — the process is
// up and serving. No dependency checks; a wedged catalog is a
// readiness problem, not a liveness one.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is GET /api/v1/readyz: readiness means the default
// dataset's engine is resident or loadable — acquire runs the normal
// singleflight build-or-load, so the first readiness probe warms the
// default engine and a broken catalog reports 503 with the build
// error.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if _, _, err := s.cat.acquire(""); err != nil {
		http.Error(w, "catalog not ready: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ready\n"))
}

// handleShardMetrics is GET /internal/cluster/metrics: this shard's
// registry flattened to series→value JSON, the shape the gateway sums
// into its cluster rollup.
func (s *Server) handleShardMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.met.reg.Snapshot())
}

// residentCount reports how many catalog entries hold a resident
// engine — the vexus_engines_resident gauge.
func (c *Catalog) residentCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.eng != nil {
			n++
		}
	}
	return n
}
