package serve

import "net/http"

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	Index(w, r)
}

// Index serves the bundled exploration page. Exported so the cluster
// gateway can serve the identical page — it talks pure /api/v1, which
// the gateway proxies, so one page works against both shapes.
func Index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// indexHTML is the self-contained demo page: vanilla JS, no assets.
const indexHTML = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>VEXUS</title>
<style>
 body { font-family: sans-serif; margin: 0; background: #f4f4f7; }
 header { background: #27306b; color: #fff; padding: 8px 16px; }
 main { display: grid; grid-template-columns: 740px 1fr; gap: 12px; padding: 12px; }
 .panel { background: #fff; border-radius: 8px; padding: 10px; box-shadow: 0 1px 3px rgba(0,0,0,.15); }
 .panel h2 { margin: 2px 0 8px; font-size: 14px; color: #27306b; text-transform: uppercase; }
 #groups li { cursor: pointer; margin: 3px 0; list-style: none; }
 #groups li:hover { background: #eef; }
 #groups .size { color: #888; font-size: 12px; margin-left: 6px; }
 button { margin: 1px; font-size: 12px; }
 .bar { height: 12px; background: #9ecae1; display: inline-block; vertical-align: middle; }
 .ctx span { display: inline-block; background: #eef; border-radius: 4px; padding: 2px 6px; margin: 2px; font-size: 12px; }
 table { border-collapse: collapse; font-size: 12px; }
 td, th { border-bottom: 1px solid #ddd; padding: 2px 6px; text-align: left; }
</style></head>
<body>
<header><b>VEXUS</b> — Visualizing and EXploring User GroupS</header>
<main>
 <div>
  <div class="panel"><h2>GroupViz</h2>
   <img id="gv" width="720" height="480">
   <ul id="groups"></ul>
  </div>
  <div class="panel"><h2>History</h2><div id="history"></div></div>
 </div>
 <div>
  <div class="panel"><h2>Context</h2><div id="context" class="ctx"></div></div>
  <div class="panel"><h2>Stats / Focus</h2><div id="focus">click “focus” on a group</div></div>
  <div class="panel"><h2>Memo</h2><div id="memo"></div></div>
 </div>
</main>
<script>
let sid = sessionStorage.getItem('vexus-sid') || '';
async function ensureSession() {
  if (sid) {
    const res = await fetch('/api/v1/sessions/' + sid + '/state');
    if (res.ok) return res.json();
  }
  const res = await fetch('/api/v1/sessions', {method: 'POST'});
  if (!res.ok) {
    document.getElementById('groups').innerHTML =
      '<li><b>cannot start a session:</b> ' + (await res.text()) + '</li>';
    return null;
  }
  const state = await res.json();
  sid = state.session;
  sessionStorage.setItem('vexus-sid', sid);
  return state;
}
// act POSTs a v1 action batch; ?full=1 makes the response the full
// state snapshot, which is what the page renders from. The response
// ETag is '"sid.mutations"' and the mutation counter doubles as the
// SSE event id, so recording it here lets the diff listener skip
// re-fetching state for our own actions.
async function act(actions) {
  const res = await fetch('/api/v1/sessions/' + sid + '/actions?full=1', {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify(actions)});
  if (!res.ok) { alert(await res.text()); return null; }
  const m = (res.headers.get('ETag') || '').match(/\.(\d+)"$/);
  if (m) lastMut = Math.max(lastMut, Number(m[1]));
  return res.json();
}
// The live diff stream: every collaborator on this session (another
// tab, another analyst) pushes its mutations here as 'diff' events
// whose id is the post-action mutation counter. 'resync' carries a
// full snapshot (fresh attach, or we fell too far behind); 'closed'
// ends the stream — reason 'migrated' means the session moved shards
// and a reconnect (with the browser-kept Last-Event-ID) resumes it.
let lastMut = 0, es = null;
function connect() {
  if (es) es.close();
  // A fresh EventSource sends no Last-Event-ID header, so the resume
  // cursor rides the query parameter: resuming past lastMut delivers
  // exactly the missed diffs (or one resync if we are too far behind).
  es = new EventSource('/api/v1/sessions/' + sid + '/events' +
    (lastMut > 0 ? '?lastEventID=' + lastMut : ''));
  es.addEventListener('resync', e => {
    lastMut = Math.max(lastMut, Number(e.lastEventId) || 0);
    refresh(JSON.parse(e.data));
  });
  es.addEventListener('diff', async e => {
    const mut = Number(e.lastEventId) || 0;
    if (mut <= lastMut) return; // our own action; already rendered
    lastMut = mut;
    const res = await fetch('/api/v1/sessions/' + sid + '/state');
    if (res.ok) refresh(await res.json());
  });
  es.addEventListener('closed', e => {
    es.close();
    es = null;
    if (JSON.parse(e.data).reason === 'migrated') connect();
  });
}
async function refresh(state) {
  if (!state) state = await ensureSession();
  if (!state) return;
  if (!es && sid) connect();
  document.getElementById('gv').src = '/api/groupviz.svg?sid=' + sid + '&t=' + Date.now();
  const ul = document.getElementById('groups');
  ul.innerHTML = '';
  (state.shown || []).forEach(g => {
    const li = document.createElement('li');
    li.innerHTML = '<b>' + g.label + '</b><span class="size">' + g.size + ' users, sim ' +
      g.similarity.toFixed(2) + '</span> ' +
      '<button onclick="explore(' + g.id + ')">explore</button>' +
      '<button onclick="focusG(' + g.id + ')">focus</button>' +
      '<button onclick="bookmark(' + g.id + ')">memo</button>';
    ul.appendChild(li);
  });
  const ctx = document.getElementById('context');
  ctx.innerHTML = (state.context || []).map(e =>
    '<span>' + e.label + ' ' + e.score.toFixed(3) +
    (e.isUser ? '' : ' <a href="#" onclick="unlearn(\'' + e.label + '\');return false">×</a>') +
    '</span>').join('') || '<i>empty — explore to teach VEXUS</i>';
  document.getElementById('history').innerHTML = (state.history || []).map(h =>
    '<button onclick="backtrack(' + h.step + ')">' + h.step + ': ' + h.label + '</button>'
  ).join(' → ');
  const memo = state.memo || {};
  document.getElementById('memo').innerHTML =
    (memo.groups || []).map(g => '<div>◉ ' + g + '</div>').join('') +
    (memo.users || []).map(u => '<div>◇ ' + u + '</div>').join('') || '<i>empty</i>';
  renderFocus(state.focus);
}
function renderFocus(f) {
  const el = document.getElementById('focus');
  if (!f) { el.innerHTML = 'click “focus” on a group'; return; }
  let html = '<b>' + f.label + '</b> — ' + f.selected + ' / ' + f.members + ' selected' +
    '<br><img src="/api/focus.svg?sid=' + sid + '&t=' + Date.now() + '" onerror="this.style.display=\'none\'">';
  (f.histograms || []).forEach(h => {
    const max = Math.max(1, ...h.counts);
    html += '<div><b>' + h.attr + '</b>';
    h.labels.forEach((l, i) => {
      html += '<div>' + l + ' <span class="bar" style="width:' + (120 * h.counts[i] / max) +
        'px"></span> ' + h.counts[i] +
        ' <a href="#" onclick="brush(\'' + h.attr + '\',\'' + l + '\');return false">brush</a></div>';
    });
    html += '<a href="#" onclick="brush(\'' + h.attr + '\',\'\');return false">clear</a></div>';
  });
  if ((f.table || []).length) {
    html += '<table><tr><th>user</th><th>actions</th><th>profile</th><th></th></tr>';
    f.table.forEach(r => {
      html += '<tr><td>' + r.id + '</td><td>' + r.acts + '</td><td>' + r.demo.join(' · ') +
        '</td><td>' + (r.marked ? '✓' :
        '<button onclick="bookmarkUser(\'' + r.id + '\')">memo</button>') + '</td></tr>';
    });
    html += '</table>';
  }
  el.innerHTML = html;
}
async function explore(g)      { refresh(await act([{op: 'explore', group: g}])); }
async function focusG(g)       { refresh(await act([{op: 'focus', group: g}])); }
async function backtrack(step) { refresh(await act([{op: 'backtrack', step}])); }
async function brush(attr, value) {
  refresh(await act([value ? {op: 'brush', attr, values: [value]} : {op: 'brush', attr}]));
}
async function bookmark(g)     { refresh(await act([{op: 'bookmarkGroup', group: g}])); }
async function bookmarkUser(u) { refresh(await act([{op: 'bookmarkUser', user: u}])); }
async function unlearn(label) {
  const i = label.indexOf('=');
  refresh(await act([{op: 'unlearn', field: label.slice(0, i), value: label.slice(i + 1)}]));
}
refresh();
</script>
</body></html>`
