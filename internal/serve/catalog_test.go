package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vexus/internal/action"
)

// writeSpecs populates a catalog dir with two small synthetic datasets
// and returns the dir.
func writeSpecs(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	specs := map[string]string{
		"authors": `{"dataset":"dbauthors","n":200,"seed":11,"minsup":0.05}`,
		"books":   `{"dataset":"dbauthors","n":250,"seed":12,"minsup":0.05}`,
	}
	for name, body := range specs {
		if err := os.WriteFile(filepath.Join(dir, name+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func catalogServer(t testing.TB, dir string, maxEngines int) (*Catalog, *httptest.Server) {
	t.Helper()
	specs, err := ScanCatalogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCatalog(dir, specs, "", fastGreedy(), DefaultConfig(), 2, maxEngines)
	if err != nil {
		t.Fatal(err)
	}
	s := NewCatalogServer(cat)
	ts := httptest.NewServer(s.Routes())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return cat, ts
}

func TestCatalogSessionScoping(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 0)

	a, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create authors session: status %d", res.StatusCode)
	}
	if a.Dataset != "authors" {
		t.Fatalf("session dataset %q, want authors", a.Dataset)
	}
	b, res := post(t, ts, "/api/session", url.Values{"dataset": {"books"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create books session: status %d", res.StatusCode)
	}
	if b.Dataset != "books" {
		t.Fatalf("session dataset %q, want books", b.Dataset)
	}
	// Both sessions resolve through the shared sid namespace, each
	// against its own engine.
	for _, st := range []stateDTO{a, b} {
		got, res := getState(t, ts, st.Session)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("state %s: status %d", st.Session, res.StatusCode)
		}
		if got.Dataset != st.Dataset {
			t.Fatalf("state dataset %q, want %q", got.Dataset, st.Dataset)
		}
	}
	// Exploring a books session works against the books group space.
	after, res := act(t, ts, b.Session, action.Action{Op: action.Explore, Group: b.Shown[0].ID})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("explore books: status %d", res.StatusCode)
	}
	if after.Focal != b.Shown[0].ID {
		t.Fatalf("books explore focal %d, want %d", after.Focal, b.Shown[0].ID)
	}

	// Occupancy is reported per dataset.
	resp, err := http.Get(ts.URL + "/api/sessions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var occ struct {
		Sessions   int            `json:"sessions"`
		PerDataset map[string]int `json:"perDataset"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&occ); err != nil {
		t.Fatal(err)
	}
	if occ.Sessions != 2 || occ.PerDataset["authors"] != 1 || occ.PerDataset["books"] != 1 {
		t.Fatalf("occupancy %+v, want 1 session on each of 2 datasets", occ)
	}
}

func TestCatalogDefaultAndUnknownDataset(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 0)

	// No dataset parameter: the lexicographically first name serves.
	st, res := post(t, ts, "/api/session", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("default create: status %d", res.StatusCode)
	}
	if st.Dataset != "authors" {
		t.Fatalf("default dataset %q, want authors", st.Dataset)
	}
	// Unknown names 404 instead of silently falling back.
	_, res = post(t, ts, "/api/session", url.Values{"dataset": {"nope"}})
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d, want 404", res.StatusCode)
	}
}

func TestCatalogListsDatasets(t *testing.T) {
	_, ts := catalogServer(t, writeSpecs(t), 0)
	if _, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}}); res.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", res.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Default  string          `json:"default"`
		Datasets []DatasetStatus `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if list.Default != "authors" || len(list.Datasets) != 2 {
		t.Fatalf("catalog listing %+v", list)
	}
	byName := map[string]DatasetStatus{}
	for _, d := range list.Datasets {
		byName[d.Name] = d
	}
	if !byName["authors"].Resident || byName["authors"].Sessions != 1 {
		t.Fatalf("authors status %+v, want resident with 1 session", byName["authors"])
	}
	if byName["books"].Resident {
		t.Fatalf("books built without anyone asking: %+v", byName["books"])
	}
}

// TestCatalogSnapshotWarmStart: the first build writes <name>.snap; a
// fresh catalog over the same directory serves it as a warm start.
func TestCatalogSnapshotWarmStart(t *testing.T) {
	dir := writeSpecs(t)
	cat1, ts1 := catalogServer(t, dir, 0)
	if _, res := post(t, ts1, "/api/session", url.Values{"dataset": {"authors"}}); res.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", res.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, "authors.snap")); err != nil {
		t.Fatalf("snapshot not written on first build: %v", err)
	}
	if cat1.status()[0].Warm {
		t.Fatal("first build reported as warm")
	}

	cat2, ts2 := catalogServer(t, dir, 0)
	st, res := post(t, ts2, "/api/session", url.Values{"dataset": {"authors"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("warm create: status %d", res.StatusCode)
	}
	if len(st.Shown) == 0 {
		t.Fatal("warm-started session shows no groups")
	}
	for _, d := range cat2.status() {
		if d.Name == "authors" && !d.Warm {
			t.Fatal("second catalog start did not warm-load the snapshot")
		}
	}
}

// TestCatalogEngineLRUEviction: with a resident cap of 1, building the
// second dataset evicts the first (it has sessions, but it is the only
// candidate), and its sessions die with it — exactly like a TTL expiry.
func TestCatalogEngineLRUEviction(t *testing.T) {
	cat, ts := catalogServer(t, writeSpecs(t), 1)

	a, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create authors: status %d", res.StatusCode)
	}
	b, res := post(t, ts, "/api/session", url.Values{"dataset": {"books"}})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("create books: status %d", res.StatusCode)
	}
	resident := 0
	for _, d := range cat.status() {
		if d.Resident {
			resident++
			if d.Name != "books" {
				t.Fatalf("resident dataset %q, want books", d.Name)
			}
		}
	}
	if resident != 1 {
		t.Fatalf("%d resident engines, want 1", resident)
	}
	if _, res := getState(t, ts, a.Session); res.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted dataset's session: status %d, want 404", res.StatusCode)
	}
	if _, res := getState(t, ts, b.Session); res.StatusCode != http.StatusOK {
		t.Fatalf("surviving dataset's session: status %d", res.StatusCode)
	}
	// The evicted dataset rebuilds (warm, from its snapshot) on demand.
	if _, res := post(t, ts, "/api/session", url.Values{"dataset": {"authors"}}); res.StatusCode != http.StatusOK {
		t.Fatalf("re-acquire evicted dataset: status %d", res.StatusCode)
	}
}

// TestCatalogSingleflight: concurrent first requests for one dataset
// share a single build — every caller lands on the same engine.
func TestCatalogSingleflight(t *testing.T) {
	dir := writeSpecs(t)
	specs, err := ScanCatalogDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NewCatalog(dir, specs, "", fastGreedy(), DefaultConfig(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	const callers = 8
	entries := make([]*catalogEntry, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := cat.acquire("authors")
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if entries[i] == nil || entries[0] == nil || entries[i].eng != entries[0].eng {
			t.Fatalf("caller %d got a different engine instance", i)
		}
	}
}

// TestStateETagRoundTrip: GET /api/state carries an ETag derived from
// the session's mutation counter; If-None-Match on the current value
// gets 304 with no body, and any mutation invalidates it.
func TestStateETagRoundTrip(t *testing.T) {
	_, ts := testServer(t, DefaultConfig())
	st := createSession(t, ts)
	sid := st.Session

	res1, err := http.Get(ts.URL + "/api/state?sid=" + sid)
	if err != nil {
		t.Fatal(err)
	}
	res1.Body.Close()
	etag := res1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("state response carries no ETag")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/api/state?sid="+sid, nil)
	req.Header.Set("If-None-Match", etag)
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotModified {
		t.Fatalf("fresh If-None-Match: status %d, want 304", res2.StatusCode)
	}
	if got := res2.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q, want %q", got, etag)
	}

	// A mutation bumps the validator: the old one no longer matches,
	// and the mutation response already carries the new one.
	after, res := act(t, ts, sid, action.Action{Op: action.Explore, Group: st.Shown[0].ID})
	if res.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d", res.StatusCode)
	}
	if after.Focal != st.Shown[0].ID {
		t.Fatalf("explore focal %d", after.Focal)
	}
	newTag := res.Header.Get("ETag")
	if newTag == "" || newTag == etag {
		t.Fatalf("mutation ETag %q did not advance from %q", newTag, etag)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/api/state?sid="+sid, nil)
	req.Header.Set("If-None-Match", etag)
	res3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res3.Body.Close()
	if res3.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", res3.StatusCode)
	}
	var full stateDTO
	if err := json.NewDecoder(res3.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Focal != st.Shown[0].ID {
		t.Fatalf("stale-validator refetch focal %d", full.Focal)
	}
	if got := res3.Header.Get("ETag"); got != newTag {
		t.Fatalf("refetch ETag %q, want %q", got, newTag)
	}
}
