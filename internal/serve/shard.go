package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sort"

	"vexus/internal/telemetry"
)

// This file is the shard half of the cluster protocol (the gateway
// half lives in internal/cluster): a session is an action log, so a
// shard can hand any session to a peer by exporting the log and
// letting the new owner replay it. The gateway owns id assignment —
// /internal/cluster/sessions creates under a caller-chosen id so the
// rendezvous hash of the id and the session's physical placement
// agree — and the export/import pair preserves the mutation counter,
// which keeps the `"<sid>.<mutations>"` ETag stream seamless across a
// migration: replaying n actions leaves the counter at n on any owner.

// ShardSessionInfo is one row of GET /internal/cluster/sessions: where
// a session lives and how far its mutation counter has advanced.
type ShardSessionInfo struct {
	Session   string `json:"session"`
	Dataset   string `json:"dataset"`
	Mutations uint64 `json:"mutations"`
}

// SessionExport is the migration document: everything a new owner
// needs to reconstruct the session byte-identically. Trail is the v2
// saved-session JSON (action.Session.Save) — the complete applied
// action log plus the miner/group-count guard against engine
// mismatch. Mutations is carried redundantly so the importer can
// verify the replayed counter landed exactly where the source left it.
type SessionExport struct {
	Session   string          `json:"session"`
	Dataset   string          `json:"dataset"`
	Mutations uint64          `json:"mutations"`
	Trail     json.RawMessage `json:"trail"`
	// EngineVersion names the engine generation the session is pinned
	// to. The importer replays the trail against this exact version
	// (resolved through the target registry's retained history), so a
	// session keeps exploring the generation it started on even when
	// the new owner has ingested past it. Zero — an export from before
	// live datasets — means "current".
	EngineVersion uint64 `json:"engineVersion,omitempty"`
}

// handleShardSessionCreate is POST /internal/cluster/sessions?sid=&dataset=:
// the gateway's create path. Same response contract as POST
// /api/v1/sessions (201, full state, ETag, Location), but the session
// id is the caller's, so the gateway can pick the owning shard by
// hashing the id before the session exists anywhere.
func (s *Server) handleShardSessionCreate(w http.ResponseWriter, r *http.Request) {
	sid := r.FormValue("sid")
	if sid == "" {
		http.Error(w, "missing sid (the gateway assigns cluster session ids)", http.StatusBadRequest)
		return
	}
	cs, err := s.cat.createSessionID(r.FormValue("dataset"), sid)
	if err != nil {
		writeCreateError(w, err)
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	w.Header().Set("Location", "/api/v1/sessions/"+cs.id)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(s.state(cs))
}

// handleShardSessionList is GET /internal/cluster/sessions: the
// authoritative residency listing for this shard, sorted by id so the
// gateway's drain/rebalance sweeps are deterministic.
func (s *Server) handleShardSessionList(w http.ResponseWriter, _ *http.Request) {
	sessions := s.cat.allSessions()
	out := make([]ShardSessionInfo, 0, len(sessions))
	for _, cs := range sessions {
		cs.mu.Lock()
		out = append(out, ShardSessionInfo{Session: cs.id, Dataset: cs.dataset, Mutations: cs.act.Mutations})
		cs.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handleShardExport is GET /internal/cluster/sessions/{sid}/export:
// serialize the session as a migration document. The session stays
// live here — the gateway deletes it only after the new owner has
// imported successfully, so a failed migration strands nothing.
func (s *Server) handleShardExport(w http.ResponseWriter, r *http.Request) {
	cs, ok := s.sessionByID(w, r.PathValue("sid"))
	if !ok {
		return
	}
	cs.mu.Lock()
	var trail bytes.Buffer
	err := cs.act.Save(&trail)
	doc := SessionExport{
		Session:       cs.id,
		Dataset:       cs.dataset,
		Mutations:     cs.act.Mutations,
		Trail:         trail.Bytes(),
		EngineVersion: cs.eng.Version(),
	}
	cs.mu.Unlock()
	if err != nil {
		http.Error(w, "exporting session: "+err.Error(), http.StatusInternalServerError)
		return
	}
	// The trace id is the one the gateway minted for this migration —
	// the same id its import span logs on the destination shard, which
	// is what lets one grep across both shards' logs reconstruct the
	// export→import→delete path.
	s.met.log.Debug("migration",
		"span", "export", "trace", telemetry.TraceID(r.Context()),
		"sid", doc.Session, "dataset", doc.Dataset, "mutations", doc.Mutations)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}

// handleShardImport is POST /internal/cluster/sessions/{sid}/import:
// adopt a migrating session by replaying its exported trail under the
// same id. On success the response is 201 with the full state and the
// ETag — which, because replaying n actions leaves the mutation
// counter at n, is byte-for-byte the validator the source shard last
// served. Any replay divergence (wrong engine, counter mismatch)
// deletes the half-imported session and reports 409: the source still
// holds the live session, so the migration simply failed closed.
func (s *Server) handleShardImport(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	var doc SessionExport
	// A trail is ~100 bytes per action, so the 1 MiB batch bound would
	// strand any session past ~10k actions on its shard forever; 256
	// MiB keeps the bound nominal (a backstop against a runaway peer,
	// not a size policy).
	if err := json.Unmarshal(readBodyLimit(r, 1<<28), &doc); err != nil {
		http.Error(w, "bad session export: "+err.Error(), http.StatusBadRequest)
		return
	}
	if doc.Session != sid {
		http.Error(w, "export is for session "+doc.Session+", not "+sid, http.StatusBadRequest)
		return
	}
	if len(doc.Trail) == 0 {
		http.Error(w, "export carries no trail", http.StatusBadRequest)
		return
	}
	cs, err := s.cat.createSessionIDAt(doc.Dataset, sid, doc.EngineVersion)
	if err != nil {
		writeCreateError(w, err)
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	// Load zeroes the mutation counter before replaying, so the replay
	// ring restarts from event id 1 too: clear the creation-time Start
	// event first and the ring stays contiguous. The OnDiff hook then
	// records every replayed diff, which is what lets a client that was
	// streaming from the old owner resume here with Last-Event-ID and
	// receive exactly the diffs it missed.
	cs.hub.reset()
	if err := cs.act.Load(bytes.NewReader(doc.Trail)); err != nil {
		s.cat.removeSession(sid, reasonDeleted)
		http.Error(w, "replaying trail: "+err.Error(), http.StatusConflict)
		return
	}
	if cs.act.Mutations != doc.Mutations {
		s.cat.removeSession(sid, reasonDeleted)
		http.Error(w, "replay mutation counter diverged from export", http.StatusConflict)
		return
	}
	s.met.log.Debug("migration",
		"span", "import", "trace", telemetry.TraceID(r.Context()),
		"sid", cs.id, "dataset", cs.dataset, "mutations", cs.act.Mutations)
	w.Header().Set("Location", "/api/v1/sessions/"+cs.id)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", cs.etag())
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(s.state(cs))
}

// writeCreateError maps session-creation failures onto the same status
// codes the public create endpoint uses, plus 409 for id collisions
// and unavailable engine versions (only possible on the
// caller-chosen-id paths).
func writeCreateError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errUnknownDataset):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, errDuplicateSession), errors.Is(err, errVersionGone):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, errServerFull), errors.Is(err, errWarming):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
