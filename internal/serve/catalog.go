package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vexus/internal/core"
	"vexus/internal/datagen"
	"vexus/internal/dataset"
	"vexus/internal/etl"
	"vexus/internal/greedy"
	"vexus/internal/mining"
	"vexus/internal/store"
)

// DatasetSpec is one named dataset of a -datasets catalog directory: a
// <name>.json file describing where the data comes from. Synthetic
// specs carry generator parameters; csv specs point at ETL inputs
// relative to the directory.
type DatasetSpec struct {
	// Dataset selects the source: dbauthors | bookcrossing | csv.
	Dataset string `json:"dataset"`
	// N and Seed parameterize the synthetic generators.
	N    int    `json:"n,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// MinSup is the minimum group support fraction (default 0.02).
	MinSup float64 `json:"minsup,omitempty"`
	// Users/Actions are CSV paths for dataset "csv", relative to the
	// catalog directory.
	Users   string `json:"users,omitempty"`
	Actions string `json:"actions,omitempty"`
}

// errUnknownDataset marks a request for a name the catalog has no spec
// for; handlers surface it as 404.
var errUnknownDataset = errors.New("unknown dataset")

// catalogEntry is one named dataset and, once someone asks for it, its
// resident engine + session registry. All fields below the spec are
// guarded by catalog.mu; the slow build itself runs outside the lock
// with `building` as the singleflight latch.
type catalogEntry struct {
	name string
	spec DatasetSpec

	eng      *core.Engine
	reg      *registry
	err      error         // last build error (waiters + /api/datasets status)
	building chan struct{} // non-nil while a build is in flight; closed when done
	warm     bool          // last build was a snapshot load
	lastUsed time.Time

	// Ingestion state. baseFP is the spec dataset's content address —
	// the head of the delta chain before any ingestion — and snap the
	// snapshot path deltas append to ("" = in-memory only). ingestMu
	// serializes ingests per dataset: the slow rebuild runs under it,
	// outside catalog.mu, so exploration requests never wait on an
	// ingest and concurrent ingests cannot interleave the seq ladder.
	// It also serializes warm-join installs (warm.go).
	ingestMu sync.Mutex
	baseFP   store.Fingerprint
	snap     string

	// Warm-only state (serve.NewPending): the spec dataset and config
	// are known — they root the fingerprint verification of an incoming
	// snapshot stream — but the engine must arrive over the wire; until
	// it does, acquire answers errWarming instead of building.
	pendingData *dataset.Dataset
	pendingCfg  core.PipelineConfig
}

// catalog maps dataset names to lazily built engines: the first
// request for a name runs store.BuildOrLoad (snapshot warm start when
// fresh, full pipeline otherwise) exactly once — concurrent first
// requests wait on the same build — and an LRU bound on resident
// engines keeps many-dataset deployments inside memory.
type Catalog struct {
	dir         string // snapshot + csv root; "" disables snapshotting
	gcfg        greedy.Config
	scfg        Config
	workers     int
	maxResident int // resident-engine cap (0 = unlimited)
	defaultName string
	// met is the telemetry bundle shared with the Server and every
	// registry this catalog creates; always non-nil (instruments are
	// no-ops under telemetry.Disabled).
	met *serverMetrics

	mu      sync.Mutex
	entries map[string]*catalogEntry
	now     func() time.Time // injectable for LRU tests
}

// NewCatalog assembles a catalog from named specs. defaultName selects
// the dataset served when a request names none; empty means the
// lexicographically first name.
func NewCatalog(dir string, specs map[string]DatasetSpec, defaultName string, gcfg greedy.Config, scfg Config, workers, maxResident int) (*Catalog, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("catalog: no datasets")
	}
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	if defaultName == "" {
		defaultName = names[0]
	}
	if _, ok := specs[defaultName]; !ok {
		return nil, fmt.Errorf("catalog: default dataset %q not among %v", defaultName, names)
	}
	c := &Catalog{
		dir:         dir,
		gcfg:        gcfg,
		scfg:        scfg,
		workers:     workers,
		maxResident: maxResident,
		defaultName: defaultName,
		entries:     make(map[string]*catalogEntry, len(specs)),
		now:         clockOrNow(scfg),
	}
	for name, spec := range specs {
		c.entries[name] = &catalogEntry{name: name, spec: spec}
	}
	c.met = newServerMetrics(scfg.Telemetry, scfg.Logger, c)
	return c, nil
}

// newSingleEngineCatalog wraps an already built engine as a one-entry
// catalog — the classic single-dataset deployment.
func newSingleEngineCatalog(name string, eng *core.Engine, gcfg greedy.Config, scfg Config) *Catalog {
	c := &Catalog{
		gcfg:        gcfg,
		scfg:        scfg,
		defaultName: name,
		entries:     map[string]*catalogEntry{},
		now:         clockOrNow(scfg),
	}
	c.met = newServerMetrics(scfg.Telemetry, scfg.Logger, c)
	e := &catalogEntry{name: name, eng: eng, lastUsed: c.now()}
	// A version-1 engine still carries its spec dataset verbatim, so
	// its content address is computable after the fact — which is what
	// lets a single-dataset shard donate verifiable warm-join snapshot
	// streams (warm.go). Past version 1 the original spec dataset is
	// gone (ingests append in place); such an engine serves fine but
	// cannot attest a chain head, so the fingerprint stays zero and the
	// snapshot endpoint refuses.
	if eng.Version() == 1 {
		e.baseFP = store.ComputeFingerprint(eng.Data, eng.Config())
	}
	e.reg = c.newRegistry(name, eng)
	c.entries[name] = e
	return c
}

// ScanCatalogDir discovers dataset specs: every *.json file in dir
// names a dataset after its basename.
func ScanCatalogDir(dir string) (map[string]DatasetSpec, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	specs := make(map[string]DatasetSpec, len(matches))
	for _, path := range matches {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var spec DatasetSpec
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("catalog: %s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		specs[name] = spec
	}
	return specs, nil
}

// names returns every dataset name, sorted.
func (c *Catalog) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for name := range c.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// clockOrNow resolves the configured time source (Config.Clock, or
// time.Now), shared by the catalog's LRU stamps and every registry's
// recency bookkeeping.
func clockOrNow(scfg Config) func() time.Time {
	if scfg.Clock != nil {
		return scfg.Clock
	}
	return time.Now
}

// newRegistry builds the per-dataset session registry (its sweeper
// included), stamping sessions with the dataset name.
func (c *Catalog) newRegistry(name string, eng *core.Engine) *registry {
	reg := newRegistry(eng, c.gcfg, c.scfg.SessionTTL, c.scfg.MaxSessions)
	reg.now = c.now
	reg.dataset = name
	reg.streamQueue = c.scfg.StreamQueue
	reg.streamReplay = c.scfg.StreamReplay
	reg.met = c.met
	if c.scfg.SessionTTL > 0 {
		interval := c.scfg.SweepInterval
		if interval <= 0 {
			interval = c.scfg.SessionTTL / 4
		}
		reg.startSweeper(interval)
	}
	return reg
}

// acquire resolves a dataset name ("" = default) to its resident
// engine + registry, building or snapshot-loading it on first use.
// Exactly one goroutine builds; concurrent requests for the same name
// wait for that build and share its outcome, and requests for other
// datasets are unaffected. A failed build reports its error to the
// requests that waited on it, but the *next* request starts a fresh
// build — a transient failure (a CSV mid-copy, a blip on networked
// storage) must not poison the dataset until restart. The last error
// stays visible on /api/datasets.
func (c *Catalog) acquire(name string) (*catalogEntry, *registry, error) {
	if name == "" {
		name = c.defaultName
	}
	for {
		c.mu.Lock()
		e, ok := c.entries[name]
		if !ok {
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("%w %q", errUnknownDataset, name)
		}
		e.lastUsed = c.now()
		if e.eng != nil {
			reg := e.reg
			c.mu.Unlock()
			return e, reg, nil
		}
		if e.pendingData != nil {
			// Warm-only: the engine arrives as a verified snapshot
			// stream or not at all — never from a local build, which
			// is what keeps an un-warmed joiner failing closed.
			c.mu.Unlock()
			return nil, nil, fmt.Errorf("dataset %q: %w", e.name, errWarming)
		}
		if e.building != nil {
			done := e.building
			c.mu.Unlock()
			c.met.buildWaits.Inc()
			<-done
			// Share this round's outcome: engine, or its error. An
			// entry already evicted again re-resolves from the top.
			c.mu.Lock()
			if e.eng != nil {
				reg := e.reg
				c.mu.Unlock()
				return e, reg, nil
			}
			err := e.err
			c.mu.Unlock()
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		done := make(chan struct{})
		e.building, e.err = done, nil
		c.mu.Unlock()

		eng, warm, fp, snap, err := c.buildSpec(e.name, e.spec)

		c.mu.Lock()
		e.building = nil
		if err != nil {
			e.err = err
			c.mu.Unlock()
			close(done)
			return nil, nil, err
		}
		e.eng, e.warm, e.lastUsed = eng, warm, c.now()
		e.baseFP, e.snap = fp, snap
		e.reg = c.newRegistry(name, eng)
		reg := e.reg
		c.evictOverflowLocked(e)
		c.mu.Unlock()
		close(done)
		return e, reg, nil
	}
}

// createSession acquires the named dataset and opens a session in its
// registry. The residency re-check closes the window between acquire
// returning a registry and the session landing in it: a concurrent
// build of another dataset could evict this one in between, which
// would strand the new session in a registry findSession no longer
// scans — the caller would receive a sid that never resolves. On that
// (rare) race the orphan is dropped and the acquire retried against
// the rebuilt engine. Eviction after the re-check is indistinguishable
// from eviction a moment later, which is already documented behavior.
func (c *Catalog) createSession(name string) (*clientSession, error) {
	return c.createSessionID(name, "")
}

// createSessionID is createSession with a caller-chosen session id
// ("" = mint one): the cluster create and import paths, where the
// gateway owns id assignment.
func (c *Catalog) createSessionID(name, sid string) (*clientSession, error) {
	return c.createSessionIDAt(name, sid, 0)
}

// createSessionIDAt additionally pins the session to a specific engine
// version (0 = current) — the migration import path, where the
// replayed session must land on the exact generation it was exploring
// on its source shard, not whatever this shard has ingested up to.
func (c *Catalog) createSessionIDAt(name, sid string, version uint64) (*clientSession, error) {
	for {
		e, reg, err := c.acquire(name)
		if err != nil {
			return nil, err
		}
		var cs *clientSession
		if sid == "" {
			cs, err = reg.create()
		} else {
			cs, err = reg.createWithIDAt(sid, version)
		}
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		resident := e.reg == reg
		c.mu.Unlock()
		if resident {
			return cs, nil
		}
		reg.remove(cs.id, reasonEvicted)
	}
}

// evictOverflowLocked drops least-recently-used resident engines until
// the cap holds, never touching `keep` (the engine just built).
// Entries whose registries still hold live sessions are evicted last —
// capacity is capacity, but an abandoned dataset goes first. Evicted
// datasets rebuild (or warm-load from their snapshot) on next use;
// their sessions are gone, exactly like a TTL expiry. The caller holds
// c.mu.
func (c *Catalog) evictOverflowLocked(keep *catalogEntry) {
	if c.maxResident <= 0 {
		return
	}
	for {
		resident := 0
		var victim *catalogEntry
		victimSessions := 0
		for _, e := range c.entries {
			if e.eng == nil {
				continue
			}
			resident++
			if e == keep {
				continue
			}
			n := e.reg.count()
			switch {
			case victim == nil:
				victim, victimSessions = e, n
			case (n == 0) != (victimSessions == 0):
				if n == 0 {
					victim, victimSessions = e, n
				}
			case e.lastUsed.Before(victim.lastUsed):
				victim, victimSessions = e, n
			}
		}
		if resident <= c.maxResident || victim == nil {
			return
		}
		// Streaming clients get a terminal `event: closed` naming the
		// reason before their sessions vanish — an eviction must not be
		// indistinguishable from a network fault.
		victim.reg.closeStreams(reasonEvicted)
		victim.reg.close()
		victim.eng, victim.reg, victim.warm = nil, nil, false
		c.met.engineEvictions.Inc()
		c.met.log.Info("engine evicted", "dataset", victim.name, "sessions", victimSessions)
	}
}

// DefaultName reports the dataset served when a request names none.
func (c *Catalog) DefaultName() string { return c.defaultName }

// allSessions snapshots every live session across every resident
// dataset — the shard residency listing.
func (c *Catalog) allSessions() []*clientSession {
	c.mu.Lock()
	regs := make([]*registry, 0, len(c.entries))
	for _, e := range c.entries {
		if e.reg != nil {
			regs = append(regs, e.reg)
		}
	}
	c.mu.Unlock()
	var out []*clientSession
	for _, reg := range regs {
		out = append(out, reg.sessions()...)
	}
	return out
}

// findSession resolves a session id across every resident dataset,
// touching the owning entry's recency on a hit.
func (c *Catalog) findSession(sid string) (*clientSession, bool) {
	c.mu.Lock()
	type pair struct {
		e   *catalogEntry
		reg *registry
	}
	regs := make([]pair, 0, len(c.entries))
	for _, e := range c.entries {
		if e.reg != nil {
			regs = append(regs, pair{e, e.reg})
		}
	}
	c.mu.Unlock()
	for _, p := range regs {
		if cs, ok := p.reg.get(sid); ok {
			c.mu.Lock()
			p.e.lastUsed = c.now()
			c.mu.Unlock()
			return cs, true
		}
	}
	return nil, false
}

// removeSession deletes sid from whichever dataset owns it; reason is
// what any attached streams are told in their terminal closed event.
func (c *Catalog) removeSession(sid, reason string) {
	c.mu.Lock()
	regs := make([]*registry, 0, len(c.entries))
	for _, e := range c.entries {
		if e.reg != nil {
			regs = append(regs, e.reg)
		}
	}
	c.mu.Unlock()
	for _, reg := range regs {
		reg.remove(sid, reason)
	}
}

// DatasetStatus is one row of GET /api/datasets.
type DatasetStatus struct {
	Name     string `json:"name"`
	Default  bool   `json:"default"`
	Resident bool   `json:"resident"`
	Warm     bool   `json:"warmStart,omitempty"`
	Groups   int    `json:"groups,omitempty"`
	Users    int    `json:"users,omitempty"`
	Sessions int    `json:"sessions"`
	// Version is the resident engine's version: 1 for a fresh build,
	// +1 per ingested batch. Clients (and the cluster convergence
	// check) read it to know which data generation they are exploring.
	Version uint64 `json:"engineVersion,omitempty"`
	Error   string `json:"error,omitempty"`
}

// status reports every dataset's residency for the ops endpoint.
func (c *Catalog) status() []DatasetStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]DatasetStatus, 0, len(c.entries))
	for _, e := range c.entries {
		st := DatasetStatus{Name: e.name, Default: e.name == c.defaultName, Resident: e.eng != nil, Warm: e.warm}
		if e.eng != nil {
			st.Groups = e.eng.Space.Len()
			st.Users = e.eng.Data.NumUsers()
			st.Sessions = e.reg.count()
			st.Version = e.eng.Version()
		}
		if e.err != nil {
			st.Error = e.err.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sessionCount sums live sessions, total and per dataset. Every
// catalog dataset appears in the per-dataset map — non-resident ones
// at 0 — so the ops view never hides a dataset just because its
// engine is not built yet.
func (c *Catalog) sessionCount() (int, map[string]int) {
	c.mu.Lock()
	type pair struct {
		name string
		reg  *registry
	}
	regs := make([]pair, 0, len(c.entries))
	for _, e := range c.entries {
		regs = append(regs, pair{e.name, e.reg})
	}
	c.mu.Unlock()
	total := 0
	per := make(map[string]int, len(regs))
	for _, p := range regs {
		n := 0
		if p.reg != nil {
			n = p.reg.count()
		}
		per[p.name] = n
		total += n
	}
	return total, per
}

// close stops every resident registry's sweeper.
func (c *Catalog) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if e.reg != nil {
			e.reg.close()
		}
	}
}

// buildSpec materializes one spec: generate or import the dataset,
// then warm-start from the catalog-dir snapshot when its content
// address matches, rebuilding (and rewriting the snapshot) otherwise.
// It also returns the spec dataset's base fingerprint and the snapshot
// path — the coordinates the ingest path needs to append deltas.
func (c *Catalog) buildSpec(name string, spec DatasetSpec) (*core.Engine, bool, store.Fingerprint, string, error) {
	d, encode, err := c.loadSpecData(spec)
	if err != nil {
		return nil, false, store.Fingerprint{}, "", fmt.Errorf("dataset %q: %w", name, err)
	}
	pcfg := core.DefaultPipelineConfig()
	pcfg.Encode = encode
	pcfg.MinSupportFrac = spec.MinSup
	if pcfg.MinSupportFrac == 0 {
		pcfg.MinSupportFrac = 0.02
	}
	pcfg.Workers = c.workers
	snap := ""
	if c.dir != "" {
		snap = filepath.Join(c.dir, name+".snap")
	}
	fp := store.ComputeFingerprint(d, pcfg)
	started := time.Now()
	eng, warm, err := store.BuildOrLoad(snap, d, pcfg)
	elapsed := time.Since(started)
	if err != nil {
		if eng == nil {
			return nil, false, store.Fingerprint{}, "", fmt.Errorf("dataset %q: %w", name, err)
		}
		// Built fine, snapshot not written — serve the engine; the
		// next restart just runs cold.
		c.met.log.Warn("snapshot write failed", "dataset", name, "err", err)
	}
	if warm {
		c.met.loadSeconds.Observe(elapsed.Seconds())
	} else {
		c.met.buildSeconds.Observe(elapsed.Seconds())
	}
	c.met.log.Info("engine ready", "dataset", name, "warm", warm, "ms", elapsed.Milliseconds())
	return eng, warm, fp, snap, nil
}

func (c *Catalog) loadSpecData(spec DatasetSpec) (*dataset.Dataset, mining.EncodeOptions, error) {
	switch spec.Dataset {
	case "dbauthors":
		n := spec.N
		if n == 0 {
			n = 1000
		}
		d, err := datagen.DBAuthors(datagen.DBAuthorsConfig{NumAuthors: n, Seed: spec.Seed})
		return d, datagen.DBAuthorsEncodeOptions(), err
	case "bookcrossing":
		cfg := datagen.SmallScale(spec.Seed)
		if spec.N != 0 {
			cfg.NumUsers = spec.N
		}
		d, err := datagen.BookCrossing(cfg)
		return d, datagen.BookCrossingEncodeOptions(), err
	case "csv":
		if spec.Users == "" || spec.Actions == "" {
			return nil, mining.EncodeOptions{}, fmt.Errorf("csv spec needs users and actions paths")
		}
		d, err := loadCSVDataset(filepath.Join(c.dir, spec.Users), filepath.Join(c.dir, spec.Actions))
		return d, mining.DefaultEncodeOptions(), err
	default:
		return nil, mining.EncodeOptions{}, fmt.Errorf("unknown dataset kind %q", spec.Dataset)
	}
}

// loadCSVDataset imports a users/actions CSV pair through the ETL
// stage, inferring the demographic schema from the users file.
func loadCSVDataset(usersPath, actionsPath string) (*dataset.Dataset, error) {
	uf, err := os.Open(usersPath)
	if err != nil {
		return nil, err
	}
	schema, _, err := etl.InferSchema(uf, etl.DefaultInferOptions())
	uf.Close()
	if err != nil {
		return nil, fmt.Errorf("inferring schema: %w", err)
	}
	b := dataset.NewBuilder(schema)
	if _, err := etl.LoadUsersFile(usersPath, b, schema, etl.DefaultRules()); err != nil {
		return nil, fmt.Errorf("loading users: %w", err)
	}
	if _, err := etl.LoadActionsFile(actionsPath, b, b.HasUser, etl.DefaultRules()); err != nil {
		return nil, fmt.Errorf("loading actions: %w", err)
	}
	return b.Build()
}
