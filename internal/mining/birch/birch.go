// Package birch implements BIRCH (Zhang, Ramakrishnan & Livny, SIGMOD
// 1996) clustering, the paper's second option for user-data streams
// (§II-A). Users are embedded as numeric vectors (their term-membership
// indicators by default), inserted one at a time into a CF-tree of
// clustering features CF = (N, LS, SS); leaf entries absorb points
// within a radius threshold, nodes split at the branching factor, and
// the tree rebuilds with a larger threshold when it outgrows its
// budget. A final global phase agglomerates leaf entries into K
// clusters, which become user groups labeled by the closure of their
// member sets.
package birch

import (
	"fmt"
	"math"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
)

// CF is a clustering feature: the sufficient statistics of a point set.
type CF struct {
	N  int
	LS []float64 // linear sum
	SS float64   // sum of squared norms
}

// NewCF returns an empty feature of the given dimension.
func NewCF(dim int) *CF { return &CF{LS: make([]float64, dim)} }

// Add merges a point into the feature.
func (c *CF) Add(p []float64) {
	c.N++
	for i, x := range p {
		c.LS[i] += x
		c.SS += x * x
	}
}

// Merge adds another feature (CF additivity theorem).
func (c *CF) Merge(o *CF) {
	c.N += o.N
	for i, x := range o.LS {
		c.LS[i] += x
	}
	c.SS += o.SS
}

// Centroid returns LS/N; the zero feature returns the origin.
func (c *CF) Centroid() []float64 {
	out := make([]float64, len(c.LS))
	if c.N == 0 {
		return out
	}
	for i, x := range c.LS {
		out[i] = x / float64(c.N)
	}
	return out
}

// Radius returns the RMS distance of the set's points to its centroid:
// sqrt(SS/N − ‖LS/N‖²), clamped at 0 against rounding.
func (c *CF) Radius() float64 {
	if c.N == 0 {
		return 0
	}
	n := float64(c.N)
	norm2 := 0.0
	for _, x := range c.LS {
		norm2 += (x / n) * (x / n)
	}
	r2 := c.SS/n - norm2
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}

// centroidDist2 returns the squared distance between two centroids.
func centroidDist2(a, b *CF) float64 {
	d := 0.0
	na, nb := float64(a.N), float64(b.N)
	for i := range a.LS {
		ca, cb := 0.0, 0.0
		if a.N > 0 {
			ca = a.LS[i] / na
		}
		if b.N > 0 {
			cb = b.LS[i] / nb
		}
		d += (ca - cb) * (ca - cb)
	}
	return d
}

// Config parameterizes the CF-tree and the global phase.
type Config struct {
	// K is the number of final clusters (groups).
	K int
	// Threshold is the initial leaf absorption radius; the tree
	// rebuilds with 2× the threshold when MaxLeafEntries is exceeded.
	Threshold float64
	// Branching is the maximum children per internal node.
	Branching int
	// LeafCapacity is the maximum entries per leaf node.
	LeafCapacity int
	// MaxLeafEntries bounds total leaf entries before a rebuild.
	MaxLeafEntries int
}

// DefaultConfig clusters into 8 groups with modest memory.
func DefaultConfig() Config {
	return Config{K: 8, Threshold: 0.5, Branching: 8, LeafCapacity: 8, MaxLeafEntries: 512}
}

// node is a CF-tree node; leaves hold entries, internal nodes children.
type node struct {
	leaf     bool
	cf       *CF
	entries  []*entry // leaf only
	children []*node  // internal only
}

type entry struct {
	cf     *CF
	points []int // user indices absorbed by this entry
}

// Tree is an incremental CF-tree. Insert points one at a time; Leaves
// exposes the current sub-clusters.
type Tree struct {
	cfg       Config
	dim       int
	root      *node
	numLeaves int
	threshold float64
	// buffer retains every inserted point for rebuilds. BIRCH proper
	// re-inserts leaf CFs; retaining points keeps rebuild exact and is
	// affordable at VEXUS scales.
	points [][]float64
	ids    []int
}

// NewTree returns an empty CF-tree for dim-dimensional points.
func NewTree(cfg Config, dim int) *Tree {
	if cfg.Branching < 2 {
		cfg.Branching = 2
	}
	if cfg.LeafCapacity < 1 {
		cfg.LeafCapacity = 1
	}
	if cfg.MaxLeafEntries < cfg.LeafCapacity {
		cfg.MaxLeafEntries = cfg.LeafCapacity * 16
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.5
	}
	return &Tree{
		cfg:       cfg,
		dim:       dim,
		root:      &node{leaf: true, cf: NewCF(dim)},
		threshold: cfg.Threshold,
	}
}

// Threshold returns the current absorption threshold (grows on
// rebuilds).
func (t *Tree) Threshold() float64 { return t.threshold }

// NumLeafEntries returns the current number of leaf entries.
func (t *Tree) NumLeafEntries() int { return t.numLeaves }

// Insert adds point p with external id (user index).
func (t *Tree) Insert(id int, p []float64) error {
	if len(p) != t.dim {
		return fmt.Errorf("birch: point dim %d != tree dim %d", len(p), t.dim)
	}
	t.points = append(t.points, p)
	t.ids = append(t.ids, id)
	t.insert(id, p)
	if t.numLeaves > t.cfg.MaxLeafEntries {
		t.rebuild()
	}
	return nil
}

func (t *Tree) insert(id int, p []float64) {
	split := t.insertAt(t.root, id, p)
	if split != nil {
		// Root split: grow the tree upward.
		newRoot := &node{cf: NewCF(t.dim), children: []*node{t.root, split}}
		newRoot.cf.Merge(t.root.cf)
		newRoot.cf.Merge(split.cf)
		t.root = newRoot
	}
}

// insertAt descends to the closest child, absorbs or adds an entry, and
// returns a sibling node when the target node split.
func (t *Tree) insertAt(n *node, id int, p []float64) *node {
	pcf := NewCF(t.dim)
	pcf.Add(p)
	n.cf.Add(p)
	if n.leaf {
		// Find closest entry.
		best, bestD := -1, math.Inf(1)
		for i, e := range n.entries {
			d := centroidDist2(e.cf, pcf)
			if d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			// Tentatively absorb; undo if the radius exceeds the
			// threshold.
			e := n.entries[best]
			trial := NewCF(t.dim)
			trial.Merge(e.cf)
			trial.Add(p)
			if trial.Radius() <= t.threshold {
				e.cf = trial
				e.points = append(e.points, id)
				return nil
			}
		}
		ne := &entry{cf: pcf, points: []int{id}}
		n.entries = append(n.entries, ne)
		t.numLeaves++
		if len(n.entries) <= t.cfg.LeafCapacity {
			return nil
		}
		return t.splitLeaf(n)
	}
	// Internal: descend into the closest child.
	best, bestD := 0, math.Inf(1)
	for i, c := range n.children {
		d := centroidDist2(c.cf, pcf)
		if d < bestD {
			best, bestD = i, d
		}
	}
	split := t.insertAt(n.children[best], id, p)
	if split == nil {
		return nil
	}
	n.children = append(n.children, split)
	if len(n.children) <= t.cfg.Branching {
		return nil
	}
	return t.splitInternal(n)
}

// splitLeaf partitions entries around the two farthest entries.
func (t *Tree) splitLeaf(n *node) *node {
	i1, i2 := farthestPair(len(n.entries), func(i, j int) float64 {
		return centroidDist2(n.entries[i].cf, n.entries[j].cf)
	})
	a := &node{leaf: true, cf: NewCF(t.dim)}
	b := &node{leaf: true, cf: NewCF(t.dim)}
	for i, e := range n.entries {
		if centroidDist2(e.cf, n.entries[i1].cf) <= centroidDist2(e.cf, n.entries[i2].cf) {
			a.entries = append(a.entries, e)
			a.cf.Merge(e.cf)
		} else {
			b.entries = append(b.entries, e)
			b.cf.Merge(e.cf)
		}
		_ = i
	}
	*n = *a
	return b
}

// splitInternal partitions children around the two farthest children.
func (t *Tree) splitInternal(n *node) *node {
	i1, i2 := farthestPair(len(n.children), func(i, j int) float64 {
		return centroidDist2(n.children[i].cf, n.children[j].cf)
	})
	a := &node{cf: NewCF(t.dim)}
	b := &node{cf: NewCF(t.dim)}
	for _, c := range n.children {
		if centroidDist2(c.cf, n.children[i1].cf) <= centroidDist2(c.cf, n.children[i2].cf) {
			a.children = append(a.children, c)
			a.cf.Merge(c.cf)
		} else {
			b.children = append(b.children, c)
			b.cf.Merge(c.cf)
		}
	}
	*n = *a
	return b
}

// farthestPair returns the indices of the two elements with maximal
// pairwise distance (ties to the first found). n must be ≥ 2.
func farthestPair(n int, dist func(i, j int) float64) (int, int) {
	bi, bj, bd := 0, 1, -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := dist(i, j); d > bd {
				bi, bj, bd = i, j, d
			}
		}
	}
	return bi, bj
}

// rebuild doubles the threshold and re-inserts all points, shrinking
// the tree.
func (t *Tree) rebuild() {
	t.threshold *= 2
	points, ids := t.points, t.ids
	t.root = &node{leaf: true, cf: NewCF(t.dim)}
	t.numLeaves = 0
	t.points = t.points[:0]
	t.ids = t.ids[:0]
	for i, p := range points {
		t.points = append(t.points, p)
		t.ids = append(t.ids, ids[i])
		t.insert(ids[i], p)
	}
}

// Leaves returns the current leaf entries (sub-clusters) left to right.
func (t *Tree) Leaves() []*entry {
	var out []*entry
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Cluster is one final cluster from the global phase.
type Cluster struct {
	CF      *CF
	Members []int
}

// GlobalCluster agglomerates the leaf entries into at most k clusters
// by repeatedly merging the closest centroid pair.
func (t *Tree) GlobalCluster(k int) []Cluster {
	leaves := t.Leaves()
	clusters := make([]Cluster, 0, len(leaves))
	for _, e := range leaves {
		cf := NewCF(t.dim)
		cf.Merge(e.cf)
		clusters = append(clusters, Cluster{CF: cf, Members: append([]int(nil), e.points...)})
	}
	if k < 1 {
		k = 1
	}
	for len(clusters) > k {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := centroidDist2(clusters[i].CF, clusters[j].CF); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		clusters[bi].CF.Merge(clusters[bj].CF)
		clusters[bi].Members = append(clusters[bi].Members, clusters[bj].Members...)
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return clusters
}

// Miner adapts BIRCH to the mining.Miner interface: users are embedded
// as 0/1 term-indicator vectors, streamed into a CF-tree, globally
// clustered into K groups, and labeled by the closure of each cluster's
// member set plus a synthetic "cluster=<i>" term guaranteeing distinct
// descriptions.
type Miner struct {
	Cfg Config
}

// New returns a BIRCH miner.
func New(cfg Config) *Miner { return &Miner{Cfg: cfg} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "birch" }

// FingerprintKey implements mining.FingerprintedMiner.
func (m *Miner) FingerprintKey() string { return fmt.Sprintf("birch%+v", m.Cfg) }

// Mine implements mining.Miner.
func (m *Miner) Mine(tx *mining.Transactions) ([]*groups.Group, error) {
	dim := tx.Vocab.Len()
	if dim == 0 || tx.N == 0 {
		return nil, nil
	}
	tree := NewTree(m.Cfg, dim)
	vec := make([]float64, dim)
	for u := 0; u < tx.N; u++ {
		for i := range vec {
			vec[i] = 0
		}
		for _, id := range tx.PerUser[u] {
			vec[id] = 1
		}
		p := make([]float64, dim)
		copy(p, vec)
		if err := tree.Insert(u, p); err != nil {
			return nil, err
		}
	}
	k := m.Cfg.K
	if k <= 0 {
		k = 8
	}
	clusters := tree.GlobalCluster(k)
	out := make([]*groups.Group, 0, len(clusters))
	for i, c := range clusters {
		if len(c.Members) == 0 {
			continue
		}
		members := bitset.FromIndices(tx.N, c.Members)
		desc := tx.Closure(members)
		tag := tx.Vocab.Intern("cluster", fmt.Sprintf("%d", i))
		out = append(out, &groups.Group{
			Desc:    groups.NewDescription(append(desc, tag)...),
			Members: members,
		})
	}
	return out, nil
}
