package birch

import (
	"math"
	"testing"
	"testing/quick"

	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/rng"
)

func TestCFBasics(t *testing.T) {
	cf := NewCF(2)
	cf.Add([]float64{1, 2})
	cf.Add([]float64{3, 4})
	if cf.N != 2 {
		t.Fatalf("N = %d", cf.N)
	}
	c := cf.Centroid()
	if c[0] != 2 || c[1] != 3 {
		t.Fatalf("centroid = %v", c)
	}
	if got := NewCF(2).Centroid(); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty centroid = %v", got)
	}
	if NewCF(3).Radius() != 0 {
		t.Fatal("empty radius")
	}
}

func TestCFRadius(t *testing.T) {
	cf := NewCF(1)
	cf.Add([]float64{0})
	cf.Add([]float64{2})
	// Points 0 and 2, centroid 1, RMS distance 1.
	if r := cf.Radius(); math.Abs(r-1) > 1e-12 {
		t.Fatalf("radius = %v", r)
	}
	single := NewCF(1)
	single.Add([]float64{5})
	if r := single.Radius(); r != 0 {
		t.Fatalf("single-point radius = %v", r)
	}
}

func TestPropCFAdditivity(t *testing.T) {
	// CF additivity theorem: CF(A ∪ B) = CF(A) + CF(B).
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		dim := 3
		a, b, both := NewCF(dim), NewCF(dim), NewCF(dim)
		for i := 0; i < 10; i++ {
			p := []float64{r.Float64(), r.Float64(), r.Float64()}
			if i%2 == 0 {
				a.Add(p)
			} else {
				b.Add(p)
			}
			both.Add(p)
		}
		merged := NewCF(dim)
		merged.Merge(a)
		merged.Merge(b)
		if merged.N != both.N {
			return false
		}
		if math.Abs(merged.SS-both.SS) > 1e-9 {
			return false
		}
		for i := range merged.LS {
			if math.Abs(merged.LS[i]-both.LS[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTreeInsertAndCluster(t *testing.T) {
	// Two well-separated 2D blobs must come out as two clusters.
	r := rng.New(5)
	cfg := Config{K: 2, Threshold: 0.8, Branching: 4, LeafCapacity: 4, MaxLeafEntries: 64}
	tree := NewTree(cfg, 2)
	labels := make(map[int]int)
	for i := 0; i < 100; i++ {
		var p []float64
		if i%2 == 0 {
			p = []float64{r.NormFloat64() * 0.3, r.NormFloat64() * 0.3}
			labels[i] = 0
		} else {
			p = []float64{10 + r.NormFloat64()*0.3, 10 + r.NormFloat64()*0.3}
			labels[i] = 1
		}
		if err := tree.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	clusters := tree.GlobalCluster(2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	for _, c := range clusters {
		want := labels[c.Members[0]]
		for _, id := range c.Members {
			if labels[id] != want {
				t.Fatalf("cluster mixes blobs")
			}
		}
	}
	total := len(clusters[0].Members) + len(clusters[1].Members)
	if total != 100 {
		t.Fatalf("members = %d, want 100", total)
	}
}

func TestTreeDimMismatch(t *testing.T) {
	tree := NewTree(DefaultConfig(), 3)
	if err := tree.Insert(0, []float64{1, 2}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestTreeRebuildGrowsThreshold(t *testing.T) {
	cfg := Config{K: 2, Threshold: 0.001, Branching: 3, LeafCapacity: 2, MaxLeafEntries: 8}
	tree := NewTree(cfg, 1)
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		if err := tree.Insert(i, []float64{r.Float64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Threshold() <= cfg.Threshold {
		t.Fatalf("threshold did not grow: %v", tree.Threshold())
	}
	if tree.NumLeafEntries() > cfg.MaxLeafEntries*2 {
		t.Fatalf("leaf entries = %d despite rebuilds", tree.NumLeafEntries())
	}
	// No points lost across rebuilds.
	total := 0
	for _, e := range tree.Leaves() {
		total += len(e.points)
	}
	if total != 200 {
		t.Fatalf("points after rebuilds = %d, want 200", total)
	}
}

func TestGlobalClusterFewerLeavesThanK(t *testing.T) {
	tree := NewTree(DefaultConfig(), 1)
	tree.Insert(0, []float64{1})
	clusters := tree.GlobalCluster(5)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d", len(clusters))
	}
}

func TestMinerProducesPartition(t *testing.T) {
	v := groups.NewVocab()
	a := v.Intern("g", "a")
	b := v.Intern("g", "b")
	perUser := make([][]groups.TermID, 40)
	for u := range perUser {
		if u < 20 {
			perUser[u] = []groups.TermID{a}
		} else {
			perUser[u] = []groups.TermID{b}
		}
	}
	tx := mining.NewTransactions(v, perUser)
	cfg := DefaultConfig()
	cfg.K = 2
	// Unit-vector clusters: absorbing even one cross-cluster point
	// lifts the RMS radius to ≥ sqrt(40·1)/21 ≈ 0.30, so a 0.25
	// threshold keeps the two clusters pure.
	cfg.Threshold = 0.25
	gs, err := New(cfg).Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("groups = %d", len(gs))
	}
	seen := 0
	for _, g := range gs {
		seen += g.Size()
		if g.Size() != 20 {
			t.Fatalf("cluster size = %d, want 20", g.Size())
		}
	}
	if seen != 40 {
		t.Fatalf("partition covers %d users", seen)
	}
	// Pure clusters get the shared term in their closure.
	foundA := false
	for _, g := range gs {
		for _, id := range g.Desc {
			if id == a {
				foundA = true
			}
		}
	}
	if !foundA {
		t.Fatal("closure labels missing")
	}
}

func TestMinerEmptyInput(t *testing.T) {
	v := groups.NewVocab()
	tx := mining.NewTransactions(v, nil)
	gs, err := New(DefaultConfig()).Mine(tx)
	if err != nil || gs != nil {
		t.Fatalf("gs=%v err=%v", gs, err)
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "birch" {
		t.Fatal("name")
	}
}
