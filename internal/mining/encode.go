package mining

import (
	"fmt"
	"sort"

	"vexus/internal/dataset"
	"vexus/internal/groups"
)

// EncodeOptions selects which dimensions of a dataset become mining
// terms. Demographics always produce one term per (attribute, value).
// Action-derived terms capture behaviour: a "likes:<item>" term when a
// user's action value on a popular item reaches LikeThreshold, and an
// "activity" ordinal term from per-user action counts. This mirrors the
// paper's group vocabulary, which mixes demographics ("engineers in
// MA") with actions ("who watch romantic movies").
type EncodeOptions struct {
	// Demographics includes one term per present demographic value.
	Demographics bool
	// TopItems derives per-item terms for the N most popular items
	// (0 = none). Item terms are "item:<id>=liked" / "=disliked".
	TopItems int
	// LikeThreshold splits item actions into liked/disliked. Actions
	// with value ≥ threshold are "liked". Ignored when TopItems == 0.
	LikeThreshold float64
	// ActivityLevels derives an ordinal "activity" attribute with this
	// many equal-frequency levels from per-user action counts
	// (0 = none, minimum 2 otherwise).
	ActivityLevels int
}

// DefaultEncodeOptions covers demographics plus behaviour over the top
// 32 items and a 4-level activity attribute.
func DefaultEncodeOptions() EncodeOptions {
	return EncodeOptions{
		Demographics:   true,
		TopItems:       32,
		LikeThreshold:  4,
		ActivityLevels: 4,
	}
}

// activityLabels names equal-frequency activity levels, lowest first.
var activityLabels = []string{"inactive", "casual", "active", "extremely active", "hyperactive", "l6", "l7", "l8"}

// Encode converts a dataset into mining transactions under the given
// options. The returned vocabulary is freshly interned; term ids are
// deterministic for a fixed dataset and options.
func Encode(d *dataset.Dataset, opts EncodeOptions) (*Transactions, error) {
	if opts.ActivityLevels > len(activityLabels) {
		return nil, fmt.Errorf("mining: at most %d activity levels", len(activityLabels))
	}
	vocab := groups.NewVocab()
	perUser := make([][]groups.TermID, d.NumUsers())

	if opts.Demographics {
		for u := range d.Users {
			for ai := range d.Schema.Attrs {
				v := d.Users[u].Demo[ai]
				if v == dataset.Missing {
					continue
				}
				id := vocab.Intern(d.Schema.Attrs[ai].Name, d.Schema.Attrs[ai].Values[v])
				perUser[u] = append(perUser[u], id)
			}
		}
	}

	if opts.TopItems > 0 {
		top := d.TopItems(opts.TopItems)
		inTop := make(map[int]bool, len(top))
		for _, it := range top {
			inTop[it] = true
		}
		for _, a := range d.Actions {
			if !inTop[a.Item] {
				continue
			}
			field := "item:" + d.Items[a.Item].ID
			value := "liked"
			if a.Value < opts.LikeThreshold {
				value = "disliked"
			}
			id := vocab.Intern(field, value)
			perUser[a.User] = append(perUser[a.User], id)
		}
	}

	if opts.ActivityLevels > 0 {
		levels := opts.ActivityLevels
		if levels < 2 {
			levels = 2
		}
		counts := d.ActivityCount()
		bounds := quantileBounds(counts, levels)
		for u, c := range counts {
			lvl := levelOf(c, bounds)
			id := vocab.Intern("activity", activityLabels[lvl])
			perUser[u] = append(perUser[u], id)
		}
	}

	return NewTransactions(vocab, perUser), nil
}

// quantileBounds returns ascending cut points splitting counts into
// ~equal-frequency levels; duplicates collapse, so fewer levels may
// result on highly tied data. Empty input yields no bounds (every
// count maps to level 0).
func quantileBounds(counts []int, levels int) []int {
	if len(counts) == 0 {
		return nil
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Ints(sorted)
	bounds := make([]int, 0, levels-1)
	for i := 1; i < levels; i++ {
		q := sorted[i*len(sorted)/levels]
		if len(bounds) == 0 || q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	return bounds
}

// levelOf maps a count to its level: level i covers counts in
// (bounds[i-1], bounds[i]].
func levelOf(c int, bounds []int) int {
	i := sort.SearchInts(bounds, c)
	return i
}
