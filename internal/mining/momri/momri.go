// Package momri implements multi-objective group discovery in the
// spirit of α-MOMRI (Omidvar-Tehrani et al., PKDD 2016), the second
// discovery algorithm the paper names (§II-A). Where LCM enumerates
// every closed frequent group, α-MOMRI returns a curated *set* of k
// groups jointly optimizing several objectives — here coverage of the
// user universe and diversity among the returned groups — using an
// α-relaxed dominance test to prune near-duplicate candidate sets.
//
// The search is a beam search over partial group-sets: each step
// extends every beam state with every candidate group (evaluated
// lazily, without materializing union bitsets), keeps the α-Pareto
// frontier on (coverage, diversity), and truncates to the beam width by
// scalarized score. α < 1 prunes more aggressively (a state survives
// alongside a better one only if it is within factor α in some
// objective), trading optimality for speed exactly as the
// α-approximation of the original algorithm does.
package momri

import (
	"errors"
	"fmt"
	"sort"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/mining/lcm"
)

// Config parameterizes the multi-objective search.
type Config struct {
	// K is the number of groups to return.
	K int
	// Alpha ∈ (0,1] relaxes Pareto dominance: extension A α-dominates
	// B when coverage(A) ≥ α·coverage(B) and diversity(A) ≥
	// α·diversity(B) with strict improvement in one objective, i.e. A
	// prunes everything it beats *approximately*, not only exactly.
	// Alpha = 1 is exact dominance; smaller α prunes more.
	Alpha float64
	// BeamWidth caps the number of frontier states kept per step.
	BeamWidth int
	// CoverageWeight ∈ [0,1] scalarizes the two objectives for
	// ranking: score = w·coverage + (1-w)·diversity.
	CoverageWeight float64
	// Mining bounds the candidate enumeration (run through LCM).
	Mining mining.Options
}

// DefaultConfig returns the configuration used in the experiments:
// k = 7 (the paper's perception bound), α = 0.9, beam 16.
func DefaultConfig(minSupport int) Config {
	return Config{
		K:              7,
		Alpha:          0.9,
		BeamWidth:      16,
		CoverageWeight: 0.5,
		Mining:         mining.Options{MinSupport: minSupport, MaxLen: 4, MaxGroups: 2000},
	}
}

// Miner implements mining.Miner with multi-objective selection.
type Miner struct {
	Cfg Config
}

// New returns an α-MOMRI miner.
func New(cfg Config) *Miner { return &Miner{Cfg: cfg} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "alpha-momri" }

// FingerprintKey implements mining.FingerprintedMiner.
func (m *Miner) FingerprintKey() string { return fmt.Sprintf("alpha-momri%+v", m.Cfg) }

// state is one beam entry: a set of chosen candidate indices with the
// materialized covered-user set and cached objective values.
type state struct {
	chosen     []int
	covered    *bitset.Set
	coverage   float64
	sumPairSim float64 // Σ pairwise Jaccard among chosen
	diversity  float64
}

// ext is a candidate extension of a state, evaluated without
// materializing the union bitset; only survivors are materialized.
type ext struct {
	parent     *state
	cand       int
	coverage   float64
	sumPairSim float64
	diversity  float64
}

// Mine implements mining.Miner: it enumerates closed frequent candidate
// groups with LCM, then selects the best k-set under (coverage,
// diversity) with α-relaxed beam search.
func (m *Miner) Mine(t *mining.Transactions) ([]*groups.Group, error) {
	cfg := m.Cfg
	if cfg.K <= 0 {
		return nil, fmt.Errorf("momri: K must be positive, got %d", cfg.K)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("momri: Alpha must be in (0,1], got %v", cfg.Alpha)
	}
	if cfg.BeamWidth <= 0 {
		cfg.BeamWidth = 16
	}
	// A tripped Mining.MaxGroups is tolerated: per the mining.Options
	// contract LCM then yields exactly the first MaxGroups closed sets
	// in enumeration order, which is a deterministic candidate pool.
	cands, err := lcm.New(cfg.Mining).Mine(t)
	if err != nil && !errors.Is(err, mining.ErrTooManyGroups) {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, nil
	}
	if len(cands) <= cfg.K {
		return cands, nil
	}

	// Pairwise candidate similarities are reused at every step; cache
	// them once. |cands| is bounded by Mining.MaxGroups in practice.
	sim := pairwiseSim(cands)

	beam := []*state{{covered: bitset.New(t.N), diversity: 1}}
	for step := 0; step < cfg.K; step++ {
		exts := make([]ext, 0, len(beam)*len(cands))
		for _, st := range beam {
			for ci, cand := range cands {
				if containsInt(st.chosen, ci) {
					continue
				}
				exts = append(exts, evaluate(st, ci, cand, sim, t.N))
			}
		}
		if len(exts) == 0 {
			break
		}
		// Rank by scalarized score, keep a generous pool for the
		// frontier test (keeps the dominance filter near-linear).
		sort.Slice(exts, func(i, j int) bool {
			si, sj := cfg.score(exts[i]), cfg.score(exts[j])
			if si != sj {
				return si > sj
			}
			return exts[i].cand < exts[j].cand
		})
		pool := 4 * cfg.BeamWidth
		if len(exts) > pool {
			exts = exts[:pool]
		}
		exts = alphaFrontier(exts, cfg.Alpha)
		if len(exts) > cfg.BeamWidth {
			exts = exts[:cfg.BeamWidth]
		}
		beam = materialize(exts, cands)
	}
	if len(beam) == 0 {
		return nil, nil
	}
	best := beam[0]
	out := make([]*groups.Group, 0, len(best.chosen))
	for _, ci := range best.chosen {
		out = append(out, cands[ci])
	}
	return out, nil
}

func (c Config) score(e ext) float64 {
	return c.CoverageWeight*e.coverage + (1-c.CoverageWeight)*e.diversity
}

// evaluate computes the objectives of parent ∪ {cand} without cloning
// the covered set: new coverage = covered + |cand \ covered|.
func evaluate(st *state, ci int, cand *groups.Group, sim [][]float64, n int) ext {
	gain := cand.Members.DifferenceCount(st.covered)
	e := ext{
		parent:     st,
		cand:       ci,
		coverage:   (float64(st.covered.Count()) + float64(gain)) / float64(n),
		sumPairSim: st.sumPairSim,
	}
	for _, prev := range st.chosen {
		e.sumPairSim += sim[prev][ci]
	}
	k := len(st.chosen) + 1
	if k >= 2 {
		pairs := float64(k*(k-1)) / 2
		e.diversity = 1 - e.sumPairSim/pairs
	} else {
		e.diversity = 1
	}
	return e
}

func materialize(exts []ext, cands []*groups.Group) []*state {
	out := make([]*state, len(exts))
	for i, e := range exts {
		covered := e.parent.covered.Clone()
		covered.InPlaceUnion(cands[e.cand].Members)
		out[i] = &state{
			chosen:     append(append([]int(nil), e.parent.chosen...), e.cand),
			covered:    covered,
			coverage:   e.coverage,
			sumPairSim: e.sumPairSim,
			diversity:  e.diversity,
		}
	}
	return out
}

// alphaFrontier removes extensions α-dominated by an already-kept
// extension. The pool arrives score-sorted, so when two extensions
// α-dominate each other the better-scored one survives (processing
// order resolves mutual approximate domination). The pool is small
// (≤ 4×beam), so the quadratic scan is cheap.
func alphaFrontier(exts []ext, alpha float64) []ext {
	out := make([]ext, 0, len(exts))
	for i := range exts {
		s := exts[i]
		dominated := false
		for _, o := range out {
			if o.coverage >= alpha*s.coverage && o.diversity >= alpha*s.diversity &&
				(o.coverage > s.coverage || o.diversity > s.diversity) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	return out
}

func pairwiseSim(cands []*groups.Group) [][]float64 {
	n := len(cands)
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := cands[i].Jaccard(cands[j])
			sim[i][j], sim[j][i] = s, s
		}
	}
	return sim
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
