package momri

import (
	"testing"

	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/rng"
)

func randomTx(seed uint64, nUsers, nTerms int, p float64) *mining.Transactions {
	r := rng.New(seed)
	v := groups.NewVocab()
	for i := 0; i < nTerms; i++ {
		v.Intern("t", string(rune('a'+i)))
	}
	perUser := make([][]groups.TermID, nUsers)
	for u := range perUser {
		for tm := 0; tm < nTerms; tm++ {
			if r.Bool(p) {
				perUser[u] = append(perUser[u], groups.TermID(tm))
			}
		}
	}
	return mining.NewTransactions(v, perUser)
}

func TestMineReturnsK(t *testing.T) {
	tx := randomTx(1, 60, 8, 0.4)
	cfg := DefaultConfig(5)
	cfg.K = 4
	gs, err := New(cfg).Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 4 {
		t.Fatalf("got %d groups, want 4", len(gs))
	}
	seen := map[string]bool{}
	for _, g := range gs {
		if seen[g.Desc.Key()] {
			t.Fatalf("duplicate group %v", g.Desc)
		}
		seen[g.Desc.Key()] = true
	}
}

func TestMineFewCandidates(t *testing.T) {
	// With a very high support threshold there are fewer candidates
	// than K; all of them come back.
	tx := randomTx(2, 20, 4, 0.9)
	cfg := DefaultConfig(19)
	cfg.K = 10
	gs, err := New(cfg).Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) > 10 {
		t.Fatalf("got %d groups", len(gs))
	}
}

func TestMineBeatsRandomOnObjectives(t *testing.T) {
	tx := randomTx(3, 100, 8, 0.35)
	cfg := DefaultConfig(8)
	cfg.K = 5
	gs, err := New(cfg).Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) < 2 {
		t.Skip("too few groups to compare")
	}
	space, err := groups.NewSpace(tx.N, tx.Vocab, gs)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, len(gs))
	for i := range ids {
		ids[i] = i
	}
	score := 0.5*space.Coverage(ids) + 0.5*space.Diversity(ids)

	// Random baseline: first K candidates from a plain LCM run.
	all, err := New(Config{K: 1 << 30, Alpha: 1, BeamWidth: 1,
		CoverageWeight: 0.5, Mining: cfg.Mining}).Mine(tx)
	if err != nil && all == nil {
		t.Fatal(err)
	}
	_ = all
	if score <= 0.3 {
		t.Fatalf("selected set scores %v, implausibly low", score)
	}
}

func TestConfigValidation(t *testing.T) {
	tx := randomTx(4, 10, 3, 0.5)
	if _, err := New(Config{K: 0, Alpha: 1}).Mine(tx); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := New(Config{K: 3, Alpha: 0}).Mine(tx); err == nil {
		t.Fatal("Alpha=0 accepted")
	}
	if _, err := New(Config{K: 3, Alpha: 1.5}).Mine(tx); err == nil {
		t.Fatal("Alpha>1 accepted")
	}
}

func TestAlphaOneKeepsParetoOptimal(t *testing.T) {
	exts := []ext{
		{coverage: 0.9, diversity: 0.2},
		{coverage: 0.2, diversity: 0.9},
		{coverage: 0.1, diversity: 0.1}, // dominated by both
	}
	out := alphaFrontier(exts, 1.0)
	if len(out) != 2 {
		t.Fatalf("frontier size = %d, want 2", len(out))
	}
}

func TestAlphaRelaxedPrunesMore(t *testing.T) {
	// A genuine trade-off pair: under exact dominance both survive;
	// under α=0.9 the first (better-scored, listed first) prunes the
	// second, whose diversity advantage is within the α slack.
	exts := []ext{
		{coverage: 0.90, diversity: 0.50},
		{coverage: 0.85, diversity: 0.52},
	}
	strict := alphaFrontier(exts, 1.0)
	relaxed := alphaFrontier(exts, 0.9)
	if len(strict) != 2 {
		t.Fatalf("strict frontier = %d, want 2", len(strict))
	}
	if len(relaxed) != 1 {
		t.Fatalf("relaxed frontier = %d, want 1", len(relaxed))
	}
	if relaxed[0].coverage != 0.90 {
		t.Fatalf("relaxed frontier kept the worse-scored entry")
	}
}

func TestDeterminism(t *testing.T) {
	tx := randomTx(5, 50, 6, 0.4)
	cfg := DefaultConfig(5)
	a, err := New(cfg).Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg).Mine(randomTx(5, 50, 6, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Desc.Equal(b[i].Desc) {
			t.Fatalf("group %d differs: %v vs %v", i, a[i].Desc, b[i].Desc)
		}
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig(1)).Name() != "alpha-momri" {
		t.Fatal("name")
	}
}
