// Package mining provides the shared substrate for user-group
// discovery: the encoding of users into transactions over an interned
// term vocabulary, vertical tid-lists for fast support counting, and
// the Miner interface that all discovery algorithms (LCM, α-MOMRI,
// stream mining, BIRCH) implement. The paper treats VEXUS as
// independent of the discovery algorithm (§II-A); this interface is
// that independence made concrete.
package mining

import (
	"fmt"
	"sort"

	"vexus/internal/bitset"
	"vexus/internal/groups"
)

// Transactions is the mining view of a dataset: one transaction per
// user, each a sorted set of term ids, plus the vertical representation
// (per-term bitsets over users) that makes support counting and closure
// computation word-parallel.
type Transactions struct {
	Vocab *groups.Vocab
	N     int // number of users / transactions

	// PerUser[u] is the ascending term-id list of user u.
	PerUser [][]groups.TermID
	// Tids[t] is the set of users carrying term t.
	Tids []*bitset.Set
}

// NewTransactions builds the vertical representation from per-user term
// lists. Lists are sorted and deduplicated in place.
func NewTransactions(vocab *groups.Vocab, perUser [][]groups.TermID) *Transactions {
	t := &Transactions{
		Vocab:   vocab,
		N:       len(perUser),
		PerUser: perUser,
		Tids:    make([]*bitset.Set, vocab.Len()),
	}
	for i := range t.Tids {
		t.Tids[i] = bitset.New(t.N)
	}
	for u, terms := range perUser {
		sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
		w := 0
		for i, id := range terms {
			if i == 0 || id != terms[i-1] {
				terms[w] = id
				w++
			}
		}
		perUser[u] = terms[:w]
		for _, id := range perUser[u] {
			t.Tids[id].Add(u)
		}
	}
	return t
}

// Support returns the number of users carrying term id.
func (t *Transactions) Support(id groups.TermID) int {
	return t.Tids[id].Count()
}

// SupportOf returns the number of users carrying every term of the
// description (intersection of tid-lists). The empty description is
// supported by all users.
func (t *Transactions) SupportOf(d groups.Description) int {
	set := t.MembersOf(d)
	return set.Count()
}

// MembersOf returns the user set carrying every term of d. The empty
// description returns the full universe.
func (t *Transactions) MembersOf(d groups.Description) *bitset.Set {
	out := bitset.New(t.N)
	out.Fill()
	for _, id := range d {
		out.InPlaceIntersect(t.Tids[id])
	}
	return out
}

// Closure returns the canonical closed description of the given user
// set: every term carried by all of those users. Closed descriptions
// are the natural group labels ("all members share common demographics
// and actions that describe the group", §I).
func (t *Transactions) Closure(members *bitset.Set) groups.Description {
	if members.IsEmpty() {
		return groups.NewDescription()
	}
	out := make(groups.Description, 0, 8)
	for id := range t.Tids {
		if members.SubsetOf(t.Tids[id]) {
			out = append(out, groups.TermID(id))
		}
	}
	return out
}

// Miner discovers user groups from transactions. Implementations must
// return groups whose Members bitsets share the transactions' universe.
type Miner interface {
	// Mine returns discovered groups. The returned group IDs are
	// unspecified; callers assign ids via groups.NewSpace.
	Mine(t *Transactions) ([]*groups.Group, error)
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
}

// Options bounds group discovery across all miners.
type Options struct {
	// MinSupport is the minimum absolute member count of a group.
	MinSupport int
	// MaxLen caps description length (0 = unlimited).
	MaxLen int
	// MaxGroups aborts enumeration beyond this many groups
	// (0 = unlimited); a safety valve against pattern explosion.
	//
	// Contract: when the budget trips, a miner returns AT MOST
	// MaxGroups groups — the first MaxGroups in its enumeration order —
	// together with an error wrapping ErrTooManyGroups, so callers may
	// either fail or proceed with the truncated collection. Miners that
	// bound their output by construction (momri's K, birch's K) never
	// trip it; stream bounds memory via lossy counting instead.
	MaxGroups int
}

// Normalized returns a copy of o with defaults applied (MinSupport
// floored at 1) after validating against a universe of n users. The
// receiver is never mutated: miners must call Normalized once at the
// top of Mine and use only the returned copy, so a value-copied
// Options can never silently run with MinSupport=0.
func (o Options) Normalized(n int) (Options, error) {
	if o.MinSupport < 1 {
		o.MinSupport = 1
	}
	if err := o.Validate(n); err != nil {
		return Options{}, err
	}
	return o, nil
}

// Validate checks the bounds without mutating o. It does not apply
// defaults — use Normalized for that; Validate alone accepts
// MinSupport=0 only because Normalized floors it afterwards.
func (o Options) Validate(n int) error {
	if o.MinSupport > n && n > 0 {
		return fmt.Errorf("mining: MinSupport %d exceeds universe %d", o.MinSupport, n)
	}
	if o.MaxLen < 0 || o.MaxGroups < 0 {
		return fmt.Errorf("mining: negative bounds")
	}
	return nil
}

// ParallelOptions configures the parallel discovery entry points. It
// is shared by every miner that fans enumeration subtrees out over
// internal/parallel, so callers configure one struct regardless of the
// algorithm behind it.
type ParallelOptions struct {
	// Workers is the worker count (<= 0 means runtime.NumCPU()). Any
	// value produces results bit-identical to the sequential Mine;
	// only wall clock changes.
	Workers int
}

// ParallelMiner is implemented by miners with a parallel entry point
// whose results (group set, order, and truncation behavior) are
// bit-identical to Mine for every worker count.
type ParallelMiner interface {
	Miner
	// MineParallel is Mine fanned out over `workers` goroutines.
	MineParallel(t *Transactions, workers int) ([]*groups.Group, error)
}

// MineParallel mines with m's parallel entry point when it has one
// (LCM today) and falls back to the sequential Mine otherwise
// (momri/birch/stream, until they adopt ParallelMiner).
func MineParallel(m Miner, t *Transactions, opts ParallelOptions) ([]*groups.Group, error) {
	if pm, ok := m.(ParallelMiner); ok {
		return pm.MineParallel(t, opts.Workers)
	}
	return m.Mine(t)
}

// FingerprintedMiner lets a miner contribute its result-affecting
// parameters to a snapshot content address (internal/store): two
// miners whose FingerprintKey differs must be assumed to mine
// different group sets. Miners that do not implement it are identified
// by Name() alone, so snapshots of differently parameterized instances
// of such a miner would alias — every in-tree miner implements it.
type FingerprintedMiner interface {
	Miner
	// FingerprintKey returns a deterministic string covering every
	// parameter that changes Mine's output.
	FingerprintKey() string
}

// ErrTooManyGroups is returned when enumeration exceeds MaxGroups.
var ErrTooManyGroups = fmt.Errorf("mining: group budget exceeded")
