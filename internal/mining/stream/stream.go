// Package stream implements in-core frequent itemset mining over user
// data streams in the style of Jin & Agrawal (ICDM 2005), the stream
// algorithm the paper names for streaming inputs (§II-A). It maintains
// approximate counts of itemsets up to a bounded length with the
// lossy-counting guarantee: after N transactions, every itemset whose
// true frequency is at least σ·N is reported (no false negatives), and
// every reported itemset has true frequency at least (σ−ε)·N.
//
// Memory is bounded: counters are pruned at every bucket boundary
// (width ⌈1/ε⌉), so at most O((1/ε)·log(εN)) counters per itemset
// length survive.
package stream

import (
	"fmt"
	"sort"
	"strings"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
)

// Config parameterizes the stream miner.
type Config struct {
	// Support σ ∈ (0,1]: itemsets with frequency ≥ σ·N are frequent.
	Support float64
	// Epsilon ε ∈ (0, σ): the lossy-counting error bound. Smaller ε
	// means more counters but tighter counts. Typical: σ/10.
	Epsilon float64
	// MaxLen caps itemset length (memory grows combinatorially with
	// it; 3 covers the group descriptions VEXUS displays).
	MaxLen int
	// MaxTermsPerTxn truncates pathological transactions before subset
	// enumeration (keeps the lowest term ids; 0 = 24).
	MaxTermsPerTxn int
}

// DefaultConfig mines up to 3-term groups at 1% support.
func DefaultConfig() Config {
	return Config{Support: 0.01, Epsilon: 0.001, MaxLen: 3}
}

// counter is one lossy-counting entry.
type counter struct {
	count int
	delta int
}

// Miner is the streaming state. It can be driven incrementally with
// Process + Snapshot, or run in batch over a Transactions via Mine
// (which replays users in order, as a stream).
type Miner struct {
	cfg     Config
	n       int // transactions seen
	bucket  int // current bucket id = ⌈n/width⌉
	width   int
	entries map[string]*counter
	err     error
}

// New returns a stream miner. Configuration errors surface on first use.
func New(cfg Config) *Miner {
	m := &Miner{cfg: cfg, entries: make(map[string]*counter)}
	if cfg.Support <= 0 || cfg.Support > 1 {
		m.err = fmt.Errorf("stream: Support must be in (0,1], got %v", cfg.Support)
		return m
	}
	if cfg.Epsilon <= 0 || cfg.Epsilon >= cfg.Support {
		m.err = fmt.Errorf("stream: Epsilon must be in (0, Support), got %v", cfg.Epsilon)
		return m
	}
	if m.cfg.MaxLen <= 0 {
		m.cfg.MaxLen = 3
	}
	if m.cfg.MaxTermsPerTxn <= 0 {
		m.cfg.MaxTermsPerTxn = 24
	}
	m.width = int(1/cfg.Epsilon) + 1
	m.bucket = 1
	return m
}

// Name implements mining.Miner.
func (m *Miner) Name() string { return "streammining" }

// FingerprintKey implements mining.FingerprintedMiner. The lossy
// bounds parameterize the result; the stream consumed so far does not
// belong here (it is the dataset's side of the content address).
func (m *Miner) FingerprintKey() string { return fmt.Sprintf("streammining%+v", m.cfg) }

// N returns the number of transactions processed so far.
func (m *Miner) N() int { return m.n }

// NumCounters returns the current number of in-core counters — the
// quantity the lossy-counting bound keeps small.
func (m *Miner) NumCounters() int { return len(m.entries) }

// Process consumes one transaction (a user's term set; it will be
// sorted and deduplicated in place).
func (m *Miner) Process(terms []groups.TermID) {
	if m.err != nil {
		return
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	w := 0
	for i, id := range terms {
		if i == 0 || id != terms[i-1] {
			terms[w] = id
			w++
		}
	}
	terms = terms[:w]
	if len(terms) > m.cfg.MaxTermsPerTxn {
		terms = terms[:m.cfg.MaxTermsPerTxn]
	}
	m.n++
	m.enumerate(terms, nil)
	if m.n%m.width == 0 {
		m.prune()
		m.bucket++
	}
}

// enumerate counts every non-empty subset of terms up to MaxLen.
func (m *Miner) enumerate(terms []groups.TermID, prefix []groups.TermID) {
	for i, id := range terms {
		next := append(prefix, id)
		m.bump(next)
		if len(next) < m.cfg.MaxLen {
			m.enumerate(terms[i+1:], next)
		}
	}
}

func (m *Miner) bump(itemset []groups.TermID) {
	key := keyOf(itemset)
	if c, ok := m.entries[key]; ok {
		c.count++
		return
	}
	m.entries[key] = &counter{count: 1, delta: m.bucket - 1}
}

func (m *Miner) prune() {
	for key, c := range m.entries {
		if c.count+c.delta <= m.bucket {
			delete(m.entries, key)
		}
	}
}

// FrequentItemset is one reported itemset with its approximate count.
type FrequentItemset struct {
	Terms groups.Description
	// Count is the maintained count; true count ∈ [Count, Count+Delta].
	Count int
	Delta int
}

// Snapshot returns itemsets whose maintained count is at least
// (σ−ε)·N, sorted by descending count then ascending key — the
// lossy-counting answer set.
func (m *Miner) Snapshot() []FrequentItemset {
	if m.err != nil || m.n == 0 {
		return nil
	}
	threshold := (m.cfg.Support - m.cfg.Epsilon) * float64(m.n)
	var out []FrequentItemset
	for key, c := range m.entries {
		if float64(c.count) >= threshold {
			out = append(out, FrequentItemset{
				Terms: parseKey(key),
				Count: c.count,
				Delta: c.delta,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return less(out[i].Terms, out[j].Terms)
	})
	return out
}

// Mine implements mining.Miner: it replays the transactions in user
// order as a stream, then converts the surviving frequent itemsets into
// groups with *exact* membership recomputed from the vertical lists
// (the stream pass bounds counts; membership for the group space must
// be exact). Closed duplicates (same member set) keep the shortest
// description.
func (m *Miner) Mine(t *mining.Transactions) ([]*groups.Group, error) {
	if m.err != nil {
		return nil, m.err
	}
	for _, terms := range t.PerUser {
		m.Process(append([]groups.TermID(nil), terms...))
	}
	snap := m.Snapshot()
	minSup := int(m.cfg.Support * float64(t.N))
	if minSup < 1 {
		minSup = 1
	}
	byMembers := make(map[string]*groups.Group)
	var out []*groups.Group
	for _, fi := range snap {
		members := t.MembersOf(fi.Terms)
		if members.Count() < minSup {
			continue // stream overestimate; drop on exact check
		}
		mkey := memberKey(members)
		if prev, ok := byMembers[mkey]; ok {
			if len(fi.Terms) > len(prev.Desc) {
				continue
			}
			// Shorter description wins; replace in place.
			prev.Desc = groups.NewDescription(fi.Terms...)
			continue
		}
		g := &groups.Group{Desc: groups.NewDescription(fi.Terms...), Members: members}
		byMembers[mkey] = g
		out = append(out, g)
	}
	return out, nil
}

func keyOf(itemset []groups.TermID) string {
	var b strings.Builder
	for i, id := range itemset {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

func parseKey(key string) groups.Description {
	parts := strings.Split(key, ",")
	out := make(groups.Description, 0, len(parts))
	for _, p := range parts {
		var v int
		fmt.Sscanf(p, "%d", &v)
		out = append(out, groups.TermID(v))
	}
	return groups.NewDescription(out...)
}

func memberKey(s *bitset.Set) string {
	var b strings.Builder
	s.Range(func(i int) bool {
		fmt.Fprintf(&b, "%d,", i)
		return true
	})
	return b.String()
}

func less(a, b groups.Description) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
