package stream

import (
	"testing"

	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	if m := New(Config{Support: 0, Epsilon: 0.001}); m.err == nil {
		t.Fatal("Support=0 accepted")
	}
	if m := New(Config{Support: 0.1, Epsilon: 0.2}); m.err == nil {
		t.Fatal("Epsilon >= Support accepted")
	}
	if m := New(Config{Support: 0.1, Epsilon: 0}); m.err == nil {
		t.Fatal("Epsilon=0 accepted")
	}
	m := New(Config{Support: 0.1, Epsilon: 0.01})
	if m.err != nil {
		t.Fatal(m.err)
	}
	if m.cfg.MaxLen != 3 || m.cfg.MaxTermsPerTxn != 24 {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
}

func TestNoFalseNegatives(t *testing.T) {
	// Lossy counting guarantee: every itemset with true frequency
	// ≥ σ·N must be in the snapshot.
	r := rng.New(7)
	m := New(Config{Support: 0.2, Epsilon: 0.02, MaxLen: 2})
	trueCounts := map[string]int{}
	n := 5000
	for i := 0; i < n; i++ {
		var terms []groups.TermID
		// term 0 in 60% of txns, term 1 in 40%, both in ~24%.
		if r.Bool(0.6) {
			terms = append(terms, 0)
		}
		if r.Bool(0.4) {
			terms = append(terms, 1)
		}
		if r.Bool(0.05) {
			terms = append(terms, 2)
		}
		for _, id := range terms {
			trueCounts[keyOf([]groups.TermID{id})]++
		}
		if len(terms) >= 2 {
			trueCounts[keyOf(terms[:2])]++
		}
		m.Process(terms)
	}
	snap := m.Snapshot()
	inSnap := map[string]bool{}
	for _, fi := range snap {
		inSnap[fi.Terms.Key()] = true
	}
	for key, c := range trueCounts {
		if float64(c) >= 0.2*float64(n) && !inSnap[key] {
			t.Fatalf("frequent itemset %q (count %d) missing from snapshot", key, c)
		}
	}
	// And the rare term must NOT be reported (count ≈ 5% << 18%).
	if inSnap["2"] {
		t.Fatal("rare itemset reported as frequent")
	}
}

func TestCountError(t *testing.T) {
	// Maintained counts underestimate by at most Delta ≤ εN.
	m := New(Config{Support: 0.1, Epsilon: 0.01, MaxLen: 1})
	r := rng.New(11)
	n := 10_000
	trueCount := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			m.Process([]groups.TermID{0})
			trueCount++
		} else {
			m.Process([]groups.TermID{1})
		}
	}
	for _, fi := range m.Snapshot() {
		if fi.Terms.Key() == "0" {
			if fi.Count > trueCount {
				t.Fatalf("count %d exceeds true %d", fi.Count, trueCount)
			}
			if trueCount-fi.Count > int(0.01*float64(n))+1 {
				t.Fatalf("undercount %d exceeds εN", trueCount-fi.Count)
			}
			return
		}
	}
	t.Fatal("itemset {0} missing")
}

func TestMemoryBounded(t *testing.T) {
	// A stream of mostly-unique transactions must not accumulate
	// unbounded counters.
	m := New(Config{Support: 0.05, Epsilon: 0.01, MaxLen: 2})
	r := rng.New(13)
	for i := 0; i < 20_000; i++ {
		m.Process([]groups.TermID{
			groups.TermID(r.Intn(5000)),
			groups.TermID(r.Intn(5000)),
		})
	}
	// Lossy counting bound: O((1/ε)·log(εN)) per level — generous cap.
	if m.NumCounters() > 120_000 {
		t.Fatalf("counters = %d, memory not bounded", m.NumCounters())
	}
}

func TestProcessDedupsAndTruncates(t *testing.T) {
	m := New(Config{Support: 0.5, Epsilon: 0.1, MaxLen: 1, MaxTermsPerTxn: 2})
	m.Process([]groups.TermID{3, 3, 1, 2})
	// After sort+dedup {1,2,3}, truncation keeps {1,2}.
	snap := m.Snapshot()
	for _, fi := range snap {
		if fi.Terms.Key() == "3" {
			t.Fatal("truncated term counted")
		}
	}
	if m.N() != 1 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestMineProducesExactGroups(t *testing.T) {
	v := groups.NewVocab()
	a := v.Intern("g", "a")
	b := v.Intern("g", "b")
	perUser := make([][]groups.TermID, 20)
	for u := range perUser {
		if u < 12 {
			perUser[u] = []groups.TermID{a}
		} else {
			perUser[u] = []groups.TermID{a, b}
		}
	}
	tx := mining.NewTransactions(v, perUser)
	m := New(Config{Support: 0.3, Epsilon: 0.05, MaxLen: 2})
	gs, err := m.Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]*groups.Group{}
	for _, g := range gs {
		byKey[g.Desc.Key()] = g
	}
	ga := byKey[groups.NewDescription(a).Key()]
	if ga == nil || ga.Size() != 20 {
		t.Fatalf("group {a} = %v", ga)
	}
	gab := byKey[groups.NewDescription(a, b).Key()]
	// {b} and {a,b} have identical members; the dedupe keeps the
	// shorter description {b}.
	gb := byKey[groups.NewDescription(b).Key()]
	if gab != nil && gb != nil {
		t.Fatal("duplicate member sets not deduplicated")
	}
	if gb == nil && gab == nil {
		t.Fatal("8-member group missing entirely")
	}
	if gb != nil && gb.Size() != 8 {
		t.Fatalf("group {b} size = %d", gb.Size())
	}
}

func TestMineEmptyStream(t *testing.T) {
	v := groups.NewVocab()
	tx := mining.NewTransactions(v, nil)
	m := New(DefaultConfig())
	gs, err := m.Mine(tx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Fatalf("groups = %d", len(gs))
	}
}

func TestMinePropagatesConfigError(t *testing.T) {
	v := groups.NewVocab()
	tx := mining.NewTransactions(v, nil)
	if _, err := New(Config{Support: -1, Epsilon: 0.1}).Mine(tx); err == nil {
		t.Fatal("config error not propagated")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	d := groups.NewDescription(3, 1, 7)
	key := keyOf(d)
	back := parseKey(key)
	if !back.Equal(d) {
		t.Fatalf("round trip %v -> %q -> %v", d, key, back)
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "streammining" {
		t.Fatal("name")
	}
}
