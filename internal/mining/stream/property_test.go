package stream

import (
	"testing"

	"vexus/internal/groups"
	"vexus/internal/rng"
)

// This file is the lossy-counting property test: the Jin & Agrawal
// guarantees checked against exact brute-force subset counts on
// seeded synthetic streams, with stream lengths chosen so the miner
// crosses several bucket-boundary prunes and finishes mid-bucket.
//
//   (1) no false negatives — every itemset with true count ≥ σ·N is
//       in the snapshot;
//   (2) no junk — every reported itemset has true count ≥ (σ−ε)·N;
//   (3) counts never overestimate, undercount at most Delta, and
//       Delta itself stays within the ε·N bucket bound.

// canonicalTxn mirrors Process's canonicalization — sort, dedup,
// truncate — so the brute-force counts see exactly the transactions
// the miner counted.
func canonicalTxn(terms []groups.TermID, maxTerms int) []groups.TermID {
	out := append([]groups.TermID(nil), terms...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	w := 0
	for i, id := range out {
		if i == 0 || id != out[i-1] {
			out[w] = id
			w++
		}
	}
	out = out[:w]
	if len(out) > maxTerms {
		out = out[:maxTerms]
	}
	return out
}

// countSubsets adds every non-empty subset of terms up to maxLen into
// exact — the reference enumeration.
func countSubsets(exact map[string]int, terms []groups.TermID, maxLen int, prefix []groups.TermID) {
	for i, id := range terms {
		next := append(prefix, id)
		exact[keyOf(next)]++
		if len(next) < maxLen {
			countSubsets(exact, terms[i+1:], maxLen, next)
		}
	}
}

func TestLossyCountingProperty(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
		cfg  Config
	}{
		{"wide-pairs", 3, Config{Support: 0.05, Epsilon: 0.01, MaxLen: 2}},
		{"triples", 17, Config{Support: 0.1, Epsilon: 0.02, MaxLen: 3}},
		{"tight-epsilon", 29, Config{Support: 0.02, Epsilon: 0.004, MaxLen: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(tc.cfg)
			if m.err != nil {
				t.Fatal(m.err)
			}
			// Cross four prune boundaries and finish mid-bucket, so the
			// guarantees are checked in the regime where counters have
			// actually been dropped and revived.
			n := 4*m.width + m.width/3
			r := rng.New(tc.seed)
			z := rng.NewZipf(r.Split(1), 1.2, 24)
			exact := make(map[string]int)
			for i := 0; i < n; i++ {
				k := 1 + r.Intn(5)
				terms := make([]groups.TermID, 0, k)
				for j := 0; j < k; j++ {
					terms = append(terms, groups.TermID(z.Next()))
				}
				countSubsets(exact, canonicalTxn(terms, m.cfg.MaxTermsPerTxn), m.cfg.MaxLen, nil)
				m.Process(terms)
			}
			if m.N() != n {
				t.Fatalf("N = %d, want %d", m.N(), n)
			}
			if m.bucket < 5 {
				t.Fatalf("bucket = %d — the stream never crossed enough prune boundaries", m.bucket)
			}

			snap := m.Snapshot()
			if len(snap) == 0 {
				t.Fatal("empty snapshot on a zipf stream")
			}
			reported := make(map[string]FrequentItemset, len(snap))
			for _, fi := range snap {
				reported[fi.Terms.Key()] = fi
			}

			sigmaN := tc.cfg.Support * float64(n)
			floorN := (tc.cfg.Support - tc.cfg.Epsilon) * float64(n)
			epsN := int(tc.cfg.Epsilon*float64(n)) + 1
			frequent := 0
			for key, c := range exact {
				if float64(c) >= sigmaN {
					frequent++
					if _, ok := reported[key]; !ok {
						t.Errorf("false negative: itemset %q true count %d ≥ σN %.1f missing", key, c, sigmaN)
					}
				}
			}
			if frequent == 0 {
				t.Fatal("no itemset reached σN — the property was vacuous")
			}
			for key, fi := range reported {
				c := exact[key]
				if float64(c) < floorN {
					t.Errorf("junk report: itemset %q true count %d < (σ−ε)N %.1f", key, c, floorN)
				}
				if fi.Count > c {
					t.Errorf("itemset %q maintained count %d exceeds true count %d", key, fi.Count, c)
				}
				if c-fi.Count > fi.Delta {
					t.Errorf("itemset %q undercount %d exceeds its Delta %d", key, c-fi.Count, fi.Delta)
				}
				if fi.Delta > epsN {
					t.Errorf("itemset %q Delta %d exceeds εN bound %d", key, fi.Delta, epsN)
				}
			}
		})
	}
}

// TestLossyCountingBoundaryExact runs the same properties on a stream
// whose length is an exact multiple of the bucket width — the final
// transaction triggers a prune, the harshest moment for the no-false-
// negative guarantee.
func TestLossyCountingBoundaryExact(t *testing.T) {
	cfg := Config{Support: 0.06, Epsilon: 0.012, MaxLen: 2}
	m := New(cfg)
	n := 5 * m.width
	r := rng.New(43)
	z := rng.NewZipf(r.Split(9), 1.3, 16)
	exact := make(map[string]int)
	for i := 0; i < n; i++ {
		k := 1 + r.Intn(4)
		terms := make([]groups.TermID, 0, k)
		for j := 0; j < k; j++ {
			terms = append(terms, groups.TermID(z.Next()))
		}
		countSubsets(exact, canonicalTxn(terms, m.cfg.MaxTermsPerTxn), cfg.MaxLen, nil)
		m.Process(terms)
	}
	if m.n%m.width != 0 {
		t.Fatalf("stream length %d is not on a bucket boundary (width %d)", n, m.width)
	}
	reported := make(map[string]bool)
	for _, fi := range m.Snapshot() {
		reported[fi.Terms.Key()] = true
		if float64(exact[fi.Terms.Key()]) < (cfg.Support-cfg.Epsilon)*float64(n) {
			t.Errorf("junk report %q at the boundary", fi.Terms.Key())
		}
	}
	for key, c := range exact {
		if float64(c) >= cfg.Support*float64(n) && !reported[key] {
			t.Errorf("false negative %q (count %d) right after a boundary prune", key, c)
		}
	}
}
