// Package lcm implements closed frequent itemset mining in the style of
// LCM (Linear-time Closed itemset Miner, Uno et al., FIMI 2003), the
// group-discovery algorithm the paper names first (§II-A). Each closed
// frequent itemset over the term vocabulary is one user group: the
// itemset is the description, its tid-set the membership.
//
// The implementation uses LCM's two key ideas:
//
//   - Occurrence deliver: the tid-set of an extension P ∪ {i} is the
//     intersection of P's tid-set with item i's vertical list — here a
//     word-parallel bitset intersection.
//   - Prefix-preserving closure extension (PPC): after extending with
//     item i and closing, recurse only if the closure adds no item
//     smaller than i that was absent from the parent closure. Every
//     closed set is then enumerated exactly once, with no global
//     duplicate table, which is what makes LCM linear in the number of
//     closed sets.
package lcm

import (
	"fmt"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
)

// Miner mines closed frequent itemsets as user groups.
type Miner struct {
	Opts mining.Options
}

// New returns an LCM miner with the given bounds.
func New(opts mining.Options) *Miner { return &Miner{Opts: opts} }

// Name implements mining.Miner.
func (m *Miner) Name() string { return "lcm" }

// FingerprintKey implements mining.FingerprintedMiner: the bounds are
// the only parameters that change the mined set.
func (m *Miner) FingerprintKey() string { return fmt.Sprintf("lcm%+v", m.Opts) }

// Mine implements mining.Miner. Groups are returned in enumeration
// order (deterministic for fixed input). The empty/universe group is
// only reported when some term covers every user (its closure is then
// non-empty); the unconstrained universe itself is not a group.
//
// When the enumeration exceeds Opts.MaxGroups, Mine returns exactly
// the first MaxGroups groups in enumeration order together with an
// error wrapping mining.ErrTooManyGroups (the mining.Options.MaxGroups
// contract), so callers may either fail or proceed with the truncated
// collection.
func (m *Miner) Mine(t *mining.Transactions) ([]*groups.Group, error) {
	opts, err := m.Opts.Normalized(t.N)
	if err != nil {
		return nil, err
	}
	e := &enumerator{t: t, opts: opts, budget: budgetOf(opts)}
	full := bitset.New(t.N)
	full.Fill()

	// Root closure: terms carried by every user.
	root := t.Closure(full)
	if len(root) > 0 && (opts.MaxLen == 0 || len(root) <= opts.MaxLen) {
		if err := e.emit(root, full); err != nil {
			return e.out, err
		}
	}
	if err := e.recurse(root, full, -1); err != nil {
		return e.out, err
	}
	return e.out, nil
}

// budgetOf translates Options.MaxGroups into an emit cap: -1 means
// unlimited, any other value is the exact number of groups an
// enumerator may append to its output.
func budgetOf(opts mining.Options) int {
	if opts.MaxGroups > 0 {
		return opts.MaxGroups
	}
	return -1
}

type enumerator struct {
	t    *mining.Transactions
	opts mining.Options
	out  []*groups.Group
	// budget caps len(out); -1 = unlimited. The sequential Mine sets
	// it to MaxGroups; each MineParallel subtree gets the remainder
	// after the root emit, since no single subtree can contribute more
	// than that to the surviving prefix.
	budget int
	// shared, when non-nil, is the cross-subtree budget tracker of a
	// MineParallel run: once the committed slot prefix alone fills
	// MaxGroups, every enumerator still running aborts cooperatively.
	shared *budgetTracker
}

// emit appends one group, enforcing the budget *before* appending so
// the output never exceeds it. Both checks fire only when one more
// group provably exists, which is exactly the condition under which
// ErrTooManyGroups must surface.
func (e *enumerator) emit(desc groups.Description, members *bitset.Set) error {
	if e.budget >= 0 && len(e.out) >= e.budget {
		return e.budgetErr()
	}
	if e.shared != nil && e.shared.exceeded() {
		return e.budgetErr()
	}
	e.out = append(e.out, &groups.Group{
		Desc:    groups.NewDescription(desc...),
		Members: members.Clone(),
	})
	return nil
}

func (e *enumerator) budgetErr() error {
	return fmt.Errorf("%w: > %d groups at MinSupport=%d",
		mining.ErrTooManyGroups, e.opts.MaxGroups, e.opts.MinSupport)
}

// recurse enumerates all PPC extensions of the closed set desc (with
// tid-set members), using core item index coreI: only items > coreI are
// tried, and a closure is prefix-preserving iff it adds no new item
// ≤ coreI … i-1 outside the parent closure.
func (e *enumerator) recurse(desc groups.Description, members *bitset.Set, coreI int) error {
	nTerms := e.t.Vocab.Len()
	inDesc := make(map[groups.TermID]bool, len(desc))
	for _, id := range desc {
		inDesc[id] = true
	}
	ext := bitset.New(e.t.N)
	for i := coreI + 1; i < nTerms; i++ {
		id := groups.TermID(i)
		if inDesc[id] {
			continue
		}
		// Occurrence deliver: tid-set of the extension.
		ext.Copy(members)
		ext.InPlaceIntersect(e.t.Tids[i])
		sup := ext.Count()
		if sup < e.opts.MinSupport {
			continue
		}
		// Closure of desc ∪ {i} over the extension tid-set.
		closure := e.t.Closure(ext)
		// PPC check: no item < i may join the closure unless it was
		// already in the parent's description.
		ok := true
		for _, cid := range closure {
			if int(cid) < i && !inDesc[cid] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if e.opts.MaxLen > 0 && len(closure) > e.opts.MaxLen {
			// The closed form is too long to present; deeper closures
			// only grow, so prune the whole branch.
			continue
		}
		if err := e.emit(closure, ext); err != nil {
			return err
		}
		if err := e.recurse(closure, ext, i); err != nil {
			return err
		}
	}
	return nil
}
