package lcm

import (
	"errors"
	"fmt"
	"testing"

	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/rng"
)

// randomTx builds seeded random transactions: nUsers users over nTerms
// terms, each carried with probability p.
func randomTx(seed uint64, nUsers, nTerms int, p float64) *mining.Transactions {
	r := rng.New(seed)
	perUser := make([][]groups.TermID, nUsers)
	for u := range perUser {
		for tm := 0; tm < nTerms; tm++ {
			if r.Bool(p) {
				perUser[u] = append(perUser[u], groups.TermID(tm))
			}
		}
	}
	v := groups.NewVocab()
	for i := 0; i < nTerms; i++ {
		v.Intern("t", fmt.Sprintf("%d", i))
	}
	return mining.NewTransactions(v, perUser)
}

// sameGroups asserts identical group sets in identical order with
// identical memberships.
func sameGroups(t *testing.T, label string, got, want []*groups.Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !got[i].Desc.Equal(want[i].Desc) {
			t.Fatalf("%s: group %d desc %v != %v", label, i, got[i].Desc, want[i].Desc)
		}
		if !got[i].Members.Equal(want[i].Members) {
			t.Fatalf("%s: group %d members differ for desc %v", label, i, got[i].Desc)
		}
	}
}

// TestMineParallelEquivalence: the parallel miner must return the
// exact sequential group list — set, enumeration order, and member
// bitsets — for every worker count, across transaction shapes
// (sparse/dense, with and without a universal term forcing a root
// closure, with and without MaxLen).
func TestMineParallelEquivalence(t *testing.T) {
	shapes := []struct {
		name string
		tx   *mining.Transactions
		opts mining.Options
	}{
		{"sparse", randomTx(1, 80, 14, 0.25), mining.Options{MinSupport: 2}},
		{"dense", randomTx(2, 60, 10, 0.55), mining.Options{MinSupport: 3}},
		{"maxlen", randomTx(3, 70, 12, 0.4), mining.Options{MinSupport: 2, MaxLen: 3}},
		{"minsup1", randomTx(4, 24, 8, 0.4), mining.Options{MinSupport: 1}},
	}
	// A universal term makes the root closure non-empty.
	withRoot := randomTx(5, 50, 10, 0.35)
	for u := range withRoot.PerUser {
		withRoot.PerUser[u] = append([]groups.TermID{0}, withRoot.PerUser[u]...)
	}
	shapes = append(shapes, struct {
		name string
		tx   *mining.Transactions
		opts mining.Options
	}{"root-closure", mining.NewTransactions(withRoot.Vocab, withRoot.PerUser), mining.Options{MinSupport: 2}})

	for _, sh := range shapes {
		want, wantErr := New(sh.opts).Mine(sh.tx)
		if wantErr != nil {
			t.Fatalf("%s: sequential: %v", sh.name, wantErr)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := New(sh.opts).MineParallel(sh.tx, workers)
			if err != nil {
				t.Fatalf("%s/w=%d: %v", sh.name, workers, err)
			}
			sameGroups(t, fmt.Sprintf("%s/w=%d", sh.name, workers), got, want)
		}
	}
}

// TestMineParallelTruncation: under a tripping MaxGroups the parallel
// miner must return exactly the sequential prefix — same groups, same
// order, exactly MaxGroups of them — plus ErrTooManyGroups, for every
// worker count. Dense transactions with small budgets maximize
// contention on the shared tracker.
func TestMineParallelTruncation(t *testing.T) {
	tx := randomTx(7, 64, 12, 0.5)
	for _, maxGroups := range []int{1, 3, 10, 50} {
		opts := mining.Options{MinSupport: 1, MaxGroups: maxGroups}
		want, wantErr := New(opts).Mine(tx)
		if !errors.Is(wantErr, mining.ErrTooManyGroups) {
			t.Fatalf("max=%d: sequential err = %v, want ErrTooManyGroups", maxGroups, wantErr)
		}
		if len(want) != maxGroups {
			t.Fatalf("max=%d: sequential returned %d groups", maxGroups, len(want))
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := New(opts).MineParallel(tx, workers)
			if !errors.Is(err, mining.ErrTooManyGroups) {
				t.Fatalf("max=%d/w=%d: err = %v, want ErrTooManyGroups", maxGroups, workers, err)
			}
			sameGroups(t, fmt.Sprintf("max=%d/w=%d", maxGroups, workers), got, want)
		}
	}
}

// TestMineParallelTruncationWithRoot covers the budget edge where the
// root closure consumes part (or all) of MaxGroups.
func TestMineParallelTruncationWithRoot(t *testing.T) {
	tx := randomTx(8, 40, 9, 0.45)
	for u := range tx.PerUser {
		tx.PerUser[u] = append([]groups.TermID{0}, tx.PerUser[u]...)
	}
	tx = mining.NewTransactions(tx.Vocab, tx.PerUser)
	for _, maxGroups := range []int{1, 2, 6} {
		opts := mining.Options{MinSupport: 1, MaxGroups: maxGroups}
		want, wantErr := New(opts).Mine(tx)
		for _, workers := range []int{2, 8} {
			got, err := New(opts).MineParallel(tx, workers)
			if errors.Is(wantErr, mining.ErrTooManyGroups) != errors.Is(err, mining.ErrTooManyGroups) {
				t.Fatalf("max=%d/w=%d: err = %v, sequential = %v", maxGroups, workers, err, wantErr)
			}
			sameGroups(t, fmt.Sprintf("root/max=%d/w=%d", maxGroups, workers), got, want)
		}
	}
}

// TestMineParallelEmpty: empty transactions yield no groups and no
// error, like the sequential miner.
func TestMineParallelEmpty(t *testing.T) {
	empty := mining.NewTransactions(groups.NewVocab(), nil)
	got, err := New(mining.Options{MinSupport: 1}).MineParallel(empty, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("groups from empty input: %d", len(got))
	}
}
