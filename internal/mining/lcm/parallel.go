package lcm

import (
	"sync"
	"sync/atomic"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/parallel"
)

// MineParallel is Mine fanned out over `workers` goroutines (<= 0
// means runtime.NumCPU()). The top-level PPC extensions are
// independent enumeration subtrees — PPC guarantees no closed set is
// reachable from two different top-level items — so each item i gets
// its own slot: a worker enumerates the whole subtree under i into
// slot i, and the slots are concatenated in item order afterwards.
// That concatenation IS the sequential enumeration order, so the
// result is bit-identical to Mine for every worker count.
//
// MaxGroups keeps its exact sequential semantics under truncation.
// Each subtree caps its own output at the budget remainder (no
// subtree can contribute more than that to the surviving prefix), and
// a shared tracker commits slot counts in item order as subtrees
// finish: once the committed prefix alone fills the budget, every
// still-running subtree aborts cooperatively — the groups it would
// have produced are provably beyond the first-MaxGroups prefix. The
// concatenation is then cut to exactly MaxGroups groups and returned
// with an error wrapping mining.ErrTooManyGroups, matching Mine's
// truncated output group for group.
func (m *Miner) MineParallel(t *mining.Transactions, workers int) ([]*groups.Group, error) {
	opts, err := m.Opts.Normalized(t.N)
	if err != nil {
		return nil, err
	}
	nTerms := t.Vocab.Len()
	workers = parallel.Workers(workers, nTerms)
	if workers == 1 {
		return (&Miner{Opts: opts}).Mine(t)
	}

	full := bitset.New(t.N)
	full.Fill()
	root := t.Closure(full)
	inRoot := make(map[groups.TermID]bool, len(root))
	for _, id := range root {
		inRoot[id] = true
	}
	var rootGroup *groups.Group
	if len(root) > 0 && (opts.MaxLen == 0 || len(root) <= opts.MaxLen) {
		rootGroup = &groups.Group{
			Desc:    groups.NewDescription(root...),
			Members: full.Clone(),
		}
	}
	base := 0
	if rootGroup != nil {
		base = 1
	}
	if opts.MaxGroups > 0 && base >= opts.MaxGroups && nTerms > 0 {
		// The root alone fills the budget; any extension would exceed
		// it. Probe cheaply whether one exists to decide the error.
		if hasExtension(t, opts, inRoot, full) {
			return []*groups.Group{rootGroup},
				(&enumerator{opts: opts}).budgetErr()
		}
		return []*groups.Group{rootGroup}, nil
	}

	// Per-subtree budget: the surviving prefix holds at most MaxGroups
	// groups including the root, so a single slot never needs more
	// than the remainder.
	slotBudget := -1
	if opts.MaxGroups > 0 {
		slotBudget = opts.MaxGroups - base
	}
	tracker := newBudgetTracker(opts.MaxGroups, base, nTerms)

	slots := make([][]*groups.Group, nTerms)
	truncated := make([]bool, nTerms)
	// Per-worker scratch: the occurrence-deliver bitset of the
	// top-level extension, keyed by worker id and reused across every
	// subtree the worker claims.
	scratch := make([]*bitset.Set, workers)
	parallel.ForEach(nTerms, workers, func(worker, i int) {
		defer func() { tracker.complete(i, len(slots[i])) }()
		if scratch[worker] == nil {
			scratch[worker] = bitset.New(t.N)
		}
		ext := scratch[worker]
		closure, ok := topLevelExtension(t, opts, inRoot, full, ext, i)
		if !ok {
			return
		}
		// No early skip on tracker.exceeded() before this point:
		// aborts must happen at emit time only, so a tripped budget
		// always coincides with a provable further group (exact
		// ErrTooManyGroups parity with the sequential run even when
		// the committed prefix fills the budget exactly).
		e := &enumerator{t: t, opts: opts, budget: slotBudget, shared: tracker}
		if err := e.emit(closure, ext); err != nil {
			slots[i], truncated[i] = e.out, true
			return
		}
		if err := e.recurse(closure, ext, i); err != nil {
			slots[i], truncated[i] = e.out, true
			return
		}
		slots[i] = e.out
	})

	total := base
	trips := false
	for i := range slots {
		total += len(slots[i])
		trips = trips || truncated[i]
	}
	if opts.MaxGroups > 0 && total > opts.MaxGroups {
		trips = true
	}
	out := make([]*groups.Group, 0, total)
	if rootGroup != nil {
		out = append(out, rootGroup)
	}
	for _, slot := range slots {
		out = append(out, slot...)
	}
	if trips {
		if len(out) > opts.MaxGroups {
			out = out[:opts.MaxGroups]
		}
		return out, (&enumerator{opts: opts}).budgetErr()
	}
	return out, nil
}

// topLevelExtension applies the top-level admission filter of the
// sequential recurse(root, full, -1) loop to item i: occurrence
// deliver into the ext scratch, support, closure, PPC prefix check
// against the root, and MaxLen pruning. It returns the closure and
// whether the subtree under i is enumerated at all — the single
// definition both MineParallel's fan-out and hasExtension rely on.
func topLevelExtension(t *mining.Transactions, opts mining.Options, inRoot map[groups.TermID]bool, full, ext *bitset.Set, i int) (groups.Description, bool) {
	if inRoot[groups.TermID(i)] {
		return nil, false
	}
	ext.Copy(full)
	ext.InPlaceIntersect(t.Tids[i])
	if ext.Count() < opts.MinSupport {
		return nil, false
	}
	closure := t.Closure(ext)
	for _, cid := range closure {
		if int(cid) < i && !inRoot[cid] {
			return nil, false
		}
	}
	if opts.MaxLen > 0 && len(closure) > opts.MaxLen {
		return nil, false
	}
	return closure, true
}

// hasExtension reports whether any top-level PPC extension of the root
// closure is frequent — i.e. whether the full enumeration holds at
// least one group beyond the root.
func hasExtension(t *mining.Transactions, opts mining.Options, inRoot map[groups.TermID]bool, full *bitset.Set) bool {
	ext := bitset.New(t.N)
	for i := 0; i < t.Vocab.Len(); i++ {
		if _, ok := topLevelExtension(t, opts, inRoot, full, ext, i); ok {
			return true
		}
	}
	return false
}

// budgetTracker is the shared MaxGroups accounting of a MineParallel
// run. Slots commit their final group counts in item order (a
// contiguous frontier); `committed` is the atomic number of groups in
// the root + committed-prefix, readable lock-free from every worker's
// emit path. Once committed >= max, the first-MaxGroups prefix of the
// enumeration is fully determined by already-finished slots, so any
// still-running subtree may abort without changing the result.
type budgetTracker struct {
	max       int // 0 = unlimited
	committed atomic.Int64

	mu       sync.Mutex
	counts   []int
	done     []bool
	frontier int
}

func newBudgetTracker(max, base, slots int) *budgetTracker {
	b := &budgetTracker{max: max, counts: make([]int, slots), done: make([]bool, slots)}
	b.committed.Store(int64(base))
	return b
}

// exceeded reports whether the committed prefix alone fills the
// budget. Enumerators consult it on every emit.
func (b *budgetTracker) exceeded() bool {
	return b.max > 0 && b.committed.Load() >= int64(b.max)
}

// complete records slot's final (possibly truncated) group count and
// advances the contiguous committed frontier.
func (b *budgetTracker) complete(slot, count int) {
	if b.max == 0 {
		return
	}
	b.mu.Lock()
	b.counts[slot] = count
	b.done[slot] = true
	for b.frontier < len(b.done) && b.done[b.frontier] {
		b.committed.Add(int64(b.counts[b.frontier]))
		b.frontier++
	}
	b.mu.Unlock()
}
