package lcm

import (
	"errors"
	"sort"
	"testing"

	"vexus/internal/bitset"
	"vexus/internal/groups"
	"vexus/internal/mining"
	"vexus/internal/rng"
)

func tx(perUser [][]groups.TermID, nTerms int) *mining.Transactions {
	v := groups.NewVocab()
	for i := 0; i < nTerms; i++ {
		v.Intern("t", string(rune('a'+i)))
	}
	return mining.NewTransactions(v, perUser)
}

func TestMineTextbook(t *testing.T) {
	// Transactions over items a=0 b=1 c=2:
	// t0: a b c | t1: a b | t2: a c | t3: a
	trans := tx([][]groups.TermID{
		{0, 1, 2}, {0, 1}, {0, 2}, {0},
	}, 3)
	gs, err := New(mining.Options{MinSupport: 2}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	// Closed frequent (minsup 2): {a}(4), {a,b}(2), {a,c}(2).
	want := map[string]int{"0": 4, "0,1": 2, "0,2": 2}
	if len(gs) != len(want) {
		t.Fatalf("got %d groups: %v", len(gs), describeAll(gs))
	}
	for _, g := range gs {
		sup, ok := want[g.Desc.Key()]
		if !ok {
			t.Fatalf("unexpected closed set %v", g.Desc)
		}
		if g.Size() != sup {
			t.Fatalf("set %v support %d, want %d", g.Desc, g.Size(), sup)
		}
	}
}

func TestMineMinSupportOne(t *testing.T) {
	trans := tx([][]groups.TermID{
		{0, 1, 2}, {0, 1}, {0, 2}, {0},
	}, 3)
	gs, err := New(mining.Options{MinSupport: 1}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	// Adds {a,b,c}(1).
	if len(gs) != 4 {
		t.Fatalf("got %d groups: %v", len(gs), describeAll(gs))
	}
}

func TestMineRootClosure(t *testing.T) {
	// Every user carries term 0 → the root closure {0} is itself a
	// group covering everyone.
	trans := tx([][]groups.TermID{{0, 1}, {0}, {0, 1}}, 2)
	gs, err := New(mining.Options{MinSupport: 2}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	var foundRoot bool
	for _, g := range gs {
		if g.Desc.Key() == "0" && g.Size() == 3 {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatalf("root closure missing: %v", describeAll(gs))
	}
}

func TestMineMaxLen(t *testing.T) {
	trans := tx([][]groups.TermID{
		{0, 1, 2}, {0, 1, 2}, {0, 1}, {2},
	}, 3)
	gs, err := New(mining.Options{MinSupport: 1, MaxLen: 1}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		if len(g.Desc) > 1 {
			t.Fatalf("description %v exceeds MaxLen", g.Desc)
		}
	}
}

func TestMineMaxGroups(t *testing.T) {
	r := rng.New(1)
	perUser := make([][]groups.TermID, 64)
	for u := range perUser {
		for tm := 0; tm < 12; tm++ {
			if r.Bool(0.5) {
				perUser[u] = append(perUser[u], groups.TermID(tm))
			}
		}
	}
	trans := tx(perUser, 12)
	gs, err := New(mining.Options{MinSupport: 1, MaxGroups: 10}).Mine(trans)
	if !errors.Is(err, mining.ErrTooManyGroups) {
		t.Fatalf("err = %v, want ErrTooManyGroups", err)
	}
	if len(gs) == 0 {
		t.Fatal("partial results not returned")
	}
	// The budget is enforced before emitting: never MaxGroups+1.
	if len(gs) != 10 {
		t.Fatalf("returned %d groups, budget is 10", len(gs))
	}
	// The truncated collection is the prefix of the unbounded run.
	all, err := New(mining.Options{MinSupport: 1}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gs {
		if !g.Desc.Equal(all[i].Desc) {
			t.Fatalf("group %d: %v is not the enumeration prefix (%v)", i, g.Desc, all[i].Desc)
		}
	}
}

func TestMineEmpty(t *testing.T) {
	trans := tx(nil, 0)
	gs, err := New(mining.Options{MinSupport: 1}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Fatalf("groups from empty input: %v", describeAll(gs))
	}
}

// TestMineMatchesBruteForce cross-checks LCM against a brute-force
// closed-itemset enumerator on random small universes.
func TestMineMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed)
		nUsers, nTerms := 12+r.Intn(8), 5+r.Intn(3)
		perUser := make([][]groups.TermID, nUsers)
		for u := range perUser {
			for tm := 0; tm < nTerms; tm++ {
				if r.Bool(0.4) {
					perUser[u] = append(perUser[u], groups.TermID(tm))
				}
			}
		}
		trans := tx(perUser, nTerms)
		minSup := 2

		gs, err := New(mining.Options{MinSupport: minSup}).Mine(trans)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, g := range gs {
			got[g.Desc.Key()] = g.Size()
		}

		want := bruteForceClosed(trans, minSup)
		if len(got) != len(want) {
			t.Fatalf("seed %d: got %d closed sets, want %d\ngot: %v\nwant: %v",
				seed, len(got), len(want), got, want)
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Fatalf("seed %d: set %q support %d, want %d", seed, k, got[k], sup)
			}
		}
	}
}

// bruteForceClosed enumerates all itemsets, keeps frequent ones, and
// filters to closed (no proper superset with equal support).
func bruteForceClosed(trans *mining.Transactions, minSup int) map[string]int {
	nTerms := trans.Vocab.Len()
	type fset struct {
		desc    groups.Description
		members *bitset.Set
	}
	var frequent []fset
	for mask := 1; mask < (1 << nTerms); mask++ {
		var d groups.Description
		for i := 0; i < nTerms; i++ {
			if mask&(1<<i) != 0 {
				d = append(d, groups.TermID(i))
			}
		}
		members := trans.MembersOf(d)
		if members.Count() >= minSup {
			frequent = append(frequent, fset{groups.NewDescription(d...), members})
		}
	}
	out := map[string]int{}
	for i, f := range frequent {
		closed := true
		for j, g := range frequent {
			if i == j {
				continue
			}
			if f.desc.Subsumes(g.desc) && len(g.desc) > len(f.desc) &&
				g.members.Count() == f.members.Count() {
				closed = false
				break
			}
		}
		if closed {
			out[f.desc.Key()] = f.members.Count()
		}
	}
	// Include the root closure only if non-empty description; the
	// brute force naturally has no empty set (mask starts at 1), and
	// the full-universe closure appears as a frequent closed set if
	// any term covers everyone.
	return out
}

func TestMineDescriptionsAreClosed(t *testing.T) {
	r := rng.New(99)
	perUser := make([][]groups.TermID, 30)
	for u := range perUser {
		for tm := 0; tm < 8; tm++ {
			if r.Bool(0.35) {
				perUser[u] = append(perUser[u], groups.TermID(tm))
			}
		}
	}
	trans := tx(perUser, 8)
	gs, err := New(mining.Options{MinSupport: 2}).Mine(trans)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, g := range gs {
		// Closure of the member set must equal the description.
		cl := groups.NewDescription(trans.Closure(g.Members)...)
		if !cl.Equal(g.Desc) {
			t.Fatalf("group %v is not closed (closure %v)", g.Desc, cl)
		}
		if seen[g.Desc.Key()] {
			t.Fatalf("duplicate closed set %v", g.Desc)
		}
		seen[g.Desc.Key()] = true
	}
}

func describeAll(gs []*groups.Group) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.Desc.Key()
	}
	sort.Strings(out)
	return out
}
