package mining

import (
	"testing"

	"vexus/internal/bitset"
	"vexus/internal/dataset"
	"vexus/internal/groups"
)

func buildTx(t *testing.T) *Transactions {
	t.Helper()
	v := groups.NewVocab()
	a := v.Intern("g", "a") // 0
	b := v.Intern("g", "b") // 1
	c := v.Intern("c", "x") // 2
	perUser := [][]groups.TermID{
		{a, c},
		{a, c},
		{a},
		{b, c},
		{b},
	}
	return NewTransactions(v, perUser)
}

func TestTransactionsVertical(t *testing.T) {
	tx := buildTx(t)
	if tx.N != 5 {
		t.Fatalf("N = %d", tx.N)
	}
	if got := tx.Support(0); got != 3 {
		t.Fatalf("Support(a) = %d", got)
	}
	if got := tx.Support(2); got != 3 {
		t.Fatalf("Support(c) = %d", got)
	}
}

func TestTransactionsDedupSort(t *testing.T) {
	v := groups.NewVocab()
	a := v.Intern("g", "a")
	b := v.Intern("g", "b")
	tx := NewTransactions(v, [][]groups.TermID{{b, a, b, a}})
	if len(tx.PerUser[0]) != 2 || tx.PerUser[0][0] != a || tx.PerUser[0][1] != b {
		t.Fatalf("PerUser = %v", tx.PerUser[0])
	}
}

func TestSupportOfAndMembers(t *testing.T) {
	tx := buildTx(t)
	d := groups.NewDescription(0, 2) // a ∧ x
	if got := tx.SupportOf(d); got != 2 {
		t.Fatalf("SupportOf = %d", got)
	}
	m := tx.MembersOf(d)
	if !m.Equal(bitset.FromIndices(5, []int{0, 1})) {
		t.Fatalf("MembersOf = %v", m)
	}
	if got := tx.SupportOf(groups.NewDescription()); got != 5 {
		t.Fatalf("empty SupportOf = %d", got)
	}
}

func TestClosure(t *testing.T) {
	tx := buildTx(t)
	// Users {0,1} carry exactly {a, c}.
	m := bitset.FromIndices(5, []int{0, 1})
	cl := tx.Closure(m)
	if !groups.NewDescription(cl...).Equal(groups.NewDescription(0, 2)) {
		t.Fatalf("Closure = %v", cl)
	}
	// Empty member set has empty closure by convention.
	if got := tx.Closure(bitset.New(5)); len(got) != 0 {
		t.Fatalf("Closure(∅) = %v", got)
	}
	// All users share nothing.
	full := bitset.New(5)
	full.Fill()
	if got := tx.Closure(full); len(got) != 0 {
		t.Fatalf("Closure(all) = %v", got)
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}
	norm, err := o.Normalized(10)
	if err != nil {
		t.Fatal(err)
	}
	if norm.MinSupport != 1 {
		t.Fatalf("MinSupport normalized to %d", norm.MinSupport)
	}
	if o.MinSupport != 0 {
		t.Fatalf("Normalized mutated the receiver: MinSupport=%d", o.MinSupport)
	}
	bad := Options{MinSupport: 11}
	if _, err := bad.Normalized(10); err == nil {
		t.Fatal("oversized MinSupport accepted")
	}
	neg := Options{MaxLen: -1}
	if _, err := neg.Normalized(10); err == nil {
		t.Fatal("negative MaxLen accepted")
	}
	if err := (Options{MaxGroups: -1}).Validate(10); err == nil {
		t.Fatal("negative MaxGroups accepted")
	}
}

// sequentialOnly implements Miner without the parallel extension — the
// MineParallel helper must fall back to Mine for it.
type sequentialOnly struct{ called bool }

func (m *sequentialOnly) Mine(t *Transactions) ([]*groups.Group, error) {
	m.called = true
	return nil, nil
}
func (m *sequentialOnly) Name() string { return "sequential-only" }

func TestMineParallelFallback(t *testing.T) {
	tx := buildTx(t)
	m := &sequentialOnly{}
	if _, err := MineParallel(m, tx, ParallelOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !m.called {
		t.Fatal("fallback did not call Mine")
	}
}

func encodeFixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	s := dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Categorical, Values: []string{"f", "m"}},
	)
	b := dataset.NewBuilder(s)
	b.AddUser("u1", map[string]string{"gender": "f"})
	b.AddUser("u2", map[string]string{"gender": "m"})
	b.AddUser("u3", nil) // missing gender
	b.AddAction("u1", "book", 5, 0)
	b.AddAction("u2", "book", 1, 0)
	b.AddAction("u1", "rare", 3, 0)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeDemographicsOnly(t *testing.T) {
	d := encodeFixture(t)
	tx, err := Encode(d, EncodeOptions{Demographics: true})
	if err != nil {
		t.Fatal(err)
	}
	if tx.N != 3 {
		t.Fatalf("N = %d", tx.N)
	}
	if tx.Vocab.Len() != 2 {
		t.Fatalf("vocab = %d terms", tx.Vocab.Len())
	}
	if len(tx.PerUser[2]) != 0 {
		t.Fatalf("u3 terms = %v", tx.PerUser[2])
	}
}

func TestEncodeItemTerms(t *testing.T) {
	d := encodeFixture(t)
	tx, err := Encode(d, EncodeOptions{TopItems: 1, LikeThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	liked := tx.Vocab.Lookup("item:book", "liked")
	disliked := tx.Vocab.Lookup("item:book", "disliked")
	if liked < 0 || disliked < 0 {
		t.Fatalf("item terms missing: vocab=%d", tx.Vocab.Len())
	}
	if tx.Vocab.Lookup("item:rare", "liked") != -1 {
		t.Fatal("non-top item got a term")
	}
	if !tx.Tids[liked].Contains(0) || !tx.Tids[disliked].Contains(1) {
		t.Fatal("like/dislike assignment wrong")
	}
}

func TestEncodeActivity(t *testing.T) {
	d := encodeFixture(t)
	tx, err := Encode(d, EncodeOptions{ActivityLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	terms := tx.Vocab.TermsOfField("activity")
	if len(terms) == 0 {
		t.Fatal("no activity terms")
	}
	// Every user carries exactly one activity term.
	for u := 0; u < tx.N; u++ {
		n := 0
		for _, id := range tx.PerUser[u] {
			if tx.Vocab.Term(id).Field == "activity" {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("user %d has %d activity terms", u, n)
		}
	}
}

func TestEncodeTooManyLevels(t *testing.T) {
	d := encodeFixture(t)
	if _, err := Encode(d, EncodeOptions{ActivityLevels: 99}); err == nil {
		t.Fatal("99 levels accepted")
	}
}

func TestQuantileBoundsTies(t *testing.T) {
	// Heavy ties collapse bounds rather than emitting duplicates.
	bounds := quantileBounds([]int{0, 0, 0, 0, 0, 0, 0, 5}, 4)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly ascending: %v", bounds)
		}
	}
	if levelOf(0, bounds) != 0 {
		t.Fatalf("levelOf(0) = %d", levelOf(0, bounds))
	}
}
