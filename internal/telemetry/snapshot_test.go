package telemetry

import (
	"math"
	"testing"
)

// Snapshot must copy the live instrument exactly, and snapshot-side
// Quantile must agree with Histogram.Quantile bit for bit.
func TestSnapshotMatchesLiveHistogram(t *testing.T) {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}
	r := NewRegistry()
	h := r.Histogram("snap_seconds", "", bounds)
	for i := 0; i < 5000; i++ {
		h.Observe(float64(i%997) / 1000) // 0 .. 0.996, wraps
	}
	h.Observe(3.5) // +Inf bucket
	s := h.Snapshot()
	if s.Count != h.Count() {
		t.Fatalf("snapshot count %d, live %d", s.Count, h.Count())
	}
	if s.Sum != h.Sum() {
		t.Fatalf("snapshot sum %v, live %v", s.Sum, h.Sum())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("q=%v: snapshot %v, live %v", q, got, want)
		}
	}
}

// Merging two snapshots must equal one histogram that saw both
// observation sets — the property the cluster-scale harness relies on
// when it folds per-shard latency histograms into a population view.
func TestMergeEqualsCombinedObservations(t *testing.T) {
	bounds := []float64{0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}
	r := NewRegistry()
	a := r.Histogram("a_seconds", "", bounds)
	b := r.Histogram("b_seconds", "", bounds)
	both := r.Histogram("both_seconds", "", bounds)
	// Two known distributions: a uniform ramp and a heavy head.
	for i := 0; i < 2000; i++ {
		v := float64(i) / 1000 // 0 .. 2
		a.Observe(v)
		both.Observe(v)
	}
	for i := 0; i < 6000; i++ {
		v := 0.003 + float64(i%7)/1000 // clustered in the low buckets
		b.Observe(v)
		both.Observe(v)
	}
	m, err := Merge(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := both.Snapshot()
	if m.Count != want.Count {
		t.Fatalf("merge count %d vs combined %d", m.Count, want.Count)
	}
	// Sums accumulate in different orders (a then b vs interleaved), so
	// equality is up to float associativity, not bit-exact.
	if math.Abs(m.Sum-want.Sum) > 1e-6*math.Abs(want.Sum) {
		t.Fatalf("merge sum %v vs combined %v", m.Sum, want.Sum)
	}
	for i := range m.Buckets {
		if m.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %d, combined %d", i, m.Buckets[i], want.Buckets[i])
		}
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 0.99, 0.999} {
		if got, wantQ := m.Quantile(q), want.Quantile(q); got != wantQ {
			t.Errorf("q=%v: merged %v, combined %v", q, got, wantQ)
		}
	}
}

// Quantiles of a merged snapshot against an analytically known
// distribution: 10k uniform values on (0, 1] must put every quantile
// within one bucket width of the true value.
func TestMergedQuantileKnownDistribution(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	left := NewHistogramSnapshot(bounds)
	right := NewHistogramSnapshot(bounds)
	for i := 1; i <= 10000; i++ {
		v := float64(i) / 10000
		if i%2 == 0 {
			left.Observe(v)
		} else {
			right.Observe(v)
		}
	}
	m, err := Merge(left, right)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got := m.Quantile(q); math.Abs(got-q) > 0.1 {
			t.Errorf("uniform q=%v: got %v, want within one bucket width", q, got)
		}
	}
}

func TestMergeBoundsMismatch(t *testing.T) {
	a := NewHistogramSnapshot([]float64{1, 2, 3})
	b := NewHistogramSnapshot([]float64{1, 2, 4})
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merging mismatched bounds succeeded")
	}
	c := NewHistogramSnapshot([]float64{1, 2})
	if _, err := Merge(a, c); err == nil {
		t.Fatal("merging different bound counts succeeded")
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "", bounds)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	h2 := r.Histogram("rt2_seconds", "", bounds)
	if err := h2.Restore(s); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != h.Count() || h2.Sum() != h.Sum() {
		t.Fatalf("restore drifted: count %d vs %d, sum %v vs %v", h2.Count(), h.Count(), h2.Sum(), h.Sum())
	}
	if h2.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("restored median differs")
	}
}
