package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Cross-shard request tracing. A trace id is minted at the first
// instrumented surface a request crosses (normally the gateway),
// carried in the X-Vexus-Trace header across every proxy hop and
// /internal/cluster/* call — including the three legs of a migration
// (export → import → delete) — and in the request context within a
// process. Span logs key on it, so one grep over two shards' logs
// reconstructs a request's whole cross-process path.

// TraceHeader is the header that carries a request's trace id across
// process boundaries.
const TraceHeader = "X-Vexus-Trace"

type traceKey struct{}

// NewTraceID mints a 16-hex-char random trace id.
func NewTraceID() string {
	var b [8]byte
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// WithTrace returns ctx carrying the trace id.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID extracts the trace id from ctx ("" if none).
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
