package telemetry

import (
	"fmt"
	"sort"
)

// Snapshot-side histogram arithmetic. A live *Histogram is a bundle of
// atomics owned by one registry; cross-registry aggregation (the
// cluster rollup, the loadsim harness merging per-shard latency
// histograms into one population view) needs a plain-value form that
// can be copied, merged, and queried after the fact without touching
// the live instruments again.

// HistogramSnapshot is a point-in-time copy of a histogram: the bucket
// upper bounds, the per-bucket counts (len(Bounds)+1, the implicit
// +Inf bucket last), and the count/sum totals.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Counts are read
// bucket-by-bucket without a global lock — exactly like the exposition
// path — so a snapshot taken under concurrent Observes is a consistent
// *approximation*, and an exact copy once writers are quiesced.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Buckets: make([]uint64, len(h.buckets)),
		Count:   h.count.Load(),
		Sum:     h.sum.load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge returns the snapshot holding a's and b's observations
// combined. Both inputs must share identical bucket bounds — merging
// differently bucketed histograms has no well-defined result, so a
// mismatch is an error, not a silent re-bucketing.
func Merge(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Bounds) != len(b.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with %d vs %d bounds", len(a.Bounds), len(b.Bounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("telemetry: merging histograms with mismatched bound %d (%g vs %g)", i, a.Bounds[i], b.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Bounds:  append([]float64(nil), a.Bounds...),
		Buckets: make([]uint64, len(a.Buckets)),
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
	}
	for i := range a.Buckets {
		out.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	return out, nil
}

// Observe adds one value to the snapshot — the offline counterpart of
// Histogram.Observe, for harnesses that accumulate directly into the
// value form.
func (s *HistogramSnapshot) Observe(v float64) {
	i := sort.SearchFloat64s(s.Bounds, v)
	s.Buckets[i]++
	s.Count++
	s.Sum += v
}

// NewHistogramSnapshot returns an empty snapshot over the given bounds
// (which must be ascending, as for Registry.Histogram).
func NewHistogramSnapshot(bounds []float64) HistogramSnapshot {
	return HistogramSnapshot{
		Bounds:  append([]float64(nil), bounds...),
		Buckets: make([]uint64, len(bounds)+1),
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket holding it — the exact algorithm of
// Histogram.Quantile, so a merged snapshot answers the same number the
// live instrument would have, had it seen every observation itself.
// Observations in the +Inf bucket clamp to the largest finite bound;
// an empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for i := range s.Buckets {
		n := float64(s.Buckets[i])
		if cum+n >= target && n > 0 {
			if i == len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1] // +Inf bucket clamps
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			return lo + (target-cum)/n*(s.Bounds[i]-lo)
		}
		cum += n
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Restore loads a snapshot back into a live histogram, replacing its
// counts. Only meaningful while no writer is concurrently observing;
// tests use it to round-trip snapshots through the exposition path.
func (h *Histogram) Restore(s HistogramSnapshot) error {
	if len(s.Bounds) != len(h.bounds) || len(s.Buckets) != len(h.buckets) {
		return fmt.Errorf("telemetry: restoring snapshot with %d bounds into histogram with %d", len(s.Bounds), len(h.bounds))
	}
	for i := range h.buckets {
		h.buckets[i].Store(s.Buckets[i])
	}
	h.count.Store(s.Count)
	h.sum.bits.Store(floatBits(s.Sum))
	return nil
}
