package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the hand-rolled Prometheus text-exposition encoder
// (format version 0.0.4): # HELP / # TYPE headers, one line per
// series, histograms flattened to cumulative `_bucket{le=...}` plus
// `_sum` and `_count`. Families and children are emitted in sorted
// order so scrapes are byte-stable for a fixed metric state — the same
// determinism discipline as everything else in this repo, and what
// lets CI assert on exact series names.

// WritePrometheus encodes every registered family to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r.off() {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	typ := "counter"
	switch f.kind {
	case kindGauge, kindGaugeFunc, kindGaugeVecFunc:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')

	if f.kind == kindGaugeFunc {
		f.mu.RLock()
		fn := f.fn
		f.mu.RUnlock()
		v := 0.0
		if fn != nil {
			v = fn()
		}
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(v))
		b.WriteByte('\n')
		return
	}
	if f.kind == kindGaugeVecFunc {
		for _, e := range f.evalVec() {
			writeSeries(b, f.name, labelPairs(f.labels, e.key), formatFloat(e.v))
		}
		return
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()

	for i, key := range keys {
		labels := labelPairs(f.labels, key)
		switch c := children[i].(type) {
		case *Counter:
			writeSeries(b, f.name, labels, formatFloat(float64(c.Value())))
		case *Gauge:
			writeSeries(b, f.name, labels, strconv.FormatInt(c.Value(), 10))
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range c.bounds {
				cum += c.buckets[bi].Load()
				writeSeries(b, f.name+"_bucket", labels+sep(labels)+`le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum, 10))
			}
			writeSeries(b, f.name+"_bucket", labels+sep(labels)+`le="+Inf"`, strconv.FormatUint(c.Count(), 10))
			writeSeries(b, f.name+"_sum", labels, formatFloat(c.Sum()))
			writeSeries(b, f.name+"_count", labels, strconv.FormatUint(c.Count(), 10))
		}
	}
}

// evalVec evaluates a kindGaugeVecFunc family to sorted-key order: a
// map iteration would make scrapes byte-unstable, which the exposition
// format promises not to be.
func (f *family) evalVec() []vecEntry {
	f.mu.RLock()
	fn := f.vfn
	f.mu.RUnlock()
	if fn == nil {
		return nil
	}
	vals := fn()
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]vecEntry, len(keys))
	for i, k := range keys {
		out[i] = vecEntry{key: k, v: vals[k]}
	}
	return out
}

type vecEntry struct {
	key string
	v   float64
}

func sep(labels string) string {
	if labels == "" {
		return ""
	}
	return ","
}

func writeSeries(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// labelPairs renders `k1="v1",k2="v2"` from the family's label names
// and a child key (values joined by labelSep). Empty for unlabeled.
func labelPairs(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		if i < len(values) {
			b.WriteString(escapeLabel(values[i]))
		}
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: integers
// without a trailing .0, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Snapshot flattens the registry to series-name → value, histograms
// expanded to their _bucket/_sum/_count series — the JSON-friendly
// form behind /internal/cluster/metrics and the gateway's cluster
// rollup, where shard values are summed by identical series name.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r.off() {
		return out
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		if f.kind == kindGaugeFunc {
			f.mu.RLock()
			fn := f.fn
			f.mu.RUnlock()
			if fn != nil {
				out[f.name] = fn()
			} else {
				out[f.name] = 0
			}
			continue
		}
		if f.kind == kindGaugeVecFunc {
			for _, e := range f.evalVec() {
				out[f.name+"{"+labelPairs(f.labels, e.key)+"}"] = e.v
			}
			continue
		}
		f.mu.RLock()
		for key, child := range f.children {
			series := f.name
			if labels := labelPairs(f.labels, key); labels != "" {
				series += "{" + labels + "}"
			}
			switch c := child.(type) {
			case *Counter:
				out[series] = float64(c.Value())
			case *Gauge:
				out[series] = float64(c.Value())
			case *Histogram:
				labels := labelPairs(f.labels, key)
				cum := uint64(0)
				for bi, bound := range c.bounds {
					cum += c.buckets[bi].Load()
					out[f.name+"_bucket{"+labels+sep(labels)+`le="`+formatFloat(bound)+`"}`] = float64(cum)
				}
				out[f.name+"_bucket{"+labels+sep(labels)+`le="+Inf"}`] = float64(c.Count())
				sumSeries, countSeries := f.name+"_sum", f.name+"_count"
				if labels != "" {
					sumSeries += "{" + labels + "}"
					countSeries += "{" + labels + "}"
				}
				out[sumSeries] = c.Sum()
				out[countSeries] = float64(c.Count())
			}
		}
		f.mu.RUnlock()
	}
	return out
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

func itoa(n int) string { return fmt.Sprintf("%d", n) }
