package telemetry

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics instruments a mux's handlers with per-route/status
// request counts, per-route latency histograms, trace-id propagation,
// and Debug-level span logs. Routes are labeled by the explicit
// pattern string passed to Wrap — not derived from the request — so
// cardinality is bounded by the route table, and the label is stable
// regardless of Go version (http.Request.Pattern needs go1.23; this
// repo pins go1.22).
type HTTPMetrics struct {
	requests *CounterVec
	seconds  *HistogramVec
	log      *slog.Logger
	off      bool
}

// NewHTTPMetrics registers vexus_<ns>_requests_total{route,status} and
// vexus_<ns>_request_seconds{route} on reg. A disabled reg with a nil
// logger yields a pass-through whose Wrap returns handlers unchanged —
// the true zero-overhead baseline the p6 benchmark compares against.
func NewHTTPMetrics(reg *Registry, ns string, logger *slog.Logger) *HTTPMetrics {
	m := &HTTPMetrics{
		requests: reg.CounterVec("vexus_"+ns+"_requests_total", "HTTP requests by route and status.", "route", "status"),
		seconds:  reg.HistogramVec("vexus_"+ns+"_request_seconds", "HTTP request latency in seconds by route.", DefBuckets, "route"),
		log:      logger,
	}
	m.off = reg.off() && (logger == nil || !logger.Enabled(context.Background(), slog.LevelDebug))
	return m
}

// Wrap instruments h under the given route label. The returned handler
// adopts the caller's X-Vexus-Trace id or mints one, reflects it on
// the response, re-sets it on the request header (so a proxying
// handler forwards it for free) and in the context (so in-process
// spans can key on it), then records count + latency and a span log.
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	if m == nil || m.off {
		return h
	}
	requests, seconds := m.requests, m.seconds
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get(TraceHeader)
		if trace == "" {
			trace = NewTraceID()
			r.Header.Set(TraceHeader, trace)
		}
		w.Header().Set(TraceHeader, trace)
		r = r.WithContext(WithTrace(r.Context(), trace))

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		requests.With(route, strconv.Itoa(sw.status)).Inc()
		seconds.With(route).Observe(elapsed.Seconds())
		if m.log != nil && m.log.Enabled(r.Context(), slog.LevelDebug) {
			m.log.Debug("request",
				"span", "route",
				"trace", trace,
				"route", route,
				"status", sw.status,
				"ms", float64(elapsed.Microseconds())/1000,
			)
		}
	})
}

// statusWriter records the status code while passing Flush through —
// the SSE endpoints stream through this wrapper, and losing
// http.Flusher would silently buffer every event.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
