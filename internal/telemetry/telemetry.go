// Package telemetry is the dependency-free observability layer behind
// every VEXUS serving surface: atomic counters, gauges and fixed-bucket
// histograms collected in a Registry, a hand-rolled Prometheus
// text-exposition encoder (expose.go — the same stdlib-only discipline
// as internal/store's snapshot codec), HTTP middleware that records
// per-route/status request metrics and propagates trace ids (http.go),
// and the X-Vexus-Trace request-tracing helpers (trace.go).
//
// Instruments are nil-receiver safe by design: a disabled registry
// (Disabled, or a nil *Registry) yields nil instruments whose methods
// are no-ops, so instrumented code never branches on an "is telemetry
// on" flag — it just calls Inc/Observe and the nil receiver makes the
// call free. That is what keeps the measured overhead of full
// instrumentation on the action hot path under the 2% budget
// (BENCH_obs_overhead.json) while letting cmd/vexus-bench compare
// against telemetry.Disabled exactly.
//
// The hot-path contract: Counter.Inc / Gauge.Add / Histogram.Observe
// are single atomic operations (Observe is three: bucket, count, sum);
// vector lookups (CounterVec.With) take one RLock-guarded map read.
// Nothing on the observe path allocates after the first use of a label
// combination.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The nil Counter (from a
// disabled registry) is a valid no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer value that can go up and down. The nil Gauge is
// a valid no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observations are counted
// into the first bucket whose upper bound is >= the value (Prometheus
// `le` semantics), with an implicit +Inf bucket past the last bound.
// The nil Histogram is a valid no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomicFloat
}

// DefBuckets covers interactive request/action latencies in seconds,
// 0.5ms to 10s — the default for every HTTP and action histogram.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// SlowBuckets covers offline work (engine builds, snapshot loads,
// ingest rebuilds), 5ms to 2 minutes.
var SlowBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v; past the end = the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate a Prometheus histogram_quantile over these buckets yields.
// The error is bounded by the width of that bucket; observations in
// the +Inf bucket clamp to the last finite bound. Returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= target && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket clamps
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (target-cum)/n*(h.bounds[i]-lo)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// atomicFloat is an atomically updated float64 (CAS on the bit
// pattern) — the histogram sum accumulator.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := floatBits(floatFrom(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return floatFrom(f.bits.Load()) }

// metricKind discriminates what a family holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindGaugeVecFunc
	kindHistogram
)

// family is one metric name: its metadata plus every labeled child.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64

	mu       sync.RWMutex
	children map[string]any            // joined label values → *Counter/*Gauge/*Histogram
	fn       func() float64            // kindGaugeFunc
	vfn      func() map[string]float64 // kindGaugeVecFunc: label value → gauge
}

// labelSep joins label values into a child key; 0xff cannot appear in
// UTF-8 label values, so the join is unambiguous.
const labelSep = "\xff"

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic("telemetry: " + f.name + ": got " + itoa(len(values)) + " label values, want " + itoa(len(f.labels)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make()
	f.children[key] = c
	return c
}

// Registry owns a set of metric families. The zero/nil Registry and
// Disabled are valid no-op sinks: every instrument they yield is nil.
type Registry struct {
	disabled bool

	mu       sync.RWMutex
	families map[string]*family
}

// Disabled is the no-op registry: every instrument it yields is nil
// (whose methods do nothing), and its exposition is empty. It is how
// deployments — and the p6 overhead benchmark — turn instrumentation
// off without touching call sites.
var Disabled = &Registry{disabled: true}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) off() bool { return r == nil || r.disabled }

// family registers (or returns the already registered) family under
// name. Registration is idempotent so layers sharing a registry can
// each declare the instruments they use; a kind or label mismatch on
// the same name panics — that is a programming error, not a runtime
// condition.
func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic("telemetry: conflicting registration of " + name)
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		bounds:   bounds,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter registers (idempotently) and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r.off() {
		return nil
	}
	f := r.family(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return new(Counter) }).(*Counter)
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r.off() {
		return nil
	}
	f := r.family(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge evaluated at exposition time — the shape
// for values that already live somewhere (resident engines, live
// sessions) and would be a liability to mirror on every change. The
// first registration of a name wins.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r.off() {
		return
	}
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	if f.fn == nil {
		f.fn = fn
	}
	f.mu.Unlock()
}

// GaugeVecFunc registers a one-label gauge family evaluated at
// exposition time: fn returns label value → gauge for every child the
// family should currently expose. The labeled sibling of GaugeFunc,
// for state that already lives somewhere as a keyed breakdown — the
// membership directory's members-by-state counts are the motivating
// case. The first registration of a name wins.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	if r.off() {
		return
	}
	f := r.family(name, help, kindGaugeVecFunc, []string{label}, nil)
	f.mu.Lock()
	if f.vfn == nil {
		f.vfn = fn
	}
	f.mu.Unlock()
}

// Histogram registers and returns an unlabeled histogram over bounds
// (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r.off() {
		return nil
	}
	f := r.family(name, help, kindHistogram, nil, bounds)
	return f.child(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterVec is a counter family with labels; With resolves one child.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r.off() {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// With resolves the child counter for the given label values (in
// declaration order).
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return new(Counter) }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r.off() {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// With resolves the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return new(Gauge) }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family over bounds (nil =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r.off() {
		return nil
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, bounds)}
}

// With resolves the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}
