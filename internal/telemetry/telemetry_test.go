package telemetry

import (
	"context"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Bucket boundaries follow Prometheus le semantics: a value equal to a
// bound lands in that bound's bucket, a value just above it in the
// next one.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "", []float64{0.1, 0.5, 1})
	// value → expected bucket index (0:le=0.1, 1:le=0.5, 2:le=1, 3:+Inf)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{0.05, 0},
		{0.1, 0}, // on the bound: le is inclusive
		{0.100001, 1},
		{0.5, 1},
		{0.75, 2},
		{1, 2},
		{1.01, 3},
		{1000, 3},
	}
	for _, c := range cases {
		before := make([]uint64, len(h.buckets))
		for i := range h.buckets {
			before[i] = h.buckets[i].Load()
		}
		h.Observe(c.v)
		for i := range h.buckets {
			delta := h.buckets[i].Load() - before[i]
			if i == c.want && delta != 1 {
				t.Errorf("Observe(%v): bucket %d not incremented", c.v, i)
			}
			if i != c.want && delta != 0 {
				t.Errorf("Observe(%v): bucket %d incremented, want only %d", c.v, i, c.want)
			}
		}
	}
	if h.Count() != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	wantSum := 0.0
	for _, c := range cases {
		wantSum += c.v
	}
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// Quantile estimation against known distributions: the interpolated
// estimate must land within the width of the bucket containing the
// true quantile.
func TestHistogramQuantiles(t *testing.T) {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

	t.Run("uniform", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("u_seconds", "", bounds)
		rng := rand.New(rand.NewSource(42))
		const n = 200000
		for i := 0; i < n; i++ {
			h.Observe(rng.Float64()) // uniform on [0,1)
		}
		// Uniform[0,1): the true q-quantile is q itself, and linear
		// interpolation is exact up to sampling noise (the true
		// quantiles sit on bucket edges, so a bucket-membership check
		// would flap — the error bound is the meaningful assertion).
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got := h.Quantile(q)
			if math.Abs(got-q) > 0.02 {
				t.Errorf("q=%v: got %v, interpolation error too large", q, got)
			}
		}
	})

	t.Run("exponential", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("e_seconds", "", bounds)
		rng := rand.New(rand.NewSource(7))
		const n, mean = 200000, 0.02
		for i := 0; i < n; i++ {
			h.Observe(rng.ExpFloat64() * mean)
		}
		// Exponential(mean): true q-quantile is -mean·ln(1-q).
		for _, q := range []float64{0.5, 0.99, 0.999} {
			truth := -mean * math.Log(1-q)
			got := h.Quantile(q)
			lo, hi := bucketSpan(bounds, truth)
			if got < lo || got > hi {
				t.Errorf("q=%v: got %v, true %v, want within bucket [%v,%v]", q, got, truth, lo, hi)
			}
		}
	})

	t.Run("constant", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("c_seconds", "", bounds)
		for i := 0; i < 1000; i++ {
			h.Observe(0.003)
		}
		// Every observation is in the le=0.005 bucket; all quantiles land
		// inside (0.0025, 0.005].
		for _, q := range []float64{0.5, 0.99, 0.999} {
			got := h.Quantile(q)
			if got <= 0.0025 || got > 0.005 {
				t.Errorf("q=%v: got %v, want in (0.0025, 0.005]", q, got)
			}
		}
	})

	t.Run("empty-and-overflow", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("o_seconds", "", bounds)
		if got := h.Quantile(0.5); got != 0 {
			t.Errorf("empty histogram quantile = %v, want 0", got)
		}
		h.Observe(50) // +Inf bucket
		if got := h.Quantile(0.99); got != bounds[len(bounds)-1] {
			t.Errorf("+Inf-bucket quantile = %v, want clamp to %v", got, bounds[len(bounds)-1])
		}
	})
}

// bucketSpan returns the (lo, hi] bucket that contains v.
func bucketSpan(bounds []float64, v float64) (float64, float64) {
	lo := 0.0
	for _, b := range bounds {
		if v <= b {
			return lo, b
		}
		lo = b
	}
	return lo, math.Inf(1)
}

// Race-clean concurrent increments: exact totals under -race with
// goroutines hammering shared and per-goroutine label children.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	vec := r.CounterVec("labeled_total", "", "worker")
	h := r.Histogram("obs_seconds", "", DefBuckets)

	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := vec.With(string(rune('a' + w%4)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				mine.Inc()
				h.Observe(0.001)
				// Exposition races with writes — must be clean too.
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	sum := uint64(0)
	for _, l := range []string{"a", "b", "c", "d"} {
		sum += vec.With(l).Value()
	}
	if sum != workers*perWorker {
		t.Fatalf("vec sum = %d, want %d", sum, workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

// The exposition must be valid Prometheus text format: HELP/TYPE
// headers, sorted series, cumulative buckets, escaped labels.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("vexus_a_total", "Counts a.").Add(3)
	r.Gauge("vexus_g", "A gauge.").Set(-2)
	r.GaugeFunc("vexus_fn", "Computed.", func() float64 { return 7 })
	v := r.CounterVec("vexus_http_requests_total", "Requests.", "route", "status")
	v.With("/api/v1/sessions", "201").Inc()
	v.With("/api/v1/sessions", "201").Inc()
	v.With(`weird"route\n`, "200").Inc()
	h := r.Histogram("vexus_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP vexus_a_total Counts a.\n# TYPE vexus_a_total counter\nvexus_a_total 3\n",
		"# TYPE vexus_g gauge\nvexus_g -2\n",
		"# TYPE vexus_fn gauge\nvexus_fn 7\n",
		`vexus_http_requests_total{route="/api/v1/sessions",status="201"} 2`,
		`vexus_http_requests_total{route="weird\"route\\n",status="200"} 1`,
		"# TYPE vexus_lat_seconds histogram",
		`vexus_lat_seconds_bucket{le="0.1"} 1`,
		`vexus_lat_seconds_bucket{le="1"} 2`, // cumulative
		`vexus_lat_seconds_bucket{le="+Inf"} 3`,
		// Same addition order as the observes, so exact equality holds.
		"vexus_lat_seconds_sum " + formatFloat(0.05+0.5+5),
		"vexus_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, out)
		}
	}

	// Families must appear in sorted order for byte-stable scrapes.
	if strings.Index(out, "vexus_a_total") > strings.Index(out, "vexus_g") {
		t.Error("families not sorted")
	}

	// And the handler must declare the text-format content type.
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if rec.Body.String() != out {
		t.Error("handler output differs from WritePrometheus")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("vexus_a_total", "").Add(3)
	h := r.Histogram("vexus_lat_seconds", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	s := r.Snapshot()
	for series, want := range map[string]float64{
		"vexus_a_total":                       3,
		`vexus_lat_seconds_bucket{le="0.1"}`:  1,
		`vexus_lat_seconds_bucket{le="1"}`:    1,
		`vexus_lat_seconds_bucket{le="+Inf"}`: 2,
		"vexus_lat_seconds_count":             2,
		"vexus_lat_seconds_sum":               5.05,
	} {
		if got := s[series]; math.Abs(got-want) > 1e-9 {
			t.Errorf("snapshot[%q] = %v, want %v", series, got, want)
		}
	}
}

// Disabled and nil registries hand out nil instruments whose methods
// are no-ops — instrumented code must never need a nil check.
func TestDisabledRegistry(t *testing.T) {
	for _, r := range []*Registry{Disabled, nil} {
		c := r.Counter("x_total", "")
		if c != nil {
			t.Fatal("disabled registry returned a live counter")
		}
		c.Inc()
		c.Add(5)
		if c.Value() != 0 {
			t.Fatal("nil counter accumulated")
		}
		g := r.Gauge("g", "")
		g.Set(3)
		g.Inc()
		if g.Value() != 0 {
			t.Fatal("nil gauge accumulated")
		}
		h := r.Histogram("h_seconds", "", nil)
		h.Observe(1)
		if h.Count() != 0 || h.Quantile(0.5) != 0 {
			t.Fatal("nil histogram accumulated")
		}
		vec := r.CounterVec("v_total", "", "l")
		vec.With("a").Inc()
		hv := r.HistogramVec("hv_seconds", "", nil, "l")
		hv.With("a").Observe(1)
		gv := r.GaugeVec("gv", "", "l")
		gv.With("a").Set(2)
		r.GaugeFunc("fn", "", func() float64 { return 1 })
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
			t.Fatalf("disabled exposition: err=%v len=%d", err, b.Len())
		}
		if len(r.Snapshot()) != 0 {
			t.Fatal("disabled snapshot not empty")
		}
	}
}

// Registration is idempotent: two layers asking for the same family
// share the same underlying instrument.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "help")
	b := r.Counter("shared_total", "other help ignored")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments not shared")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting kind did not panic")
		}
	}()
	r.Gauge("shared_total", "")
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatal("trace ids collide")
	}
	ctx := WithTrace(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID = %q, want %q", got, a)
	}
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("TraceID on bare ctx = %q, want empty", got)
	}
}
