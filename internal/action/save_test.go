package action

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// walk drives a trail that exercises every lossy spot of the v1
// format — a backtrack mid-trail, a user unlearn (v1 has no field for
// it), and a trailing open focus view with a brush (v1 cannot
// represent STATS state at all) — and returns the external id of the
// unlearned user.
func walk(t *testing.T, s *Session) string {
	t.Helper()
	eng := s.Sess.Engine()
	attr := eng.Data.Schema.Attrs[0].Name
	val := eng.Data.Schema.Attrs[0].Values[0]
	mustApply := func(a Action) {
		t.Helper()
		if _, err := Apply(s, a); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
	}
	mustApply(Action{Op: Start})
	first := s.Sess.Shown()[0]
	mustApply(Action{Op: Explore, Group: first})
	mustApply(Action{Op: Explore, Group: s.Sess.Shown()[1]})
	mustApply(Action{Op: Backtrack, Step: 1})
	mustApply(Action{Op: Explore, Group: s.Sess.Shown()[0]})
	// Unlearn a member of the first explored group: its mass was
	// reinforced, so only the pin keeps it at zero from here on.
	unlearned := eng.Data.Users[eng.Space.Group(first).Members.Indices()[0]].ID
	mustApply(Action{Op: UnlearnUser, User: unlearned})
	mustApply(Action{Op: BookmarkGroup, Group: s.Sess.Shown()[0]})
	mustApply(Action{Op: BookmarkUser, User: eng.Data.Users[5].ID})
	mustApply(Action{Op: Focus, Group: s.Sess.Shown()[0]})
	mustApply(Action{Op: Brush, Attr: attr, Values: []string{val}})
	return unlearned
}

// signature captures the externally observable end state of a session.
func signature(t *testing.T, s *Session) string {
	t.Helper()
	st := captureFull(s)
	raw, err := json.Marshal(struct {
		Shown   []int
		Focal   int
		Context []string
		MemoG   []int
		MemoU   []string
		History int
	}{st.shown, st.focal, st.context, st.memoG, st.memoU, st.history})
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestSaveLoadV2RoundTrip(t *testing.T) {
	eng := testEngine(t)
	s := New(eng, detCfg())
	walk(t, s)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"version": 2`) {
		t.Fatalf("save is not v2:\n%s", buf.String())
	}

	restored := New(eng, detCfg())
	if err := restored.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := signature(t, restored), signature(t, s); got != want {
		t.Fatalf("v2 replay diverged:\n got %s\nwant %s", got, want)
	}
	if len(restored.Log) != len(s.Log) {
		t.Fatalf("restored log %d actions, saved %d", len(restored.Log), len(s.Log))
	}
	// The focus view (with its brush) is part of the trail: v2 restores
	// it, selection count included.
	if restored.Focus == nil || s.Focus == nil {
		t.Fatal("focus view not restored")
	}
	if restored.Focus.SelectedCount() != s.Focus.SelectedCount() {
		t.Fatalf("brush selection %d restored, want %d",
			restored.Focus.SelectedCount(), s.Focus.SelectedCount())
	}
}

// TestV2PreservesWhereV1Drops is the satellite regression for the
// lossy v1 format: the same trail saved through core's v1 Save has no
// representation for unlearned users or the open focus view's brush,
// so its replay diverges from the original session — while the v2
// trail replays exactly.
func TestV2PreservesWhereV1Drops(t *testing.T) {
	eng := testEngine(t)
	s := New(eng, detCfg())
	unlearned := walk(t, s)

	// v1 via core.Session.Save (click-only).
	var v1 bytes.Buffer
	if err := s.Sess.Save(&v1); err != nil {
		t.Fatal(err)
	}
	v1Restored := New(eng, detCfg())
	if err := v1Restored.Load(bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatal(err)
	}

	// v2 via the action layer.
	var v2 bytes.Buffer
	if err := s.Save(&v2); err != nil {
		t.Fatal(err)
	}
	v2Restored := New(eng, detCfg())
	if err := v2Restored.Load(bytes.NewReader(v2.Bytes())); err != nil {
		t.Fatal(err)
	}

	want := signature(t, s)
	if got := signature(t, v2Restored); got != want {
		t.Fatalf("v2 did not reproduce the trail:\n got %s\nwant %s", got, want)
	}
	if v2Restored.Focus == nil || v2Restored.Focus.SelectedCount() != s.Focus.SelectedCount() {
		t.Fatal("v2 did not restore the brushed focus view")
	}

	// v1 cannot represent the open focus view or its brush.
	if v1Restored.Focus != nil {
		t.Fatal("v1 replay restored a focus view it cannot represent")
	}
	// v1 has no field for unlearned users: the replay silently
	// re-learns a user the explorer explicitly removed.
	u := eng.Data.UserIndex(unlearned)
	if got := s.Sess.Feedback().UserScore(u); got != 0 {
		t.Fatalf("original session still scores unlearned user %q at %v", unlearned, got)
	}
	if got := v2Restored.Sess.Feedback().UserScore(u); got != 0 {
		t.Fatalf("v2 replay re-learned unlearned user %q (%v)", unlearned, got)
	}
	if got := v1Restored.Sess.Feedback().UserScore(u); got == 0 {
		t.Fatalf("v1 replay kept user %q at zero — the lossy-format regression no longer demonstrates anything", unlearned)
	}
}

func TestLoadV1Compat(t *testing.T) {
	eng := testEngine(t)
	// A click-only trail: v1 represents it faithfully, so the action
	// loader must reproduce it exactly from the v1 file.
	s := New(eng, detCfg())
	mustApply := func(a Action) {
		t.Helper()
		if _, err := Apply(s, a); err != nil {
			t.Fatalf("%v: %v", a, err)
		}
	}
	mustApply(Action{Op: Start})
	mustApply(Action{Op: Unlearn, Field: "gender", Value: "male"})
	mustApply(Action{Op: Explore, Group: s.Sess.Shown()[0]})
	mustApply(Action{Op: Explore, Group: s.Sess.Shown()[1]})
	mustApply(Action{Op: BookmarkGroup, Group: s.Sess.Shown()[0]})
	mustApply(Action{Op: BookmarkUser, User: eng.Data.Users[3].ID})

	var v1 bytes.Buffer
	if err := s.Sess.Save(&v1); err != nil {
		t.Fatal(err)
	}
	restored := New(eng, detCfg())
	if err := restored.Load(bytes.NewReader(v1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := signature(t, restored), signature(t, s); got != want {
		t.Fatalf("v1 compat replay diverged:\n got %s\nwant %s", got, want)
	}
	// Re-saving after a v1 load writes v2.
	var resaved bytes.Buffer
	if err := restored.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resaved.String(), `"version": 2`) {
		t.Fatal("re-save after v1 load is not v2")
	}
}

func TestLoadRejects(t *testing.T) {
	s := newTestSession(t)
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"unknown version", `{"version":9}`},
		{"v2 group mismatch", `{"version":2,"miner":"lcm","numGroups":1,"actions":[]}`},
		{"v1 group mismatch", `{"version":1,"numGroups":1}`},
		{"v2 bad action", `{"version":2,"miner":"lcm","numGroups":` +
			itoa(s.Sess.Engine().Space.Len()) + `,"actions":[{"op":"explore"}]}`},
		{"v2 failing action", `{"version":2,"miner":"lcm","numGroups":` +
			itoa(s.Sess.Engine().Space.Len()) + `,"actions":[{"op":"bookmarkUser","user":"ghost"}]}`},
		{"v2 miner mismatch", `{"version":2,"miner":"ouija","numGroups":` +
			itoa(s.Sess.Engine().Space.Len()) + `,"actions":[]}`},
		{"v1 malformed term", `{"version":1,"numGroups":` +
			itoa(s.Sess.Engine().Space.Len()) + `,"unlearnedTerms":["no-equals"]}`},
	}
	for _, c := range cases {
		if err := s.Load(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func itoa(n int) string {
	raw, _ := json.Marshal(n)
	return string(raw)
}
