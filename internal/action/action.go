// Package action is the typed, versioned vocabulary of VEXUS
// exploration interactions (§II-B) and the single dispatcher every
// frontend routes through: the HTTP server (legacy /api/* shims and the
// /api/v1 batch endpoint), session persistence (the SAVE module's v2
// trail format), the vexus CLI's -script replay, and the synthetic
// explorers of internal/simulate all mutate a session exclusively via
// Apply. One code path means one behavior: a simulated campaign, a
// replayed save file and a live explorer clicking in the browser
// exercise byte-identical state transitions.
//
// An Action is pure data — an operation kind plus the operands that
// kind takes. The JSON form is one object per action with an "op"
// discriminator; decoding is strict in both directions: unknown fields
// are rejected (DisallowUnknownFields), and so are known fields on an
// op that does not take them, so a misspelled or misplaced operand can
// never be silently dropped from a stored trail.
//
// Apply executes one action against a Session (a core.Session plus the
// open STATS focus view) and reports a Result: the optimizer metrics
// when the action ran a selection, and a Diff of everything the action
// changed — shown groups added/removed, focal change, CONTEXT and MEMO
// deltas, and the session's mutation counter — computed against the
// pre-action state. Diffs are what let the server stream changes
// instead of full state snapshots, and the mutation counter is the
// number the /api/state ETag derives from.
package action

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Kind discriminates the action union on the wire ("op").
type Kind string

// The complete exploration vocabulary. Every interactive capability of
// a session is one of these; anything not expressible here is not a
// session mutation.
const (
	// Start resets the session to the initial display (k largest
	// groups).
	Start Kind = "start"
	// StartFrom seeds the display with explicit group ids.
	StartFrom Kind = "startFrom"
	// Explore clicks a shown group: reinforce feedback, run the greedy
	// optimizer, replace the display.
	Explore Kind = "explore"
	// Backtrack rewinds to a HISTORY step, discarding later ones.
	Backtrack Kind = "backtrack"
	// Focus opens the STATS module (crossfilter histograms + LDA
	// projection) on a group.
	Focus Kind = "focus"
	// Brush filters the focused group's members to the given values of
	// an attribute; no values clears the attribute's brush.
	Brush Kind = "brush"
	// Unlearn deletes a demographic term from the feedback profile.
	Unlearn Kind = "unlearn"
	// UnlearnUser deletes a user (by external id) from the profile.
	UnlearnUser Kind = "unlearnUser"
	// BookmarkGroup saves a group to MEMO.
	BookmarkGroup Kind = "bookmarkGroup"
	// BookmarkUser saves a user (by external id) to MEMO.
	BookmarkUser Kind = "bookmarkUser"
)

// Action is one exploration interaction: the operation and the operands
// it takes. Only the fields of the given Op are meaningful; the JSON
// codec enforces that no others are present.
type Action struct {
	Op Kind
	// Group is the group id operand of Explore, Focus and
	// BookmarkGroup.
	Group int
	// Groups seeds StartFrom.
	Groups []int
	// Step is the Backtrack history index (0 = initial display).
	Step int
	// Class selects the LDA class attribute for Focus ("" = first
	// schema attribute).
	Class string
	// Attr names the brushed attribute.
	Attr string
	// Values are the brush values kept; empty clears the brush.
	Values []string
	// Field and Value name the unlearned demographic term.
	Field string
	Value string
	// User is the external user id of UnlearnUser and BookmarkUser.
	User string
}

// actionJSON is the wire shape: pointers distinguish "absent" from
// zero, which is what lets the decoder reject operands on ops that do
// not take them and require the ones that do.
type actionJSON struct {
	Op     Kind     `json:"op"`
	Group  *int     `json:"group,omitempty"`
	Groups []int    `json:"groups,omitempty"`
	Step   *int     `json:"step,omitempty"`
	Class  *string  `json:"class,omitempty"`
	Attr   *string  `json:"attr,omitempty"`
	Values []string `json:"values,omitempty"`
	Field  *string  `json:"field,omitempty"`
	Value  *string  `json:"value,omitempty"`
	User   *string  `json:"user,omitempty"`
}

// fieldSpec declares which operands an op requires and which it merely
// allows; everything else is rejected.
type fieldSpec struct {
	required []string
	optional []string
}

var opFields = map[Kind]fieldSpec{
	Start:         {},
	StartFrom:     {required: []string{"groups"}},
	Explore:       {required: []string{"group"}},
	Backtrack:     {required: []string{"step"}},
	Focus:         {required: []string{"group"}, optional: []string{"class"}},
	Brush:         {required: []string{"attr"}, optional: []string{"values"}},
	Unlearn:       {required: []string{"field", "value"}},
	UnlearnUser:   {required: []string{"user"}},
	BookmarkGroup: {required: []string{"group"}},
	BookmarkUser:  {required: []string{"user"}},
}

// Valid reports whether k is a known operation kind.
func (k Kind) Valid() bool {
	_, ok := opFields[k]
	return ok
}

// MarshalJSON emits exactly the fields the op takes (optional operands
// only when non-zero), so stored trails carry no noise fields and
// always re-decode under the strict rules.
func (a Action) MarshalJSON() ([]byte, error) {
	if !a.Op.Valid() {
		return nil, fmt.Errorf("action: unknown op %q", a.Op)
	}
	raw := actionJSON{Op: a.Op}
	spec := opFields[a.Op]
	for _, set := range [2][]string{spec.required, spec.optional} {
		for _, f := range set {
			switch f {
			case "group":
				g := a.Group
				raw.Group = &g
			case "groups":
				raw.Groups = a.Groups
			case "step":
				st := a.Step
				raw.Step = &st
			case "class":
				if a.Class != "" {
					c := a.Class
					raw.Class = &c
				}
			case "attr":
				at := a.Attr
				raw.Attr = &at
			case "values":
				raw.Values = a.Values
			case "field":
				fl := a.Field
				raw.Field = &fl
			case "value":
				v := a.Value
				raw.Value = &v
			case "user":
				u := a.User
				raw.User = &u
			}
		}
	}
	return json.Marshal(raw)
}

// UnmarshalJSON decodes one action strictly: unknown JSON fields,
// unknown ops, missing required operands and operands the op does not
// take are all errors.
func (a *Action) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var raw actionJSON
	if err := dec.Decode(&raw); err != nil {
		return fmt.Errorf("action: %w", err)
	}
	spec, ok := opFields[raw.Op]
	if !ok {
		return fmt.Errorf("action: unknown op %q", raw.Op)
	}
	present := map[string]bool{}
	if raw.Group != nil {
		present["group"] = true
	}
	if raw.Groups != nil {
		present["groups"] = true
	}
	if raw.Step != nil {
		present["step"] = true
	}
	if raw.Class != nil {
		present["class"] = true
	}
	if raw.Attr != nil {
		present["attr"] = true
	}
	if raw.Values != nil {
		present["values"] = true
	}
	if raw.Field != nil {
		present["field"] = true
	}
	if raw.Value != nil {
		present["value"] = true
	}
	if raw.User != nil {
		present["user"] = true
	}
	allowed := map[string]bool{}
	for _, f := range spec.required {
		allowed[f] = true
		if !present[f] {
			return fmt.Errorf("action: op %q requires field %q", raw.Op, f)
		}
	}
	for _, f := range spec.optional {
		allowed[f] = true
	}
	for f := range present {
		if !allowed[f] {
			return fmt.Errorf("action: op %q does not take field %q", raw.Op, f)
		}
	}
	*a = Action{Op: raw.Op, Groups: raw.Groups, Values: raw.Values}
	if raw.Group != nil {
		a.Group = *raw.Group
	}
	if raw.Step != nil {
		a.Step = *raw.Step
	}
	if raw.Class != nil {
		a.Class = *raw.Class
	}
	if raw.Attr != nil {
		a.Attr = *raw.Attr
	}
	if raw.Field != nil {
		a.Field = *raw.Field
	}
	if raw.Value != nil {
		a.Value = *raw.Value
	}
	if raw.User != nil {
		a.User = *raw.User
	}
	if a.Op == StartFrom && len(a.Groups) == 0 {
		return fmt.Errorf("action: op %q requires a non-empty groups list", raw.Op)
	}
	return nil
}

// String renders the action compactly for logs and error messages.
func (a Action) String() string {
	b, err := json.Marshal(a)
	if err != nil {
		return string(a.Op)
	}
	return string(b)
}

// DecodeLog parses an action log from JSON: either a bare array of
// actions or an object carrying an "actions" array (the shape of a v2
// save file, whose header fields are tolerated and ignored here — full
// header validation belongs to Session.Load). Decoding each action is
// strict.
func DecodeLog(data []byte) ([]Action, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var acts []Action
		if err := json.Unmarshal(trimmed, &acts); err != nil {
			return nil, err
		}
		return acts, nil
	}
	var wrapped struct {
		Version   int             `json:"version"`
		Miner     string          `json:"miner"`
		NumGroups int             `json:"numGroups"`
		Actions   []Action        `json:"actions"`
		Extra     json.RawMessage `json:"-"`
	}
	if err := json.Unmarshal(trimmed, &wrapped); err != nil {
		return nil, err
	}
	if wrapped.Actions == nil {
		return nil, fmt.Errorf("action: log has no actions array")
	}
	return wrapped.Actions, nil
}

// EncodeLog renders a bare action array, indented — the -script input
// format of the vexus CLI.
func EncodeLog(acts []Action) ([]byte, error) {
	return json.MarshalIndent(acts, "", "  ")
}
